#!/usr/bin/env python3
"""Compare a bench JSON report against its recorded baseline.

Usage:
    bench_diff.py <baseline.json> <current.json> [--tolerance 0.10]
                  [--strict-timing]

Both files map shape names to flat {metric: number} objects (top-level
keys starting with "_" are metadata and ignored). Two metric classes:

* Deterministic metrics (steps, backtracks, memo hit/miss/eviction
  counts, target_sorts, attempts, ...): pure functions of the algorithm's
  decisions, byte-identical across machines and thread widths. Any drift
  beyond the tolerance FAILS the diff — these are the CI gate, because
  they move exactly when the search behavior or the hoisting/memo
  machinery regresses (e.g. target_sorts scaling with steps again) and
  never when the runner is merely slow.

* Timing metrics: machine-dependent. Classified by suffix — any key
  ending in "_ms" or "_seconds" (lower is better) or "_per_sec" (higher
  is better) — plus the legacy names in TIMING_KEYS (memo_speedup has no
  suffix). Reported in the delta table for humans, but only gated under
  --strict-timing (for use on quiet, calibrated hardware — refresh the
  baseline on the same machine first). Only worse-direction drift fails:
  faster is never a regression.

* Execution-scope metrics (any key starting with "exec_", e.g.
  exec_spec_adopted): describe how work was *scheduled* — speculative
  adoptions, probe counts — and legitimately vary with thread width and
  timing. Always informational, never gated, not even by
  --strict-timing.

Key-set drift is reported explicitly in both directions: a baseline
metric missing from the current report FAILS (the bench stopped
measuring something it promised), while a current-only metric is
surfaced as "extra" info (a new bench metric whose baseline hasn't been
refreshed yet — harmless, but visible so it doesn't rot unrecorded).

Exit code 0 = within tolerance, 1 = regression, 2 = usage/format error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Legacy machine-dependent metrics without a classifying suffix.
TIMING_KEYS = {"wall_seconds", "memo_off_seconds", "steps_per_sec",
               "memo_speedup"}

# Legacy timing metrics where smaller is better; the rest improve upward.
LOWER_IS_BETTER = {"wall_seconds", "memo_off_seconds"}


def is_timing(metric: str) -> bool:
    """Machine-dependent metric: suffix-classified, plus legacy names."""
    return (metric.endswith(("_ms", "_seconds", "_per_sec"))
            or metric in TIMING_KEYS)


def lower_is_better(metric: str) -> bool:
    """Durations regress upward; rates (_per_sec) regress downward."""
    return (metric.endswith(("_ms", "_seconds"))
            or metric in LOWER_IS_BETTER)


def load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data, dict):
        print(f"bench_diff: {path}: top level must be an object",
              file=sys.stderr)
        sys.exit(2)
    return {k: v for k, v in data.items() if not k.startswith("_")}


def relative_delta(base: float, cur: float) -> float:
    if base == cur:
        return 0.0
    if base == 0:
        return float("inf")
    return (cur - base) / abs(base)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed relative drift (default 0.10)")
    parser.add_argument("--strict-timing", action="store_true",
                        help="gate timing metrics too (quiet machines only)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    failures = []
    rows = []  # (shape, metric, base, cur, delta_str, status)
    for shape, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(shape)
        if not isinstance(cur_metrics, dict):
            failures.append(f"{shape}: missing from current report")
            continue
        for metric, base in sorted(base_metrics.items()):
            if not isinstance(base, (int, float)):
                continue
            cur = cur_metrics.get(metric)
            if not isinstance(cur, (int, float)):
                failures.append(f"{shape}.{metric}: missing from current")
                continue
            delta = relative_delta(float(base), float(cur))
            timing = is_timing(metric)
            execution = metric.startswith("exec_")
            gated = (not timing or args.strict_timing) and not execution
            if timing:
                # Only worse-direction drift can regress.
                worse = -delta if lower_is_better(metric) else delta
                regressed = gated and -worse > args.tolerance
            else:
                regressed = gated and abs(delta) > args.tolerance
            if regressed:
                status = "REGRESSED"
                failures.append(
                    f"{shape}.{metric}: {base:g} -> {cur:g} "
                    f"({delta:+.1%}, tolerance {args.tolerance:.0%})")
            elif not gated:
                status = "info"
            else:
                status = "ok"
            delta_str = f"{delta:+.1%}" if abs(delta) != float("inf") \
                else "new"
            rows.append((shape, metric, base, cur, delta_str, status))

    # Current-only shapes/metrics: never a failure (the baseline simply
    # predates them), but reported so new bench output is visibly
    # unrecorded until someone refreshes the baseline.
    extras = []
    for shape, cur_metrics in sorted(current.items()):
        if not isinstance(cur_metrics, dict):
            continue
        base_metrics = baseline.get(shape)
        if not isinstance(base_metrics, dict):
            base_metrics = {}
            extras.append(f"{shape}: shape missing from baseline")
        for metric, cur in sorted(cur_metrics.items()):
            if not isinstance(cur, (int, float)):
                continue
            if metric not in base_metrics:
                rows.append((shape, metric, float("nan"), cur, "-",
                             "extra"))

    name_width = max((len(f"{s}.{m}") for s, m, *_ in rows), default=20)
    print(f"{'metric':<{name_width}}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}  status")
    print("-" * (name_width + 46))
    for shape, metric, base, cur, delta_str, status in rows:
        base_str = f"{base:>12g}" if base == base else f"{'-':>12}"
        print(f"{shape + '.' + metric:<{name_width}}  {base_str}  "
              f"{cur:>12g}  {delta_str:>8}  {status}")
    for note in extras:
        print(f"note: {note} (current-only; refresh the baseline to "
              f"record it)")

    if failures:
        print(f"\nbench_diff: {len(failures)} regression(s):",
              file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
