#!/usr/bin/env python3
"""Tree-grep lints: dropped Status, raw threading/clocks, ad-hoc probes.

Check 1 (Status): no Status-returning call may be a bare statement.
Check 2 (threads): std::thread / std::async / std::jthread may appear
only in src/common/parallel.{h,cc} — everything else must go through the
audited parallel layer (ThreadPool / ParallelFor / RunTasks), which is
what keeps DIVA's outputs bit-identical across thread counts and keeps
the tsan surface in one file.
Check 3 (clocks): std::chrono::steady_clock / system_clock /
high_resolution_clock may appear only under src/common/ (timer.h,
deadline.{h,cc}) — everything else must use MonotonicSeconds /
StopWatch / PhaseTimer / Deadline so that all reported timings and all
deadline decisions come from one monotonic clock.
Check 4 (ad-hoc instrumentation): library code under src/ outside
common/ may not call the C timing APIs (gettimeofday, clock_gettime,
timespec_get, clock) or the printf family (printf/fprintf/puts/fputs) —
leftover measurement hacks belong in the span tracer (DIVA_TRACE_SPAN)
and counter registry (DIVA_COUNTER_ADD), and user-facing text belongs to
the CLIs, not the library. A deliberate diagnostic escape hatch is
`// lint: allow-print` on the call's line or the line above.
Check 5 (vector<bool>): std::vector<bool> is banned in src/core/ and
src/constraint/ — the search hot path does membership tests and set
intersections over row sets, and the packed-word Bitset
(common/bitset.h) does those word-wise with popcount kernels instead of
per-element proxy reads. A vector<bool> creeping back in silently
reverts the kernels to bit-proxy loops.
Check 6 (randomness): rand() / srand() / std::random_device may appear
only in src/common/rng.* — every randomized component takes an explicit
seed through diva::Rng so any run can be replayed bit-for-bit. This is
the plain-checkout fallback for the deeper raw-random check in
tools/diva_analyze.py.

Escape hatches are uniform: `// lint: allow-<tag>` on the flagged line
or the line directly above (tags: discard, thread, clock, print,
vector-bool, random), with a justification in the comment.
tests/analysis_fixtures/ is skipped wholesale — those files are analyzer
input that violates the rules on purpose.

The compiler already rejects discarded [[nodiscard]] Status/Result values,
but only for translation units it compiles; this lint is a belt-and-braces
pass that works on a plain checkout (no compile_commands.json needed) and
also catches calls hidden from the compiler (e.g. behind disabled #ifdef
branches or templates that are never instantiated).

Pass 1 scans headers under the given roots for Status-returning function
names. Pass 2 scans sources for any of those names called in statement
position — i.e. the call is the whole expression statement — which drops
the Status on the floor. Sanctioned patterns:

    DIVA_RETURN_IF_ERROR(DoThing());
    Status s = DoThing();            // consumed
    return DoThing();                // propagated
    (void)DoThing();  // lint: allow-discard

Exit code 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Status factory names are never flagged: `Status::Internal("x");` as a
# statement is dead code, not a dropped result, and flagging them would
# produce noise on the factory definitions themselves.
FACTORY_NAMES = {
    "OK",
    "InvalidArgument",
    "NotFound",
    "Infeasible",
    "BudgetExhausted",
    "Internal",
    "IoError",
    "DeadlineExceeded",
}

ALLOW_PREFIX = "lint: allow-"
ALLOW_COMMENT = ALLOW_PREFIX + "discard"  # spelled out in messages


def allowed(raw_lines: list[str], line_no: int, tag: str) -> bool:
    """Unified escape-hatch test: `// lint: allow-<tag>` on the flagged
    line or the line directly above suppresses the finding."""
    needle = ALLOW_PREFIX + tag
    for ln in (line_no, line_no - 1):
        if 1 <= ln <= len(raw_lines) and needle in raw_lines[ln - 1]:
            return True
    return False


DECL_RE = re.compile(
    r"(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)*Status\s+(\w+)\s*\("
)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets.

    Newlines inside block comments survive so line numbers stay correct.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def collect_status_functions(roots: list[Path]) -> set[str]:
    names: set[str] = set()
    for root in roots:
        for header in sorted(root.rglob("*.h")):
            text = strip_comments_and_strings(header.read_text())
            for match in DECL_RE.finditer(text):
                name = match.group(1)
                if name not in FACTORY_NAMES:
                    names.add(name)
    return names


# Statement prefix allowed before a flagged call: an object chain like
# `taxonomy.` / `relation->` / `Taxonomy::` (method/static calls in
# statement position are still drops and stay flagged — the prefix match
# only tells us the call *is* the whole statement).
OBJECT_CHAIN_RE = re.compile(r"^[A-Za-z_]\w*(?:(?:\.|->|::)[A-Za-z_]\w*)*(?:\.|->|::)$")


def find_violations(path: Path, names: set[str]) -> list[tuple[int, str]]:
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    name_re = re.compile(
        r"(?<![\w.])(" + "|".join(re.escape(n) for n in sorted(names)) + r")\s*\("
    )
    for match in name_re.finditer(text):
        start = match.start()
        # Walk back to the start of the statement.
        boundary = max(text.rfind(ch, 0, start) for ch in ";{}")
        prefix = text[boundary + 1 : start].strip()
        # `foo(...)` or `obj.foo(...)` / `ns::foo(...)` as the entire
        # statement prefix => the value cannot be consumed.
        if prefix and not OBJECT_CHAIN_RE.fullmatch(prefix):
            continue
        line_no = text.count("\n", 0, start) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if allowed(raw_lines, line_no, "discard"):
            continue
        violations.append((line_no, line.strip()))
    return violations


# Raw threading primitives; <thread> is implied by the symbols. Matched
# on comment/string-stripped text, so prose mentions never flag.
THREAD_RE = re.compile(r"std\s*::\s*(?:thread|jthread|async)\b")

# The one sanctioned home for raw threading (the audited parallel layer).
THREAD_ALLOWED_SUFFIXES = ("common/parallel.h", "common/parallel.cc")


def find_thread_violations(path: Path) -> list[tuple[int, str]]:
    if str(path).replace("\\", "/").endswith(THREAD_ALLOWED_SUFFIXES):
        return []
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    for match in THREAD_RE.finditer(text):
        line_no = text.count("\n", 0, match.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if allowed(raw_lines, line_no, "thread"):
            continue
        violations.append((line_no, line.strip()))
    return violations


# Raw clock reads. Matched on comment/string-stripped text.
CLOCK_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\b"
)

# The sanctioned home for raw clocks: the timing/deadline helpers.
CLOCK_ALLOWED_DIR = "common/"


def find_clock_violations(path: Path) -> list[tuple[int, str]]:
    parts = str(path).replace("\\", "/").split("/")
    if CLOCK_ALLOWED_DIR.rstrip("/") in parts[:-1]:
        return []
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    for match in CLOCK_RE.finditer(text):
        line_no = text.count("\n", 0, match.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if allowed(raw_lines, line_no, "clock"):
            continue
        violations.append((line_no, line.strip()))
    return violations


# Ad-hoc instrumentation left behind by profiling/debugging sessions.
# Library code measures time through common/timer.h + trace spans and
# reports through counters or Status — not raw clock syscalls or stdio.
RAW_TIME_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(?:gettimeofday|clock_gettime|timespec_get)\s*\("
    r"|(?<![\w.])std\s*::\s*clock\s*\(\s*\)"
)

PRINT_RE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?(?:printf|fprintf|puts|fputs)\s*\("
)

ALLOW_PRINT_COMMENT = "lint: allow-print"

# Only library code is held to this; the CLIs (examples/), benchmarks and
# tests print to the user by design, and common/ owns the sanctioned
# logging/timing implementations themselves.
INSTRUMENTATION_ROOT = "src"
INSTRUMENTATION_EXEMPT_DIR = "common"


def find_instrumentation_violations(path: Path) -> list[tuple[int, str, str]]:
    parts = str(path).replace("\\", "/").split("/")
    if INSTRUMENTATION_ROOT not in parts[:-1]:
        return []
    if INSTRUMENTATION_EXEMPT_DIR in parts[:-1]:
        return []
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    for kind, pattern in (("raw timing call", RAW_TIME_RE),
                          ("stdio print", PRINT_RE)):
        for match in pattern.finditer(text):
            line_no = text.count("\n", 0, match.start()) + 1
            line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
            if allowed(raw_lines, line_no, "print"):
                continue
            violations.append((line_no, line.strip(), kind))
    return violations


# std::vector<bool> in the search hot path. Matched on comment/string-
# stripped text so prose mentions never flag.
VECTOR_BOOL_RE = re.compile(r"std\s*::\s*vector\s*<\s*bool\s*>")

# Directories held to the Bitset rule (the coloring/clustering hot path
# and the constraint machinery feeding it).
VECTOR_BOOL_DIRS = ("core", "constraint")


def find_vector_bool_violations(path: Path) -> list[tuple[int, str]]:
    parts = str(path).replace("\\", "/").split("/")
    if "src" not in parts[:-1]:
        return []
    if not any(d in parts[:-1] for d in VECTOR_BOOL_DIRS):
        return []
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    for match in VECTOR_BOOL_RE.finditer(text):
        line_no = text.count("\n", 0, match.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if allowed(raw_lines, line_no, "vector-bool"):
            continue
        violations.append((line_no, line.strip()))
    return violations


# Nondeterministic randomness sources. diva::Rng (common/rng.h) is the
# one sanctioned generator: everything randomized takes an explicit seed
# so runs replay bit-for-bit. rand()/srand() share hidden global state
# and random_device is entropy by definition; neither can appear outside
# the Rng implementation itself. (tools/diva_analyze.py enforces the
# same rule with its own engines; this is the plain-checkout fallback.)
RANDOM_RE = re.compile(
    r"(?<![\w.:>])s?rand\s*\(|(?:std\s*::\s*)?\brandom_device\b"
)

RANDOM_ALLOWED_RE = re.compile(r"common/rng\.[^/]*$")


def find_random_violations(path: Path) -> list[tuple[int, str]]:
    if RANDOM_ALLOWED_RE.search(str(path).replace("\\", "/")):
        return []
    raw = path.read_text()
    text = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    violations = []
    for match in RANDOM_RE.finditer(text):
        line_no = text.count("\n", 0, match.start()) + 1
        line = raw_lines[line_no - 1] if line_no <= len(raw_lines) else ""
        if allowed(raw_lines, line_no, "random"):
            continue
        violations.append((line_no, line.strip()))
    return violations


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(f"usage: {argv[0]} <source-root>...", file=sys.stderr)
        return 2
    roots = [Path(arg) for arg in argv[1:]]
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2

    names = collect_status_functions(roots)
    if not names:
        print("lint_status: no Status-returning functions found", file=sys.stderr)
        return 2

    failures = 0
    for root in roots:
        sources = sorted(
            list(root.rglob("*.cc"))
            + list(root.rglob("*.cpp"))
            + list(root.rglob("*.h"))
            + list(root.rglob("*.hpp"))
        )
        for source in sources:
            # The analysis fixtures violate the rules on purpose; they
            # are input for tools/diva_analyze.py, never compiled code.
            if "analysis_fixtures" in source.parts:
                continue
            if source.suffix in (".cc", ".cpp"):
                for line_no, line in find_violations(source, names):
                    print(
                        f"{source}:{line_no}: dropped Status: `{line}` "
                        f"(wrap in DIVA_RETURN_IF_ERROR or consume the value; "
                        f"`(void)... // {ALLOW_COMMENT}` if intentional)"
                    )
                    failures += 1
            for line_no, line in find_thread_violations(source):
                print(
                    f"{source}:{line_no}: raw threading primitive: `{line}` "
                    f"(use common/parallel.h — ThreadPool, ParallelFor or "
                    f"RunTasks — instead of std::thread/std::async)"
                )
                failures += 1
            for line_no, line in find_clock_violations(source):
                print(
                    f"{source}:{line_no}: raw chrono clock: `{line}` "
                    f"(use common/timer.h — MonotonicSeconds, StopWatch, "
                    f"PhaseTimer — or common/deadline.h instead)"
                )
                failures += 1
            for line_no, line in find_vector_bool_violations(source):
                print(
                    f"{source}:{line_no}: std::vector<bool> in the search "
                    f"hot path: `{line}` (use Bitset from common/bitset.h — "
                    f"packed words, popcount intersection kernels)"
                )
                failures += 1
            for line_no, line in find_random_violations(source):
                print(
                    f"{source}:{line_no}: raw randomness source: `{line}` "
                    f"(use diva::Rng from common/rng.h with an explicit "
                    f"seed; `// {ALLOW_PREFIX}random` on or above the line "
                    f"if deliberate)"
                )
                failures += 1
            for line_no, line, kind in find_instrumentation_violations(source):
                print(
                    f"{source}:{line_no}: {kind} in library code: `{line}` "
                    f"(instrument with DIVA_TRACE_SPAN / DIVA_COUNTER_ADD, "
                    f"time with common/timer.h; `// {ALLOW_PRINT_COMMENT}` "
                    f"on or above the call if deliberate)"
                )
                failures += 1

    if failures:
        print(f"lint_status: {failures} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_status: OK ({len(names)} Status-returning functions checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
