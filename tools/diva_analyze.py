#!/usr/bin/env python3
"""diva_analyze: static analyzer for DIVA's determinism + locking invariants.

DIVA's reproduction claims (byte-equal reports at every thread width,
step-for-step fig4/fig5 trajectories) rest on invariants the compiler
cannot express and the test suite can only sample. This tool checks them
on every file, every run:

  unordered-sink   Range-for over std::unordered_map/unordered_set whose
                   body (a) calls an order-sensitive sink — output/hash/
                   report/counter-style calls — or (b) appends to a
                   sequence (`push_back`/`emplace_back`) that is never
                   sorted later in the same function. Both leak hash-map
                   iteration order (which varies across libstdc++
                   versions, ASLR and insertions) into observable output.
                   The blessed idiom is: copy keys out, sort, iterate the
                   sorted copy — or reduce order-insensitively (sums,
                   min/max with a deterministic tie-break).
  pointer-order    Ordering comparison (< <= > >=) between two raw
                   pointer values, or std::less over a pointer type.
                   Pointer order changes run to run under ASLR; sorting
                   or branching on it is nondeterminism by construction
                   (compare indices or stable ids instead).
  raw-mutex        std::mutex / lock_guard / unique_lock / scoped_lock /
                   condition_variable outside common/mutex.h. All locking
                   goes through the annotated diva::Mutex wrapper so
                   Clang -Wthread-safety can prove GUARDED_BY invariants;
                   a raw mutex is invisible to that proof.
  raw-random       rand() / srand() / std::random_device outside
                   common/rng.*. Every randomized component must take an
                   explicit seed (diva::Rng) so runs are reproducible.
  mutable-global   Mutable namespace-scope state in src/ outside common/
                   with no GUARDED_BY(...) / constinit justification.
                   Shared mutable globals outside the audited common/
                   concurrency layer are how iteration-order and race
                   bugs creep past review.

Escape hatch: `// analyze: allow-<check>` on the flagged line or the
line directly above, with a justification comment. Fixtures under
tests/analysis_fixtures/ assert that every check fires and that every
allow-comment suppresses.

Engines
-------
With the clang python bindings and a compile_commands.json available
(--compdb, or autodetected in build/*/), the two semantic checks
(unordered-sink, pointer-order) walk real clang ASTs: iterated types are
resolved through typedefs/aliases/members and pointer comparisons are
found by operand type, not by name. Without libclang the lexical engine
(comment/string-stripped scan with brace-scope tracking and alias
following) approximates both, so a plain checkout still gets the gate.
The other three checks are lexical properties and behave identically in
both engines.

Usage:
  tools/diva_analyze.py [paths...]              # default: src
  tools/diva_analyze.py --compdb build/release --json findings.json src
  tools/diva_analyze.py --engine fallback --path-role src fixture.cc

Exit codes: 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from dataclasses import asdict, dataclass
from pathlib import Path

CHECKS = (
    "unordered-sink",
    "pointer-order",
    "raw-mutex",
    "raw-random",
    "mutable-global",
)

ALLOW_PREFIX = "analyze: allow-"

SOURCE_SUFFIXES = (".cc", ".cpp", ".h", ".hpp")


# --------------------------------------------------------------------------
# Shared lexical helpers
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving offsets.

    Newlines inside block comments survive so line numbers stay correct.
    (Same contract as tools/lint_status.py.)
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_bracket(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Offset of the bracket matching text[open_pos], or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return -1


def match_angle(text: str, open_pos: int) -> int:
    """Offset of the '>' matching a '<' at open_pos; handles '>>'. -1 if
    the region does not look like a template argument list."""
    depth = 0
    i = open_pos
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i
        elif c in ";{}":
            return -1  # statement boundary: not a template list
        i += 1
    return -1


@dataclass
class Finding:
    check: str
    file: str
    line: int
    message: str
    snippet: str
    allowed: bool = False


class FileContext:
    """Per-file state shared by all checks: raw text, stripped text,
    brace-scope classification, and the allow-comment index."""

    def __init__(self, path: Path, role: str):
        self.path = path
        self.role = role
        self.raw = path.read_text()
        self.text = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()
        self._scopes = None  # lazy: list of (open, close, kind)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.raw_lines):
            return self.raw_lines[line - 1].strip()
        return ""

    def allowed(self, check: str, line: int) -> bool:
        tag = ALLOW_PREFIX + check
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.raw_lines) and tag in self.raw_lines[ln - 1]:
                return True
        return False

    # -- brace scope classification ------------------------------------

    _SCOPE_KEYWORDS = {
        "namespace": "namespace",
        "struct": "record",
        "class": "record",
        "union": "record",
        "enum": "record",
    }

    def scopes(self) -> list[tuple[int, int, str]]:
        """Every brace pair as (open_offset, close_offset, kind) with
        kind in {namespace, record, function, init, block}."""
        if self._scopes is not None:
            return self._scopes
        text = self.text
        pairs = []
        stack = []
        for i, c in enumerate(text):
            if c == "{":
                stack.append((i, self._classify_brace(i)))
            elif c == "}" and stack:
                open_pos, kind = stack.pop()
                pairs.append((open_pos, i, kind))
        for open_pos, kind in stack:  # unbalanced: close at EOF
            pairs.append((open_pos, len(text), kind))
        pairs.sort()
        self._scopes = pairs
        return pairs

    def _classify_brace(self, open_pos: int) -> str:
        """Classifies the '{' at open_pos from the statement text before
        it (since the last ; { or })."""
        text = self.text
        start = max(text.rfind(ch, 0, open_pos) for ch in ";{}")
        head = text[start + 1 : open_pos]
        # Preprocessor lines (#include/#if...) end at their newline and
        # are not part of the declaration introducing the brace.
        head = " ".join(
            ln for ln in head.splitlines() if not ln.lstrip().startswith("#")
        ).strip()
        if not head:
            return "block"
        first_word = re.match(r"(\w+)", head)
        if first_word and first_word.group(1) in (
            "if", "for", "while", "switch", "do", "else", "try", "catch",
        ):
            return "block"
        kind = self._SCOPE_KEYWORDS.get(first_word.group(1)) if first_word else None
        if kind is None:
            # `extern "C"` blocks behave like namespaces; strings are
            # blanked, so match the keyword alone.
            if re.match(r"extern\b", head):
                kind = "namespace"
        if kind:
            return kind
        tail = re.sub(r"\b(?:const|noexcept|override|final|mutable)\b", "", head)
        tail = re.sub(r"DIVA_\w+\s*(?:\([^()]*\))?", "", tail).strip()
        if tail.endswith(")") or re.search(r"->\s*[\w:<>,\s&*]+$", tail):
            return "function"  # fn body, lambda body, or control stmt
        if tail.endswith("=") or tail.endswith(","):
            return "init"
        return "block"

    def enclosing(self, pos: int, kinds: tuple[str, ...]) -> tuple[int, int] | None:
        """Innermost enclosing brace pair of one of `kinds` around pos."""
        best = None
        for open_pos, close_pos, kind in self.scopes():
            if kind in kinds and open_pos < pos < close_pos:
                if best is None or open_pos > best[0]:
                    best = (open_pos, close_pos)
        return best

    def at_namespace_scope(self, pos: int) -> bool:
        """True when every brace enclosing pos is a namespace."""
        for open_pos, close_pos, kind in self.scopes():
            if open_pos < pos < close_pos and kind != "namespace":
                return False
        return True


# --------------------------------------------------------------------------
# Lexical checks (identical in both engines)
# --------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable(?:_any)?)\b"
)

RAW_RANDOM_RE = re.compile(
    r"(?<![\w.:>])s?rand\s*\(|(?:std\s*::\s*)?\brandom_device\b"
)

MUTABLE_GLOBAL_SKIP_RE = re.compile(
    r"^\s*(?:#|using\b|typedef\b|template\b|static_assert\b|friend\b|"
    r"extern\b|namespace\b|struct\b|class\b|union\b|enum\b|public\b|"
    r"private\b|protected\b|return\b|DIVA_[A-Z_]+\s*\()"
)

SORT_CALL_RE = re.compile(r"\b(?:std\s*::\s*)?(?:ranges\s*::\s*)?(?:stable_)?sort\s*\(")

SINK_CALL_RE = re.compile(
    r"\b(?:\w*(?:Write|Print|Append|Emit|Serialize|Report|ToJson|ToCsv)\w*"
    r"|\w*[Hh]ash\w*"
    r"|DIVA_COUNTER_ADD(?:_EXEC)?|DIVA_HISTOGRAM_RECORD(?:_EXEC)?"
    r"|printf|fprintf|fputs|puts)\s*\("
)

APPEND_RE = re.compile(r"([\w.>-]*?)(\w+)\s*\.\s*(?:push_back|emplace_back)\s*\(")


def check_raw_mutex(ctx: FileContext) -> list[Finding]:
    if ctx.role == "mutex-home":
        return []
    findings = []
    for match in RAW_MUTEX_RE.finditer(ctx.text):
        line = line_of(ctx.text, match.start())
        findings.append(
            Finding(
                "raw-mutex",
                str(ctx.path),
                line,
                "raw standard-library locking primitive; use diva::Mutex / "
                "MutexLock / CondVar from common/mutex.h so -Wthread-safety "
                "can check the locking invariants",
                ctx.snippet(line),
            )
        )
    return findings


def check_raw_random(ctx: FileContext) -> list[Finding]:
    if ctx.role == "rng":
        return []
    findings = []
    for match in RAW_RANDOM_RE.finditer(ctx.text):
        line = line_of(ctx.text, match.start())
        findings.append(
            Finding(
                "raw-random",
                str(ctx.path),
                line,
                "nondeterministic randomness source; use diva::Rng from "
                "common/rng.h with an explicit seed",
                ctx.snippet(line),
            )
        )
    return findings


def check_mutable_global(ctx: FileContext) -> list[Finding]:
    if ctx.role != "src":
        return []
    findings = []
    text = ctx.text
    pos = 0
    while True:
        semi = text.find(";", pos)
        if semi == -1:
            break
        start = max(text.rfind(ch, 0, semi) for ch in ";{}")
        stmt = text[start + 1 : semi]
        pos = semi + 1
        if not ctx.at_namespace_scope(semi):
            continue
        flat = " ".join(stmt.split())
        if not flat or MUTABLE_GLOBAL_SKIP_RE.match(flat):
            continue
        # Function declaration (no initializer, parameter list present).
        paren = flat.find("(")
        eq = flat.find("=")
        brace = flat.find("{")
        init = min(x for x in (eq, brace, len(flat)) if x != -1)
        if paren != -1 and paren < init:
            continue
        # Must look like a declaration: type tokens then a name.
        if not re.search(r"[\w>\]]\s*&?\s*\w+\s*(?:\[[^\]]*\])?\s*(?:=|\{|$)", flat):
            continue
        # Justifications: compile-time constness, constinit, or an
        # explicit lock annotation.
        if re.search(r"\b(?:constexpr|constinit)\b", flat):
            continue
        if "GUARDED_BY" in flat:
            continue
        if re.match(r"(?:static\s+|inline\s+|thread_local\s+)*const\b", flat) and (
            "*" not in flat.split("=")[0] or re.search(r"\*\s*const\b", flat)
        ):
            continue
        line = line_of(text, start + 1 + (len(stmt) - len(stmt.lstrip())))
        findings.append(
            Finding(
                "mutable-global",
                str(ctx.path),
                line,
                "mutable namespace-scope state outside common/; move it "
                "behind the audited concurrency layer, make it "
                "constexpr/constinit-const, or justify with "
                "// analyze: allow-mutable-global",
                ctx.snippet(line),
            )
        )
    return findings


# --------------------------------------------------------------------------
# Semantic checks — lexical (fallback) implementations
# --------------------------------------------------------------------------


def unordered_names(ctx: FileContext) -> set[str]:
    """Names of variables/fields/aliases of unordered map/set type,
    resolved through one level of `using X = std::unordered_...` alias."""
    text = ctx.text
    names: set[str] = set()
    aliases: set[str] = set()
    for match in re.finditer(
        r"\busing\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set)\s*<", text
    ):
        aliases.add(match.group(1))
    for match in re.finditer(r"\bunordered_(?:map|set)\s*(<)", text):
        close = match_angle(text, match.end() - 1)
        if close == -1:
            continue
        tail = text[close + 1 :]
        m = re.match(r"\s*[&*]?\s*(\w+)", tail)
        if m and m.group(1) != "using":
            names.add(m.group(1))
    if aliases:
        alias_re = re.compile(
            r"\b(" + "|".join(sorted(aliases)) + r")\s*[&*]?\s+(\w+)"
        )
        for match in alias_re.finditer(text):
            names.add(match.group(2))
    return names


def range_for_loops(ctx: FileContext) -> list[tuple[int, int, int, str]]:
    """Every range-for as (header_start, body_start, body_end, range_expr)."""
    text = ctx.text
    loops = []
    for match in re.finditer(r"\bfor\s*(\()", text):
        close = match_bracket(text, match.end() - 1, "(", ")")
        if close == -1:
            continue
        header = text[match.end() : close]
        colon = _split_range_colon(header)
        if colon == -1:
            continue
        range_expr = header[colon + 1 :].strip()
        body_start = close + 1
        while body_start < len(text) and text[body_start] in " \t\n":
            body_start += 1
        if body_start < len(text) and text[body_start] == "{":
            body_end = match_bracket(text, body_start, "{", "}")
            if body_end == -1:
                body_end = len(text)
        else:
            body_end = text.find(";", body_start)
            if body_end == -1:
                body_end = len(text)
        loops.append((match.start(), body_start, body_end, range_expr))
    return loops


def _split_range_colon(header: str) -> int:
    """Offset of the range-for ':' in a for-header, or -1 for classic
    fors. Skips '::' and colons nested in parens/brackets/braces."""
    depth = 0
    i = 0
    while i < len(header):
        c = header[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == ":" and depth == 0:
            if i + 1 < len(header) and header[i + 1] == ":":
                i += 2
                continue
            if i > 0 and header[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def terminal_identifier(expr: str) -> str:
    """Last identifier component of `m`, `obj.m`, `obj->m`, `(*p).m`."""
    ids = re.findall(r"\w+", expr)
    return ids[-1] if ids else ""


def sink_in_body(ctx: FileContext, body_start: int, body_end: int):
    match = SINK_CALL_RE.search(ctx.text, body_start, body_end)
    return match


def unsorted_appends(
    ctx: FileContext, body_start: int, body_end: int
) -> list[tuple[int, str]]:
    """(offset, target) for each push_back/emplace_back in the body whose
    target is not passed to a sort() later in the enclosing function."""
    text = ctx.text
    out = []
    func = ctx.enclosing(body_start, ("function",))
    func_end = func[1] if func else len(text)
    for match in APPEND_RE.finditer(text, body_start, body_end):
        target = match.group(2)
        sorted_later = False
        for sort_match in SORT_CALL_RE.finditer(text, body_end, func_end):
            open_pos = text.find("(", sort_match.start())
            close_pos = match_bracket(text, open_pos, "(", ")")
            if close_pos == -1:
                continue
            args = text[open_pos : close_pos + 1]
            if re.search(r"\b" + re.escape(target) + r"\b", args):
                sorted_later = True
                break
        if not sorted_later:
            out.append((match.start(), target))
    return out


def check_unordered_sink_lexical(ctx: FileContext) -> list[Finding]:
    names = unordered_names(ctx)
    if not names:
        return []
    findings = []
    for header_start, body_start, body_end, range_expr in range_for_loops(ctx):
        if terminal_identifier(range_expr) not in names:
            continue
        findings.extend(
            _unordered_loop_findings(ctx, header_start, body_start, body_end)
        )
    return findings


def _unordered_loop_findings(
    ctx: FileContext, header_start: int, body_start: int, body_end: int
) -> list[Finding]:
    findings = []
    loop_line = line_of(ctx.text, header_start)
    sink = sink_in_body(ctx, body_start, body_end)
    if sink:
        line = line_of(ctx.text, sink.start())
        findings.append(
            Finding(
                "unordered-sink",
                str(ctx.path),
                line,
                f"order-sensitive sink inside iteration over an unordered "
                f"container (loop at line {loop_line}); hash-map iteration "
                f"order leaks into output — iterate a sorted copy instead",
                ctx.snippet(line),
            )
        )
    for offset, target in unsorted_appends(ctx, body_start, body_end):
        line = line_of(ctx.text, offset)
        findings.append(
            Finding(
                "unordered-sink",
                str(ctx.path),
                line,
                f"iteration over an unordered container (loop at line "
                f"{loop_line}) appends to '{target}' which is never sorted "
                f"in this function; the sequence inherits hash-map "
                f"iteration order — sort it before it escapes",
                ctx.snippet(line),
            )
        )
    return findings


POINTER_DECL_RE = re.compile(
    r"\b[A-Za-z_]\w*(?:\s*::\s*\w+)*(?:\s*<[^<>;()]*>)?\s*\*\s*(?:const\s+)?"
    r"(\w+)\s*(?=[=;,)\[])"
)

LESS_POINTER_RE = re.compile(r"\bstd\s*::\s*less\s*<[^<>;]*\*\s*>")


def check_pointer_order_lexical(ctx: FileContext) -> list[Finding]:
    text = ctx.text
    pointers = set(POINTER_DECL_RE.findall(text))
    findings = []
    for match in LESS_POINTER_RE.finditer(text):
        line = line_of(text, match.start())
        findings.append(_pointer_order_finding(ctx, line))
    if pointers:
        cmp_re = re.compile(
            r"\b(" + "|".join(map(re.escape, sorted(pointers))) + r")\s*"
            r"(?:<=|>=|<(?![<=])|>(?![>=]))\s*"
            r"(" + "|".join(map(re.escape, sorted(pointers))) + r")\b"
        )
        for match in cmp_re.finditer(text):
            line = line_of(text, match.start())
            findings.append(_pointer_order_finding(ctx, line))
    return findings


def _pointer_order_finding(ctx: FileContext, line: int) -> Finding:
    return Finding(
        "pointer-order",
        str(ctx.path),
        line,
        "ordering comparison on raw pointer values; pointer order varies "
        "run to run (ASLR/allocator) — compare indices or stable ids",
        ctx.snippet(line),
    )


# --------------------------------------------------------------------------
# Semantic checks — libclang implementations
# --------------------------------------------------------------------------


class LibclangEngine:
    name = "libclang"

    def __init__(self, compdb_dir: Path | None):
        import clang.cindex as ci  # noqa: deferred import

        self.ci = ci
        self.index = ci.Index.create()
        self.compdb = None
        if compdb_dir is not None:
            self.compdb = ci.CompilationDatabase.fromDirectory(str(compdb_dir))

    def _args_for(self, path: Path) -> list[str]:
        default = ["-xc++", "-std=c++20", "-Isrc"]
        if self.compdb is None:
            return default
        commands = self.compdb.getCompileCommands(str(path.resolve()))
        if not commands:
            return default
        args = list(commands[0].arguments)[1:]  # drop the compiler itself
        cleaned = []
        skip_next = False
        for arg in args:
            if skip_next:
                skip_next = False
                continue
            if arg in ("-c", str(path), str(path.resolve())):
                continue
            if arg == "-o":
                skip_next = True
                continue
            cleaned.append(arg)
        return cleaned

    def semantic_findings(self, ctx: FileContext) -> list[Finding]:
        ci = self.ci
        tu = self.index.parse(str(ctx.path), args=self._args_for(ctx.path))
        findings: list[Finding] = []
        target = str(ctx.path)

        def in_this_file(cursor) -> bool:
            loc = cursor.location
            return loc.file is not None and str(loc.file) == target

        def walk(cursor):
            for child in cursor.get_children():
                if child.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                    if in_this_file(child):
                        findings.extend(self._range_for(ctx, child))
                elif child.kind == ci.CursorKind.BINARY_OPERATOR:
                    if in_this_file(child):
                        findings.extend(self._binary_op(ctx, child))
                walk(child)

        walk(tu.cursor)
        # std::less<T*> is a type mention, simplest caught lexically.
        for match in LESS_POINTER_RE.finditer(ctx.text):
            findings.append(
                _pointer_order_finding(ctx, line_of(ctx.text, match.start()))
            )
        return findings

    @staticmethod
    def _is_unordered_type(type_obj) -> bool:
        spelling = type_obj.get_canonical().spelling
        return "unordered_map<" in spelling or "unordered_set<" in spelling

    def _range_for(self, ctx: FileContext, cursor) -> list[Finding]:
        ci = self.ci
        children = list(cursor.get_children())
        range_expr = None
        for child in children:
            if child.kind.is_expression():
                range_expr = child
                break
        body = children[-1] if children else None
        if range_expr is None or body is None:
            return []
        range_type = range_expr.type
        if range_type.kind in (
            ci.TypeKind.LVALUEREFERENCE,
            ci.TypeKind.RVALUEREFERENCE,
        ):
            range_type = range_type.get_pointee()
        if not self._is_unordered_type(range_type):
            return []
        header_start = cursor.extent.start.offset
        body_start = body.extent.start.offset
        body_end = body.extent.end.offset
        return _unordered_loop_findings(ctx, header_start, body_start, body_end)

    def _binary_op(self, ctx: FileContext, cursor) -> list[Finding]:
        ci = self.ci
        children = list(cursor.get_children())
        if len(children) != 2:
            return []
        lhs, rhs = children
        lhs_kind = lhs.type.get_canonical().kind
        rhs_kind = rhs.type.get_canonical().kind
        if lhs_kind != ci.TypeKind.POINTER or rhs_kind != ci.TypeKind.POINTER:
            return []
        op = self._operator_spelling(cursor, lhs)
        if op not in ("<", ">", "<=", ">="):
            return []
        line = cursor.extent.start.line
        return [_pointer_order_finding(ctx, line)]

    @staticmethod
    def _operator_spelling(cursor, lhs) -> str:
        lhs_end = lhs.extent.end.offset
        for token in cursor.get_tokens():
            if token.extent.start.offset >= lhs_end and token.spelling in (
                "<",
                ">",
                "<=",
                ">=",
            ):
                return token.spelling
        return ""


class FallbackEngine:
    name = "fallback"

    def semantic_findings(self, ctx: FileContext) -> list[Finding]:
        return check_unordered_sink_lexical(ctx) + check_pointer_order_lexical(ctx)


def make_engine(requested: str, compdb_dir: Path | None):
    if requested in ("auto", "libclang"):
        try:
            return LibclangEngine(compdb_dir)
        except Exception as error:  # ImportError or missing libclang.so
            if requested == "libclang":
                print(f"diva_analyze: libclang engine unavailable: {error}",
                      file=sys.stderr)
                return None
    return FallbackEngine()


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def path_role(path: Path, override: str) -> str:
    if override != "auto":
        return override
    p = str(path).replace("\\", "/")
    if p.endswith(("common/mutex.h", "common/thread_annotations.h")):
        return "mutex-home"
    if re.search(r"common/rng\.(h|cc)$", p):
        return "rng"
    if "src/common/" in p:
        return "common"
    if "src/" in p:
        return "src"
    return "other"


def collect_files(paths: list[Path]) -> list[Path]:
    files = []
    for path in paths:
        if path.is_dir():
            for suffix in SOURCE_SUFFIXES:
                files.extend(sorted(path.rglob(f"*{suffix}")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(path)
    seen = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def find_compdb(explicit: str | None) -> Path | None:
    if explicit:
        compdb = Path(explicit)
        return compdb if (compdb / "compile_commands.json").exists() else None
    for candidate in ("build", "build/release", "build/clang-analyze"):
        if Path(candidate, "compile_commands.json").exists():
            return Path(candidate)
    return None


def analyze_file(ctx: FileContext, engine, only: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    if "raw-mutex" in only:
        findings.extend(check_raw_mutex(ctx))
    if "raw-random" in only:
        findings.extend(check_raw_random(ctx))
    if "mutable-global" in only:
        findings.extend(check_mutable_global(ctx))
    if "unordered-sink" in only or "pointer-order" in only:
        semantic = engine.semantic_findings(ctx)
        findings.extend(f for f in semantic if f.check in only)
    for finding in findings:
        finding.allowed = ctx.allowed(finding.check, finding.line)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="diva_analyze.py",
        description="DIVA determinism/locking static analyzer",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan (default: src)")
    parser.add_argument("--compdb", default=None,
                        help="directory containing compile_commands.json")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write a machine-readable findings report")
    parser.add_argument("--engine", choices=("auto", "libclang", "fallback"),
                        default="auto")
    parser.add_argument("--path-role",
                        choices=("auto", "src", "common", "rng", "mutex-home",
                                 "other"),
                        default="auto",
                        help="override per-file path classification "
                             "(fixtures use 'src' so every check applies)")
    parser.add_argument("--only", default=None,
                        help="comma-separated subset of checks to run")
    args = parser.parse_args(argv[1:])

    only = set(CHECKS)
    if args.only:
        only = {c.strip() for c in args.only.split(",")}
        unknown = only - set(CHECKS)
        if unknown:
            print(f"diva_analyze: unknown check(s): {sorted(unknown)}",
                  file=sys.stderr)
            return 2

    paths = [Path(p) for p in (args.paths or ["src"])]
    try:
        files = collect_files(paths)
    except FileNotFoundError as missing:
        print(f"diva_analyze: no such file or directory: {missing}",
              file=sys.stderr)
        return 2
    if not files:
        print("diva_analyze: nothing to scan", file=sys.stderr)
        return 2

    compdb_dir = find_compdb(args.compdb)
    engine = make_engine(args.engine, compdb_dir)
    if engine is None:
        return 2

    findings: list[Finding] = []
    for path in files:
        ctx = FileContext(path, path_role(path, args.path_role))
        findings.extend(analyze_file(ctx, engine, only))

    active = [f for f in findings if not f.allowed]
    suppressed = [f for f in findings if f.allowed]

    for finding in active:
        print(f"{finding.file}:{finding.line}: [{finding.check}] "
              f"{finding.message}\n    {finding.snippet}")

    if args.json_out:
        report = {
            "engine": engine.name,
            "compdb": str(compdb_dir) if compdb_dir else None,
            "files_scanned": len(files),
            "checks": sorted(only),
            "findings": [asdict(f) for f in active],
            "suppressed": [asdict(f) for f in suppressed],
        }
        Path(args.json_out).write_text(json.dumps(report, indent=2) + "\n")

    tail = (f"{len(active)} finding(s), {len(suppressed)} suppressed, "
            f"{len(files)} file(s), engine={engine.name}")
    if active:
        print(f"diva_analyze: FAIL — {tail}", file=sys.stderr)
        return 1
    print(f"diva_analyze: OK — {tail}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
