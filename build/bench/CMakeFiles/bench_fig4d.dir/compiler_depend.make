# Empty compiler generated dependencies file for bench_fig4d.
# This may be replaced when dependencies are built.
