file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4d.dir/bench_fig4d.cpp.o"
  "CMakeFiles/bench_fig4d.dir/bench_fig4d.cpp.o.d"
  "bench_fig4d"
  "bench_fig4d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
