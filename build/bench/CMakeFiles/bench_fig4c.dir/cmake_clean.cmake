file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4c.dir/bench_fig4c.cpp.o"
  "CMakeFiles/bench_fig4c.dir/bench_fig4c.cpp.o.d"
  "bench_fig4c"
  "bench_fig4c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
