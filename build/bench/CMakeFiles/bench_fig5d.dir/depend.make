# Empty dependencies file for bench_fig5d.
# This may be replaced when dependencies are built.
