file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5d.dir/bench_fig5d.cpp.o"
  "CMakeFiles/bench_fig5d.dir/bench_fig5d.cpp.o.d"
  "bench_fig5d"
  "bench_fig5d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
