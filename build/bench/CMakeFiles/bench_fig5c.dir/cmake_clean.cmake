file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c.dir/bench_fig5c.cpp.o"
  "CMakeFiles/bench_fig5c.dir/bench_fig5c.cpp.o.d"
  "bench_fig5c"
  "bench_fig5c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
