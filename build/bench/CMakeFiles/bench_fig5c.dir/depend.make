# Empty dependencies file for bench_fig5c.
# This may be replaced when dependencies are built.
