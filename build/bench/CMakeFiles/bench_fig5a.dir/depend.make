# Empty dependencies file for bench_fig5a.
# This may be replaced when dependencies are built.
