file(REMOVE_RECURSE
  "CMakeFiles/medical_cohort.dir/medical_cohort.cpp.o"
  "CMakeFiles/medical_cohort.dir/medical_cohort.cpp.o.d"
  "medical_cohort"
  "medical_cohort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_cohort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
