# Empty compiler generated dependencies file for medical_cohort.
# This may be replaced when dependencies are built.
