file(REMOVE_RECURSE
  "CMakeFiles/generalization_demo.dir/generalization_demo.cpp.o"
  "CMakeFiles/generalization_demo.dir/generalization_demo.cpp.o.d"
  "generalization_demo"
  "generalization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
