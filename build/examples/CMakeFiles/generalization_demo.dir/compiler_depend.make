# Empty compiler generated dependencies file for generalization_demo.
# This may be replaced when dependencies are built.
