# Empty dependencies file for anonymize_cli.
# This may be replaced when dependencies are built.
