file(REMOVE_RECURSE
  "CMakeFiles/anonymize_cli.dir/anonymize_cli.cpp.o"
  "CMakeFiles/anonymize_cli.dir/anonymize_cli.cpp.o.d"
  "anonymize_cli"
  "anonymize_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
