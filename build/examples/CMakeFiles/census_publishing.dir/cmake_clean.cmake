file(REMOVE_RECURSE
  "CMakeFiles/census_publishing.dir/census_publishing.cpp.o"
  "CMakeFiles/census_publishing.dir/census_publishing.cpp.o.d"
  "census_publishing"
  "census_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
