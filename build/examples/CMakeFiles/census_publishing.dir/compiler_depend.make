# Empty compiler generated dependencies file for census_publishing.
# This may be replaced when dependencies are built.
