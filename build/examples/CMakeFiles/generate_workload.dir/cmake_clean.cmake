file(REMOVE_RECURSE
  "CMakeFiles/generate_workload.dir/generate_workload.cpp.o"
  "CMakeFiles/generate_workload.dir/generate_workload.cpp.o.d"
  "generate_workload"
  "generate_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
