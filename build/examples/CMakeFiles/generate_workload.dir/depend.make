# Empty dependencies file for generate_workload.
# This may be replaced when dependencies are built.
