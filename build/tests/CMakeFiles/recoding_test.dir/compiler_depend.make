# Empty compiler generated dependencies file for recoding_test.
# This may be replaced when dependencies are built.
