file(REMOVE_RECURSE
  "CMakeFiles/recoding_test.dir/recoding_test.cc.o"
  "CMakeFiles/recoding_test.dir/recoding_test.cc.o.d"
  "recoding_test"
  "recoding_test.pdb"
  "recoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
