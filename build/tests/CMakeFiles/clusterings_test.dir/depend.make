# Empty dependencies file for clusterings_test.
# This may be replaced when dependencies are built.
