file(REMOVE_RECURSE
  "CMakeFiles/clusterings_test.dir/clusterings_test.cc.o"
  "CMakeFiles/clusterings_test.dir/clusterings_test.cc.o.d"
  "clusterings_test"
  "clusterings_test.pdb"
  "clusterings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clusterings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
