
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/distance_test.cc" "tests/CMakeFiles/distance_test.dir/distance_test.cc.o" "gcc" "tests/CMakeFiles/distance_test.dir/distance_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/diva_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/hierarchy/CMakeFiles/diva_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/diva_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/diva_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/diva_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/diva_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
