# Empty dependencies file for diva_test.
# This may be replaced when dependencies are built.
