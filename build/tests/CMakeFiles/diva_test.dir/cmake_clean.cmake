file(REMOVE_RECURSE
  "CMakeFiles/diva_test.dir/diva_test.cc.o"
  "CMakeFiles/diva_test.dir/diva_test.cc.o.d"
  "diva_test"
  "diva_test.pdb"
  "diva_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
