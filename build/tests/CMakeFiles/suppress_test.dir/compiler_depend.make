# Empty compiler generated dependencies file for suppress_test.
# This may be replaced when dependencies are built.
