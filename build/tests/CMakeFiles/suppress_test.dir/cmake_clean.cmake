file(REMOVE_RECURSE
  "CMakeFiles/suppress_test.dir/suppress_test.cc.o"
  "CMakeFiles/suppress_test.dir/suppress_test.cc.o.d"
  "suppress_test"
  "suppress_test.pdb"
  "suppress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suppress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
