# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/anonymizer_test[1]_include.cmake")
include("/root/repo/build/tests/clusterings_test[1]_include.cmake")
include("/root/repo/build/tests/coloring_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/conflict_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/diva_test[1]_include.cmake")
include("/root/repo/build/tests/edge_case_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_property_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/integrate_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/privacy_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/recoding_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/suppress_test[1]_include.cmake")
