# Empty dependencies file for diva_common.
# This may be replaced when dependencies are built.
