file(REMOVE_RECURSE
  "libdiva_common.a"
)
