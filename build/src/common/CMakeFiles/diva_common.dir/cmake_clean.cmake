file(REMOVE_RECURSE
  "CMakeFiles/diva_common.dir/rng.cc.o"
  "CMakeFiles/diva_common.dir/rng.cc.o.d"
  "CMakeFiles/diva_common.dir/status.cc.o"
  "CMakeFiles/diva_common.dir/status.cc.o.d"
  "CMakeFiles/diva_common.dir/string_util.cc.o"
  "CMakeFiles/diva_common.dir/string_util.cc.o.d"
  "libdiva_common.a"
  "libdiva_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
