# Empty dependencies file for diva_datagen.
# This may be replaced when dependencies are built.
