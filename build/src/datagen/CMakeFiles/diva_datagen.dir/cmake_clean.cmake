file(REMOVE_RECURSE
  "CMakeFiles/diva_datagen.dir/profiles.cc.o"
  "CMakeFiles/diva_datagen.dir/profiles.cc.o.d"
  "CMakeFiles/diva_datagen.dir/synthetic.cc.o"
  "CMakeFiles/diva_datagen.dir/synthetic.cc.o.d"
  "libdiva_datagen.a"
  "libdiva_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
