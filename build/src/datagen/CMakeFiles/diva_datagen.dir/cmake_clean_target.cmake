file(REMOVE_RECURSE
  "libdiva_datagen.a"
)
