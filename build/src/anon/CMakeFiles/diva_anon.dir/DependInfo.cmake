
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anon/anonymizer.cc" "src/anon/CMakeFiles/diva_anon.dir/anonymizer.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/anonymizer.cc.o.d"
  "/root/repo/src/anon/distance.cc" "src/anon/CMakeFiles/diva_anon.dir/distance.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/distance.cc.o.d"
  "/root/repo/src/anon/kmember.cc" "src/anon/CMakeFiles/diva_anon.dir/kmember.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/kmember.cc.o.d"
  "/root/repo/src/anon/mondrian.cc" "src/anon/CMakeFiles/diva_anon.dir/mondrian.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/mondrian.cc.o.d"
  "/root/repo/src/anon/oka.cc" "src/anon/CMakeFiles/diva_anon.dir/oka.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/oka.cc.o.d"
  "/root/repo/src/anon/privacy.cc" "src/anon/CMakeFiles/diva_anon.dir/privacy.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/privacy.cc.o.d"
  "/root/repo/src/anon/suppress.cc" "src/anon/CMakeFiles/diva_anon.dir/suppress.cc.o" "gcc" "src/anon/CMakeFiles/diva_anon.dir/suppress.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/diva_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
