file(REMOVE_RECURSE
  "libdiva_anon.a"
)
