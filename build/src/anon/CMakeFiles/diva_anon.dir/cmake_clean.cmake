file(REMOVE_RECURSE
  "CMakeFiles/diva_anon.dir/anonymizer.cc.o"
  "CMakeFiles/diva_anon.dir/anonymizer.cc.o.d"
  "CMakeFiles/diva_anon.dir/distance.cc.o"
  "CMakeFiles/diva_anon.dir/distance.cc.o.d"
  "CMakeFiles/diva_anon.dir/kmember.cc.o"
  "CMakeFiles/diva_anon.dir/kmember.cc.o.d"
  "CMakeFiles/diva_anon.dir/mondrian.cc.o"
  "CMakeFiles/diva_anon.dir/mondrian.cc.o.d"
  "CMakeFiles/diva_anon.dir/oka.cc.o"
  "CMakeFiles/diva_anon.dir/oka.cc.o.d"
  "CMakeFiles/diva_anon.dir/privacy.cc.o"
  "CMakeFiles/diva_anon.dir/privacy.cc.o.d"
  "CMakeFiles/diva_anon.dir/suppress.cc.o"
  "CMakeFiles/diva_anon.dir/suppress.cc.o.d"
  "libdiva_anon.a"
  "libdiva_anon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_anon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
