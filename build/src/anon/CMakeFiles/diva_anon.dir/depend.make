# Empty dependencies file for diva_anon.
# This may be replaced when dependencies are built.
