
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/analysis.cc" "src/constraint/CMakeFiles/diva_constraint.dir/analysis.cc.o" "gcc" "src/constraint/CMakeFiles/diva_constraint.dir/analysis.cc.o.d"
  "/root/repo/src/constraint/conflict.cc" "src/constraint/CMakeFiles/diva_constraint.dir/conflict.cc.o" "gcc" "src/constraint/CMakeFiles/diva_constraint.dir/conflict.cc.o.d"
  "/root/repo/src/constraint/diversity_constraint.cc" "src/constraint/CMakeFiles/diva_constraint.dir/diversity_constraint.cc.o" "gcc" "src/constraint/CMakeFiles/diva_constraint.dir/diversity_constraint.cc.o.d"
  "/root/repo/src/constraint/generator.cc" "src/constraint/CMakeFiles/diva_constraint.dir/generator.cc.o" "gcc" "src/constraint/CMakeFiles/diva_constraint.dir/generator.cc.o.d"
  "/root/repo/src/constraint/parser.cc" "src/constraint/CMakeFiles/diva_constraint.dir/parser.cc.o" "gcc" "src/constraint/CMakeFiles/diva_constraint.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relation/CMakeFiles/diva_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
