# Empty dependencies file for diva_constraint.
# This may be replaced when dependencies are built.
