file(REMOVE_RECURSE
  "CMakeFiles/diva_constraint.dir/analysis.cc.o"
  "CMakeFiles/diva_constraint.dir/analysis.cc.o.d"
  "CMakeFiles/diva_constraint.dir/conflict.cc.o"
  "CMakeFiles/diva_constraint.dir/conflict.cc.o.d"
  "CMakeFiles/diva_constraint.dir/diversity_constraint.cc.o"
  "CMakeFiles/diva_constraint.dir/diversity_constraint.cc.o.d"
  "CMakeFiles/diva_constraint.dir/generator.cc.o"
  "CMakeFiles/diva_constraint.dir/generator.cc.o.d"
  "CMakeFiles/diva_constraint.dir/parser.cc.o"
  "CMakeFiles/diva_constraint.dir/parser.cc.o.d"
  "libdiva_constraint.a"
  "libdiva_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
