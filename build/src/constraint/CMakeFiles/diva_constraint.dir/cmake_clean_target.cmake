file(REMOVE_RECURSE
  "libdiva_constraint.a"
)
