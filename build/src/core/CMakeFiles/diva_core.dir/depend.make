# Empty dependencies file for diva_core.
# This may be replaced when dependencies are built.
