file(REMOVE_RECURSE
  "libdiva_core.a"
)
