file(REMOVE_RECURSE
  "CMakeFiles/diva_core.dir/clusterings.cc.o"
  "CMakeFiles/diva_core.dir/clusterings.cc.o.d"
  "CMakeFiles/diva_core.dir/coloring.cc.o"
  "CMakeFiles/diva_core.dir/coloring.cc.o.d"
  "CMakeFiles/diva_core.dir/constraint_graph.cc.o"
  "CMakeFiles/diva_core.dir/constraint_graph.cc.o.d"
  "CMakeFiles/diva_core.dir/diva.cc.o"
  "CMakeFiles/diva_core.dir/diva.cc.o.d"
  "CMakeFiles/diva_core.dir/integrate.cc.o"
  "CMakeFiles/diva_core.dir/integrate.cc.o.d"
  "CMakeFiles/diva_core.dir/report_json.cc.o"
  "CMakeFiles/diva_core.dir/report_json.cc.o.d"
  "libdiva_core.a"
  "libdiva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
