
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clusterings.cc" "src/core/CMakeFiles/diva_core.dir/clusterings.cc.o" "gcc" "src/core/CMakeFiles/diva_core.dir/clusterings.cc.o.d"
  "/root/repo/src/core/coloring.cc" "src/core/CMakeFiles/diva_core.dir/coloring.cc.o" "gcc" "src/core/CMakeFiles/diva_core.dir/coloring.cc.o.d"
  "/root/repo/src/core/constraint_graph.cc" "src/core/CMakeFiles/diva_core.dir/constraint_graph.cc.o" "gcc" "src/core/CMakeFiles/diva_core.dir/constraint_graph.cc.o.d"
  "/root/repo/src/core/diva.cc" "src/core/CMakeFiles/diva_core.dir/diva.cc.o" "gcc" "src/core/CMakeFiles/diva_core.dir/diva.cc.o.d"
  "/root/repo/src/core/integrate.cc" "src/core/CMakeFiles/diva_core.dir/integrate.cc.o" "gcc" "src/core/CMakeFiles/diva_core.dir/integrate.cc.o.d"
  "/root/repo/src/core/report_json.cc" "src/core/CMakeFiles/diva_core.dir/report_json.cc.o" "gcc" "src/core/CMakeFiles/diva_core.dir/report_json.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hierarchy/CMakeFiles/diva_hierarchy.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/diva_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/constraint/CMakeFiles/diva_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/diva_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
