file(REMOVE_RECURSE
  "libdiva_relation.a"
)
