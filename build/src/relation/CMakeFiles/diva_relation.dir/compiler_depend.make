# Empty compiler generated dependencies file for diva_relation.
# This may be replaced when dependencies are built.
