
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/csv.cc" "src/relation/CMakeFiles/diva_relation.dir/csv.cc.o" "gcc" "src/relation/CMakeFiles/diva_relation.dir/csv.cc.o.d"
  "/root/repo/src/relation/dictionary.cc" "src/relation/CMakeFiles/diva_relation.dir/dictionary.cc.o" "gcc" "src/relation/CMakeFiles/diva_relation.dir/dictionary.cc.o.d"
  "/root/repo/src/relation/qi_groups.cc" "src/relation/CMakeFiles/diva_relation.dir/qi_groups.cc.o" "gcc" "src/relation/CMakeFiles/diva_relation.dir/qi_groups.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/relation/CMakeFiles/diva_relation.dir/relation.cc.o" "gcc" "src/relation/CMakeFiles/diva_relation.dir/relation.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/relation/CMakeFiles/diva_relation.dir/schema.cc.o" "gcc" "src/relation/CMakeFiles/diva_relation.dir/schema.cc.o.d"
  "/root/repo/src/relation/stats.cc" "src/relation/CMakeFiles/diva_relation.dir/stats.cc.o" "gcc" "src/relation/CMakeFiles/diva_relation.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/diva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
