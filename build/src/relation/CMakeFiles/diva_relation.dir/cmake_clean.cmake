file(REMOVE_RECURSE
  "CMakeFiles/diva_relation.dir/csv.cc.o"
  "CMakeFiles/diva_relation.dir/csv.cc.o.d"
  "CMakeFiles/diva_relation.dir/dictionary.cc.o"
  "CMakeFiles/diva_relation.dir/dictionary.cc.o.d"
  "CMakeFiles/diva_relation.dir/qi_groups.cc.o"
  "CMakeFiles/diva_relation.dir/qi_groups.cc.o.d"
  "CMakeFiles/diva_relation.dir/relation.cc.o"
  "CMakeFiles/diva_relation.dir/relation.cc.o.d"
  "CMakeFiles/diva_relation.dir/schema.cc.o"
  "CMakeFiles/diva_relation.dir/schema.cc.o.d"
  "CMakeFiles/diva_relation.dir/stats.cc.o"
  "CMakeFiles/diva_relation.dir/stats.cc.o.d"
  "libdiva_relation.a"
  "libdiva_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
