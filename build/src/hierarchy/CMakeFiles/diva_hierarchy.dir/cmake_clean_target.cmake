file(REMOVE_RECURSE
  "libdiva_hierarchy.a"
)
