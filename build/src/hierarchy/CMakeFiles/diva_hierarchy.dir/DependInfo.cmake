
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hierarchy/generalize.cc" "src/hierarchy/CMakeFiles/diva_hierarchy.dir/generalize.cc.o" "gcc" "src/hierarchy/CMakeFiles/diva_hierarchy.dir/generalize.cc.o.d"
  "/root/repo/src/hierarchy/recoding.cc" "src/hierarchy/CMakeFiles/diva_hierarchy.dir/recoding.cc.o" "gcc" "src/hierarchy/CMakeFiles/diva_hierarchy.dir/recoding.cc.o.d"
  "/root/repo/src/hierarchy/taxonomy.cc" "src/hierarchy/CMakeFiles/diva_hierarchy.dir/taxonomy.cc.o" "gcc" "src/hierarchy/CMakeFiles/diva_hierarchy.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anon/CMakeFiles/diva_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/relation/CMakeFiles/diva_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diva_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
