file(REMOVE_RECURSE
  "CMakeFiles/diva_hierarchy.dir/generalize.cc.o"
  "CMakeFiles/diva_hierarchy.dir/generalize.cc.o.d"
  "CMakeFiles/diva_hierarchy.dir/recoding.cc.o"
  "CMakeFiles/diva_hierarchy.dir/recoding.cc.o.d"
  "CMakeFiles/diva_hierarchy.dir/taxonomy.cc.o"
  "CMakeFiles/diva_hierarchy.dir/taxonomy.cc.o.d"
  "libdiva_hierarchy.a"
  "libdiva_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
