# Empty compiler generated dependencies file for diva_hierarchy.
# This may be replaced when dependencies are built.
