# Empty dependencies file for diva_metrics.
# This may be replaced when dependencies are built.
