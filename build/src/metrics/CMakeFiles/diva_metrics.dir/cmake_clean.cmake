file(REMOVE_RECURSE
  "CMakeFiles/diva_metrics.dir/metrics.cc.o"
  "CMakeFiles/diva_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/diva_metrics.dir/query.cc.o"
  "CMakeFiles/diva_metrics.dir/query.cc.o.d"
  "libdiva_metrics.a"
  "libdiva_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diva_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
