file(REMOVE_RECURSE
  "libdiva_metrics.a"
)
