// Figure 5a — accuracy vs k on the Credit profile, DIVA (MinChoice,
// MaxFanOut) against the plain k-anonymization baselines (k-member, OKA,
// Mondrian). Paper shape: accuracy declines with k for everyone; DIVA
// stays above the baselines while additionally satisfying Sigma.

#include "bench/bench_common.h"
#include "bench/params.h"
#include "constraint/generator.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

int main() {
  PrintPreamble("Figure 5a", "accuracy vs k — Credit profile");

  ProfileOptions profile_options;
  profile_options.seed = 21;
  auto credit = GenerateProfile(DatasetProfile::kCredit, profile_options);
  DIVA_CHECK(credit.ok());

  ConstraintGenOptions gen;
  gen.count = DefaultConstraintCount(DatasetProfile::kCredit);  // 18
  gen.min_support = 25;  // includes minority values that large k cannot protect
  gen.slack = 0.2;       // tight ranges: suppression quickly breaches bounds
  gen.seed = 21;
  auto constraints = GenerateConstraints(*credit, gen);
  DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
  std::printf("|R| = %zu, |Sigma| = %zu\n\n", credit->NumRows(),
              constraints->size());

  SeriesTable table(
      "k", {"MinChoice", "MaxFanOut", "k-member", "OKA", "Mondrian"});
  for (size_t k : kKSweep) {
    std::vector<double> row;
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunDivaOnce(*credit, *constraints, strategy, k, seed);
      });
      row.push_back(result.accuracy);
    }
    for (BaselineAlgorithm baseline :
         {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
          BaselineAlgorithm::kMondrian}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunBaselineOnce(*credit, *constraints, baseline, k, seed);
      });
      row.push_back(result.accuracy);
    }
    table.Row(std::to_string(k), row);
  }
  std::printf(
      "\npaper shape: everyone's accuracy falls as k grows (larger groups,\n"
      "more suppression); DIVA outperforms because the baselines silently\n"
      "violate diversity constraints, which the accuracy measure counts.\n");
  return 0;
}
