// Figure 4b — DIVA accuracy vs |Sigma| on the Census profile.
// Series: MinChoice, MaxFanOut, Basic. Paper shape: accuracy declines
// roughly linearly as constraints are added.

#include "bench/bench_common.h"
#include "bench/params.h"
#include "constraint/generator.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

int main() {
  PrintPreamble("Figure 4b", "accuracy vs |Sigma| — Census profile");
  size_t rows = static_cast<size_t>(kDefaultPaperSize * Scale());
  constexpr size_t kK = kDefaultK;

  ProfileOptions profile_options;
  profile_options.num_rows = rows;
  profile_options.seed = 5;
  auto census = GenerateProfile(DatasetProfile::kCensus, profile_options);
  DIVA_CHECK(census.ok());
  std::printf("|R| = %zu (paper: 180k x scale), k = %zu\n\n", rows, kK);

  SeriesTable table("|Sigma|", {"MinChoice", "MaxFanOut", "Basic"});
  for (size_t num_constraints : kSigmaSweep) {
    ConstraintGenOptions gen;
    gen.count = num_constraints;
    gen.min_support = kK;       // includes barely-clusterable targets
    gen.slack = 0.15;           // tight ranges amplify interactions
    gen.target_conflict = kDefaultConflict;
    gen.seed = 5;
    auto constraints = GenerateConstraints(*census, gen);
    DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());

    std::vector<double> row;
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut,
          SelectionStrategy::kBasic}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunDivaOnce(*census, *constraints, strategy, kK, seed);
      });
      row.push_back(result.accuracy);
    }
    table.Row(std::to_string(num_constraints), row);
  }
  std::printf(
      "\npaper shape: accuracy declines as |Sigma| grows — more target\n"
      "tuples must be preserved in dedicated clusters, and interactions\n"
      "between constraints force extra suppression.\n");
  return 0;
}
