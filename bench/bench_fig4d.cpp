// Figure 4d — DIVA accuracy vs characteristic-value distribution on the
// Pop-Syn profile (|R| = 100k x scale, |Sigma| = 8). Paper shape:
// uniform best, Gaussian middle, Zipfian worst; MaxFanOut best overall
// (+8% over MinChoice, +17% over Basic in the paper).

#include "bench/bench_common.h"
#include "bench/params.h"
#include "constraint/generator.h"
#include "datagen/synthetic.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

int main() {
  PrintPreamble("Figure 4d",
                "accuracy vs value distribution — Pop-Syn profile");
  size_t rows = static_cast<size_t>(100000 * Scale());
  constexpr size_t kK = kDefaultK;
  constexpr size_t kNumConstraints = 8;  // paper: |Sigma| = 8
  std::printf("|R| = %zu (paper: 100k x scale), |Sigma| = %zu, k = %zu\n\n",
              rows, kNumConstraints, kK);

  SeriesTable table("distribution", {"MinChoice", "MaxFanOut", "Basic"});
  for (ValueDistribution distribution :
       {ValueDistribution::kZipfian, ValueDistribution::kUniform,
        ValueDistribution::kGaussian}) {
    ProfileOptions profile_options;
    profile_options.num_rows = rows;
    profile_options.characteristic_distribution = distribution;
    profile_options.seed = 13;
    auto popsyn = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
    DIVA_CHECK(popsyn.ok());

    ConstraintGenOptions gen;
    gen.count = kNumConstraints;
    gen.min_support = 2 * kK;
    gen.seed = 13;
    auto constraints = GenerateConstraints(*popsyn, gen);
    DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());

    std::vector<double> row;
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut,
          SelectionStrategy::kBasic}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunDivaOnce(*popsyn, *constraints, strategy, kK, seed);
      });
      row.push_back(result.accuracy);
    }
    table.Row(ValueDistributionToString(distribution), row);
  }
  std::printf(
      "\npaper shape: the uniform distribution scores best (domain values\n"
      "spread evenly avoid contention over a small set of tuples); Zipfian\n"
      "conflicts most; MaxFanOut leads across all distributions.\n");
  return 0;
}
