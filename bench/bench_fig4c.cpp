// Figure 4c — DIVA accuracy vs conflict rate on the Pantheon profile.
// Series: MinChoice, MaxFanOut, Basic. Paper shape: accuracy declines as
// cf grows; MaxFanOut and MinChoice beat Basic (+17% / +9% in the paper).

#include "bench/bench_common.h"
#include "bench/params.h"
#include "constraint/conflict.h"
#include "constraint/generator.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

int main() {
  PrintPreamble("Figure 4c", "accuracy vs conflict rate — Pantheon profile");
  constexpr size_t kK = kDefaultK;
  constexpr size_t kNumConstraints = kDefaultSigma;

  ProfileOptions profile_options;
  profile_options.seed = 9;
  auto pantheon = GenerateProfile(DatasetProfile::kPantheon, profile_options);
  DIVA_CHECK(pantheon.ok());
  std::printf("|R| = %zu, |Sigma| = %zu, k = %zu\n\n", pantheon->NumRows(),
              kNumConstraints, kK);

  SeriesTable table("cf(target)",
                    {"achieved", "MinChoice", "MaxFanOut", "Basic"});
  for (double conflict : kConflictSweep) {
    ConstraintGenOptions gen;
    gen.count = kNumConstraints;
    gen.min_support = 2 * kK;
    gen.target_conflict = conflict;
    gen.seed = 9;
    auto constraints = GenerateConstraints(*pantheon, gen);
    DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
    double achieved = ConflictRate(*pantheon, *constraints);

    std::vector<double> row = {achieved};
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut,
          SelectionStrategy::kBasic}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunDivaOnce(*pantheon, *constraints, strategy, kK, seed);
      });
      row.push_back(result.accuracy);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1f", conflict);
    table.Row(label, row);
  }
  std::printf(
      "\npaper shape: accuracy declines with rising conflict rate;\n"
      "MaxFanOut > MinChoice > Basic because targeting high-interaction\n"
      "constraints first prunes unsatisfiable clusterings early.\n");
  return 0;
}
