// Figure 5b — runtime vs k on the Credit profile, DIVA (MinChoice,
// MaxFanOut) against k-member, OKA, Mondrian. Paper shape: DIVA costs
// more than the plain baselines (the price of diversity); DIVA's runtime
// *decreases* as k grows (undersized clusterings are pruned earlier).

#include "bench/bench_common.h"
#include "bench/params.h"
#include "constraint/generator.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

int main() {
  PrintPreamble("Figure 5b", "runtime (s) vs k — Credit profile");

  ProfileOptions profile_options;
  profile_options.seed = 21;
  auto credit = GenerateProfile(DatasetProfile::kCredit, profile_options);
  DIVA_CHECK(credit.ok());

  ConstraintGenOptions gen;
  gen.count = DefaultConstraintCount(DatasetProfile::kCredit);
  gen.min_support = 25;
  gen.slack = 0.2;
  gen.seed = 21;
  auto constraints = GenerateConstraints(*credit, gen);
  DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
  std::printf("|R| = %zu, |Sigma| = %zu\n\n", credit->NumRows(),
              constraints->size());

  SeriesTable table(
      "k", {"MinChoice", "MaxFanOut", "k-member", "OKA", "Mondrian"});
  for (size_t k : kKSweep) {
    std::vector<double> row;
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunDivaOnce(*credit, *constraints, strategy, k, seed);
      });
      row.push_back(result.seconds);
    }
    for (BaselineAlgorithm baseline :
         {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
          BaselineAlgorithm::kMondrian}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunBaselineOnce(*credit, *constraints, baseline, k, seed);
      });
      row.push_back(result.seconds);
    }
    table.Row(std::to_string(k), row);
  }
  std::printf(
      "\npaper shape: DIVA variants sit above the baselines (diverse\n"
      "clustering + integration cost); their runtime shrinks with larger k\n"
      "as clusterings smaller than k are pruned during backtracking.\n");
  return 0;
}
