// bench_smoke — small fixed-seed DIVA run timed at each width of the
// thread sweep, emitting BENCH_smoke.json for CI baselines. Two promises
// are checked on every run:
//
//   1. Determinism: the published CSV hashes identically at every thread
//      count (the process exits 1 otherwise — CI fails on the spot).
//   2. Speed: per-phase wall times are recorded per width, so the stored
//      baseline documents the clustering-phase scaling on CI hardware.
//   3. Deadline-poll overhead: the widest run is repeated without a
//      deadline and under a generous never-expiring one; the armed token
//      costs one relaxed atomic load per poll, so the ratio must stay in
//      the noise and the two outputs must hash identically.
//   4. Tracing overhead: the single-threaded run is repeated in five
//      interleaved (tracing-off, tracing-on) pairs. Even the enabled
//      path (one timestamped ring-buffer append per span) must stay
//      within 2% of tracing-off — gated on the minimum per-pair ratio,
//      which is immune to shared-runner CPU-steal noise — bounding the
//      disabled path's one-relaxed-load-per-site cost from above.
//      Outputs must hash identically in both modes.
//
// Every per-width row in the emitted JSON also carries the run's
// counter delta (common/counters.h), so stored baselines document the
// work profile (coloring steps, suppressed cells, pool chunks, ...)
// next to the timings.
//
// Usage: bench_smoke [output.json]   (default BENCH_smoke.json)
// Knobs: DIVA_BENCH_THREADS="1,2,4,8" overrides the sweep;
//        DIVA_BENCH_SMOKE_ROWS overrides the row count (default 4000).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/trace.h"
#include "constraint/generator.h"
#include "relation/csv.h"

namespace {

using namespace diva;  // NOLINT: bench brevity

struct SmokeRun {
  size_t threads = 0;
  double clustering_seconds = 0.0;
  double anonymize_seconds = 0.0;
  double integrate_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t output_hash = 0;
  std::string counters_json = "[]";
};

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

size_t SmokeRows() {
  if (const char* env = std::getenv("DIVA_BENCH_SMOKE_ROWS")) {
    long rows = std::atol(env);
    if (rows > 0) return static_cast<size_t>(rows);
  }
  return 4000;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string output_path = argc > 1 ? argv[1] : "BENCH_smoke.json";
  constexpr size_t kK = 8;
  constexpr uint64_t kSeed = 1000;  // fixed: the smoke run never varies
  const size_t rows = SmokeRows();

  ProfileOptions profile_options;
  profile_options.num_rows = rows;
  profile_options.seed = kSeed;
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  if (!relation.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 relation.status().ToString().c_str());
    return 2;
  }
  ConstraintGenOptions constraint_options;
  constraint_options.count = 12;
  constraint_options.seed = kSeed;
  auto constraints = GenerateConstraints(*relation, constraint_options);
  if (!constraints.ok()) {
    std::fprintf(stderr, "constraint generation failed: %s\n",
                 constraints.status().ToString().c_str());
    return 2;
  }

  bench::PrintPreamble("smoke", "fixed-seed thread-sweep phase timings");
  std::printf("rows=%zu k=%zu constraints=%zu hardware_concurrency=%zu\n",
              rows, kK, constraints->size(), HardwareConcurrency());

  std::vector<SmokeRun> runs;
  for (size_t threads : bench::BenchThreads()) {
    DivaOptions options;
    options.k = kK;
    options.seed = kSeed;
    options.threads = threads;
    options.coloring_budget = bench::ColoringBudget();
    options.anonymizer.seed = kSeed;
    options.anonymizer.sample_size = 64;
    auto result = RunDiva(*relation, *constraints, options);
    if (!result.ok()) {
      std::fprintf(stderr, "RunDiva failed at threads=%zu: %s\n", threads,
                   result.status().ToString().c_str());
      return 2;
    }
    std::ostringstream csv;
    if (!WriteCsv(result->relation, csv).ok()) {
      std::fprintf(stderr, "WriteCsv failed at threads=%zu\n", threads);
      return 2;
    }
    SmokeRun run;
    run.threads = threads;
    run.clustering_seconds = result->report.clustering_seconds;
    run.anonymize_seconds = result->report.anonymize_seconds;
    run.integrate_seconds = result->report.integrate_seconds;
    run.total_seconds = result->report.total_seconds;
    run.output_hash = Fnv1a(csv.str());
    run.counters_json = counters::ToJson(result->report.counters);
    runs.push_back(run);
    std::printf(
        "threads=%zu  clustering=%.3fs  anonymize=%.3fs  integrate=%.3fs  "
        "total=%.3fs  output=fnv1a:%016llx\n",
        run.threads, run.clustering_seconds, run.anonymize_seconds,
        run.integrate_seconds, run.total_seconds,
        static_cast<unsigned long long>(run.output_hash));
  }

  bool deterministic = true;
  for (const SmokeRun& run : runs) {
    deterministic &= run.output_hash == runs.front().output_hash;
  }
  if (!deterministic) {
    std::fprintf(stderr,
                 "DETERMINISM FAILURE: outputs differ across thread "
                 "counts\n");
  }

  // Deadline-poll overhead: the same run once without a deadline and once
  // under a generous (never-expiring) one. The armed token costs one
  // relaxed atomic load per poll, so the two totals must sit within run
  // noise of each other, and — since the token never trips — the outputs
  // must hash identically.
  double no_deadline_total = 0.0;
  double generous_deadline_total = 0.0;
  uint64_t no_deadline_hash = 0;
  uint64_t generous_deadline_hash = 0;
  for (int64_t deadline_ms : {int64_t{0}, int64_t{600000}}) {
    DivaOptions options;
    options.k = kK;
    options.seed = kSeed;
    options.threads = runs.back().threads;
    options.coloring_budget = bench::ColoringBudget();
    options.anonymizer.seed = kSeed;
    options.anonymizer.sample_size = 64;
    options.deadline_ms = deadline_ms;
    auto result = RunDiva(*relation, *constraints, options);
    if (!result.ok()) {
      std::fprintf(stderr, "RunDiva failed at deadline_ms=%lld: %s\n",
                   static_cast<long long>(deadline_ms),
                   result.status().ToString().c_str());
      return 2;
    }
    std::ostringstream csv;
    if (!WriteCsv(result->relation, csv).ok()) {
      std::fprintf(stderr, "WriteCsv failed at deadline_ms=%lld\n",
                   static_cast<long long>(deadline_ms));
      return 2;
    }
    if (deadline_ms == 0) {
      no_deadline_total = result->report.total_seconds;
      no_deadline_hash = Fnv1a(csv.str());
    } else {
      generous_deadline_total = result->report.total_seconds;
      generous_deadline_hash = Fnv1a(csv.str());
    }
  }
  double deadline_overhead_ratio =
      no_deadline_total > 0.0 ? generous_deadline_total / no_deadline_total
                              : 1.0;
  bool deadline_output_identical = no_deadline_hash == generous_deadline_hash;
  if (!deadline_output_identical) {
    deterministic = false;
    std::fprintf(stderr,
                 "DETERMINISM FAILURE: a never-expiring deadline changed "
                 "the output\n");
  }
  std::printf(
      "deadline overhead (threads=%zu): none=%.3fs generous=%.3fs "
      "ratio=%.3f output_identical=%s\n",
      runs.back().threads, no_deadline_total, generous_deadline_total,
      deadline_overhead_ratio, deadline_output_identical ? "yes" : "no");

  // Tracing overhead: the same single-threaded run with span tracing off
  // and then on, five interleaved (off, on) pairs. The enabled path adds
  // a timestamped ring-buffer append per span (~142 ns, or ~1 ms across
  // the whole run), the disabled path a single relaxed atomic load per
  // site, so even tracing ON must stay within 2% of tracing OFF — which
  // bounds the disabled-path cost over the pre-instrumentation build.
  // Shared-runner noise is multiplicative (CPU steal) and far above 2%,
  // so the gate is on the *minimum per-pair ratio*: pairing cancels slow
  // drift, the minimum discards steal-contaminated pairs, and a real >2%
  // overhead would still fail every pair. Tracing never touches the
  // pipeline's data, so the outputs must hash identically.
  double tracing_off_total = 0.0;
  double tracing_on_total = 0.0;
  double tracing_overhead_ratio = 0.0;
  uint64_t tracing_off_hash = 0;
  uint64_t tracing_on_hash = 0;
  for (int rep = 0; rep < 5; ++rep) {
    double pair_total[2] = {0.0, 0.0};
    for (bool tracing_on : {false, true}) {
      DivaOptions options;
      options.k = kK;
      options.seed = kSeed;
      options.threads = 1;
      options.coloring_budget = bench::ColoringBudget();
      options.anonymizer.seed = kSeed;
      options.anonymizer.sample_size = 64;
      if (tracing_on) trace::Enable();
      auto result = RunDiva(*relation, *constraints, options);
      if (tracing_on) trace::Disable();
      if (!result.ok()) {
        std::fprintf(stderr, "RunDiva failed at tracing=%s: %s\n",
                     tracing_on ? "on" : "off",
                     result.status().ToString().c_str());
        return 2;
      }
      std::ostringstream csv;
      if (!WriteCsv(result->relation, csv).ok()) {
        std::fprintf(stderr, "WriteCsv failed at tracing=%s\n",
                     tracing_on ? "on" : "off");
        return 2;
      }
      double total = result->report.total_seconds;
      pair_total[tracing_on ? 1 : 0] = total;
      double& best = tracing_on ? tracing_on_total : tracing_off_total;
      best = rep == 0 ? total : std::min(best, total);
      (tracing_on ? tracing_on_hash : tracing_off_hash) = Fnv1a(csv.str());
    }
    double pair_ratio =
        pair_total[0] > 0.0 ? pair_total[1] / pair_total[0] : 1.0;
    tracing_overhead_ratio = rep == 0
                                 ? pair_ratio
                                 : std::min(tracing_overhead_ratio,
                                            pair_ratio);
  }
  size_t tracing_events = trace::Collect().size();
  uint64_t tracing_dropped = trace::DroppedEvents();
  bool tracing_output_identical = tracing_off_hash == tracing_on_hash;
  bool tracing_overhead_ok = tracing_overhead_ratio <= 1.02;
  if (!tracing_output_identical) {
    deterministic = false;
    std::fprintf(stderr,
                 "DETERMINISM FAILURE: enabling tracing changed the "
                 "output\n");
  }
  if (!tracing_overhead_ok) {
    std::fprintf(stderr,
                 "TRACING OVERHEAD FAILURE: tracing-on run is %.1f%% "
                 "slower than tracing-off (must be within 2%%)\n",
                 (tracing_overhead_ratio - 1.0) * 100.0);
  }
  std::printf(
      "tracing overhead (threads=1): off=%.3fs on=%.3fs "
      "min_pair_on/off=%.3f events=%zu dropped=%llu output_identical=%s\n",
      tracing_off_total, tracing_on_total, tracing_overhead_ratio,
      tracing_events, static_cast<unsigned long long>(tracing_dropped),
      tracing_output_identical ? "yes" : "no");

  const SmokeRun& first = runs.front();
  const SmokeRun& last = runs.back();
  double clustering_speedup =
      last.clustering_seconds > 0.0
          ? first.clustering_seconds / last.clustering_seconds
          : 1.0;
  double total_speedup =
      last.total_seconds > 0.0 ? first.total_seconds / last.total_seconds
                               : 1.0;
  std::printf("speedup (threads=%zu vs %zu): clustering %.2fx, total %.2fx\n",
              last.threads, first.threads, clustering_speedup, total_speedup);

  std::ofstream json(output_path);
  if (!json) {
    std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
    return 2;
  }
  json << "{\n"
       << "  \"bench\": \"smoke\",\n"
       << "  \"rows\": " << rows << ",\n"
       << "  \"k\": " << kK << ",\n"
       << "  \"constraints\": " << constraints->size() << ",\n"
       << "  \"seed\": " << kSeed << ",\n"
       << "  \"hardware_concurrency\": " << HardwareConcurrency() << ",\n"
       << "  \"deterministic_across_threads\": "
       << (deterministic ? "true" : "false") << ",\n"
       << "  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const SmokeRun& run = runs[i];
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(run.output_hash));
    json << "    {\"threads\": " << run.threads
         << ", \"clustering_seconds\": " << run.clustering_seconds
         << ", \"anonymize_seconds\": " << run.anonymize_seconds
         << ", \"integrate_seconds\": " << run.integrate_seconds
         << ", \"total_seconds\": " << run.total_seconds
         << ", \"output_fnv1a\": \"" << hash << "\""
         << ", \"counters\": " << run.counters_json << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"clustering_speedup\": " << clustering_speedup << ",\n"
       << "  \"total_speedup\": " << total_speedup << ",\n"
       << "  \"deadline_overhead\": {\"threads\": " << runs.back().threads
       << ", \"no_deadline_total_seconds\": " << no_deadline_total
       << ", \"generous_deadline_total_seconds\": " << generous_deadline_total
       << ", \"overhead_ratio\": " << deadline_overhead_ratio
       << ", \"output_identical\": "
       << (deadline_output_identical ? "true" : "false") << "},\n"
       << "  \"tracing_overhead\": {\"threads\": " << 1
       << ", \"tracing_off_total_seconds\": " << tracing_off_total
       << ", \"tracing_on_total_seconds\": " << tracing_on_total
       << ", \"min_pair_overhead_ratio\": " << tracing_overhead_ratio
       << ", \"within_2_percent\": "
       << (tracing_overhead_ok ? "true" : "false")
       << ", \"output_identical\": "
       << (tracing_output_identical ? "true" : "false") << "}\n"
       << "}\n";
  std::printf("wrote %s\n", output_path.c_str());

  return deterministic && tracing_overhead_ok ? 0 : 1;
}
