// Micro-benchmarks of the library's primitives (google-benchmark):
// distance evaluation, suppression, constraint counting, QI grouping,
// graph construction, clustering enumeration and the three baseline
// anonymizers. Not a paper figure — engineering telemetry for the
// substrate the figures run on.

#include <benchmark/benchmark.h>

#include <map>
#include <numeric>

#include "anon/anonymizer.h"
#include "anon/distance.h"
#include "anon/suppress.h"
#include "constraint/generator.h"
#include "core/clusterings.h"
#include "core/constraint_graph.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "relation/qi_groups.h"

namespace {

using namespace diva;  // NOLINT

/// Shared fixture: a Pop-Syn-style relation (static to build once).
const Relation& FixtureRelation(size_t rows) {
  static std::map<size_t, Relation>* cache = new std::map<size_t, Relation>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    ProfileOptions options;
    options.num_rows = rows;
    options.seed = 3;
    auto relation = GenerateProfile(DatasetProfile::kPopSyn, options);
    DIVA_CHECK(relation.ok());
    it = cache->emplace(rows, std::move(relation).value()).first;
  }
  return it->second;
}

const ConstraintSet& FixtureConstraints(size_t rows) {
  static std::map<size_t, ConstraintSet>* cache =
      new std::map<size_t, ConstraintSet>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    ConstraintGenOptions gen;
    gen.count = 8;
    gen.min_support = 16;
    gen.seed = 3;
    auto constraints = GenerateConstraints(FixtureRelation(rows), gen);
    DIVA_CHECK(constraints.ok());
    it = cache->emplace(rows, std::move(constraints).value()).first;
  }
  return it->second;
}

void BM_TupleDistance(benchmark::State& state) {
  const Relation& relation = FixtureRelation(10000);
  DistanceMetric metric(relation);
  RowId a = 0;
  RowId b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(metric.Distance(a, b));
    a = (a + 7) % relation.NumRows();
    b = (b + 13) % relation.NumRows();
  }
}
BENCHMARK(BM_TupleDistance);

void BM_ClusterCostIncrease(benchmark::State& state) {
  const Relation& relation = FixtureRelation(10000);
  ClusterCostTracker tracker(relation);
  tracker.Reset(0);
  for (RowId row = 1; row < 32; ++row) tracker.Add(row);
  RowId candidate = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.CostIncrease(candidate));
    candidate = (candidate + 17) % relation.NumRows();
  }
}
BENCHMARK(BM_ClusterCostIncrease);

void BM_SuppressClusters(benchmark::State& state) {
  const Relation& relation = FixtureRelation(10000);
  Clustering clustering;
  for (RowId row = 0; row + 10 <= 1000; row += 10) {
    Cluster cluster(10);
    std::iota(cluster.begin(), cluster.end(), row);
    clustering.push_back(std::move(cluster));
  }
  for (auto _ : state) {
    state.PauseTiming();
    Relation copy = relation;
    state.ResumeTiming();
    SuppressClustersInPlace(&copy, clustering);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SuppressClusters);

void BM_QiGroups(benchmark::State& state) {
  const Relation& relation = FixtureRelation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeQiGroups(relation));
  }
  state.SetItemsProcessed(state.iterations() * relation.NumRows());
}
BENCHMARK(BM_QiGroups)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ConstraintCount(benchmark::State& state) {
  const Relation& relation = FixtureRelation(state.range(0));
  const ConstraintSet& constraints = FixtureConstraints(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraints[0].CountOccurrences(relation));
  }
  state.SetItemsProcessed(state.iterations() * relation.NumRows());
}
BENCHMARK(BM_ConstraintCount)->Arg(10000)->Arg(100000);

void BM_BuildConstraintGraph(benchmark::State& state) {
  const Relation& relation = FixtureRelation(10000);
  const ConstraintSet& constraints = FixtureConstraints(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildConstraintGraph(relation, constraints));
  }
}
BENCHMARK(BM_BuildConstraintGraph);

void BM_EnumerateClusterings(benchmark::State& state) {
  const Relation& relation = FixtureRelation(10000);
  const ConstraintSet& constraints = FixtureConstraints(10000);
  const DiversityConstraint& constraint = constraints[0];
  std::vector<RowId> targets = constraint.TargetTuples(relation);
  ClusteringEnumOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EnumerateClusterings(relation, constraint, targets, 10, options));
  }
}
BENCHMARK(BM_EnumerateClusterings);

void BM_Baseline(benchmark::State& state, BaselineAlgorithm algorithm) {
  const Relation& relation = FixtureRelation(state.range(0));
  DivaOptions factory;
  factory.baseline = algorithm;
  factory.anonymizer.sample_size = 64;
  auto anonymizer = MakeBaselineAnonymizer(factory);
  std::vector<RowId> rows(relation.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  for (auto _ : state) {
    auto clusters = anonymizer->BuildClusters(relation, rows, 10);
    DIVA_CHECK(clusters.ok());
    benchmark::DoNotOptimize(*clusters);
  }
  state.SetItemsProcessed(state.iterations() * relation.NumRows());
}
void BM_KMemberSampled(benchmark::State& state) {
  BM_Baseline(state, BaselineAlgorithm::kKMember);
}
void BM_Oka(benchmark::State& state) {
  BM_Baseline(state, BaselineAlgorithm::kOka);
}
void BM_Mondrian(benchmark::State& state) {
  BM_Baseline(state, BaselineAlgorithm::kMondrian);
}
BENCHMARK(BM_KMemberSampled)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Oka)->Arg(1000)->Arg(10000);
BENCHMARK(BM_Mondrian)->Arg(1000)->Arg(10000);

void BM_KMemberExact(benchmark::State& state) {
  const Relation& relation = FixtureRelation(state.range(0));
  auto anonymizer = MakeKMember({});
  std::vector<RowId> rows(relation.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  for (auto _ : state) {
    auto clusters = anonymizer->BuildClusters(relation, rows, 10);
    DIVA_CHECK(clusters.ok());
    benchmark::DoNotOptimize(*clusters);
  }
  state.SetItemsProcessed(state.iterations() * relation.NumRows());
}
BENCHMARK(BM_KMemberExact)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
