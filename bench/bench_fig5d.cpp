// Figure 5d — runtime vs |R| on the Census profile, DIVA (MinChoice,
// MaxFanOut) against k-member, OKA, Mondrian. Paper shape: all runtimes
// grow with |R|; DIVA sits above the plain baselines.

#include "bench/bench_common.h"
#include "bench/params.h"
#include "constraint/generator.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

int main() {
  PrintPreamble("Figure 5d", "runtime (s) vs |R| — Census profile");
  constexpr size_t kK = kDefaultK;
  constexpr size_t kNumConstraints = kDefaultSigma;

  SeriesTable table(
      "|R|", {"MinChoice", "MaxFanOut", "k-member", "OKA", "Mondrian"});
  for (size_t paper_rows : kPaperSizes) {
    size_t rows = static_cast<size_t>(paper_rows * Scale());
    ProfileOptions profile_options;
    profile_options.num_rows = rows;
    profile_options.seed = 25;
    auto census = GenerateProfile(DatasetProfile::kCensus, profile_options);
    DIVA_CHECK(census.ok());

    ConstraintGenOptions gen;
    gen.count = kNumConstraints;
    gen.min_support = 2 * kK;
    gen.target_conflict = kDefaultConflict;
    gen.seed = 25;
    auto constraints = GenerateConstraints(*census, gen);
    DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());

    std::vector<double> row;
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunDivaOnce(*census, *constraints, strategy, kK, seed);
      });
      row.push_back(result.seconds);
    }
    for (BaselineAlgorithm baseline :
         {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
          BaselineAlgorithm::kMondrian}) {
      RunResult result = Averaged(Reps(), [&](uint64_t seed) {
        return RunBaselineOnce(*census, *constraints, baseline, kK, seed);
      });
      row.push_back(result.seconds);
    }
    table.Row(std::to_string(paper_rows) + "x" + std::to_string(rows), row);
  }
  std::printf(
      "\npaper shape: every algorithm's runtime grows with |R|; DIVA's\n"
      "extra cost over its k-member substrate is the diverse clustering\n"
      "search plus integration.\n");
  return 0;
}
