// Incremental re-anonymization benchmark — the delta-path gate's probe.
//
// The pinned bench_scale shape (1,000,000 rows, 64 independent
// conflict-graph components, 192 constraints, seed 1000) under a 1% row
// churn confined to regions 0 and 1: 5,000 deletes alternating across
// the two regions and 5,000 inserts mirroring the deleted rows' REGION
// and GROUP (so every constraint's occurrence count is exactly
// restored, and no dictionary grows). 62 of the 64 components are
// untouched by construction, so the incremental leg adopts them and
// re-colors only the two dirty ones.
//
// Two timed legs, min-over-reps each, both producing the post-delta
// anonymization: cold — a plain RunDiva over the post-delta relation;
// incremental — ApplyDelta(prior snapshot, delta). Snapshot capture and
// the delta build are untimed prep. The published bytes must hash
// identically across legs and reps (the incremental path is an
// execution shortcut, never a semantic one — core/incremental.h), and
// the deterministic metrics (including shards_reused = 62 and the
// output hash) gate CI via tools/bench_diff.py against
// bench/baselines/BENCH_incremental.json. The cold/incremental wall
// ratio is exec_-prefixed (informational per machine); CI gates it
// >= 5x in the bench-gate job.
//
// Usage: bench_incremental [out.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "core/incremental.h"
#include "relation/relation.h"
#include "relation/schema.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

namespace {

// Pinned shape — identical to bench_scale; changing any knob invalidates
// the recorded baseline.
constexpr size_t kNumRows = 1000000;
constexpr size_t kNumRegions = 64;
constexpr size_t kNumJobs = 40;
constexpr size_t kNumDiagnoses = 8;
constexpr size_t kK = 10;
constexpr uint64_t kSeed = 1000;
constexpr uint64_t kPreserveNumerator = 7;
constexpr uint64_t kPreserveDenominator = 10;

/// 1% churn: 5,000 deletes + 5,000 matching inserts, regions 0-1 only.
constexpr size_t kChurnRows = 5000;
constexpr size_t kChurnRegions = 2;

struct ScaleWorkload {
  Relation relation;
  ConstraintSet constraints;
};

/// bench_scale's pinned builder: row i gets REGION i%64 and GROUP
/// 2*region + (i/64)%2; three overlapping constraints per region.
ScaleWorkload BuildWorkload() {
  auto schema = Schema::Make({
      {"REGION", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"GROUP", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"JOB", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK_MSG(schema.ok(), schema.status().ToString());
  Relation relation(*schema);

  std::vector<ValueCode> regions(kNumRegions);
  std::vector<ValueCode> groups(2 * kNumRegions);
  for (size_t r = 0; r < kNumRegions; ++r) {
    regions[r] = relation.Encode(0, "r" + std::to_string(r));
  }
  for (size_t g = 0; g < 2 * kNumRegions; ++g) {
    groups[g] = relation.Encode(1, "g" + std::to_string(g));
  }
  std::vector<ValueCode> ages(60);
  for (size_t a = 0; a < ages.size(); ++a) {
    ages[a] = relation.Encode(2, std::to_string(18 + a));
  }
  std::vector<ValueCode> jobs(kNumJobs);
  for (size_t j = 0; j < kNumJobs; ++j) {
    jobs[j] = relation.Encode(3, "j" + std::to_string(j));
  }
  std::vector<ValueCode> diagnoses(kNumDiagnoses);
  for (size_t d = 0; d < kNumDiagnoses; ++d) {
    diagnoses[d] = relation.Encode(4, "d" + std::to_string(d));
  }

  std::vector<uint64_t> region_count(kNumRegions, 0);
  std::vector<uint64_t> group_count(2 * kNumRegions, 0);
  Rng rng(kSeed);
  std::vector<ValueCode> row(5);
  for (size_t i = 0; i < kNumRows; ++i) {
    const size_t region = i % kNumRegions;
    const size_t group = 2 * region + (i / kNumRegions) % 2;
    ++region_count[region];
    ++group_count[group];
    row[0] = regions[region];
    row[1] = groups[group];
    row[2] = ages[rng.NextBounded(ages.size())];
    row[3] = jobs[rng.NextBounded(kNumJobs)];
    row[4] = diagnoses[rng.NextBounded(kNumDiagnoses)];
    relation.AppendRow(row);
  }

  auto lower = [](uint64_t count) {
    uint64_t bound = count * kPreserveNumerator / kPreserveDenominator;
    return bound < kK ? kK : bound;
  };
  std::string sigma;
  char line[96];
  for (size_t r = 0; r < kNumRegions; ++r) {
    std::snprintf(line, sizeof(line), "REGION[r%zu] in [%llu,%llu]\n", r,
                  (unsigned long long)lower(region_count[r]),
                  (unsigned long long)region_count[r]);
    sigma += line;
    for (size_t g = 2 * r; g < 2 * r + 2; ++g) {
      std::snprintf(line, sizeof(line), "GROUP[g%zu] in [%llu,%llu]\n", g,
                    (unsigned long long)lower(group_count[g]),
                    (unsigned long long)group_count[g]);
      sigma += line;
    }
  }
  auto constraints = ParseConstraintSet(relation.schema(), sigma);
  DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
  return {std::move(relation), std::move(constraints).value()};
}

/// 1% churn confined to regions 0-1: delete the first kChurnRows rows
/// whose region is < kChurnRegions, insert one row per delete carrying
/// the deleted row's REGION and GROUP (restoring every constraint count
/// exactly) with seeded AGE/JOB/DIAG drawn from the existing domains.
DeltaBatch BuildChurn() {
  DeltaBatch delta;
  Rng rng(kSeed + 1);
  for (size_t i = 0; i < kNumRows && delta.deleted.size() < kChurnRows; ++i) {
    const size_t region = i % kNumRegions;
    if (region >= kChurnRegions) continue;
    delta.deleted.push_back(static_cast<RowId>(i));
    const size_t group = 2 * region + (i / kNumRegions) % 2;
    delta.inserted.push_back(
        {"r" + std::to_string(region), "g" + std::to_string(group),
         std::to_string(18 + rng.NextBounded(60)),
         "j" + std::to_string(rng.NextBounded(kNumJobs)),
         "d" + std::to_string(rng.NextBounded(kNumDiagnoses))});
  }
  DIVA_CHECK_MSG(delta.deleted.size() == kChurnRows, "churn underflow");
  return delta;
}

/// Order-sensitive FNV-1a over every published cell.
uint64_t HashRelation(const Relation& relation) {
  uint64_t hash = 1469598103934665603ULL;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    for (const ValueCode code : relation.Row(row)) {
      hash ^= static_cast<uint64_t>(code) + 1;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

DivaOptions BenchOptions() {
  DivaOptions options;
  options.k = kK;
  options.seed = kSeed;
  options.baseline = BaselineAlgorithm::kMondrian;
  return options;
}

struct LegResult {
  double wall_seconds = 0.0;  // min over reps
  uint64_t output_hash = 0;
  DivaReport report;
};

void FoldRep(LegResult* leg, size_t rep, double secs, const DivaResult& run) {
  uint64_t hash = HashRelation(run.relation);
  if (rep == 0) {
    leg->wall_seconds = secs;
    leg->output_hash = hash;
    leg->report = run.report;
  } else {
    DIVA_CHECK_MSG(hash == leg->output_hash,
                   "published bytes differ across reps");
    if (secs < leg->wall_seconds) leg->wall_seconds = secs;
  }
}

void AppendMetric(std::string* json, const char* key, double value,
                  bool* first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s    \"%s\": %.6g", *first ? "" : ",\n",
                key, value);
  *json += buf;
  *first = false;
}

/// Exact integer emission — %.6g would round the 32-bit hash halves.
void AppendIntMetric(std::string* json, const char* key, uint64_t value,
                     bool* first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s    \"%s\": %llu", *first ? "" : ",\n",
                key, (unsigned long long)value);
  *json += buf;
  *first = false;
}

}  // namespace

int main(int argc, char** argv) {
  PrintPreamble("bench_incremental",
                "1M-row 1% churn — incremental re-anonymization gate");

  StopWatch build_watch;
  ScaleWorkload workload = BuildWorkload();
  DeltaBatch delta = BuildChurn();
  std::printf("built %zu rows, %zu constraints, %zu+%zu churn in %.2fs\n",
              workload.relation.NumRows(), workload.constraints.size(),
              delta.deleted.size(), delta.inserted.size(),
              build_watch.ElapsedSeconds());

  // Untimed prep: the prior run whose snapshot the incremental leg
  // replays against. Its cost is the cold pipeline + capture, paid once
  // per serving epoch, not per delta.
  DivaOptions prior_options = BenchOptions();
  prior_options.incremental = true;
  StopWatch prior_watch;
  auto prior =
      RunDiva(workload.relation, workload.constraints, prior_options);
  DIVA_CHECK_MSG(prior.ok(), prior.status().ToString());
  DIVA_CHECK_MSG(prior->snapshot != nullptr,
                 "prior run did not capture a reusable snapshot");
  std::printf("prior run + snapshot capture: %.3fs (untimed prep)\n",
              prior_watch.ElapsedSeconds());

  auto post = ApplyDeltaToRelation(*prior->snapshot->input, delta);
  DIVA_CHECK_MSG(post.ok(), post.status().ToString());
  DIVA_CHECK_MSG(post->NumRows() == kNumRows, "churn changed the row count");

  const DivaOptions options = BenchOptions();

  LegResult cold;
  for (size_t rep = 0; rep < Reps(); ++rep) {
    StopWatch watch;
    auto run = RunDiva(*post, workload.constraints, options);
    double secs = watch.ElapsedSeconds();
    DIVA_CHECK_MSG(run.ok(), run.status().ToString());
    FoldRep(&cold, rep, secs, *run);
  }

  LegResult incremental;
  uint64_t shards_reused = 0;
  for (size_t rep = 0; rep < Reps(); ++rep) {
    std::vector<counters::Sample> before = counters::Snapshot();
    StopWatch watch;
    auto run = ApplyDelta(*prior->snapshot, delta, options);
    double secs = watch.ElapsedSeconds();
    DIVA_CHECK_MSG(run.ok(), run.status().ToString());
    if (rep == 0) {
      for (const counters::Sample& sample :
           counters::Delta(before, counters::Snapshot())) {
        if (sample.name == "incremental.shards_reused") {
          shards_reused = sample.value;
        }
      }
      DIVA_CHECK_MSG(run->snapshot != nullptr,
                     "incremental run did not re-capture a snapshot");
    }
    FoldRep(&incremental, rep, secs, *run);
  }

  // The headline contract: the shortcut never changes the bytes.
  DIVA_CHECK_MSG(incremental.output_hash == cold.output_hash,
                 "incremental output diverged from the cold run");
  DIVA_CHECK_MSG(cold.report.shards == kNumRegions,
                 "unexpected component count");
  DIVA_CHECK_MSG(shards_reused == kNumRegions - kChurnRegions,
                 "churn confined to 2 regions must reuse 62 components");

  // Audited replay (untimed): the publish-or-refuse path accepts the
  // incremental output.
  DivaOptions audited_options = BenchOptions();
  audited_options.audit = true;
  auto audited = ApplyDelta(*prior->snapshot, delta, audited_options);
  DIVA_CHECK_MSG(audited.ok(), audited.status().ToString());
  DIVA_CHECK_MSG(audited->report.audited, "audit did not run");
  DIVA_CHECK_MSG(HashRelation(audited->relation) == cold.output_hash,
                 "audited incremental output diverged");

  double speedup = cold.wall_seconds / incremental.wall_seconds;
  std::printf(
      "churn_1m     shards=%zu reused=%llu recolored=%llu complete=%d\n"
      "             cold=%.3fs incremental=%.3fs (min of %zu)  x%.2f\n"
      "             sigma_rows=%zu repair_cells=%zu hash=%016llx\n\n",
      cold.report.shards, (unsigned long long)shards_reused,
      (unsigned long long)(kNumRegions - shards_reused),
      (int)cold.report.clustering_complete, cold.wall_seconds,
      incremental.wall_seconds, Reps(), speedup, cold.report.sigma_rows,
      cold.report.repair_cells, (unsigned long long)cold.output_hash);

  std::string json = "{\n  \"churn_1m\": {\n";
  bool first = true;
  AppendMetric(&json, "steps", (double)cold.report.coloring_steps, &first);
  AppendMetric(&json, "backtracks", (double)cold.report.backtracks, &first);
  AppendMetric(&json, "complete", cold.report.clustering_complete ? 1 : 0,
               &first);
  AppendMetric(&json, "shards", (double)cold.report.shards, &first);
  AppendMetric(&json, "shards_reused", (double)shards_reused, &first);
  AppendMetric(&json, "residual_rows", (double)cold.report.residual_rows,
               &first);
  AppendMetric(&json, "sigma_rows", (double)cold.report.sigma_rows, &first);
  AppendMetric(&json, "repair_cells", (double)cold.report.repair_cells,
               &first);
  // The 64-bit output hash split into exact-in-double halves: gated at
  // tolerance 0, this pins byte identity across machines and widths.
  AppendIntMetric(&json, "output_hash_lo", cold.output_hash & 0xffffffffULL,
                  &first);
  AppendIntMetric(&json, "output_hash_hi", cold.output_hash >> 32, &first);
  AppendMetric(&json, "cold_wall_seconds", cold.wall_seconds, &first);
  AppendMetric(&json, "incremental_wall_seconds", incremental.wall_seconds,
               &first);
  // exec_-prefixed: machine- and scheduling-dependent, never gated by
  // bench_diff; the bench-gate CI job asserts >= 5 on its own runs.
  AppendMetric(&json, "exec_incremental_speedup", speedup, &first);
  json += "\n  }\n}\n";

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    DIVA_CHECK_MSG(out != nullptr, "cannot open output file");
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
