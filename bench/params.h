#ifndef DIVA_BENCH_PARAMS_H_
#define DIVA_BENCH_PARAMS_H_

#include <cstddef>
#include <cstdint>

namespace diva {
namespace bench {

// The paper's parameter grid (Table 5). Defaults in bold in the paper
// are not recoverable from the PDF; midpoints are assumed and documented
// in DESIGN.md §4.

/// |R| sweep (Census), paper row counts — multiplied by Scale() at run
/// time.
inline constexpr size_t kPaperSizes[] = {60000, 120000, 180000, 240000,
                                         300000};
/// Default |R| (paper row count).
inline constexpr size_t kDefaultPaperSize = 180000;

/// |Sigma| sweep.
inline constexpr size_t kSigmaSweep[] = {4, 8, 12, 16, 20};
/// Default |Sigma|.
inline constexpr size_t kDefaultSigma = 12;

/// Conflict-rate sweep.
inline constexpr double kConflictSweep[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
/// Default conflict rate.
inline constexpr double kDefaultConflict = 0.4;

/// k sweep (minimum cluster size).
inline constexpr size_t kKSweep[] = {10, 20, 30, 40, 50};
/// Default k.
inline constexpr size_t kDefaultK = 30;

}  // namespace bench
}  // namespace diva

#endif  // DIVA_BENCH_PARAMS_H_
