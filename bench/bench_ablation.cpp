// Ablation study for the design choices called out in DESIGN.md §5:
//   (1) candidate-pool cap of the clustering enumerator,
//   (2) ordered (minimal-suppression-first) vs shuffled candidates,
//   (3) the single-block partition variant,
//   (4) sampled vs exact k-member in the Anonymize phase,
//   (5) coloring step budget.
// Each knob is varied in isolation on a fixed Pop-Syn workload.

#include <functional>

#include "bench/bench_common.h"
#include "anon/suppress.h"
#include "constraint/generator.h"
#include "hierarchy/recoding.h"
#include "metrics/metrics.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

namespace {

struct Workload {
  Relation relation;
  ConstraintSet constraints;
};

Workload MakeWorkload() {
  ProfileOptions profile_options;
  profile_options.num_rows = static_cast<size_t>(100000 * Scale());
  profile_options.seed = 33;
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  DIVA_CHECK(relation.ok());
  ConstraintGenOptions gen;
  gen.count = 8;
  gen.min_support = 50;
  gen.seed = 33;
  auto constraints = GenerateConstraints(*relation, gen);
  DIVA_CHECK(constraints.ok());
  return {std::move(relation).value(), std::move(constraints).value()};
}

/// Runs DIVA with a caller-tweaked option set and reports accuracy,
/// runtime and colored-constraint count.
void Report(const Workload& workload, const char* label,
            const std::function<void(DivaOptions*)>& tweak) {
  DivaOptions options;
  options.k = 10;
  options.seed = 33;
  options.coloring_budget = ColoringBudget();
  options.anonymizer.sample_size = 64;
  tweak(&options);

  StopWatch watch;
  auto result = RunDiva(workload.relation, workload.constraints, options);
  double seconds = watch.ElapsedSeconds();
  DIVA_CHECK_MSG(result.ok(), result.status().ToString());
  std::printf("%-34s  acc=%.4f  time=%7.3fs  colored=%zu/%zu  steps=%llu\n",
              label,
              OverallAccuracy(result->relation, options.k,
                              workload.constraints),
              seconds, result->report.colored_constraints,
              result->report.total_constraints,
              static_cast<unsigned long long>(result->report.coloring_steps));
}

}  // namespace

int main() {
  PrintPreamble("Ablations", "DESIGN.md §5 design choices, varied in isolation");
  Workload workload = MakeWorkload();
  std::printf("workload: Pop-Syn |R|=%zu, |Sigma|=%zu, k=10\n\n",
              workload.relation.NumRows(), workload.constraints.size());

  std::printf("--- (1) candidate-pool cap (MaxFanOut, ordered) ---\n");
  for (size_t cap : {8u, 16u, 64u, 256u}) {
    std::string label = "max_clusterings=" + std::to_string(cap);
    Report(workload, label.c_str(), [cap](DivaOptions* options) {
      options->auto_tune_enumeration = false;
      options->enumeration.max_clusterings = cap;
      options->enumeration.seed = options->seed;
    });
  }

  std::printf("\n--- (2) candidate order ---\n");
  Report(workload, "ordered (min suppression first)",
         [](DivaOptions* options) {
           options->auto_tune_enumeration = false;
           options->enumeration.ordered = true;
           options->enumeration.seed = options->seed;
         });
  Report(workload, "shuffled (Basic's order)", [](DivaOptions* options) {
    options->auto_tune_enumeration = false;
    options->enumeration.ordered = false;
    options->enumeration.seed = options->seed;
  });

  std::printf("\n--- (3) single-block partition variant ---\n");
  Report(workload, "with single-block variants", [](DivaOptions* options) {
    options->auto_tune_enumeration = false;
    options->enumeration.single_block_variant = true;
    options->enumeration.seed = options->seed;
  });
  Report(workload, "k-blocks only", [](DivaOptions* options) {
    options->auto_tune_enumeration = false;
    options->enumeration.single_block_variant = false;
    options->enumeration.seed = options->seed;
  });

  std::printf("\n--- (4) Anonymize-phase k-member search ---\n");
  Report(workload, "sampled candidates (64)", [](DivaOptions* options) {
    options->anonymizer.sample_size = 64;
  });
  Report(workload, "exact (quadratic) search", [](DivaOptions* options) {
    options->anonymizer.sample_size = 0;
  });

  std::printf("\n--- (5) coloring step budget ---\n");
  for (uint64_t budget : {1000ULL, 10000ULL, 100000ULL}) {
    std::string label = "budget=" + std::to_string(budget);
    Report(workload, label.c_str(), [budget](DivaOptions* options) {
      options->coloring_budget = budget;
    });
  }

  std::printf("\n--- (6) portfolio coloring threads ---\n");
  for (size_t threads : {1u, 2u, 4u}) {
    std::string label = "portfolio_threads=" + std::to_string(threads);
    Report(workload, label.c_str(), [threads](DivaOptions* options) {
      options->portfolio_threads = threads;
    });
  }

  // (7) Recoding family comparison: local suppression vs LCA
  // generalization vs Samarati full-domain recoding, same k.
  std::printf("\n--- (7) recoding family (k=10, NCP information loss) ---\n");
  {
    const Relation& r = workload.relation;
    GeneralizationContext context(r.NumAttributes());
    size_t age = *r.schema().IndexOf("AGE");
    auto age_taxonomy = Taxonomy::Intervals(18, 98, 10);
    DIVA_CHECK(age_taxonomy.ok());
    context.SetTaxonomy(age, std::move(age_taxonomy).value());

    std::vector<RowId> rows(r.NumRows());
    for (RowId i = 0; i < r.NumRows(); ++i) rows[i] = i;
    auto kmember = MakeKMember({});
    auto clusters = kmember->BuildClusters(r, rows, 10);
    DIVA_CHECK(clusters.ok());

    Relation suppressed = r;
    StopWatch suppress_watch;
    SuppressClustersInPlace(&suppressed, *clusters);
    std::printf("%-34s  ncp=%.4f  disc_acc=%.4f  time=%7.3fs\n",
                "k-member + suppression", NcpLoss(suppressed, context),
                DiscernibilityAccuracy(suppressed, 10),
                suppress_watch.ElapsedSeconds());

    Relation generalized = r;
    StopWatch generalize_watch;
    DIVA_CHECK(
        GeneralizeClustersInPlace(&generalized, *clusters, context).ok());
    std::printf("%-34s  ncp=%.4f  disc_acc=%.4f  time=%7.3fs\n",
                "k-member + LCA generalization", NcpLoss(generalized, context),
                DiscernibilityAccuracy(generalized, 10),
                generalize_watch.ElapsedSeconds());

    GlobalRecoder recoder(r, context);
    StopWatch recode_watch;
    auto recoded = recoder.FindMinimalRecoding(10);
    DIVA_CHECK_MSG(recoded.ok(), recoded.status().ToString());
    std::printf("%-34s  ncp=%.4f  disc_acc=%.4f  time=%7.3fs  vector=%s\n",
                "Samarati full-domain recoding", recoded->ncp,
                DiscernibilityAccuracy(recoded->relation, 10),
                recode_watch.ElapsedSeconds(),
                recoded->vector.ToString().c_str());
  }
  return 0;
}
