// Table 4 — dataset characteristics. Regenerates the paper's Table 4 for
// the four synthetic dataset profiles and compares each statistic with
// the original datasets' published values.

#include <cstdio>

#include "bench/bench_common.h"
#include "constraint/conflict.h"
#include "relation/qi_groups.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

namespace {

struct PaperRow {
  DatasetProfile profile;
  size_t rows;
  size_t attrs;
  size_t qi_projections;
  size_t constraints;
};

constexpr PaperRow kPaperRows[] = {
    {DatasetProfile::kPantheon, 11341, 17, 5636, 24},
    {DatasetProfile::kCensus, 299285, 40, 12405, 21},
    {DatasetProfile::kCredit, 1000, 20, 60, 18},
    {DatasetProfile::kPopSyn, 100000, 7, 24630, 10},
};

}  // namespace

int main() {
  PrintPreamble("Table 4", "dataset characteristics (paper vs profile)");
  std::printf("%-10s  %10s  %10s  %6s  %6s  %12s  %12s  %6s  %8s\n",
              "dataset", "|R|paper", "|R|ours", "n(p)", "n(o)",
              "|PiQI|paper", "|PiQI|ours", "|Sig|", "cf(Sig)");
  std::printf("%s\n", std::string(96, '-').c_str());

  for (const PaperRow& paper : kPaperRows) {
    ProfileOptions options;
    options.seed = 1;
    auto relation = GenerateProfile(paper.profile, options);
    DIVA_CHECK_MSG(relation.ok(), relation.status().ToString());

    auto constraints = DefaultConstraints(paper.profile, *relation);
    DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
    double conflict = ConflictRate(*relation, *constraints);

    std::printf("%-10s  %10zu  %10zu  %6zu  %6zu  %12zu  %12zu  %6zu  %8.3f\n",
                DatasetProfileToString(paper.profile), paper.rows,
                relation->NumRows(), paper.attrs,
                relation->NumAttributes(), paper.qi_projections,
                CountDistinctQiProjections(*relation), constraints->size(),
                conflict);
  }
  std::printf(
      "\nThe profiles match the originals on row count, width and |Sigma|\n"
      "exactly, and on QI-projection cardinality within ~2x (calibrated,\n"
      "not fitted; see DESIGN.md section 3).\n");
  return 0;
}
