// Coloring hot-path microbenchmark — the perf-regression gate's probe.
//
// Two fixed shapes, chosen to exercise the two regimes the kernels
// optimize:
//
//   fig4_popsyn  — the Fig. 4 running configuration: PopSyn at 4,000
//                  rows, 12 proportional constraints, moderate overlap.
//                  Enumeration-bound (wide targets, many candidate
//                  windows per node).
//   fig5_stress  — the Fig. 5 Credit profile pushed into the
//                  backtracking regime: 24 constraints, conflict rate
//                  0.9, slack 0.05. Search-bound (thousands of steps,
//                  hundreds of backtracks) — the memo's home turf.
//
// For each shape: min-over-reps wall time, steps/sec, deterministic
// search counters, and a memo-off control run that must produce a
// byte-identical outcome (the ratio of the two is reported). With a
// file argument, a JSON report is written for tools/bench_diff.py to
// compare against bench/baselines/BENCH_coloring.json: deterministic
// metrics gate CI, timings are informational (machines differ).
//
// Usage: bench_coloring [out.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/counters.h"
#include "common/timer.h"
#include "constraint/generator.h"
#include "core/coloring.h"
#include "core/constraint_graph.h"
#include "datagen/profiles.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

namespace {

struct Shape {
  const char* name;
  DatasetProfile profile;
  size_t num_rows;  // 0 = profile default
  size_t count;
  double slack;
  double conflict;
  size_t min_support;
  uint64_t step_budget;
  uint64_t stall_limit;
};

// Pinned shapes — changing any knob invalidates the recorded baseline.
constexpr Shape kShapes[] = {
    {"fig4_popsyn", DatasetProfile::kPopSyn, 4000, 12, 0.3, 0.4, 2, 150000,
     5000},
    {"fig5_stress", DatasetProfile::kCredit, 0, 24, 0.05, 0.9, 15, 40000,
     5000},
};

constexpr uint64_t kSeed = 1000;

struct ShapeResult {
  uint64_t steps = 0;
  uint64_t backtracks = 0;
  bool complete = false;
  double wall_seconds = 0.0;       // min over reps, memo on
  double memo_off_seconds = 0.0;   // min over reps, memo off
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  uint64_t memo_evictions = 0;
  uint64_t nogood_hits = 0;
  uint64_t nogood_misses = 0;
  uint64_t nogood_evictions = 0;
  uint64_t target_sorts = 0;
  uint64_t attempts = 0;
  // Execution-scope (scheduling-dependent, informational only).
  uint64_t spec_adopted = 0;
  uint64_t spec_reruns = 0;
  uint64_t spec_probes = 0;
  uint64_t spec_probe_hits = 0;
};

bool SameOutcome(const ColoringOutcome& a, const ColoringOutcome& b) {
  return a.assignment == b.assignment && a.preserved == b.preserved &&
         a.chosen_clusters == b.chosen_clusters && a.steps == b.steps &&
         a.backtracks == b.backtracks && a.complete == b.complete;
}

uint64_t CounterDelta(const std::vector<counters::Sample>& delta,
                      const std::string& name) {
  for (const counters::Sample& sample : delta) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

ShapeResult RunShape(const Shape& shape) {
  ProfileOptions profile_options;
  if (shape.num_rows > 0) profile_options.num_rows = shape.num_rows;
  profile_options.seed = kSeed;
  auto relation = GenerateProfile(shape.profile, profile_options);
  DIVA_CHECK_MSG(relation.ok(), relation.status().ToString());

  ConstraintGenOptions gen;
  gen.count = shape.count;
  gen.slack = shape.slack;
  gen.min_support = shape.min_support;
  gen.target_conflict = shape.conflict;
  gen.seed = kSeed;
  auto constraints = GenerateConstraints(*relation, gen);
  DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());

  ConstraintGraph graph = BuildConstraintGraph(*relation, *constraints);

  ColoringOptions options;
  options.k = 10;
  options.strategy = SelectionStrategy::kMaxFanOut;
  options.seed = kSeed;
  options.step_budget = shape.step_budget;
  options.stall_limit = shape.stall_limit;

  ShapeResult result;
  ColoringOutcome reference;
  auto before = counters::Snapshot();
  for (size_t rep = 0; rep < Reps(); ++rep) {
    StopWatch watch;
    ColoringOutcome outcome =
        ColorConstraints(*relation, *constraints, graph, options);
    double secs = watch.ElapsedSeconds();
    if (rep == 0) {
      // Counter deltas from the first rep only — every rep is identical.
      auto delta = counters::Delta(before, counters::Snapshot());
      result.memo_hits = CounterDelta(delta, "coloring.memo_hits");
      result.memo_misses = CounterDelta(delta, "coloring.memo_misses");
      result.memo_evictions = CounterDelta(delta, "coloring.memo_evictions");
      result.nogood_hits = CounterDelta(delta, "coloring.nogood_hits");
      result.nogood_misses = CounterDelta(delta, "coloring.nogood_misses");
      result.nogood_evictions =
          CounterDelta(delta, "coloring.nogood_evictions");
      result.target_sorts = CounterDelta(delta, "coloring.target_sorts");
      result.attempts = CounterDelta(delta, "coloring.attempts");
      result.spec_adopted = CounterDelta(delta, "coloring.spec_adopted");
      result.spec_reruns = CounterDelta(delta, "coloring.spec_reruns");
      result.spec_probes = CounterDelta(delta, "coloring.spec_probes");
      result.spec_probe_hits =
          CounterDelta(delta, "coloring.spec_probe_hits");
      result.wall_seconds = secs;
      reference = std::move(outcome);
    } else {
      DIVA_CHECK_MSG(SameOutcome(outcome, reference),
                     "coloring outcome differs across reps");
      if (secs < result.wall_seconds) result.wall_seconds = secs;
    }
  }
  result.steps = reference.steps;
  result.backtracks = reference.backtracks;
  result.complete = reference.complete;

  // Memo-off control: identical outcome bytes, typically slower.
  ColoringOptions no_memo = options;
  no_memo.memo = false;
  for (size_t rep = 0; rep < Reps(); ++rep) {
    StopWatch watch;
    ColoringOutcome outcome =
        ColorConstraints(*relation, *constraints, graph, no_memo);
    double secs = watch.ElapsedSeconds();
    DIVA_CHECK_MSG(SameOutcome(outcome, reference),
                   "memo changed the coloring outcome");
    if (rep == 0 || secs < result.memo_off_seconds) {
      result.memo_off_seconds = secs;
    }
  }
  return result;
}

void AppendMetric(std::string* json, const char* key, double value,
                  bool* first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s    \"%s\": %.6g", *first ? "" : ",\n",
                key, value);
  *json += buf;
  *first = false;
}

}  // namespace

int main(int argc, char** argv) {
  PrintPreamble("bench_coloring", "coloring hot path — perf-regression gate");

  std::string json = "{\n";
  for (size_t s = 0; s < sizeof(kShapes) / sizeof(kShapes[0]); ++s) {
    const Shape& shape = kShapes[s];
    ShapeResult r = RunShape(shape);
    double sps = r.steps / r.wall_seconds;
    double memo_speedup = r.memo_off_seconds / r.wall_seconds;
    std::printf(
        "%-12s steps=%llu backtracks=%llu complete=%d\n"
        "             wall=%.4fs (min of %zu)  steps/sec=%.0f  "
        "memo-off=%.4fs (x%.2f)\n"
        "             memo: hits=%llu misses=%llu evictions=%llu  "
        "target_sorts=%llu attempts=%llu\n"
        "             nogood: hits=%llu misses=%llu evictions=%llu  "
        "spec: adopted=%llu reruns=%llu probes=%llu probe_hits=%llu\n\n",
        shape.name, (unsigned long long)r.steps,
        (unsigned long long)r.backtracks, (int)r.complete, r.wall_seconds,
        Reps(), sps, r.memo_off_seconds, memo_speedup,
        (unsigned long long)r.memo_hits, (unsigned long long)r.memo_misses,
        (unsigned long long)r.memo_evictions,
        (unsigned long long)r.target_sorts, (unsigned long long)r.attempts,
        (unsigned long long)r.nogood_hits, (unsigned long long)r.nogood_misses,
        (unsigned long long)r.nogood_evictions,
        (unsigned long long)r.spec_adopted, (unsigned long long)r.spec_reruns,
        (unsigned long long)r.spec_probes,
        (unsigned long long)r.spec_probe_hits);

    json += "  \"";
    json += shape.name;
    json += "\": {\n";
    bool first = true;
    AppendMetric(&json, "steps", (double)r.steps, &first);
    AppendMetric(&json, "backtracks", (double)r.backtracks, &first);
    AppendMetric(&json, "complete", r.complete ? 1 : 0, &first);
    AppendMetric(&json, "memo_hits", (double)r.memo_hits, &first);
    AppendMetric(&json, "memo_misses", (double)r.memo_misses, &first);
    AppendMetric(&json, "memo_evictions", (double)r.memo_evictions, &first);
    AppendMetric(&json, "nogood_hits", (double)r.nogood_hits, &first);
    AppendMetric(&json, "nogood_misses", (double)r.nogood_misses, &first);
    AppendMetric(&json, "nogood_evictions", (double)r.nogood_evictions,
                 &first);
    AppendMetric(&json, "target_sorts", (double)r.target_sorts, &first);
    AppendMetric(&json, "attempts", (double)r.attempts, &first);
    AppendMetric(&json, "wall_seconds", r.wall_seconds, &first);
    AppendMetric(&json, "memo_off_seconds", r.memo_off_seconds, &first);
    AppendMetric(&json, "steps_per_sec", sps, &first);
    AppendMetric(&json, "memo_speedup", memo_speedup, &first);
    // exec_-prefixed keys are scheduling-dependent; bench_diff treats
    // them as informational, never gating.
    AppendMetric(&json, "exec_spec_adopted", (double)r.spec_adopted, &first);
    AppendMetric(&json, "exec_spec_reruns", (double)r.spec_reruns, &first);
    AppendMetric(&json, "exec_spec_probes", (double)r.spec_probes, &first);
    AppendMetric(&json, "exec_spec_probe_hits", (double)r.spec_probe_hits,
                 &first);
    json += "\n  }";
    json += (s + 1 < sizeof(kShapes) / sizeof(kShapes[0])) ? ",\n" : "\n";
  }
  json += "}\n";

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    DIVA_CHECK_MSG(out != nullptr, "cannot open output file");
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
