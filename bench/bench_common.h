#ifndef DIVA_BENCH_BENCH_COMMON_H_
#define DIVA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "anon/anonymizer.h"
#include "common/counters.h"
#include "common/timer.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "metrics/metrics.h"

namespace diva {
namespace bench {

/// Workload scale factor from DIVA_BENCH_SCALE (default 0.05). The
/// paper's |R| axes are multiplied by this before running: the authors'
/// Python implementation ran for minutes-to-hours per point on a 32-core
/// server; scaled C++ runs preserve the curves' shapes on one core in
/// seconds. Set DIVA_BENCH_SCALE=1 to run paper-size workloads.
inline double Scale() {
  if (const char* env = std::getenv("DIVA_BENCH_SCALE")) {
    double scale = std::atof(env);
    if (scale > 0.0) return scale;
  }
  return 0.05;
}

/// Repetitions per data point from DIVA_BENCH_REPS (default 3; the paper
/// averages 5 executions).
inline size_t Reps() {
  if (const char* env = std::getenv("DIVA_BENCH_REPS")) {
    long reps = std::atol(env);
    if (reps > 0) return static_cast<size_t>(reps);
  }
  return 3;
}

/// Coloring step budget used by the figure benches; bounds DIVA-Basic's
/// exponential search so sweeps terminate.
inline uint64_t ColoringBudget() {
  if (const char* env = std::getenv("DIVA_BENCH_BUDGET")) {
    long long budget = std::atoll(env);
    if (budget > 0) return static_cast<uint64_t>(budget);
  }
  return 150000;
}

/// Thread-count sweep from DIVA_BENCH_THREADS (comma-separated widths,
/// e.g. "1,2,4,8"; 0 = hardware). Default: 1 and, when the machine has
/// more than one core, the full hardware width. Results are identical at
/// every width — the sweep only measures speed.
inline std::vector<size_t> BenchThreads() {
  std::vector<size_t> sweep;
  if (const char* env = std::getenv("DIVA_BENCH_THREADS")) {
    std::string spec(env);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      long width = std::atol(spec.substr(pos, comma - pos).c_str());
      if (width >= 0) {
        sweep.push_back(ResolveThreadCount(static_cast<size_t>(width)));
      }
      pos = comma + 1;
    }
  }
  if (sweep.empty()) {
    sweep.push_back(1);
    if (HardwareConcurrency() > 1) sweep.push_back(HardwareConcurrency());
  }
  return sweep;
}

struct RunResult {
  double accuracy = 0.0;
  double seconds = 0.0;
  bool complete = false;
  /// Counter delta for the run as a JSON array (common/counters.h), so
  /// every BENCH_*.json row can carry the work counters next to its
  /// timings. Averaged() keeps the last rep's counters.
  std::string counters_json = "[]";
};

/// One DIVA run; accuracy per DESIGN.md §3 (discernibility x satisfied).
/// `threads` follows the knob semantics of common/parallel.h; the default
/// defers to DIVA_THREADS so existing single-width benches are unchanged.
inline RunResult RunDivaOnce(const Relation& relation,
                             const ConstraintSet& constraints,
                             SelectionStrategy strategy, size_t k,
                             uint64_t seed, size_t threads = EnvThreads()) {
  DivaOptions options;
  options.k = k;
  options.strategy = strategy;
  options.seed = seed;
  options.threads = threads;
  options.coloring_budget = ColoringBudget();
  options.anonymizer.seed = seed;
  options.anonymizer.sample_size = 64;  // sampled k-member (DESIGN.md §3)

  StopWatch watch;
  auto result = RunDiva(relation, constraints, options);
  RunResult out;
  out.seconds = watch.ElapsedSeconds();
  if (result.ok()) {
    out.accuracy = OverallAccuracy(result->relation, k, constraints);
    out.complete = result->report.clustering_complete;
    out.counters_json = counters::ToJson(result->report.counters);
  }
  return out;
}

/// One baseline run (plain k-anonymization, then scored against the same
/// constraints — baselines make no diversity promise).
inline RunResult RunBaselineOnce(const Relation& relation,
                                 const ConstraintSet& constraints,
                                 BaselineAlgorithm algorithm, size_t k,
                                 uint64_t seed) {
  DivaOptions factory_options;
  factory_options.baseline = algorithm;
  factory_options.anonymizer.seed = seed;
  factory_options.anonymizer.sample_size = 64;
  auto anonymizer = MakeBaselineAnonymizer(factory_options);

  // Baselines carry no report, so the counter delta is taken around the
  // call directly (meaningful for one run at a time, like the benches).
  std::vector<counters::Sample> before = counters::Snapshot();
  StopWatch watch;
  auto result = Anonymize(anonymizer.get(), relation, k);
  RunResult out;
  out.seconds = watch.ElapsedSeconds();
  if (result.ok()) {
    out.accuracy = OverallAccuracy(*result, k, constraints);
    out.complete = true;
    out.counters_json =
        counters::ToJson(counters::Delta(before, counters::Snapshot()));
  }
  return out;
}

/// Averages `reps` runs of `fn(seed)`.
template <typename Fn>
RunResult Averaged(size_t reps, Fn&& fn) {
  RunResult total;
  for (size_t rep = 0; rep < reps; ++rep) {
    RunResult one = fn(/*seed=*/1000 + 31 * rep);
    total.accuracy += one.accuracy;
    total.seconds += one.seconds;
    total.complete = total.complete || one.complete;
    total.counters_json = std::move(one.counters_json);
  }
  double n = static_cast<double>(reps);
  total.accuracy /= n;
  total.seconds /= n;
  return total;
}

/// printf-style aligned series table.
class SeriesTable {
 public:
  SeriesTable(std::string x_label, std::vector<std::string> series)
      : x_label_(std::move(x_label)), series_(std::move(series)) {
    std::printf("%-14s", x_label_.c_str());
    for (const auto& name : series_) std::printf("  %12s", name.c_str());
    std::printf("\n");
    std::printf("%s\n",
                std::string(14 + series_.size() * 14, '-').c_str());
  }

  void Row(const std::string& x, const std::vector<double>& values) {
    std::printf("%-14s", x.c_str());
    for (double v : values) std::printf("  %12.4f", v);
    std::printf("\n");
  }

 private:
  std::string x_label_;
  std::vector<std::string> series_;
};

inline void PrintPreamble(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("scale=%.3g, reps=%zu, coloring budget=%llu\n", Scale(), Reps(),
              static_cast<unsigned long long>(ColoringBudget()));
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace diva

#endif  // DIVA_BENCH_BENCH_COMMON_H_
