// End-to-end scale benchmark — the component-sharding gate's probe.
//
// One pinned shape, built in memory (no I/O in the timed region):
//
//   scale_1m — 1,000,000 rows over a REGION attribute with 64 values and
//              a GROUP attribute with 128 values, correlated so that the
//              3 constraints written per region (one on the region, one
//              on each of its two groups) form exactly 64 independent
//              conflict-graph components of ~15,625 target rows each.
//              Every row is targeted (empty residual), and each
//              constraint's lower bound demands ~70% of its occurrences
//              survive, so the coloring phase does real per-component
//              cluster-selection work instead of a satisfiability
//              no-op.
//
// The timed region is the whole RunDiva pipeline (graph build, sharded
// coloring, integration over a Mondrian baseline, suppression, report).
// Two legs, min-over-reps each: DivaOptions::shard on (concurrent
// per-component work items) and off (the same per-shard computations,
// sequential). The published relation must hash identically across legs
// and reps — the shard flag is an execution knob, never a semantic one
// (core/shard.h) — and the deterministic report metrics gate CI via
// tools/bench_diff.py against bench/baselines/BENCH_scale.json. Timing
// keys are informational per machine; the sharding payoff itself is
// gated in CI as the t1/t8 wall ratio across two DIVA_THREADS runs.
//
// Usage: bench_scale [out.json]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "metrics/metrics.h"
#include "relation/relation.h"
#include "relation/schema.h"

using namespace diva;         // NOLINT
using namespace diva::bench;  // NOLINT

namespace {

// Pinned shape — changing any knob invalidates the recorded baseline.
constexpr size_t kNumRows = 1000000;
constexpr size_t kNumRegions = 64;   // = components in the conflict graph
constexpr size_t kNumJobs = 40;      // uncorrelated QI noise
constexpr size_t kNumDiagnoses = 8;  // sensitive domain
constexpr size_t kK = 10;
constexpr uint64_t kSeed = 1000;
/// Each constraint's lower bound as a fraction of its occurrence count:
/// the coloring must preserve at least this share per target value.
constexpr uint64_t kPreserveNumerator = 7;
constexpr uint64_t kPreserveDenominator = 10;

struct ScaleWorkload {
  Relation relation;
  ConstraintSet constraints;
};

/// Builds the pinned relation and its 192-constraint Sigma. Row i gets
/// REGION i%64 and GROUP 2*region + parity, so each region's rows split
/// across exactly two groups; AGE and JOB are seeded noise. The three
/// constraints of a region overlap pairwise through the region's target
/// set and touch no other region's rows: 64 components by construction.
ScaleWorkload BuildWorkload() {
  auto schema = Schema::Make({
      {"REGION", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"GROUP", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"JOB", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK_MSG(schema.ok(), schema.status().ToString());
  Relation relation(*schema);

  std::vector<ValueCode> regions(kNumRegions);
  std::vector<ValueCode> groups(2 * kNumRegions);
  for (size_t r = 0; r < kNumRegions; ++r) {
    regions[r] = relation.Encode(0, "r" + std::to_string(r));
  }
  for (size_t g = 0; g < 2 * kNumRegions; ++g) {
    groups[g] = relation.Encode(1, "g" + std::to_string(g));
  }
  std::vector<ValueCode> ages(60);
  for (size_t a = 0; a < ages.size(); ++a) {
    ages[a] = relation.Encode(2, std::to_string(18 + a));
  }
  std::vector<ValueCode> jobs(kNumJobs);
  for (size_t j = 0; j < kNumJobs; ++j) {
    jobs[j] = relation.Encode(3, "j" + std::to_string(j));
  }
  std::vector<ValueCode> diagnoses(kNumDiagnoses);
  for (size_t d = 0; d < kNumDiagnoses; ++d) {
    diagnoses[d] = relation.Encode(4, "d" + std::to_string(d));
  }

  std::vector<uint64_t> region_count(kNumRegions, 0);
  std::vector<uint64_t> group_count(2 * kNumRegions, 0);
  Rng rng(kSeed);
  std::vector<ValueCode> row(5);
  for (size_t i = 0; i < kNumRows; ++i) {
    const size_t region = i % kNumRegions;
    const size_t group = 2 * region + (i / kNumRegions) % 2;
    ++region_count[region];
    ++group_count[group];
    row[0] = regions[region];
    row[1] = groups[group];
    row[2] = ages[rng.NextBounded(ages.size())];
    row[3] = jobs[rng.NextBounded(kNumJobs)];
    row[4] = diagnoses[rng.NextBounded(kNumDiagnoses)];
    relation.AppendRow(row);
  }

  auto lower = [](uint64_t count) {
    uint64_t bound = count * kPreserveNumerator / kPreserveDenominator;
    return bound < kK ? kK : bound;
  };
  std::string sigma;
  char line[96];
  for (size_t r = 0; r < kNumRegions; ++r) {
    std::snprintf(line, sizeof(line), "REGION[r%zu] in [%llu,%llu]\n", r,
                  (unsigned long long)lower(region_count[r]),
                  (unsigned long long)region_count[r]);
    sigma += line;
    for (size_t g = 2 * r; g < 2 * r + 2; ++g) {
      std::snprintf(line, sizeof(line), "GROUP[g%zu] in [%llu,%llu]\n", g,
                    (unsigned long long)lower(group_count[g]),
                    (unsigned long long)group_count[g]);
      sigma += line;
    }
  }
  auto constraints = ParseConstraintSet(relation.schema(), sigma);
  DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
  return {std::move(relation), std::move(constraints).value()};
}

/// Order-sensitive FNV-1a over every published cell — cheap byte
/// identity for 1M-row outputs without serializing them.
uint64_t HashRelation(const Relation& relation) {
  uint64_t hash = 1469598103934665603ULL;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    for (const ValueCode code : relation.Row(row)) {
      hash ^= static_cast<uint64_t>(code) + 1;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

struct LegResult {
  double wall_seconds = 0.0;  // min over reps
  uint64_t output_hash = 0;
  DivaReport report;
};

LegResult RunLeg(const ScaleWorkload& workload, bool shard) {
  DivaOptions options;
  options.k = kK;
  options.seed = kSeed;
  options.shard = shard;
  options.baseline = BaselineAlgorithm::kMondrian;

  LegResult result;
  for (size_t rep = 0; rep < Reps(); ++rep) {
    StopWatch watch;
    auto run = RunDiva(workload.relation, workload.constraints, options);
    double secs = watch.ElapsedSeconds();
    DIVA_CHECK_MSG(run.ok(), run.status().ToString());
    uint64_t hash = HashRelation(run->relation);
    if (rep == 0) {
      result.wall_seconds = secs;
      result.output_hash = hash;
      result.report = run->report;
    } else {
      DIVA_CHECK_MSG(hash == result.output_hash,
                     "published bytes differ across reps");
      if (secs < result.wall_seconds) result.wall_seconds = secs;
    }
  }
  return result;
}

void AppendMetric(std::string* json, const char* key, double value,
                  bool* first) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s    \"%s\": %.6g", *first ? "" : ",\n",
                key, value);
  *json += buf;
  *first = false;
}

}  // namespace

int main(int argc, char** argv) {
  PrintPreamble("bench_scale",
                "1M-row sharded pipeline — component-sharding gate");

  StopWatch build_watch;
  ScaleWorkload workload = BuildWorkload();
  std::printf("built %zu rows, %zu constraints in %.2fs (threads=%zu)\n",
              workload.relation.NumRows(), workload.constraints.size(),
              build_watch.ElapsedSeconds(), ResolveThreadCount(0));

  LegResult on = RunLeg(workload, /*shard=*/true);
  LegResult off = RunLeg(workload, /*shard=*/false);
  DIVA_CHECK_MSG(on.output_hash == off.output_hash,
                 "shard flag changed the published bytes");
  DIVA_CHECK_MSG(on.report.shards == kNumRegions,
                 "unexpected component count");

  double shard_speedup = off.wall_seconds / on.wall_seconds;
  std::printf(
      "scale_1m     shards=%zu residual=%zu complete=%d steps=%llu "
      "backtracks=%llu\n"
      "             wall=%.3fs (min of %zu, shard on)  shard-off=%.3fs "
      "(x%.2f)\n"
      "             sigma_rows=%zu repair_cells=%zu\n"
      "             phases: clustering=%.3fs anonymize=%.3fs "
      "integrate=%.3fs\n\n",
      on.report.shards, on.report.residual_rows,
      (int)on.report.clustering_complete,
      (unsigned long long)on.report.coloring_steps,
      (unsigned long long)on.report.backtracks, on.wall_seconds, Reps(),
      off.wall_seconds, shard_speedup, on.report.sigma_rows,
      on.report.repair_cells, on.report.clustering_seconds,
      on.report.anonymize_seconds, on.report.integrate_seconds);

  std::string json = "{\n  \"scale_1m\": {\n";
  bool first = true;
  AppendMetric(&json, "steps", (double)on.report.coloring_steps, &first);
  AppendMetric(&json, "backtracks", (double)on.report.backtracks, &first);
  AppendMetric(&json, "complete", on.report.clustering_complete ? 1 : 0,
               &first);
  AppendMetric(&json, "shards", (double)on.report.shards, &first);
  AppendMetric(&json, "residual_rows", (double)on.report.residual_rows,
               &first);
  AppendMetric(&json, "sigma_rows", (double)on.report.sigma_rows, &first);
  AppendMetric(&json, "repair_cells", (double)on.report.repair_cells, &first);
  AppendMetric(&json, "colored_constraints",
               (double)on.report.colored_constraints, &first);
  AppendMetric(&json, "wall_seconds", on.wall_seconds, &first);
  AppendMetric(&json, "shard_off_seconds", off.wall_seconds, &first);
  AppendMetric(&json, "clustering_seconds", on.report.clustering_seconds,
               &first);
  AppendMetric(&json, "anonymize_seconds", on.report.anonymize_seconds,
               &first);
  AppendMetric(&json, "integrate_seconds", on.report.integrate_seconds,
               &first);
  // exec_-prefixed: the on/off wall ratio is machine- and
  // scheduling-dependent, never gated by bench_diff.
  AppendMetric(&json, "exec_shard_speedup", shard_speedup, &first);
  json += "\n  }\n}\n";

  if (argc > 1) {
    std::FILE* out = std::fopen(argv[1], "w");
    DIVA_CHECK_MSG(out != nullptr, "cannot open output file");
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
