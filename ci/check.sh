#!/usr/bin/env bash
# ci/check.sh — the full correctness gauntlet (see docs/development.md).
#
#   1. release build + full ctest (includes the lint_status test)
#   2. asan-ubsan build + full ctest
#   3. tools/lint_status.py over src/
#   4. clang-tidy over src/ (skipped with a notice when not installed)
#
# Usage: ci/check.sh [--skip-sanitizers]

set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==> %s\n' "$*"; }

step "release: configure + build"
cmake --preset release
cmake --build --preset release -j "$JOBS"

step "release: ctest"
ctest --preset release -j "$JOBS"

if [[ "$SKIP_SANITIZERS" -eq 0 ]]; then
  step "asan-ubsan: configure + build"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"

  step "asan-ubsan: ctest"
  ctest --preset asan-ubsan -j "$JOBS"
else
  step "asan-ubsan: SKIPPED (--skip-sanitizers)"
fi

step "lint: tools/lint_status.py src"
python3 tools/lint_status.py src

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy over src/ (compile db: build/release)"
  # shellcheck disable=SC2046
  clang-tidy -p build/release --quiet $(find src -name '*.cc' | sort)
else
  step "clang-tidy: SKIPPED (not installed; config is .clang-tidy)"
fi

step "all checks passed"
