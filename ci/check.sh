#!/usr/bin/env bash
# ci/check.sh — the full correctness gauntlet (see docs/development.md).
#
#   1. release build + full ctest (includes the lint_status test)
#   2. asan-ubsan build + full ctest, then the fault sweep: the
#      failpoint + deadline suites re-run with DIVA_THREADS=8
#   3. tsan build + full ctest with DIVA_THREADS>=8 (gates the thread
#      pool: the parallel layer must be race-free at real width)
#   4. tools/lint_status.py over src/ (dropped Status, raw-thread,
#      raw-clock, ad-hoc-instrumentation, vector<bool> and raw-random
#      lints)
#   5. static analysis: tools/diva_analyze.py over src/ (determinism +
#      locking invariants) and the analysis-fixture suite; plus a
#      clang -Wthread-safety -Werror build of the clang-analyze preset
#      when clang++ is installed (skipped with a notice otherwise)
#   6. clang-tidy over src/ and tests/ (skipped with a notice when not
#      installed)
#   7. coverage gate: gcovr line coverage >=80% on src/common/trace.*
#      and counters.* (skipped with a notice when gcovr is not installed)
#   8. bench gate: bench_coloring vs bench/baselines/BENCH_coloring.json
#      via tools/bench_diff.py (deterministic metrics, 10% tolerance)
#   9. scale gate: bench_scale (pinned 1M-row / 64-component shape, end
#      to end) vs bench/baselines/BENCH_scale.json, plus the
#      shard-equivalence cross-width diff at tolerance 0 — the shard
#      on/off output-hash equality is asserted inside the bench itself
#  10. incremental gate: bench_incremental (the bench_scale shape under
#      a 1% churn, cold re-run vs ApplyDelta replay; output-hash
#      equality asserted inside the bench) vs
#      bench/baselines/BENCH_incremental.json, plus the cross-width
#      diff at tolerance 0 — the >=5x payoff ratio is gated in CI
#  11. serve gate: diva_loadgen (steady + overload replay against an
#      in-process server) vs bench/baselines/BENCH_serve.json — the
#      crash-tolerance invariants gate, latency keys stay informational
#
# Usage: ci/check.sh [--skip-sanitizers] [--threads N]
#
# --threads N runs every ctest leg with DIVA_THREADS=N (the tsan leg
# still forces at least 8 so the pool is genuinely concurrent there).

set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZERS=0
THREADS=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-sanitizers) SKIP_SANITIZERS=1; shift ;;
    --threads)
      [[ $# -ge 2 ]] || { echo "--threads needs a value" >&2; exit 2; }
      THREADS="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ -n "$THREADS" ]]; then
  export DIVA_THREADS="$THREADS"
fi

# The tsan leg always runs wide: a width-1 pool spawns no workers and
# would make the race check vacuous.
TSAN_THREADS="${THREADS:-8}"
if [[ "$TSAN_THREADS" -lt 8 ]]; then
  TSAN_THREADS=8
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

step() { printf '\n==> %s\n' "$*"; }

step "release: configure + build"
cmake --preset release
cmake --build --preset release -j "$JOBS"

step "release: ctest${THREADS:+ (DIVA_THREADS=$THREADS)}"
ctest --preset release -j "$JOBS"

if [[ "$SKIP_SANITIZERS" -eq 0 ]]; then
  step "asan-ubsan: configure + build"
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"

  step "asan-ubsan: ctest${THREADS:+ (DIVA_THREADS=$THREADS)}"
  ctest --preset asan-ubsan -j "$JOBS"

  # The fault sweep re-runs the failpoint and deadline suites with the
  # pool at real width: injected faults and tripped deadlines must
  # surface as clean Status errors while worker threads are genuinely
  # claiming chunks (mirrors the CI fault-sweep job).
  step "fault sweep: asan-ubsan failpoint + deadline tests (DIVA_THREADS=8)"
  DIVA_THREADS=8 ctest --preset asan-ubsan -j "$JOBS" \
    -R "FaultInjectionTest|DeadlineTest|CancellationTokenTest|PoolCancellationTest|TaskGroupTest|ColoringBudgetTest|DivaDeadlineTest|CsvTest"

  step "tsan: configure + build"
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS"

  step "tsan: ctest (DIVA_THREADS=$TSAN_THREADS)"
  DIVA_THREADS="$TSAN_THREADS" ctest --preset tsan -j "$JOBS"
else
  step "asan-ubsan: SKIPPED (--skip-sanitizers)"
  step "tsan: SKIPPED (--skip-sanitizers)"
fi

step "bench gate: bench_coloring vs bench/baselines/BENCH_coloring.json"
cmake --build --preset release -j "$JOBS" --target bench_coloring
DIVA_THREADS=1 \
  ./build/release/bench/bench_coloring /tmp/BENCH_coloring_t1.$$.json
python3 tools/bench_diff.py \
  bench/baselines/BENCH_coloring.json /tmp/BENCH_coloring_t1.$$.json

# Cross-width determinism: with speculative attempt search on, every
# deterministic metric must be byte-identical at width 8 (mirrors the
# thread-matrix CI job; exec_/timing keys are informational).
step "bench gate: cross-width determinism (DIVA_THREADS=1 vs 8, tolerance 0)"
DIVA_THREADS=8 \
  ./build/release/bench/bench_coloring /tmp/BENCH_coloring_t8.$$.json
python3 tools/bench_diff.py --tolerance 0 \
  /tmp/BENCH_coloring_t1.$$.json /tmp/BENCH_coloring_t8.$$.json
rm -f /tmp/BENCH_coloring_t1.$$.json /tmp/BENCH_coloring_t8.$$.json

step "scale gate: bench_scale vs bench/baselines/BENCH_scale.json"
cmake --build --preset release -j "$JOBS" --target bench_scale
DIVA_THREADS=1 \
  ./build/release/bench/bench_scale /tmp/BENCH_scale_t1.$$.json
python3 tools/bench_diff.py \
  bench/baselines/BENCH_scale.json /tmp/BENCH_scale_t1.$$.json

# Shard equivalence at width: the sharded pipeline's deterministic shape
# metrics are exact at every pool width (the published-bytes hash
# equality across shard on/off is a DIVA_CHECK inside the bench); the
# end-to-end t1/t8 payoff ratio is gated in CI, where real cores exist.
step "scale gate: cross-width determinism (DIVA_THREADS=1 vs 8, tolerance 0)"
DIVA_THREADS=8 \
  ./build/release/bench/bench_scale /tmp/BENCH_scale_t8.$$.json
python3 tools/bench_diff.py --tolerance 0 \
  /tmp/BENCH_scale_t1.$$.json /tmp/BENCH_scale_t8.$$.json
rm -f /tmp/BENCH_scale_t1.$$.json /tmp/BENCH_scale_t8.$$.json

step "incremental gate: bench_incremental vs bench/baselines/BENCH_incremental.json"
cmake --build --preset release -j "$JOBS" --target bench_incremental
DIVA_THREADS=1 \
  ./build/release/bench/bench_incremental /tmp/BENCH_incremental_t1.$$.json
python3 tools/bench_diff.py \
  bench/baselines/BENCH_incremental.json /tmp/BENCH_incremental_t1.$$.json

# The cold-vs-incremental output-hash equality is a DIVA_CHECK inside
# the bench; the deterministic metrics (including the hash halves and
# the reused-shard count) are exact at every pool width. The >=5x
# cold/incremental payoff ratio is gated in CI, where real cores exist.
step "incremental gate: cross-width determinism (DIVA_THREADS=1 vs 8, tolerance 0)"
DIVA_THREADS=8 \
  ./build/release/bench/bench_incremental /tmp/BENCH_incremental_t8.$$.json
python3 tools/bench_diff.py --tolerance 0 \
  /tmp/BENCH_incremental_t1.$$.json /tmp/BENCH_incremental_t8.$$.json
rm -f /tmp/BENCH_incremental_t1.$$.json /tmp/BENCH_incremental_t8.$$.json

step "serve gate: diva_loadgen vs bench/baselines/BENCH_serve.json"
cmake --build --preset release -j "$JOBS" --target diva_loadgen
DIVA_THREADS=1 \
  ./build/release/examples/diva_loadgen --json /tmp/BENCH_serve_t1.$$.json
python3 tools/bench_diff.py \
  bench/baselines/BENCH_serve.json /tmp/BENCH_serve_t1.$$.json

# Cross-width check: the serve invariants (accounting, leaks, audits)
# are exact at every pool width; exec_/timing keys are informational.
step "serve gate: cross-width invariants (DIVA_THREADS=1 vs 8, tolerance 0)"
DIVA_THREADS=8 \
  ./build/release/examples/diva_loadgen --json /tmp/BENCH_serve_t8.$$.json
python3 tools/bench_diff.py --tolerance 0 \
  /tmp/BENCH_serve_t1.$$.json /tmp/BENCH_serve_t8.$$.json
rm -f /tmp/BENCH_serve_t1.$$.json /tmp/BENCH_serve_t8.$$.json

step "lint: tools/lint_status.py src examples bench tests"
python3 tools/lint_status.py src examples bench tests

step "static analysis: tools/diva_analyze.py src (determinism + locking)"
python3 tools/diva_analyze.py --compdb build/release \
  --json /tmp/diva_analyze.$$.json src
rm -f /tmp/diva_analyze.$$.json

step "static analysis: fixture suite (tests/analysis_fixtures)"
python3 tests/analysis_fixtures/fixture_test.py

if command -v clang++ >/dev/null 2>&1; then
  step "clang-analyze: -Wthread-safety -Werror build (locking proof)"
  cmake --preset clang-analyze
  cmake --build --preset clang-analyze -j "$JOBS"
else
  step "clang-analyze: SKIPPED (clang++ not installed; CI runs it)"
fi

if command -v clang-tidy >/dev/null 2>&1; then
  step "clang-tidy over src/ and tests/ (compile db: build/release)"
  # shellcheck disable=SC2046
  clang-tidy -p build/release --quiet \
    $(find src tests -name '*.cc' ! -path 'tests/analysis_fixtures/*' | sort)
else
  step "clang-tidy: SKIPPED (not installed; config is .clang-tidy)"
fi

if command -v gcovr >/dev/null 2>&1; then
  step "coverage: build + ctest (coverage preset)"
  cmake --preset coverage
  cmake --build --preset coverage -j "$JOBS"
  ctest --preset coverage -j "$JOBS"

  step "coverage gate: >=80% lines on src/common/trace.* + counters.*"
  gcovr --root . \
    --filter 'src/common/trace\.' \
    --filter 'src/common/counters\.' \
    --fail-under-line 80 --print-summary
else
  step "coverage: SKIPPED (gcovr not installed)"
fi

step "all checks passed"
