// Differential testing: DIVA versus the baseline k-anonymizers, and the
// pipeline versus itself under execution knobs that must not change the
// answer (thread width, a generous deadline). Instances come from the
// same seeded generator as tests/fuzz_property_test.cc, so a failure
// here reproduces with the fuzz suite's seed.
//
// The headline property is the paper's: when DIVA's clustering is
// complete, its suppression-only output satisfies Sigma at a star cost
// competitive with any baseline that also happens to satisfy Sigma —
// baselines pay for diversity by luck, DIVA by construction. Per
// instance the heuristics can edge DIVA out by a few stars (cluster
// formation is greedy on both sides), so the per-instance bound allows
// a small regret and the aggregate over the sweep must dominate
// outright, mirroring the paper's averaged comparison.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "anon/anonymizer.h"
#include "common/counters.h"
#include "core/diva.h"
#include "metrics/metrics.h"
#include "relation/csv.h"
#include "tests/test_util.h"
#include "verify/auditor.h"

namespace diva {
namespace {

using diva::testing::FuzzWorkload;
using diva::testing::MakeWorkload;

/// Stars added relative to the (unsuppressed-cell) input.
size_t CountStars(const Relation& input, const Relation& output) {
  size_t stars = 0;
  for (RowId row = 0; row < input.NumRows(); ++row) {
    for (size_t col = 0; col < input.NumAttributes(); ++col) {
      if (output.At(row, col) == kSuppressed &&
          input.At(row, col) != kSuppressed) {
        ++stars;
      }
    }
  }
  return stars;
}

std::string ToCsvBytes(const Relation& relation) {
  std::ostringstream out;
  DIVA_CHECK(WriteCsv(relation, out).ok());
  return out.str();
}

/// Deterministic-scope samples that actually moved during the run.
/// Zero-delta entries are dropped before comparing: whether a
/// never-incremented name appears in a delta at all depends on when some
/// other code first registered it, which is not a property of this run.
std::vector<counters::Sample> MovedDeterministic(
    const std::vector<counters::Sample>& delta) {
  std::vector<counters::Sample> moved;
  for (const counters::Sample& sample :
       counters::FilterScope(delta, counters::Scope::kDeterministic)) {
    if (sample.value != 0 || sample.sum != 0) moved.push_back(sample);
  }
  return moved;
}

/// First and last fuzz seed of the sweep (shared by the per-instance
/// parameterized tests and the aggregate comparison).
constexpr uint64_t kFirstSeed = 1;
constexpr uint64_t kLastSeed = 25;  // exclusive

/// Runs DIVA and all three baselines on the seeded instance. Returns
/// false when the instance is not comparable: k larger than the
/// relation, no constraints, an incomplete clustering, or some
/// algorithm's output violating Sigma (a baseline that broke a
/// constraint "saved" stars by not doing the work).
bool CompareSuppression(
    uint64_t seed, size_t* diva_stars,
    std::vector<std::pair<BaselineAlgorithm, size_t>>* baseline_stars) {
  FuzzWorkload workload = MakeWorkload(seed);
  if (workload.relation.NumRows() < workload.k) return false;
  if (workload.constraints.empty()) return false;

  DivaOptions options;
  options.k = workload.k;
  options.seed = seed;
  auto diva_result =
      RunDiva(workload.relation, workload.constraints, options);
  if (!diva_result.ok()) return false;
  if (!diva_result->report.clustering_complete) return false;
  if (!SatisfiesAll(diva_result->relation, workload.constraints)) {
    return false;
  }
  *diva_stars = CountStars(workload.relation, diva_result->relation);

  baseline_stars->clear();
  for (BaselineAlgorithm algorithm :
       {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
        BaselineAlgorithm::kMondrian}) {
    DivaOptions factory;
    factory.baseline = algorithm;
    factory.anonymizer.seed = seed;
    auto anonymizer = MakeBaselineAnonymizer(factory);
    auto baseline =
        Anonymize(anonymizer.get(), workload.relation, workload.k);
    if (!baseline.ok()) return false;
    if (!SatisfiesAll(*baseline, workload.constraints)) return false;
    baseline_stars->emplace_back(algorithm,
                                 CountStars(workload.relation, *baseline));
  }
  return true;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, DivaSuppressionCompetitivePerInstance) {
  size_t diva_stars = 0;
  std::vector<std::pair<BaselineAlgorithm, size_t>> baseline_stars;
  if (!CompareSuppression(GetParam(), &diva_stars, &baseline_stars)) {
    GTEST_SKIP();
  }
  for (const auto& [algorithm, stars] : baseline_stars) {
    // Bounded regret: greedy cluster formation on both sides means a
    // heuristic can edge DIVA out by a few stars on one instance.
    size_t slack = std::max<size_t>(5, stars / 10);
    EXPECT_LE(diva_stars, stars + slack)
        << BaselineAlgorithmToString(algorithm) << " seed " << GetParam();
  }
}

TEST(DifferentialAggregateTest, DivaSuppressesLeastOverTheSweep) {
  size_t comparable = 0;
  size_t diva_total = 0;
  std::map<BaselineAlgorithm, size_t> baseline_totals;
  for (uint64_t seed = kFirstSeed; seed < kLastSeed; ++seed) {
    size_t diva_stars = 0;
    std::vector<std::pair<BaselineAlgorithm, size_t>> baseline_stars;
    if (!CompareSuppression(seed, &diva_stars, &baseline_stars)) continue;
    ++comparable;
    diva_total += diva_stars;
    for (const auto& [algorithm, stars] : baseline_stars) {
      baseline_totals[algorithm] += stars;
    }
  }
  // The sweep must actually exercise the comparison.
  ASSERT_GE(comparable, 3u);
  for (const auto& [algorithm, total] : baseline_totals) {
    EXPECT_LE(diva_total, total)
        << BaselineAlgorithmToString(algorithm) << " over " << comparable
        << " instances";
  }
}

TEST_P(DifferentialTest, ThreadWidthNeverChangesTheAuditedOutput) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();

  std::string bytes_at_one;
  std::vector<counters::Sample> deterministic_at_one;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    DivaOptions options;
    options.k = workload.k;
    options.seed = GetParam() * 17 + 3;
    options.threads = threads;
    auto result =
        RunDiva(workload.relation, workload.constraints, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Independently audited, not just hashed: both outputs are valid
    // suppression-only k-anonymizations of the same input. Constraints
    // the run itself declared unsatisfiable are waived, exactly as the
    // pipeline's self-audit waives them.
    AuditOptions audit_options;
    audit_options.waived_constraints = result->report.unsatisfied;
    auto audit =
        AuditAnonymization(workload.relation, result->relation, workload.k,
                           workload.constraints, audit_options);
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();
    EXPECT_TRUE(audit->ok()) << audit->ToString() << " threads="
                                     << threads << " seed " << GetParam();

    // ...and byte-identical to each other, deterministic-scope counters
    // included (execution counters legitimately differ with width).
    std::string bytes = ToCsvBytes(result->relation);
    std::vector<counters::Sample> deterministic =
        MovedDeterministic(result->report.counters);
    if (threads == 1) {
      bytes_at_one = std::move(bytes);
      deterministic_at_one = std::move(deterministic);
    } else {
      EXPECT_EQ(bytes, bytes_at_one) << "seed " << GetParam();
      EXPECT_EQ(deterministic, deterministic_at_one)
          << "seed " << GetParam();
    }
  }
}

TEST_P(DifferentialTest, ShardExecutionNeverChangesTheAuditedOutput) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();

  std::string bytes_without;
  std::vector<counters::Sample> deterministic_without;
  for (bool shard : {false, true}) {
    DivaOptions options;
    options.k = workload.k;
    options.seed = GetParam() * 29 + 7;
    options.shard = shard;
    options.threads = shard ? 8 : 1;
    auto result =
        RunDiva(workload.relation, workload.constraints, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    // Both execution modes must pass the independent audit and publish
    // the same bytes — the shard plan, not the execution mode, fixes
    // every search decision (core/shard.h).
    AuditOptions audit_options;
    audit_options.waived_constraints = result->report.unsatisfied;
    auto audit =
        AuditAnonymization(workload.relation, result->relation, workload.k,
                           workload.constraints, audit_options);
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();
    EXPECT_TRUE(audit->ok())
        << audit->ToString() << " shard=" << shard << " seed " << GetParam();

    std::string bytes = ToCsvBytes(result->relation);
    std::vector<counters::Sample> deterministic =
        MovedDeterministic(result->report.counters);
    if (!shard) {
      bytes_without = std::move(bytes);
      deterministic_without = std::move(deterministic);
    } else {
      EXPECT_EQ(bytes, bytes_without) << "seed " << GetParam();
      EXPECT_EQ(deterministic, deterministic_without)
          << "seed " << GetParam();
    }
  }
}

TEST_P(DifferentialTest, GenerousDeadlineNeverChangesTheAuditedOutput) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();

  std::string bytes_without;
  for (int64_t deadline_ms : {int64_t{0}, int64_t{600000}}) {
    DivaOptions options;
    options.k = workload.k;
    options.seed = GetParam() * 13 + 5;
    options.deadline_ms = deadline_ms;
    auto result =
        RunDiva(workload.relation, workload.constraints, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->report.deadline_exceeded) << "seed " << GetParam();

    AuditOptions audit_options;
    audit_options.waived_constraints = result->report.unsatisfied;
    auto audit =
        AuditAnonymization(workload.relation, result->relation, workload.k,
                           workload.constraints, audit_options);
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();
    EXPECT_TRUE(audit->ok())
        << audit->ToString() << " deadline_ms=" << deadline_ms << " seed "
        << GetParam();

    std::string bytes = ToCsvBytes(result->relation);
    if (deadline_ms == 0) {
      bytes_without = std::move(bytes);
    } else {
      EXPECT_EQ(bytes, bytes_without) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 25),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace diva
