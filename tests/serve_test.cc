// Tests for the serving subsystem (src/serve/): protocol framing and
// encoding, the pure admission policy, crash-safe snapshot publication,
// client retry pacing (common/backoff.h), and the server end to end over
// a loopback socket — including the deadline edge cases: a 0 ms deadline
// admitted on an idle server still yields an audited degraded response,
// and a wedged request tripped by the watchdog degrades instead of
// hanging. Fault-injection sweeps live in serve_chaos_test.cc.

#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "tests/test_util.h"

namespace diva {
namespace serve {
namespace {

using diva::testing::MedicalConstraints;
using diva::testing::MedicalRelation;
using diva::testing::MedicalSchema;

// ---------------------------------------------------------------- protocol

TEST(ServeProtocolTest, RequestRoundTripsThroughEncodeAndParse) {
  Request request;
  request.verb = "anonymize";
  request.params["k"] = "4";
  request.params["deadline_ms"] = "250";
  request.body = "line one\nline two\n";

  auto parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, "anonymize");
  EXPECT_EQ(parsed->Param("k", ""), "4");
  EXPECT_EQ(parsed->Param("deadline_ms", ""), "250");
  EXPECT_EQ(parsed->Param("missing", "fallback"), "fallback");
  EXPECT_EQ(parsed->body, request.body);

  auto deadline = parsed->IntParam("deadline_ms", -1);
  ASSERT_TRUE(deadline.ok());
  EXPECT_EQ(*deadline, 250);
  auto fallback = parsed->IntParam("nope", -1);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, -1);
}

TEST(ServeProtocolTest, UnparsableIntParamIsAnErrorNotAFallback) {
  Request request;
  request.verb = "anonymize";
  request.params["k"] = "four";
  EXPECT_FALSE(request.IntParam("k", 1).ok());
}

TEST(ServeProtocolTest, ErrorResponseRoundTripsStatusWithSpaces) {
  Response error = Response::Error(
      Status::Unavailable("queue full (16/16), try again later"));
  auto parsed = ParseResponse(EncodeResponse(error));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code, StatusCode::kUnavailable);
  Status status = parsed->ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("queue full (16/16)"), std::string::npos);
}

TEST(ServeProtocolTest, OkResponseCarriesFieldsAndBody) {
  Response response;
  response.fields["snapshot"] = "7";
  response.fields["audited"] = "1";
  response.body = "GEN,AGE\nFemale,30\n";
  auto parsed = ParseResponse(EncodeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->Field("snapshot", ""), "7");
  EXPECT_EQ(parsed->Field("audited", "0"), "1");
  EXPECT_EQ(parsed->body, response.body);
}

TEST(ServeProtocolTest, StatusCodeNamesRoundTripAndUnknownMapsToInternal) {
  EXPECT_EQ(ParseStatusCodeName("Unavailable"), StatusCode::kUnavailable);
  EXPECT_EQ(ParseStatusCodeName("IoError"), StatusCode::kIoError);
  EXPECT_EQ(ParseStatusCodeName("NoSuchCode"), StatusCode::kInternal);
}

// ---------------------------------------------------------------- admission

TEST(ServeAdmissionTest, IdleServerAdmitsEvenAnExpiredDeadline) {
  // predicted wait excludes the request's own service time: an empty
  // server must admit a 0 ms deadline and let the anytime pipeline
  // produce the audited degraded response.
  AdmissionDecision decision = DecideAdmission(
      /*queued=*/0, /*inflight=*/0, /*max_queue=*/4,
      /*cost_estimate_ms=*/50.0, /*deadline_ms=*/0, /*draining=*/false);
  EXPECT_TRUE(decision.admit);
  EXPECT_EQ(decision.predicted_wait_ms, 0.0);
}

TEST(ServeAdmissionTest, BacklogTimesCostShedsDoomedDeadlines) {
  AdmissionDecision decision = DecideAdmission(
      /*queued=*/2, /*inflight=*/1, /*max_queue=*/8,
      /*cost_estimate_ms=*/100.0, /*deadline_ms=*/250, /*draining=*/false);
  EXPECT_FALSE(decision.admit);
  EXPECT_DOUBLE_EQ(decision.predicted_wait_ms, 300.0);
  EXPECT_NE(decision.reason.find("deadline"), std::string::npos);

  // The same backlog admits a request with budget to spare.
  EXPECT_TRUE(DecideAdmission(2, 1, 8, 100.0, 1000, false).admit);
  // ... and one with no deadline at all.
  EXPECT_TRUE(DecideAdmission(2, 1, 8, 100.0, -1, false).admit);
}

TEST(ServeAdmissionTest, DrainingAndQueueFullTakePrecedence) {
  AdmissionDecision draining = DecideAdmission(0, 0, 4, 1.0, -1, true);
  EXPECT_FALSE(draining.admit);
  EXPECT_NE(draining.reason.find("drain"), std::string::npos);

  AdmissionDecision full = DecideAdmission(4, 0, 4, 1.0, -1, false);
  EXPECT_FALSE(full.admit);
  EXPECT_NE(full.reason.find("queue full"), std::string::npos);
}

TEST(ServeAdmissionTest, CostTrackerConvergesOnObservedCost) {
  CostTracker tracker(/*initial_ms=*/50.0, /*alpha=*/0.5);
  EXPECT_DOUBLE_EQ(tracker.EstimateMs(), 50.0);
  tracker.Record(150.0);
  EXPECT_DOUBLE_EQ(tracker.EstimateMs(), 100.0);
  for (int i = 0; i < 32; ++i) tracker.Record(10.0);
  EXPECT_NEAR(tracker.EstimateMs(), 10.0, 1.0);
}

// ---------------------------------------------------------------- snapshots

TEST(ServeSnapshotTest, PublishAssignsDenseIdsAndFindsBack) {
  SnapshotStore store(/*capacity=*/4);
  Snapshot first(MedicalRelation());
  first.k = 2;
  first.audited = true;
  auto id1 = store.Publish(std::move(first));
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, 1u);

  Snapshot second(MedicalRelation());
  second.audited = true;
  auto id2 = store.Publish(std::move(second));
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id2, 2u);
  EXPECT_EQ(store.latest_id(), 2u);
  EXPECT_EQ(store.size(), 2u);

  auto found = store.Find(1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->k, 2u);
  EXPECT_TRUE(found->audited);
  EXPECT_EQ(store.Find(99), nullptr);
}

TEST(ServeSnapshotTest, FullStoreEvictsOldestUnpinnedInsteadOfRefusing) {
  SnapshotStore store(/*capacity=*/2);
  for (uint64_t i = 1; i <= 3; ++i) {
    Snapshot snapshot(MedicalRelation());
    snapshot.audited = true;
    auto id = store.Publish(std::move(snapshot));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, i);
  }
  // The third publish retired #1 (oldest unpinned); ids stay dense.
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evicted(), 1u);
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_NE(store.Find(2), nullptr);
  EXPECT_NE(store.Find(3), nullptr);
  EXPECT_EQ(store.latest_id(), 3u);
}

TEST(ServeSnapshotTest, PinBlocksEvictionAndFullyPinnedStoreRefuses) {
  SnapshotStore store(/*capacity=*/1);
  Snapshot first(MedicalRelation());
  first.audited = true;
  ASSERT_TRUE(store.Publish(std::move(first)).ok());

  {
    SnapshotPin pin = store.Acquire(1);
    ASSERT_TRUE(static_cast<bool>(pin));
    EXPECT_EQ(pin->id, 1u);
    // The only retained snapshot is pinned: nothing can be evicted, so
    // the publish is refused and the store is exactly as it was.
    Snapshot second(MedicalRelation());
    second.audited = true;
    auto refused = store.Publish(std::move(second));
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.latest_id(), 1u);
    EXPECT_EQ(store.evicted(), 0u);
  }

  // Pin released: the next publish evicts #1 and lands.
  Snapshot third(MedicalRelation());
  third.audited = true;
  auto id = store.Publish(std::move(third));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, 2u);
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_EQ(store.evicted(), 1u);
}

TEST(ServeSnapshotTest, AgeRetentionCountsPublishGenerationsNotWallTime) {
  // max_age=2: each publish retires unpinned snapshots two or more
  // publishes old, regardless of capacity headroom.
  SnapshotStore store(/*capacity=*/16, /*max_age=*/2);
  for (int i = 0; i < 4; ++i) {
    Snapshot snapshot(MedicalRelation());
    snapshot.audited = true;
    ASSERT_TRUE(store.Publish(std::move(snapshot)).ok());
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evicted(), 2u);
  EXPECT_EQ(store.Find(2), nullptr);
  EXPECT_NE(store.Find(3), nullptr);
  EXPECT_NE(store.Find(4), nullptr);

  // A pinned snapshot outlives its age bound; unpinned peers do not.
  SnapshotPin pin = store.Acquire(3);
  ASSERT_TRUE(static_cast<bool>(pin));
  for (int i = 0; i < 2; ++i) {
    Snapshot snapshot(MedicalRelation());
    snapshot.audited = true;
    ASSERT_TRUE(store.Publish(std::move(snapshot)).ok());
  }
  EXPECT_NE(store.Find(3), nullptr);  // pinned: both age sweeps skipped it
  EXPECT_EQ(store.Find(4), nullptr);
  // The pinned data stays readable through the pin even while over-age.
  EXPECT_TRUE(pin->audited);
}

TEST(ServeSnapshotTest, InjectedPublishFaultLeavesStoreUntouched) {
  SnapshotStore store(/*capacity=*/4);
  Snapshot first(MedicalRelation());
  first.audited = true;
  ASSERT_TRUE(store.Publish(std::move(first)).ok());

  failpoint::Reset();
  failpoint::Arm("serve.publish", StatusCode::kIoError);
  Snapshot doomed(MedicalRelation());
  doomed.audited = true;
  auto failed = store.Publish(std::move(doomed));
  failpoint::Reset();

  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  // Crash-safe publication: the fault fired before any mutation, so the
  // store is exactly as it was — same size, same latest id, and the next
  // publish continues the dense id sequence.
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.latest_id(), 1u);
  Snapshot next(MedicalRelation());
  next.audited = true;
  auto id = store.Publish(std::move(next));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);
}

// ---------------------------------------------------------------- backoff

TEST(ServeBackoffTest, LadderIsDeterministicJitteredAndCapped) {
  BackoffOptions options;
  options.initial_ms = 10.0;
  options.max_ms = 80.0;
  options.multiplier = 2.0;
  options.jitter = 0.5;
  options.max_retries = 6;

  Backoff a(options, /*seed=*/7);
  Backoff b(options, /*seed=*/7);
  std::vector<double> delays;
  double ceiling = 10.0;
  for (size_t i = 0; i < options.max_retries; ++i) {
    auto delay_a = a.NextDelayMs();
    auto delay_b = b.NextDelayMs();
    ASSERT_TRUE(delay_a.has_value());
    ASSERT_TRUE(delay_b.has_value());
    // Same seed, same schedule — the loadgen's replays are reproducible.
    EXPECT_DOUBLE_EQ(*delay_a, *delay_b);
    EXPECT_GE(*delay_a, ceiling * (1.0 - options.jitter));
    EXPECT_LE(*delay_a, ceiling);
    delays.push_back(*delay_a);
    ceiling = std::min(ceiling * options.multiplier, options.max_ms);
  }
  // The allowance is spent; Reset starts the ladder over.
  EXPECT_FALSE(a.NextDelayMs().has_value());
  EXPECT_EQ(a.retries(), options.max_retries);
  a.Reset();
  auto fresh = a.NextDelayMs();
  ASSERT_TRUE(fresh.has_value());
  EXPECT_LE(*fresh, options.initial_ms);
}

TEST(ServeBackoffTest, RetryBudgetDrainsAndRefills) {
  RetryBudget budget(/*deposit_per_call=*/0.5, /*initial_tokens=*/1.0,
                     /*max_tokens=*/2.0);
  EXPECT_TRUE(budget.TryWithdrawRetry());   // spends the initial token
  EXPECT_FALSE(budget.TryWithdrawRetry());  // empty: retries refused
  budget.RecordCall();
  EXPECT_FALSE(budget.TryWithdrawRetry());  // 0.5 < 1 whole token
  budget.RecordCall();
  EXPECT_TRUE(budget.TryWithdrawRetry());
  for (int i = 0; i < 100; ++i) budget.RecordCall();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);  // capped
}

// ---------------------------------------------------------------- server e2e

ServerOptions TestOptions() {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.sessions = 2;
  options.queue_capacity = 4;
  options.drain_grace_ms = 2000.0;
  return options;
}

TEST(ServeServerTest, ServesPingAnonymizeVerifyFetchAndStats) {
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  Request ping;
  ping.verb = "ping";
  auto pong = client->Call(ping);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->ok);

  Request anonymize;
  anonymize.verb = "anonymize";
  anonymize.params["k"] = "2";
  auto published = client->Call(anonymize);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  ASSERT_TRUE(published->ok) << published->ToStatus().ToString();
  EXPECT_EQ(published->Field("audited", "0"), "1");
  EXPECT_EQ(published->Field("snapshot", ""), "1");
  EXPECT_EQ(published->Field("rows", ""), "10");

  Request verify;
  verify.verb = "verify";
  verify.params["snapshot"] = "1";
  auto verdict = client->Call(verify);
  ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
  ASSERT_TRUE(verdict->ok) << verdict->ToStatus().ToString();
  // The server's own audit passed pre-publish, so the replay must too.
  EXPECT_EQ(verdict->Field("verdict", ""), "pass");

  Request fetch;
  fetch.verb = "fetch";
  fetch.params["snapshot"] = "1";
  auto fetched = client->Call(fetch);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  ASSERT_TRUE(fetched->ok) << fetched->ToStatus().ToString();
  EXPECT_FALSE(fetched->body.empty());

  Request stats;
  stats.verb = "stats";
  auto report = client->Call(stats);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ok);
  EXPECT_EQ(report->Field("snapshots_published", ""), "1");
  EXPECT_EQ(report->Field("protocol_errors", ""), "0");
  EXPECT_EQ(report->Field("draining", ""), "0");

  server.Stop();
  EXPECT_EQ(server.inflight(), 0u);
  ServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.requests + final_stats.protocol_errors,
            final_stats.responses + final_stats.response_failures);
}

TEST(ServeServerTest, UnknownVerbAndBadParamsAreErrorsNotDisconnects) {
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Request bogus;
  bogus.verb = "transmogrify";
  auto response = client->Call(bogus);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);

  Request bad_k;
  bad_k.verb = "anonymize";
  bad_k.params["k"] = "banana";
  auto rejected = client->Call(bad_k);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok);

  // The connection survived both errors.
  Request ping;
  ping.verb = "ping";
  auto pong = client->Call(ping);
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong->ok);
  server.Stop();
}

TEST(ServeServerTest, FetchOfUnknownSnapshotIsNotFound) {
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Request fetch;
  fetch.verb = "fetch";
  fetch.params["snapshot"] = "42";
  auto response = client->Call(fetch);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->ok);
  EXPECT_EQ(response->code, StatusCode::kNotFound);
  server.Stop();
}

TEST(ServeServerTest, UpdateAppliesDeltaChainsIncrementallyAndVerifies) {
  // A disjoint-target Sigma (two conflict-graph components) so the first
  // update's run captures a pipeline snapshot the second can chain from.
  auto schema = MedicalSchema();
  auto constraints =
      ParseConstraintSet(*schema, "ETH[Asian] in [2,5]\nPRV[AB] in [1,3]\n");
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  Server server(MedicalRelation(), std::move(*constraints), TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Publish a pre-update snapshot; it must stay verifiable afterwards.
  Request anonymize;
  anonymize.verb = "anonymize";
  anonymize.params["k"] = "2";
  auto published = client->Call(anonymize);
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  ASSERT_TRUE(published->ok) << published->ToStatus().ToString();

  // First update: no reuse chain exists yet, so it runs cold, swaps the
  // base, and establishes the chain.
  Request update;
  update.verb = "update";
  update.params["k"] = "2";
  update.body = "- 3\n+ Male,Caucasian,46,MB,Winnipeg,Migraine\n";
  auto first = client->Call(update);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok) << first->ToStatus().ToString();
  EXPECT_EQ(first->Field("audited", "0"), "1");
  EXPECT_EQ(first->Field("rows_deleted", ""), "1");
  EXPECT_EQ(first->Field("rows_inserted", ""), "1");
  EXPECT_EQ(first->Field("incremental", ""), "0");
  EXPECT_EQ(first->Field("rows", ""), "10");
  EXPECT_EQ(first->Field("snapshot", ""), "2");

  // Second update: chains off the first one's snapshot.
  Request second_update;
  second_update.verb = "update";
  second_update.params["k"] = "2";
  second_update.body = "# drop the first row\n- 0\n";
  auto second = client->Call(second_update);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_TRUE(second->ok) << second->ToStatus().ToString();
  EXPECT_EQ(second->Field("audited", "0"), "1");
  EXPECT_EQ(second->Field("incremental", ""), "1");
  EXPECT_EQ(second->Field("rows", ""), "9");

  // Anonymize now runs against the updated (9-row) base.
  auto refreshed = client->Call(anonymize);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  ASSERT_TRUE(refreshed->ok) << refreshed->ToStatus().ToString();
  EXPECT_EQ(refreshed->Field("rows", ""), "9");

  // Every published snapshot verifies against the base it was actually
  // produced from — including the pre-update one.
  for (const char* id : {"1", "2", "3", "4"}) {
    Request verify;
    verify.verb = "verify";
    verify.params["snapshot"] = id;
    auto verdict = client->Call(verify);
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    ASSERT_TRUE(verdict->ok) << verdict->ToStatus().ToString();
    EXPECT_EQ(verdict->Field("verdict", ""), "pass") << "snapshot " << id;
  }

  Request stats;
  stats.verb = "stats";
  auto report = client->Call(stats);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->Field("updates", ""), "2");
  EXPECT_EQ(report->Field("snapshots_published", ""), "4");

  server.Stop();
  EXPECT_EQ(server.inflight(), 0u);
  ServerStats final_stats = server.stats();
  EXPECT_EQ(final_stats.requests + final_stats.protocol_errors,
            final_stats.responses + final_stats.response_failures);
}

TEST(ServeServerTest, UpdateRejectsBadDeltasWithoutTouchingServedState) {
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Request empty;
  empty.verb = "update";
  auto no_body = client->Call(empty);
  ASSERT_TRUE(no_body.ok()) << no_body.status().ToString();
  EXPECT_FALSE(no_body->ok);
  EXPECT_EQ(no_body->code, StatusCode::kInvalidArgument);

  Request malformed;
  malformed.verb = "update";
  malformed.body = "- banana\n";
  auto rejected = client->Call(malformed);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_FALSE(rejected->ok);
  EXPECT_EQ(rejected->code, StatusCode::kInvalidArgument);

  Request out_of_range;
  out_of_range.verb = "update";
  out_of_range.body = "- 100000\n";
  auto refused = client->Call(out_of_range);
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_FALSE(refused->ok);

  // Nothing was published and the base still serves at full size.
  Request anonymize;
  anonymize.verb = "anonymize";
  anonymize.params["k"] = "2";
  auto result = client->Call(anonymize);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->ok) << result->ToStatus().ToString();
  EXPECT_EQ(result->Field("rows", ""), "10");
  EXPECT_EQ(result->Field("snapshot", ""), "1");

  server.Stop();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.updates, 0u);
  EXPECT_EQ(stats.requests + stats.protocol_errors,
            stats.responses + stats.response_failures);
}

TEST(ServeServerTest, ZeroDeadlineOnIdleServerIsAuditedAndDegraded) {
  // The deadline edge case of the serving contract: deadline_ms=0 is
  // admitted (nothing is ahead of it), the pipeline degrades through the
  // anytime path, and the response is still audited before it leaves.
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Request anonymize;
  anonymize.verb = "anonymize";
  anonymize.params["k"] = "2";
  anonymize.params["deadline_ms"] = "0";
  auto response = client->Call(anonymize);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->ok) << response->ToStatus().ToString();
  EXPECT_EQ(response->Field("audited", "0"), "1");
  EXPECT_EQ(response->Field("degraded", "0"), "1");
  EXPECT_EQ(response->Field("deadline_exceeded", "0"), "1");

  // The published snapshot records the degradation and the audit.
  auto snapshot = server.snapshots().Find(1);
  ASSERT_NE(snapshot, nullptr);
  EXPECT_TRUE(snapshot->audited);
  EXPECT_TRUE(snapshot->degraded);

  server.Stop();
  EXPECT_EQ(server.inflight(), 0u);
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.requests + stats.protocol_errors,
            stats.responses + stats.response_failures);
}

TEST(ServeServerTest, WatchdogTripsWedgedRequestIntoAuditedDegradation) {
  // A request with no deadline is "wedged" once it overruns the wedge
  // timeout; the watchdog trips its token, the pipeline degrades, and
  // the response still arrives audited — no counter leaks either way.
  // The base relation is big enough that the run cannot beat the 1 ms
  // watchdog poll to the finish line.
  diva::testing::FuzzWorkload workload = diva::testing::MakeWorkload(11);
  ServerOptions options = TestOptions();
  options.watchdog_poll_ms = 1.0;
  options.wedge_timeout_ms = -1.0;  // born over budget: trips immediately
  Server server(workload.relation, workload.constraints, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  Request anonymize;
  anonymize.verb = "anonymize";
  anonymize.params["k"] = "2";
  auto response = client->Call(anonymize);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  server.Stop();

  ServerStats stats = server.stats();
  if (response->ok) {
    // The watchdog tripped mid-run (the common case — the run cannot
    // finish inside one poll): the response is still audited, and a trip
    // that landed while the run was in flight shows up as degradation.
    EXPECT_EQ(response->Field("audited", "0"), "1");
    if (stats.watchdog_cancels > 0) {
      EXPECT_EQ(response->Field("degraded", "0"), "1");
    }
  } else {
    // The trip landed in the admission-to-dispatch window and the run
    // was skipped entirely; the request was shed, nothing leaked.
    EXPECT_EQ(response->code, StatusCode::kUnavailable);
  }
  EXPECT_EQ(server.inflight(), 0u);
  EXPECT_EQ(stats.requests + stats.protocol_errors,
            stats.responses + stats.response_failures);
}

TEST(ServeServerTest, DrainRefusesNewWorkAndStopIsIdempotent) {
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                TestOptions());
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  server.RequestDrain();
  EXPECT_TRUE(server.draining());
  Request anonymize;
  anonymize.verb = "anonymize";
  anonymize.params["k"] = "2";
  auto response = client->Call(anonymize);
  // Refused by admission (kUnavailable) or the connection was retired —
  // either way the drain never produced unanonymized output.
  if (response.ok() && !response->ok) {
    EXPECT_EQ(response->code, StatusCode::kUnavailable);
  } else if (!response.ok()) {
    EXPECT_EQ(response.status().code(), StatusCode::kUnavailable);
  }
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_EQ(server.inflight(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace diva
