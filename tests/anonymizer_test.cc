#include <gtest/gtest.h>

#include <numeric>

#include "anon/anonymizer.h"
#include "anon/suppress.h"
#include "datagen/synthetic.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;

enum class Algo { kKMember, kOka, kMondrian };

std::unique_ptr<Anonymizer> MakeAlgo(Algo algo, uint64_t seed) {
  AnonymizerOptions options;
  options.seed = seed;
  switch (algo) {
    case Algo::kKMember:
      return MakeKMember(options);
    case Algo::kOka:
      return MakeOka(options);
    case Algo::kMondrian:
      return MakeMondrian(options);
  }
  return nullptr;
}

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kKMember:
      return "kmember";
    case Algo::kOka:
      return "oka";
    case Algo::kMondrian:
      return "mondrian";
  }
  return "?";
}

Relation SyntheticFixture(size_t rows, uint64_t seed) {
  SyntheticSpec spec;
  spec.num_rows = rows;
  spec.seed = seed;
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 5;
  a.distribution = ValueDistribution::kZipfian;
  AttributeSpec b = a;
  b.name = "B";
  b.domain_size = 9;
  AttributeSpec age;
  age.name = "AGE";
  age.kind = AttributeKind::kNumeric;
  age.domain_size = 60;
  age.numeric_base = 20;
  age.distribution = ValueDistribution::kGaussian;
  AttributeSpec s;
  s.name = "S";
  s.role = AttributeRole::kSensitive;
  s.domain_size = 6;
  spec.attributes = {a, b, age, s};
  auto relation = GenerateSynthetic(spec);
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

struct AnonCase {
  Algo algo;
  size_t k;
  size_t rows;
};

class AnonymizerPropertyTest : public ::testing::TestWithParam<AnonCase> {};

TEST_P(AnonymizerPropertyTest, ClustersPartitionRowsWithMinSizeK) {
  const AnonCase& param = GetParam();
  Relation r = SyntheticFixture(param.rows, /*seed=*/31);
  auto algo = MakeAlgo(param.algo, /*seed=*/5);
  std::vector<RowId> rows(r.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  auto clusters = algo->BuildClusters(r, rows, param.k);
  ASSERT_TRUE(clusters.ok()) << clusters.status().ToString();

  std::vector<int> seen(r.NumRows(), 0);
  for (const Cluster& c : *clusters) {
    EXPECT_GE(c.size(), param.k);
    for (RowId row : c) {
      ASSERT_LT(row, r.NumRows());
      ++seen[row];
    }
  }
  for (size_t row = 0; row < seen.size(); ++row) {
    EXPECT_EQ(seen[row], 1) << "row " << row << " covered "
                            << seen[row] << " times";
  }
}

TEST_P(AnonymizerPropertyTest, AnonymizeOutputIsKAnonymous) {
  const AnonCase& param = GetParam();
  Relation r = SyntheticFixture(param.rows, /*seed=*/67);
  auto algo = MakeAlgo(param.algo, /*seed=*/11);
  auto anonymized = Anonymize(algo.get(), r, param.k);
  ASSERT_TRUE(anonymized.ok()) << anonymized.status().ToString();
  EXPECT_TRUE(IsKAnonymous(*anonymized, param.k));
  EXPECT_EQ(anonymized->NumRows(), r.NumRows());
  // Sensitive values untouched.
  for (RowId row = 0; row < r.NumRows(); ++row) {
    EXPECT_EQ(anonymized->At(row, 3), r.At(row, 3));
  }
  // Non-suppressed QI cells keep their original values (suppression only).
  for (RowId row = 0; row < r.NumRows(); ++row) {
    for (size_t col : r.schema().qi_indices()) {
      if (!anonymized->IsSuppressed(row, col)) {
        EXPECT_EQ(anonymized->At(row, col), r.At(row, col));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AnonymizerPropertyTest,
    ::testing::Values(AnonCase{Algo::kKMember, 2, 50},
                      AnonCase{Algo::kKMember, 5, 200},
                      AnonCase{Algo::kKMember, 10, 403},
                      AnonCase{Algo::kOka, 2, 50},
                      AnonCase{Algo::kOka, 5, 200},
                      AnonCase{Algo::kOka, 10, 403},
                      AnonCase{Algo::kMondrian, 2, 50},
                      AnonCase{Algo::kMondrian, 5, 200},
                      AnonCase{Algo::kMondrian, 10, 403}),
    [](const ::testing::TestParamInfo<AnonCase>& info) {
      return std::string(AlgoName(info.param.algo)) + "_k" +
             std::to_string(info.param.k) + "_n" +
             std::to_string(info.param.rows);
    });

class AnonymizerCommonTest : public ::testing::TestWithParam<Algo> {};

TEST_P(AnonymizerCommonTest, EmptyInputYieldsEmptyClustering) {
  Relation r = MedicalRelation();
  auto algo = MakeAlgo(GetParam(), 1);
  auto clusters = algo->BuildClusters(r, {}, 3);
  ASSERT_TRUE(clusters.ok());
  EXPECT_TRUE(clusters->empty());
}

TEST_P(AnonymizerCommonTest, FewerThanKRowsIsInfeasible) {
  Relation r = MedicalRelation();
  auto algo = MakeAlgo(GetParam(), 1);
  std::vector<RowId> rows = {0, 1};
  auto clusters = algo->BuildClusters(r, rows, 3);
  ASSERT_FALSE(clusters.ok());
  EXPECT_EQ(clusters.status().code(), StatusCode::kInfeasible);
}

TEST_P(AnonymizerCommonTest, KZeroRejected) {
  Relation r = MedicalRelation();
  auto algo = MakeAlgo(GetParam(), 1);
  std::vector<RowId> rows = {0, 1, 2};
  auto clusters = algo->BuildClusters(r, rows, 0);
  ASSERT_FALSE(clusters.ok());
  EXPECT_EQ(clusters.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(AnonymizerCommonTest, SubsetClusteringTouchesOnlySubset) {
  Relation r = MedicalRelation();
  auto algo = MakeAlgo(GetParam(), 3);
  std::vector<RowId> rows = {2, 3, 4, 5, 6};
  auto clusters = algo->BuildClusters(r, rows, 2);
  ASSERT_TRUE(clusters.ok());
  for (const Cluster& c : *clusters) {
    for (RowId row : c) {
      EXPECT_GE(row, 2u);
      EXPECT_LE(row, 6u);
    }
  }
  EXPECT_EQ(TotalRows(*clusters), rows.size());
}

TEST_P(AnonymizerCommonTest, WholeRelationEqualsKGivesOneCluster) {
  Relation r = MedicalRelation();
  auto algo = MakeAlgo(GetParam(), 7);
  std::vector<RowId> rows(r.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  auto clusters = algo->BuildClusters(r, rows, r.NumRows());
  ASSERT_TRUE(clusters.ok());
  ASSERT_EQ(clusters->size(), 1u);
  EXPECT_EQ(clusters->front().size(), r.NumRows());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AnonymizerCommonTest,
                         ::testing::Values(Algo::kKMember, Algo::kOka,
                                           Algo::kMondrian),
                         [](const ::testing::TestParamInfo<Algo>& info) {
                           return AlgoName(info.param);
                         });

TEST(KMemberTest, SampledModeStaysKAnonymous) {
  Relation r = SyntheticFixture(500, 13);
  AnonymizerOptions options;
  options.seed = 3;
  options.sample_size = 16;
  auto algo = MakeKMember(options);
  auto anonymized = Anonymize(algo.get(), r, 10);
  ASSERT_TRUE(anonymized.ok());
  EXPECT_TRUE(IsKAnonymous(*anonymized, 10));
}

TEST(MondrianTest, PartitionsAreContiguousInSortOrder) {
  // Mondrian on a single numeric attribute must produce contiguous value
  // ranges: group extents must not overlap.
  auto schema = Schema::Make({
      {"V", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"S", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  ASSERT_TRUE(schema.ok());
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 64; ++i) {
    rows.push_back({std::to_string(i), "s"});
  }
  auto r = RelationFromRows(*schema, rows);
  ASSERT_TRUE(r.ok());
  auto algo = MakeMondrian({});
  std::vector<RowId> all(r->NumRows());
  std::iota(all.begin(), all.end(), 0);
  auto clusters = algo->BuildClusters(*r, all, 4);
  ASSERT_TRUE(clusters.ok());
  EXPECT_GT(clusters->size(), 1u);

  std::vector<std::pair<int, int>> extents;
  for (const Cluster& c : *clusters) {
    int lo = 1000;
    int hi = -1;
    for (RowId row : c) {
      int v = static_cast<int>(row);  // value == row index here
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    extents.emplace_back(lo, hi);
  }
  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    EXPECT_GT(extents[i].first, extents[i - 1].second);
  }
}

}  // namespace
}  // namespace diva
