// Incremental re-anonymization (core/incremental.h): churn fuzz and edge
// cases asserting the headline contract — ApplyDelta's output, report,
// deterministic counters, and audit are byte-identical to a cold RunDiva
// on the post-delta relation, at every thread width — plus reuse
// accounting (clean components adopt, dirty ones re-color) and the delta
// file parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "core/incremental.h"
#include "relation/csv.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "tests/test_util.h"

namespace diva {
namespace {

std::shared_ptr<const Schema> ChurnSchema() {
  auto schema = Schema::Make({
      {"REGION", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"GROUP", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"JOB", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK(schema.ok());
  return schema.value();
}

std::vector<std::string> MakeChurnRow(Rng& rng, size_t regions) {
  return {"r" + std::to_string(rng.NextBounded(regions)),
          "g" + std::to_string(rng.NextBounded(2 * regions)),
          std::to_string(18 + rng.NextBounded(60)),
          "j" + std::to_string(rng.NextBounded(8)),
          "d" + std::to_string(rng.NextBounded(5))};
}

/// One per-region constraint per region: disjoint target sets, so the
/// conflict graph decomposes into one component per populated region.
ConstraintSet RegionConstraints(const Schema& schema, size_t regions) {
  std::string text;
  for (size_t r = 0; r < regions; ++r) {
    text += "REGION[r" + std::to_string(r) + "] in [2,400]\n";
  }
  auto constraints = ParseConstraintSet(schema, text);
  DIVA_CHECK(constraints.ok());
  return std::move(constraints).value();
}

/// Everything a divergent execution would perturb first (the determinism
/// suite's fingerprint, plus the shard/report flags the incremental path
/// could plausibly skew).
struct RunFingerprint {
  std::string csv;
  bool complete = false;
  bool audited = false;
  size_t shards = 0;
  size_t residual_rows = 0;
  uint64_t coloring_steps = 0;
  uint64_t backtracks = 0;
  size_t sigma_rows = 0;
  size_t repair_cells = 0;
  std::vector<size_t> unsatisfied;
  std::vector<std::string> counters;

  bool operator==(const RunFingerprint&) const = default;
};

std::vector<std::string> DeterministicCounters(
    const std::vector<counters::Sample>& delta) {
  std::vector<std::string> moved;
  for (const counters::Sample& sample :
       counters::FilterScope(delta, counters::Scope::kDeterministic)) {
    if (sample.value == 0 && sample.sum == 0) continue;
    moved.push_back(sample.name + "=" + std::to_string(sample.value) + "/" +
                    std::to_string(sample.sum));
  }
  return moved;
}

RunFingerprint Fingerprint(const DivaResult& result) {
  RunFingerprint print;
  std::ostringstream csv;
  EXPECT_TRUE(WriteCsv(result.relation, csv).ok());
  print.csv = csv.str();
  print.complete = result.report.clustering_complete;
  print.audited = result.report.audited;
  print.shards = result.report.shards;
  print.residual_rows = result.report.residual_rows;
  print.coloring_steps = result.report.coloring_steps;
  print.backtracks = result.report.backtracks;
  print.sigma_rows = result.report.sigma_rows;
  print.repair_cells = result.report.repair_cells;
  print.unsatisfied = result.report.unsatisfied;
  print.counters = DeterministicCounters(result.report.counters);
  return print;
}

DivaOptions ChurnOptions(size_t k, size_t threads) {
  DivaOptions options;
  options.k = k;
  options.threads = threads;
  options.audit = true;
  options.incremental = true;
  return options;
}

/// Value of the execution-scope counter `name` moved by `fn` (the
/// incremental.* counters fire outside the pipeline's own report delta,
/// so they are only visible through a process-level snapshot).
template <typename Fn>
uint64_t ExecCounterMoved(const std::string& name, Fn&& fn) {
  std::vector<counters::Sample> before = counters::Snapshot();
  fn();
  std::vector<counters::Sample> after = counters::Snapshot();
  for (const counters::Sample& sample : counters::Delta(before, after)) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

/// The fuzz core: a seeded multi-component workload, a seeded batch of
/// deletes + inserts, then cold-vs-incremental equality at 1/2/8 threads.
void RunChurnSeed(uint64_t seed) {
  Rng rng(seed);
  const size_t regions = 3 + rng.NextBounded(4);
  const size_t num_rows = 120 + rng.NextBounded(120);
  auto schema = ChurnSchema();
  std::vector<std::vector<std::string>> rows;
  rows.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    rows.push_back(MakeChurnRow(rng, regions));
  }
  auto base = RelationFromRows(schema, rows);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ConstraintSet constraints = RegionConstraints(*schema, regions);
  const size_t k = 2 + rng.NextBounded(3);

  auto prior = RunDiva(*base, constraints, ChurnOptions(k, 1));
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_NE(prior->snapshot, nullptr)
      << "a clean multi-component incremental run must capture a snapshot";

  DeltaBatch delta;
  for (RowId row = 0; row < static_cast<RowId>(num_rows); ++row) {
    if (rng.NextBounded(8) == 0) delta.deleted.push_back(row);
  }
  const size_t num_inserts = rng.NextBounded(30);
  for (size_t i = 0; i < num_inserts; ++i) {
    std::vector<std::string> row = MakeChurnRow(rng, regions);
    if (rng.NextBounded(4) == 0) {
      // A never-seen value: grows a dictionary, which must dirty every
      // component (Mondrian scans the global domain) — still identical
      // output, just the cold-cost path.
      row[3] = "jx" + std::to_string(seed) + "_" + std::to_string(i);
    }
    delta.inserted.push_back(std::move(row));
  }

  auto post = ApplyDeltaToRelation(*prior->snapshot->input, delta);
  ASSERT_TRUE(post.ok()) << post.status().ToString();

  RunFingerprint cold_baseline;
  for (size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    auto cold = RunDiva(*post, constraints, ChurnOptions(k, threads));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto incremental =
        ApplyDelta(*prior->snapshot, delta, ChurnOptions(k, threads));
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
    if (threads == 1u) cold_baseline = Fingerprint(*cold);
    EXPECT_EQ(Fingerprint(*cold), cold_baseline);
    EXPECT_EQ(Fingerprint(*incremental), cold_baseline);
  }
  SetParallelThreads(1);
}

TEST(IncrementalTest, ChurnFuzzMatchesColdRunAtEveryThreadWidth) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("seed = " + std::to_string(seed));
    RunChurnSeed(seed);
  }
}

TEST(IncrementalTest, EmptyDeltaReusesEveryComponent) {
  Rng rng(77);
  auto schema = ChurnSchema();
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < 160; ++i) rows.push_back(MakeChurnRow(rng, 4));
  auto base = RelationFromRows(schema, rows);
  ASSERT_TRUE(base.ok());
  ConstraintSet constraints = RegionConstraints(*schema, 4);

  auto prior = RunDiva(*base, constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_NE(prior->snapshot, nullptr);

  Result<DivaResult> replay = Status::Internal("unset");
  uint64_t reused = ExecCounterMoved("incremental.shards_reused", [&] {
    replay = ApplyDelta(*prior->snapshot, DeltaBatch{}, ChurnOptions(2, 1));
  });
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(Fingerprint(*replay), Fingerprint(*prior))
      << "an empty delta must reproduce the prior run exactly";
  EXPECT_EQ(reused, replay->report.shards)
      << "an empty delta must adopt every component";
  SetParallelThreads(1);
}

TEST(IncrementalTest, DeleteWholeComponentMatchesColdRun) {
  Rng rng(78);
  auto schema = ChurnSchema();
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < 180; ++i) rows.push_back(MakeChurnRow(rng, 4));
  auto base = RelationFromRows(schema, rows);
  ASSERT_TRUE(base.ok());
  ConstraintSet constraints = RegionConstraints(*schema, 4);

  auto prior = RunDiva(*base, constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_NE(prior->snapshot, nullptr);

  // Delete every r0 row: REGION[r0]'s target set empties and its whole
  // component disappears from the plan.
  DeltaBatch delta;
  for (RowId row = 0; row < static_cast<RowId>(rows.size()); ++row) {
    if (rows[row][0] == "r0") delta.deleted.push_back(row);
  }
  ASSERT_FALSE(delta.deleted.empty());

  auto post = ApplyDeltaToRelation(*prior->snapshot->input, delta);
  ASSERT_TRUE(post.ok());
  for (size_t threads : {1u, 8u}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    auto cold = RunDiva(*post, constraints, ChurnOptions(2, threads));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    auto incremental =
        ApplyDelta(*prior->snapshot, delta, ChurnOptions(2, threads));
    ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
    EXPECT_EQ(Fingerprint(*incremental), Fingerprint(*cold));
  }
  SetParallelThreads(1);
}

TEST(IncrementalTest, InsertBridgingTwoComponentsMatchesColdRun) {
  // r0 rows carry job j1 only and r1 rows job j0 only, so JOB[j0] shares
  // its component with REGION[r1] while REGION[r0] sits alone. Inserting
  // an (r0, j0) row fuses the two components into one.
  auto schema = ChurnSchema();
  std::vector<std::vector<std::string>> rows;
  Rng rng(79);
  for (size_t i = 0; i < 60; ++i) {
    bool left = i % 2 == 0;
    rows.push_back({left ? "r0" : "r1", "g" + std::to_string(i % 6),
                    std::to_string(20 + rng.NextBounded(50)),
                    left ? "j1" : "j0", "d" + std::to_string(i % 4)});
  }
  auto base = RelationFromRows(schema, rows);
  ASSERT_TRUE(base.ok());
  auto constraints = ParseConstraintSet(*schema,
                                        "REGION[r0] in [2,100]\n"
                                        "REGION[r1] in [2,100]\n"
                                        "JOB[j0] in [2,100]\n");
  ASSERT_TRUE(constraints.ok());

  auto prior = RunDiva(*base, *constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_NE(prior->snapshot, nullptr);
  EXPECT_EQ(prior->report.shards, 2u);

  DeltaBatch delta;
  delta.inserted.push_back({"r0", "g1", "33", "j0", "d1"});

  auto post = ApplyDeltaToRelation(*prior->snapshot->input, delta);
  ASSERT_TRUE(post.ok());
  auto cold = RunDiva(*post, *constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto incremental =
      ApplyDelta(*prior->snapshot, delta, ChurnOptions(2, 1));
  ASSERT_TRUE(incremental.ok()) << incremental.status().ToString();
  EXPECT_EQ(Fingerprint(*incremental), Fingerprint(*cold));
  EXPECT_EQ(incremental->report.shards, cold->report.shards);
  SetParallelThreads(1);
}

TEST(IncrementalTest, SnapshotsChainAcrossDeltas) {
  Rng rng(80);
  auto schema = ChurnSchema();
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < 150; ++i) rows.push_back(MakeChurnRow(rng, 4));
  auto base = RelationFromRows(schema, rows);
  ASSERT_TRUE(base.ok());
  ConstraintSet constraints = RegionConstraints(*schema, 4);

  auto prior = RunDiva(*base, constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(prior.ok()) << prior.status().ToString();
  ASSERT_NE(prior->snapshot, nullptr);

  DeltaBatch first;
  first.deleted = {3, 17, 42};
  first.inserted.push_back(MakeChurnRow(rng, 4));
  auto mid = ApplyDelta(*prior->snapshot, first, ChurnOptions(2, 1));
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  ASSERT_NE(mid->snapshot, nullptr)
      << "ApplyDelta must emit a chainable snapshot";

  DeltaBatch second;
  second.deleted = {0, 9};
  second.inserted.push_back(MakeChurnRow(rng, 4));
  auto chained = ApplyDelta(*mid->snapshot, second, ChurnOptions(2, 1));
  ASSERT_TRUE(chained.ok()) << chained.status().ToString();

  auto post = ApplyDeltaToRelation(*mid->snapshot->input, second);
  ASSERT_TRUE(post.ok());
  auto cold = RunDiva(*post, constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(Fingerprint(*chained), Fingerprint(*cold));
  SetParallelThreads(1);
}

TEST(IncrementalTest, RejectsOutOfRangeDeleteAndStaleSnapshot) {
  Rng rng(81);
  auto schema = ChurnSchema();
  std::vector<std::vector<std::string>> rows;
  for (size_t i = 0; i < 120; ++i) rows.push_back(MakeChurnRow(rng, 3));
  auto base = RelationFromRows(schema, rows);
  ASSERT_TRUE(base.ok());
  ConstraintSet constraints = RegionConstraints(*schema, 3);

  auto prior = RunDiva(*base, constraints, ChurnOptions(2, 1));
  ASSERT_TRUE(prior.ok());
  ASSERT_NE(prior->snapshot, nullptr);

  DeltaBatch out_of_range;
  out_of_range.deleted = {100000};
  auto bad = ApplyDelta(*prior->snapshot, out_of_range, ChurnOptions(2, 1));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  PipelineSnapshot invalid;
  auto stale = ApplyDelta(invalid, DeltaBatch{}, ChurnOptions(2, 1));
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
}

TEST(IncrementalTest, ParsesDeltaFileFormat) {
  auto delta = ParseDeltaFile(
      "# churn batch\n"
      "- 7\n"
      "-  12\n"
      "\n"
      "+ r1, g2, 44, j3, d0\n"
      "+ r0,g1,27,j2,*\n");
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  EXPECT_EQ(delta->deleted, (std::vector<RowId>{7, 12}));
  ASSERT_EQ(delta->inserted.size(), 2u);
  EXPECT_EQ(delta->inserted[0],
            (std::vector<std::string>{"r1", "g2", "44", "j3", "d0"}));
  EXPECT_EQ(delta->inserted[1],
            (std::vector<std::string>{"r0", "g1", "27", "j2", "*"}));

  EXPECT_FALSE(ParseDeltaFile("- notanumber\n").ok());
  EXPECT_FALSE(ParseDeltaFile("? what\n").ok());
  EXPECT_TRUE(ParseDeltaFile("").ok());
}

}  // namespace
}  // namespace diva
