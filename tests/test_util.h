#ifndef DIVA_TESTS_TEST_UTIL_H_
#define DIVA_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/logging.h"
#include "constraint/diversity_constraint.h"
#include "constraint/parser.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace diva {
namespace testing {

/// Schema of the paper's running example (Table 1): GEN, ETH, AGE, PRV,
/// CTY are quasi-identifiers, DIAG is sensitive.
inline std::shared_ptr<const Schema> MedicalSchema() {
  auto schema = Schema::Make({
      {"GEN", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"ETH", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"PRV", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"CTY", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK(schema.ok());
  return schema.value();
}

/// The paper's Table 1. Row ids 0..9 correspond to tuples t1..t10.
inline Relation MedicalRelation() {
  auto relation = RelationFromRows(
      MedicalSchema(),
      {
          {"Female", "Caucasian", "80", "AB", "Calgary", "Hypertension"},
          {"Female", "Caucasian", "32", "AB", "Calgary", "Tuberculosis"},
          {"Male", "Caucasian", "59", "AB", "Calgary", "Osteoarthritis"},
          {"Male", "Caucasian", "46", "MB", "Winnipeg", "Migraine"},
          {"Male", "African", "32", "MB", "Winnipeg", "Hypertension"},
          {"Male", "African", "43", "BC", "Vancouver", "Seizure"},
          {"Male", "Caucasian", "35", "BC", "Vancouver", "Hypertension"},
          {"Female", "Asian", "58", "BC", "Vancouver", "Seizure"},
          {"Female", "Asian", "63", "MB", "Winnipeg", "Influenza"},
          {"Female", "Asian", "71", "BC", "Vancouver", "Migraine"},
      });
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

/// The paper's example constraints (Example 3.1):
///   s1 = (ETH[Asian], 2, 5), s2 = (ETH[African], 1, 3),
///   s3 = (CTY[Vancouver], 2, 4).
inline ConstraintSet MedicalConstraints(const Schema& schema) {
  auto constraints = ParseConstraintSet(schema,
                                        "ETH[Asian] in [2,5]\n"
                                        "ETH[African] in [1,3]\n"
                                        "CTY[Vancouver] in [2,4]\n");
  DIVA_CHECK(constraints.ok());
  return std::move(constraints).value();
}

/// Parses one constraint or aborts (test convenience).
inline DiversityConstraint MustParse(const Schema& schema,
                                     std::string_view text) {
  auto constraint = ParseConstraint(schema, text);
  DIVA_CHECK_MSG(constraint.ok(), constraint.status().ToString());
  return std::move(constraint).value();
}

}  // namespace testing
}  // namespace diva

#endif  // DIVA_TESTS_TEST_UTIL_H_
