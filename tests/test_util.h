#ifndef DIVA_TESTS_TEST_UTIL_H_
#define DIVA_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "constraint/diversity_constraint.h"
#include "constraint/generator.h"
#include "constraint/parser.h"
#include "datagen/synthetic.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace diva {
namespace testing {

/// Schema of the paper's running example (Table 1): GEN, ETH, AGE, PRV,
/// CTY are quasi-identifiers, DIAG is sensitive.
inline std::shared_ptr<const Schema> MedicalSchema() {
  auto schema = Schema::Make({
      {"GEN", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"ETH", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"PRV", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"CTY", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK(schema.ok());
  return schema.value();
}

/// The paper's Table 1. Row ids 0..9 correspond to tuples t1..t10.
inline Relation MedicalRelation() {
  auto relation = RelationFromRows(
      MedicalSchema(),
      {
          {"Female", "Caucasian", "80", "AB", "Calgary", "Hypertension"},
          {"Female", "Caucasian", "32", "AB", "Calgary", "Tuberculosis"},
          {"Male", "Caucasian", "59", "AB", "Calgary", "Osteoarthritis"},
          {"Male", "Caucasian", "46", "MB", "Winnipeg", "Migraine"},
          {"Male", "African", "32", "MB", "Winnipeg", "Hypertension"},
          {"Male", "African", "43", "BC", "Vancouver", "Seizure"},
          {"Male", "Caucasian", "35", "BC", "Vancouver", "Hypertension"},
          {"Female", "Asian", "58", "BC", "Vancouver", "Seizure"},
          {"Female", "Asian", "63", "MB", "Winnipeg", "Influenza"},
          {"Female", "Asian", "71", "BC", "Vancouver", "Migraine"},
      });
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

/// The paper's example constraints (Example 3.1):
///   s1 = (ETH[Asian], 2, 5), s2 = (ETH[African], 1, 3),
///   s3 = (CTY[Vancouver], 2, 4).
inline ConstraintSet MedicalConstraints(const Schema& schema) {
  auto constraints = ParseConstraintSet(schema,
                                        "ETH[Asian] in [2,5]\n"
                                        "ETH[African] in [1,3]\n"
                                        "CTY[Vancouver] in [2,4]\n");
  DIVA_CHECK(constraints.ok());
  return std::move(constraints).value();
}

/// Parses one constraint or aborts (test convenience).
inline DiversityConstraint MustParse(const Schema& schema,
                                     std::string_view text) {
  auto constraint = ParseConstraint(schema, text);
  DIVA_CHECK_MSG(constraint.ok(), constraint.status().ToString());
  return std::move(constraint).value();
}

struct FuzzWorkload {
  Relation relation;
  ConstraintSet constraints;
  size_t k;
};

/// Builds a random small workload from a fuzz seed: 20-220 rows, 2-4
/// categorical QI attributes with random domains and skews, an optional
/// numeric attribute, one sensitive attribute, 0-6 generated constraints,
/// k in [2, 8]. Shared by the fuzz-property and differential tests so
/// both suites draw instances from the identical seed -> workload map.
inline FuzzWorkload MakeWorkload(uint64_t fuzz_seed) {
  Rng rng(fuzz_seed);
  SyntheticSpec spec;
  spec.num_rows = 20 + static_cast<size_t>(rng.NextBounded(200));
  spec.seed = rng.Next();
  spec.num_latent_classes = 2 + static_cast<size_t>(rng.NextBounded(12));
  spec.latent_skew = rng.UniformDouble() * 1.5;

  size_t num_qi = 2 + static_cast<size_t>(rng.NextBounded(3));
  for (size_t i = 0; i < num_qi; ++i) {
    AttributeSpec attr;
    attr.name = "Q" + std::to_string(i);
    attr.domain_size = 2 + static_cast<size_t>(rng.NextBounded(9));
    attr.distribution = static_cast<ValueDistribution>(rng.NextBounded(3));
    attr.zipf_skew = 0.5 + rng.UniformDouble();
    attr.correlation = rng.UniformDouble() * 0.5;
    spec.attributes.push_back(attr);
  }
  if (rng.NextBounded(2) == 0) {
    AttributeSpec numeric;
    numeric.name = "NUM";
    numeric.kind = AttributeKind::kNumeric;
    numeric.domain_size = 5 + static_cast<size_t>(rng.NextBounded(40));
    numeric.numeric_base = static_cast<int64_t>(rng.NextBounded(100));
    numeric.distribution = ValueDistribution::kGaussian;
    spec.attributes.push_back(numeric);
  }
  AttributeSpec sensitive;
  sensitive.name = "S";
  sensitive.role = AttributeRole::kSensitive;
  sensitive.domain_size = 2 + static_cast<size_t>(rng.NextBounded(6));
  spec.attributes.push_back(sensitive);

  auto relation = GenerateSynthetic(spec);
  DIVA_CHECK_MSG(relation.ok(), relation.status().ToString());

  size_t k = 2 + static_cast<size_t>(rng.NextBounded(7));

  ConstraintGenOptions gen;
  gen.count = static_cast<size_t>(rng.NextBounded(7));
  gen.min_support = 2;
  gen.slack = 0.1 + rng.UniformDouble() * 0.5;
  gen.kind = static_cast<ConstraintClass>(rng.NextBounded(3));
  gen.seed = rng.Next();
  if (rng.NextBounded(2) == 0) {
    gen.target_conflict = rng.UniformDouble();
  }
  ConstraintSet constraints;
  auto generated = GenerateConstraints(*relation, gen);
  if (generated.ok()) constraints = std::move(generated).value();

  return {std::move(relation).value(), std::move(constraints), k};
}

}  // namespace testing
}  // namespace diva

#endif  // DIVA_TESTS_TEST_UTIL_H_
