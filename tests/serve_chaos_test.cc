// Chaos suite for the serving subsystem: every serve.* fault-injection
// site is swept with an always-on fault while a storm of clients hammers
// the server, and after each storm the crash-tolerance invariants must
// hold no matter where the fault landed:
//
//   1. no crash (the process is still here to assert anything),
//   2. no leaked work: inflight() == 0 after Stop,
//   3. full accounting: requests + protocol_errors ==
//      responses + response_failures — every parsed frame ended in a
//      terminal response or a counted write failure,
//   4. nothing unaudited ever became fetchable: every published snapshot
//      has audited == true.
//
// Plus the two scenario tests the tentpole promises: overload at 4x the
// admission capacity, and a SIGTERM-style drain mid-storm.

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "tests/test_util.h"

namespace diva {
namespace serve {
namespace {

using diva::testing::MedicalConstraints;
using diva::testing::MedicalRelation;
using diva::testing::MedicalSchema;

/// The serve-domain fault-injection sites this suite owns (the generic
/// sweep in fault_injection_test.cc skips the serve.* prefix and defers
/// to this file). Kept in sync with common/failpoint.cc by
/// SweepCoversEveryServeSite below.
const char* const kServeSites[] = {
    "serve.accept",       "serve.admission", "serve.enqueue",
    "serve.execute",      "serve.frame.read", "serve.publish",
    "serve.request.parse", "serve.respond",
};

ServerOptions ChaosOptions() {
  ServerOptions options;
  options.port = 0;
  options.sessions = 2;
  options.queue_capacity = 4;
  options.watchdog_poll_ms = 5.0;
  options.drain_grace_ms = 3000.0;
  return options;
}

/// Fires `clients` workers, each sending `requests` anonymize calls (a
/// third with aggressive deadlines) and tolerating every outcome:
/// responses, error responses, shed-by-close, refused connects. Chaos
/// clients never retry — the invariants under test are the server's.
void Storm(const std::string& host, int port, size_t clients,
           size_t requests) {
  TaskGroup workers(clients);
  std::vector<uint64_t> tickets;
  for (size_t w = 0; w < clients; ++w) {
    tickets.push_back(workers.Submit([&, w]() {
      for (size_t r = 0; r < requests; ++r) {
        auto client = Client::Connect(host, port);
        if (!client.ok()) continue;  // refused mid-drain: acceptable
        Request request;
        request.verb = "anonymize";
        request.params["k"] = "2";
        request.params["seed"] = std::to_string(w * 31 + r);
        if (r % 3 == 0) request.params["deadline_ms"] = "40";
        (void)client->Call(request);
      }
    }));
  }
  for (uint64_t ticket : tickets) workers.Wait(ticket);
}

/// The four invariants every chaos scenario must leave behind.
void ExpectInvariants(Server* server, const std::string& context) {
  server->Stop();
  EXPECT_EQ(server->inflight(), 0u) << context << ": leaked in-flight work";
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.requests + stats.protocol_errors,
            stats.responses + stats.response_failures)
      << context << ": requests=" << stats.requests
      << " protocol_errors=" << stats.protocol_errors
      << " responses=" << stats.responses
      << " response_failures=" << stats.response_failures;
  const SnapshotStore& store = server->snapshots();
  for (uint64_t id = 1; id <= store.latest_id(); ++id) {
    auto snapshot = store.Find(id);
    if (snapshot != nullptr) {
      EXPECT_TRUE(snapshot->audited)
          << context << ": snapshot " << id << " published unaudited";
    }
  }
}

TEST(ServeChaosTest, SweepCoversEveryServeSite) {
  // Two-way drift check over the serve.* domain: every site this suite
  // sweeps is compiled in, and every compiled-in serve.* site is swept.
  std::vector<std::string> known = failpoint::KnownFailpoints();
  for (const char* site : kServeSites) {
    bool found = false;
    for (const std::string& name : known) found |= (name == site);
    EXPECT_TRUE(found) << "swept site " << site
                       << " is not registered in common/failpoint.cc";
  }
  for (const std::string& name : known) {
    if (name.rfind("serve.", 0) != 0) continue;
    bool swept = false;
    for (const char* site : kServeSites) swept |= (name == site);
    EXPECT_TRUE(swept) << "serve site " << name
                       << " is not swept by serve_chaos_test.cc";
  }
}

TEST(ServeChaosTest, EverySiteFailsWithoutCrashLeakOrUnauditedOutput) {
  for (const char* site : kServeSites) {
    SCOPED_TRACE(site);
    failpoint::Reset();
    failpoint::Arm(site, StatusCode::kIoError);

    Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                  ChaosOptions());
    ASSERT_TRUE(server.Start().ok());
    Storm("127.0.0.1", server.port(), /*clients=*/4, /*requests=*/3);
    failpoint::Reset();  // disarm before drain so Stop can finish cleanly
    ExpectInvariants(&server, site);
  }
}

TEST(ServeChaosTest, IntermittentFaultsHitEveryFewRequests) {
  // hit-limited arming: the fault fires on every 2nd passage, modelling
  // a flaky dependency instead of a dead one. Same invariants.
  for (const char* site : {"serve.frame.read", "serve.respond",
                           "serve.publish"}) {
    SCOPED_TRACE(site);
    failpoint::Reset();
    failpoint::Arm(site, StatusCode::kIoError, /*trigger_hit=*/2);

    Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                  ChaosOptions());
    ASSERT_TRUE(server.Start().ok());
    Storm("127.0.0.1", server.port(), /*clients=*/3, /*requests=*/4);
    failpoint::Reset();
    ExpectInvariants(&server, site);
  }
}

TEST(ServeChaosTest, OverloadAtFourTimesCapacitySheds) {
  ServerOptions options = ChaosOptions();
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                options);
  ASSERT_TRUE(server.Start().ok());

  // 4x the admission capacity (sessions + queue), tight deadlines: the
  // server must shed rather than wedge, and everything it does answer
  // stays audited.
  const size_t capacity = options.sessions + options.queue_capacity;
  Storm("127.0.0.1", server.port(), /*clients=*/4 * capacity,
        /*requests=*/3);

  ServerStats mid_stats = server.stats();
  ExpectInvariants(&server, "overload");
  // With 24 concurrent clients against 2 sessions and a queue of 4,
  // admission control (or the acceptor's overflow close) must have
  // turned load away somewhere.
  EXPECT_GT(mid_stats.shed + mid_stats.connection_overflow, 0u)
      << "4x overload was absorbed without shedding anything";
}

// The signal-path drain: the handler does exactly what a SIGTERM handler
// may do — one async-signal-safe RequestDrain on the live server.
Server* g_drain_target = nullptr;
void HandleChaosSigterm(int) {
  if (g_drain_target != nullptr) g_drain_target->RequestDrain();
}

TEST(ServeChaosTest, SigtermMidStormDrainsCleanly) {
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                ChaosOptions());
  ASSERT_TRUE(server.Start().ok());
  g_drain_target = &server;
  auto* previous = std::signal(SIGTERM, HandleChaosSigterm);

  // Kick off a storm, then deliver SIGTERM from under it.
  TaskGroup storm(1);
  uint64_t ticket = storm.Submit([&]() {
    Storm("127.0.0.1", server.port(), /*clients=*/6, /*requests=*/4);
  });
  (void)std::raise(SIGTERM);
  EXPECT_TRUE(server.draining()) << "RequestDrain from the handler lost";
  storm.Wait(ticket);

  std::signal(SIGTERM, previous);
  g_drain_target = nullptr;
  ExpectInvariants(&server, "sigterm drain");

  // Post-drain, a fresh request must be refused, not served.
  auto client = Client::Connect("127.0.0.1", server.port());
  if (client.ok()) {
    Request request;
    request.verb = "anonymize";
    request.params["k"] = "2";
    auto response = client->Call(request);
    if (response.ok()) {
      EXPECT_FALSE(response->ok);
    }
  }
}

TEST(ServeChaosTest, DrainWhileFaultsFireStillAccountsForEverything) {
  // Drain and fault injection at the same time: the two recovery paths
  // must compose, not corrupt the books.
  failpoint::Reset();
  failpoint::Arm("serve.respond", StatusCode::kIoError, /*trigger_hit=*/3);
  Server server(MedicalRelation(), MedicalConstraints(*MedicalSchema()),
                ChaosOptions());
  ASSERT_TRUE(server.Start().ok());

  TaskGroup storm(1);
  uint64_t ticket = storm.Submit([&]() {
    Storm("127.0.0.1", server.port(), /*clients=*/4, /*requests=*/4);
  });
  server.RequestDrain();
  storm.Wait(ticket);
  failpoint::Reset();
  ExpectInvariants(&server, "drain + faults");
}

}  // namespace
}  // namespace serve
}  // namespace diva
