#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/diva.h"
#include "core/report_json.h"
#include "datagen/profiles.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;

/// Busy-waits on the monotonic clock (the same clock deadlines read).
void SpinFor(double seconds) {
  double start = MonotonicSeconds();
  while (MonotonicSeconds() - start < seconds) {
  }
}

// ------------------------------------------------------------- Deadline

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_TRUE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 1e9);
  EXPECT_TRUE(Deadline::Infinite().is_infinite());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
  EXPECT_LE(Deadline::AfterMillis(-1000).RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineCountsDown) {
  Deadline deadline = Deadline::AfterSeconds(60.0);
  EXPECT_FALSE(deadline.is_infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 0.0);
  EXPECT_LE(deadline.RemainingSeconds(), 60.0);
}

TEST(DeadlineTest, ExpiresOnSchedule) {
  Deadline deadline = Deadline::AfterMillis(1);
  SpinFor(0.005);
  EXPECT_TRUE(deadline.Expired());
  EXPECT_LE(deadline.RemainingSeconds(), 0.0);
}

// -------------------------------------------------- CancellationToken

TEST(CancellationTokenTest, NullTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.CanBeCancelled());
  EXPECT_FALSE(token.Cancelled());
  token.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(token.Cancelled());
  EXPECT_TRUE(token.deadline().is_infinite());
}

TEST(CancellationTokenTest, ManualTokenLatchesAndCopiesShareState) {
  CancellationToken token = CancellationToken::Manual();
  EXPECT_TRUE(token.CanBeCancelled());
  EXPECT_FALSE(token.Cancelled());

  CancellationToken copy = token;
  copy.RequestCancel();
  EXPECT_TRUE(token.Cancelled()) << "copies must share the signal";
  EXPECT_TRUE(token.Cancelled()) << "tokens never un-trip";
}

TEST(CancellationTokenTest, DeadlineTokenTripsOnExpiry) {
  CancellationToken token =
      CancellationToken::WithDeadline(Deadline::AfterMillis(1));
  SpinFor(0.005);
  EXPECT_TRUE(token.Cancelled());
  EXPECT_TRUE(token.Cancelled()) << "expiry latches";
}

TEST(CancellationTokenTest, ManualCancelBeatsAFarDeadline) {
  CancellationToken token =
      CancellationToken::WithDeadline(Deadline::AfterSeconds(60.0));
  EXPECT_FALSE(token.Cancelled());
  EXPECT_FALSE(token.deadline().is_infinite());
  token.RequestCancel();
  EXPECT_TRUE(token.Cancelled());
}

TEST(DeadlineStatusTest, NamesThePhase) {
  Status status = DeadlineExceededStatus("clustering");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("clustering"), std::string::npos);
}

TEST(EnvDeadlineTest, ParsesTheKnob) {
  ASSERT_EQ(setenv("DIVA_DEADLINE_MS", "250", 1), 0);
  EXPECT_EQ(EnvDeadlineMillis(), 250);
  ASSERT_EQ(setenv("DIVA_DEADLINE_MS", "junk", 1), 0);
  EXPECT_EQ(EnvDeadlineMillis(), 0);
  ASSERT_EQ(setenv("DIVA_DEADLINE_MS", "-5", 1), 0);
  EXPECT_EQ(EnvDeadlineMillis(), 0);
  ASSERT_EQ(unsetenv("DIVA_DEADLINE_MS"), 0);
  EXPECT_EQ(EnvDeadlineMillis(), 0);
}

// ------------------------------------------- pool-level cancellation

TEST(PoolCancellationTest, WithoutTokenParallelForCompletesEverything) {
  SetParallelThreads(4);
  std::vector<char> done(1000, 0);
  size_t prefix = ParallelFor(1000, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) done[i] = 1;
  });
  EXPECT_EQ(prefix, 1000u);
  for (size_t i = 0; i < done.size(); ++i) EXPECT_EQ(done[i], 1) << i;
}

TEST(PoolCancellationTest, PreTrippedTokenRunsNoChunks) {
  SetParallelThreads(4);
  CancellationToken token = CancellationToken::Manual();
  token.RequestCancel();
  ScopedLoopCancellation scope(token);
  std::atomic<size_t> ran{0};
  size_t prefix = ParallelFor(1000, 8, [&](size_t begin, size_t end) {
    ran.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(prefix, 0u);
  EXPECT_EQ(ran.load(), 0u);
}

TEST(PoolCancellationTest, SequentialCancelStopsAtAnExactPrefix) {
  SetParallelThreads(1);
  CancellationToken token = CancellationToken::Manual();
  ScopedLoopCancellation scope(token);
  std::vector<char> executed(256, 0);
  size_t prefix = ParallelFor(256, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      executed[i] = 1;
      if (i == 64) token.RequestCancel();
    }
  });
  // Width 1 runs chunks in index order, so the prefix is exact: the
  // cancelling chunk finishes, nothing after it starts.
  EXPECT_EQ(prefix, 65u);
  for (size_t i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(executed[i] != 0, i < prefix) << i;
  }
}

TEST(PoolCancellationTest, ParallelCancelCompletesExactlyThePrefix) {
  SetParallelThreads(4);
  CancellationToken token = CancellationToken::Manual();
  ScopedLoopCancellation scope(token);
  std::vector<char> executed(4096, 0);
  size_t prefix = ParallelFor(4096, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      executed[i] = 1;
      if (i == 64) token.RequestCancel();
    }
  });
  // Chunks are claimed in ascending order and claimed chunks drain, so
  // the completed work is the prefix [0, prefix): the cancelling index
  // is inside it, the tail was never claimed, and no index outside the
  // prefix ran.
  EXPECT_GE(prefix, 65u);
  EXPECT_LT(prefix, 4096u);
  for (size_t i = 0; i < executed.size(); ++i) {
    EXPECT_EQ(executed[i] != 0, i < prefix) << i;
  }
}

TEST(PoolCancellationTest, RunTasksSkipsTasksOnATrippedToken) {
  SetParallelThreads(4);
  CancellationToken token = CancellationToken::Manual();
  token.RequestCancel();
  ScopedLoopCancellation scope(token);
  std::atomic<int> ran{0};
  RunTasks(4, [&](size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 0);
}

TEST(PoolCancellationTest, ScopedInstallationNestsAndRestores) {
  EXPECT_FALSE(CurrentLoopCancellation().CanBeCancelled());
  CancellationToken outer = CancellationToken::Manual();
  {
    ScopedLoopCancellation outer_scope(outer);
    EXPECT_TRUE(CurrentLoopCancellation().CanBeCancelled());
    outer.RequestCancel();
    EXPECT_TRUE(CurrentLoopCancellation().Cancelled())
        << "the installed token is the caller's token, not a copy signal";
    {
      ScopedLoopCancellation inner_scope{CancellationToken()};
      EXPECT_FALSE(CurrentLoopCancellation().CanBeCancelled());
    }
    EXPECT_TRUE(CurrentLoopCancellation().Cancelled());
  }
  EXPECT_FALSE(CurrentLoopCancellation().CanBeCancelled());
}

// --------------------------------------- coloring budget exhaustion

TEST(ColoringBudgetTest, ExhaustedBudgetPublishesBestEffort) {
  Relation relation = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.coloring_budget = 1;  // cannot color three constraints
  auto result = RunDiva(relation, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.budget_exhausted);
  EXPECT_FALSE(result->report.clustering_complete);
  EXPECT_FALSE(result->report.deadline_exceeded);
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
}

TEST(ColoringBudgetTest, ExhaustedBudgetIsAnErrorInStrictMode) {
  Relation relation = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.coloring_budget = 1;
  options.strict = true;
  auto result = RunDiva(relation, constraints, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

// ------------------------------------------------ anytime RunDiva

Relation AnytimeWorkload(ConstraintSet* constraints) {
  ProfileOptions profile_options;
  profile_options.num_rows = 2000;
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  DIVA_CHECK_MSG(relation.ok(), relation.status().ToString());
  auto sigma = DefaultConstraints(DatasetProfile::kPopSyn, *relation);
  DIVA_CHECK_MSG(sigma.ok(), sigma.status().ToString());
  *constraints = std::move(sigma).value();
  return std::move(relation).value();
}

TEST(DivaDeadlineTest, NoDeadlineReportsNothingDegraded) {
  Relation relation = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.deadline_ms = 0;
  auto result = RunDiva(relation, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->report.deadline_exceeded);
  EXPECT_FALSE(result->report.baseline_degraded);
  EXPECT_FALSE(result->report.integrate_skipped);
  EXPECT_FALSE(result->report.privacy_truncated);
}

TEST(DivaDeadlineTest, TinyDeadlinePublishesDegradedButAuditedOutput) {
  ConstraintSet constraints;
  Relation relation = AnytimeWorkload(&constraints);

  DivaOptions options;
  options.k = 10;
  options.strategy = SelectionStrategy::kBasic;
  options.deadline_ms = 1;
  options.audit = true;  // a deadline never skips the self-audit
  StopWatch watch;
  auto result = RunDiva(relation, constraints, options);
  double elapsed = watch.ElapsedSeconds();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result->report.deadline_exceeded);
  EXPECT_FALSE(result->report.clustering_complete);
  EXPECT_TRUE(result->report.baseline_degraded);
  EXPECT_TRUE(result->report.integrate_skipped);
  EXPECT_TRUE(result->report.audited);
  EXPECT_TRUE(IsKAnonymous(result->relation, 10));

  // Anytime: expiry short-circuits the remaining search instead of
  // finishing it — a full Basic run on this workload takes far longer.
  EXPECT_LT(elapsed, 10.0);

  // Per-phase timings come from one monotonic clock and are filled even
  // when the deadline cut a phase short.
  EXPECT_GT(result->report.clustering_seconds, 0.0);
  EXPECT_GT(result->report.audit_seconds, 0.0);
  EXPECT_GT(result->report.total_seconds, 0.0);

  std::string json = ReportToJson(result->report);
  EXPECT_NE(json.find("\"deadline_exceeded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"audit_s\":"), std::string::npos);
}

TEST(DivaDeadlineTest, StrictModeTurnsExpiryIntoAnError) {
  ConstraintSet constraints;
  Relation relation = AnytimeWorkload(&constraints);

  DivaOptions options;
  options.k = 10;
  options.strategy = SelectionStrategy::kBasic;
  options.deadline_ms = 1;
  options.strict = true;
  auto result = RunDiva(relation, constraints, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace diva
