#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/clusterings.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

std::vector<CandidateClustering> Enumerate(const Relation& r,
                                           const DiversityConstraint& c,
                                           size_t k,
                                           ClusteringEnumOptions options = {}) {
  return EnumerateClusterings(r, c, c.TargetTuples(r), k, options);
}

/// Canonical form of a clustering for set comparisons.
std::set<std::set<RowId>> Canonical(const Clustering& clustering) {
  std::set<std::set<RowId>> out;
  for (const Cluster& c : clustering) {
    out.insert(std::set<RowId>(c.begin(), c.end()));
  }
  return out;
}

TEST(ClusteringsTest, PaperSigma2HasUniqueClustering) {
  // Clusterings(s2, R) = {{t5, t6}} (rows {4, 5}) for k = 2.
  Relation r = MedicalRelation();
  auto s2 = MustParse(*MedicalSchema(), "ETH[African] in [1,3]");
  auto candidates = Enumerate(r, s2, 2);
  ASSERT_FALSE(candidates.empty());
  std::set<std::set<std::set<RowId>>> distinct;
  for (const auto& candidate : candidates) {
    distinct.insert(Canonical(candidate.clusters));
    EXPECT_EQ(candidate.preserved, 2u);
  }
  EXPECT_EQ(distinct.size(), 1u);
  EXPECT_TRUE(distinct.count({{4, 5}}));
}

TEST(ClusteringsTest, PaperSigma1CandidatesAreSubsetsOfTargets) {
  // Clusterings(s1, R) per the paper: {{t8,t9}}, {{t8,t10}}, {{t9,t10}},
  // {{t8,t9,t10}} — all subsets of I_s1 = {7, 8, 9} with >= 2 rows.
  Relation r = MedicalRelation();
  auto s1 = MustParse(*MedicalSchema(), "ETH[Asian] in [2,5]");
  auto candidates = Enumerate(r, s1, 2);
  ASSERT_FALSE(candidates.empty());
  std::set<std::set<std::set<RowId>>> distinct;
  for (const auto& candidate : candidates) {
    for (const Cluster& cluster : candidate.clusters) {
      EXPECT_GE(cluster.size(), 2u);
      for (RowId row : cluster) {
        EXPECT_TRUE(row == 7 || row == 8 || row == 9);
      }
    }
    EXPECT_GE(candidate.preserved, 2u);
    EXPECT_LE(candidate.preserved, 3u);
    distinct.insert(Canonical(candidate.clusters));
  }
  // All four clusterings from the paper are reachable with 3 targets.
  EXPECT_TRUE(distinct.count({{7, 8}}) || distinct.count({{7, 9}}) ||
              distinct.count({{8, 9}}));
  EXPECT_TRUE(distinct.count({{7, 8, 9}}));
}

TEST(ClusteringsTest, PreservedEqualsTotalRows) {
  Relation r = MedicalRelation();
  auto s3 = MustParse(*MedicalSchema(), "CTY[Vancouver] in [2,4]");
  for (const auto& candidate : Enumerate(r, s3, 2)) {
    EXPECT_EQ(candidate.preserved, TotalRows(candidate.clusters));
  }
}

TEST(ClusteringsTest, ClustersWithinCandidateAreDisjoint) {
  Relation r = MedicalRelation();
  auto s3 = MustParse(*MedicalSchema(), "CTY[Vancouver] in [2,4]");
  for (const auto& candidate : Enumerate(r, s3, 2)) {
    std::set<RowId> seen;
    for (const Cluster& cluster : candidate.clusters) {
      for (RowId row : cluster) {
        EXPECT_TRUE(seen.insert(row).second) << "row " << row << " repeated";
      }
    }
  }
}

TEST(ClusteringsTest, LowerBoundZeroYieldsEmptyCandidate) {
  Relation r = MedicalRelation();
  auto c = MustParse(*MedicalSchema(), "ETH[Asian] in [0,2]");
  auto candidates = Enumerate(r, c, 2);
  ASSERT_FALSE(candidates.empty());
  EXPECT_TRUE(candidates.front().clusters.empty());
  EXPECT_EQ(candidates.front().preserved, 0u);
}

TEST(ClusteringsTest, InfeasibleLowerBoundYieldsNothing) {
  Relation r = MedicalRelation();
  // Only 3 Asians exist; demanding >= 5 is impossible.
  auto c = MustParse(*MedicalSchema(), "ETH[Asian] in [5,9]");
  EXPECT_TRUE(Enumerate(r, c, 2).empty());
}

TEST(ClusteringsTest, UpperBoundBelowKYieldsNothing) {
  Relation r = MedicalRelation();
  // Preserving any cluster needs >= k = 3 target rows, but upper is 2.
  auto c = MustParse(*MedicalSchema(), "ETH[Asian] in [1,2]");
  EXPECT_TRUE(Enumerate(r, c, 3).empty());
}

TEST(ClusteringsTest, OrderedModeIsMinimalSuppressionFirst) {
  Relation r = MedicalRelation();
  auto s1 = MustParse(*MedicalSchema(), "ETH[Asian] in [2,5]");
  ClusteringEnumOptions options;
  options.ordered = true;
  auto candidates = Enumerate(r, s1, 2, options);
  ASSERT_GE(candidates.size(), 2u);
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].preserved, candidates[i].preserved);
  }
}

TEST(ClusteringsTest, CapIsRespected) {
  Relation r = MedicalRelation();
  auto s3 = MustParse(*MedicalSchema(), "CTY[Vancouver] in [2,4]");
  ClusteringEnumOptions options;
  options.max_clusterings = 3;
  auto candidates = Enumerate(r, s3, 2, options);
  EXPECT_LE(candidates.size(), 3u);
}

TEST(ClusteringsTest, DeterministicForSameSeed) {
  Relation r = MedicalRelation();
  auto s3 = MustParse(*MedicalSchema(), "CTY[Vancouver] in [2,4]");
  ClusteringEnumOptions options;
  options.seed = 77;
  auto a = Enumerate(r, s3, 2, options);
  auto b = Enumerate(r, s3, 2, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].clusters, b[i].clusters);
  }
}

TEST(ClusteringsTest, BlockPartitionsHonorK) {
  Relation r = MedicalRelation();
  auto s3 = MustParse(*MedicalSchema(), "CTY[Vancouver] in [2,4]");
  for (size_t k : {2u, 3u, 4u}) {
    for (const auto& candidate : Enumerate(r, s3, k)) {
      for (const Cluster& cluster : candidate.clusters) {
        EXPECT_GE(cluster.size(), k);
      }
    }
  }
}

TEST(ClusteringsTest, MultiAttributeConstraint) {
  Relation r = MedicalRelation();
  auto c = MustParse(*MedicalSchema(), "GEN,ETH[Male,African] in [2,2]");
  auto candidates = Enumerate(r, c, 2);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(Canonical(candidates.front().clusters),
            (std::set<std::set<RowId>>{{4, 5}}));
}

// ---------------------------------------- bounded (dynamic) enumeration

TEST(ClusteringsBoundsTest, RespectsMinAndMaxPreserve) {
  Relation r = MedicalRelation();
  // Free targets: the four Vancouver rows.
  std::vector<RowId> free_targets = {5, 6, 7, 9};
  ClusteringEnumOptions options;
  auto candidates =
      EnumerateClusteringsWithBounds(r, free_targets, 2, 3, 4, options);
  ASSERT_FALSE(candidates.empty());
  for (const auto& candidate : candidates) {
    EXPECT_GE(candidate.preserved, 3u);
    EXPECT_LE(candidate.preserved, 4u);
    for (const Cluster& cluster : candidate.clusters) {
      EXPECT_GE(cluster.size(), 2u);
    }
  }
}

TEST(ClusteringsBoundsTest, EmptyWhenUnmeetable) {
  Relation r = MedicalRelation();
  std::vector<RowId> free_targets = {5, 6};
  ClusteringEnumOptions options;
  // Need at least 3 preserved but only 2 free rows.
  EXPECT_TRUE(
      EnumerateClusteringsWithBounds(r, free_targets, 2, 3, 5, options)
          .empty());
  // Cluster must have >= k = 3 rows but max_preserve is 2.
  EXPECT_TRUE(
      EnumerateClusteringsWithBounds(r, free_targets, 3, 1, 2, options)
          .empty());
  // No free rows at all.
  EXPECT_TRUE(EnumerateClusteringsWithBounds(r, {}, 2, 1, 5, options).empty());
}

TEST(ClusteringsBoundsTest, RunAlignedBlocksKeepIdenticalTuplesTogether) {
  // 3 runs of identical tuples (sizes 6, 6, 3). With k = 3, blocks must
  // align to runs: the two 6-runs become uniform blocks; the remainder
  // run of 3 forms its own block. No block mixes runs unless forced.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 6; ++i) rows.push_back({"F", "Asian", "30", "BC", "V", "x"});
  for (int i = 0; i < 6; ++i) rows.push_back({"M", "African", "40", "AB", "C", "x"});
  for (int i = 0; i < 3; ++i) rows.push_back({"F", "Cauc", "50", "MB", "W", "x"});
  auto relation = RelationFromRows(testing::MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());

  std::vector<RowId> all(15);
  for (RowId i = 0; i < 15; ++i) all[i] = i;
  ClusteringEnumOptions options;
  auto candidates =
      EnumerateClusteringsWithBounds(*relation, all, 3, 15, 15, options);
  ASSERT_FALSE(candidates.empty());

  // The first (run-aligned block) candidate: every cluster is uniform.
  const auto& blocks = candidates.front().clusters;
  for (const Cluster& cluster : blocks) {
    EXPECT_GE(cluster.size(), 3u);
    for (RowId row : cluster) {
      for (size_t col : relation->schema().qi_indices()) {
        EXPECT_EQ(relation->At(row, col), relation->At(cluster[0], col))
            << "mixed block";
      }
    }
  }
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(ClusteringsBoundsTest, SmallRunsBufferTogetherAwayFromBigRuns) {
  // One big run (8 rows) plus four small runs of 2. k = 4: the big run
  // must stay pure; small runs combine into mixed buffer blocks.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 8; ++i) rows.push_back({"F", "Asian", "30", "BC", "V", "x"});
  for (int v = 0; v < 4; ++v) {
    for (int i = 0; i < 2; ++i) {
      rows.push_back({"M", "Eth" + std::to_string(v), "40", "AB", "C", "x"});
    }
  }
  auto relation = RelationFromRows(testing::MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  std::vector<RowId> all(16);
  for (RowId i = 0; i < 16; ++i) all[i] = i;
  ClusteringEnumOptions options;
  auto candidates =
      EnumerateClusteringsWithBounds(*relation, all, 4, 16, 16, options);
  ASSERT_FALSE(candidates.empty());
  // Find the run-aligned candidate: one block must be exactly the 8 Asian
  // rows (pure), so their contribution survives.
  bool found_pure_big_run = false;
  for (const Cluster& cluster : candidates.front().clusters) {
    if (cluster.size() == 8) {
      bool all_asian = true;
      for (RowId row : cluster) {
        if (relation->ValueString(row, 1) != "Asian") all_asian = false;
      }
      found_pure_big_run = found_pure_big_run || all_asian;
    }
  }
  EXPECT_TRUE(found_pure_big_run);
}

}  // namespace
}  // namespace diva
