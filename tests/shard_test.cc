// The sharding subsystem's headline guarantee, asserted end to end: the
// DivaOptions::shard flag chooses only *how* a multi-component instance
// executes (concurrent TaskGroup work items vs the same per-shard
// computations inline), never *what* it computes — CSV, report, and
// audit telemetry are byte-identical with sharding on or off and at
// every thread width. See core/shard.h for why this holds by
// construction. Unit coverage for the plan itself (union-find, component
// ordering, residual accounting) and the columnar store backing it rides
// along.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/parallel.h"
#include "core/constraint_graph.h"
#include "core/diva.h"
#include "core/shard.h"
#include "relation/columnar.h"
#include "relation/csv.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MakeWorkload;
using testing::MedicalRelation;
using testing::MedicalSchema;

// ---------------------------------------------------------------------------
// UnionFind

TEST(UnionFindTest, StartsAsAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.Find(i), i);
}

TEST(UnionFindTest, ChainCollapsesToOneSet) {
  UnionFind uf(6);
  for (size_t i = 0; i + 1 < 6; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.NumSets(), 1u);
  const size_t root = uf.Find(0);
  for (size_t i = 1; i < 6; ++i) EXPECT_EQ(uf.Find(i), root);
}

TEST(UnionFindTest, RedundantUnionsAreNoOps) {
  UnionFind uf(4);
  uf.Union(0, 1);
  uf.Union(2, 3);
  EXPECT_EQ(uf.NumSets(), 2u);
  uf.Union(1, 0);
  uf.Union(3, 2);
  EXPECT_EQ(uf.NumSets(), 2u);
  EXPECT_NE(uf.Find(0), uf.Find(2));
  uf.Union(0, 3);
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.Find(1), uf.Find(2));
}

// ---------------------------------------------------------------------------
// ComputeShardPlan

/// Builds a graph from target lists alone; adjacency is derived from
/// target overlap exactly as BuildConstraintGraph would.
ConstraintGraph GraphFromTargets(std::vector<std::vector<RowId>> targets) {
  ConstraintGraph graph;
  graph.targets = std::move(targets);
  graph.adjacency.resize(graph.targets.size());
  for (size_t i = 0; i < graph.targets.size(); ++i) {
    for (size_t j = i + 1; j < graph.targets.size(); ++j) {
      bool overlap = false;
      for (RowId a : graph.targets[i]) {
        for (RowId b : graph.targets[j]) overlap = overlap || a == b;
      }
      if (overlap) {
        graph.adjacency[i].push_back(j);
        graph.adjacency[j].push_back(i);
      }
    }
  }
  return graph;
}

TEST(ShardPlanTest, ZeroConstraintsIsPureResidual) {
  ShardPlan plan = ComputeShardPlan(ConstraintGraph{}, 7);
  EXPECT_TRUE(plan.shards.empty());
  EXPECT_EQ(plan.residual_rows, 7u);
  EXPECT_EQ(plan.MaxShardRows(), 0u);
  EXPECT_FALSE(plan.Effective());
}

TEST(ShardPlanTest, AllSingletonsShardIndependently) {
  ShardPlan plan =
      ComputeShardPlan(GraphFromTargets({{0, 1}, {4, 5}, {2, 3}}), 8);
  ASSERT_EQ(plan.shards.size(), 3u);
  EXPECT_TRUE(plan.Effective());
  // Component index = rank of the smallest member constraint index.
  EXPECT_EQ(plan.shards[0].constraints, std::vector<size_t>{0});
  EXPECT_EQ(plan.shards[1].constraints, std::vector<size_t>{1});
  EXPECT_EQ(plan.shards[2].constraints, std::vector<size_t>{2});
  EXPECT_EQ(plan.shards[0].rows, (std::vector<RowId>{0, 1}));
  EXPECT_EQ(plan.shards[1].rows, (std::vector<RowId>{4, 5}));
  EXPECT_EQ(plan.shards[2].rows, (std::vector<RowId>{2, 3}));
  EXPECT_EQ(plan.residual_rows, 2u);  // rows 6, 7
  EXPECT_EQ(plan.MaxShardRows(), 2u);
}

TEST(ShardPlanTest, SingleGiantComponentIsNotEffective) {
  // A chain: 0-1 overlap on row 2, 1-2 overlap on row 4 — transitively
  // one component even though constraints 0 and 2 never touch.
  ShardPlan plan =
      ComputeShardPlan(GraphFromTargets({{0, 2}, {2, 4}, {4, 6}}), 8);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_FALSE(plan.Effective());
  EXPECT_EQ(plan.shards[0].constraints, (std::vector<size_t>{0, 1, 2}));
  // The union of overlapping targets, ascending, deduplicated.
  EXPECT_EQ(plan.shards[0].rows, (std::vector<RowId>{0, 2, 4, 6}));
  EXPECT_EQ(plan.residual_rows, 4u);
}

TEST(ShardPlanTest, OverlappingChainsSplitAtTheGap) {
  // Two chains of two constraints each; the gap between rows 3 and 10
  // splits them. Constraint order interleaves the chains to prove shard
  // membership follows connectivity, not index adjacency.
  ShardPlan plan = ComputeShardPlan(
      GraphFromTargets({{0, 1}, {10, 11}, {1, 2, 3}, {11, 12}}), 14);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_TRUE(plan.Effective());
  EXPECT_EQ(plan.shards[0].constraints, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(plan.shards[1].constraints, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(plan.shards[0].rows, (std::vector<RowId>{0, 1, 2, 3}));
  EXPECT_EQ(plan.shards[1].rows, (std::vector<RowId>{10, 11, 12}));
  EXPECT_EQ(plan.MaxShardRows(), 4u);
  EXPECT_EQ(plan.residual_rows, 14u - 7u);
}

TEST(ShardPlanTest, EmptyResidualWhenEveryRowIsTargeted) {
  ShardPlan plan = ComputeShardPlan(GraphFromTargets({{0, 1, 2}, {3, 4}}), 5);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.residual_rows, 0u);
}

TEST(ShardPlanTest, MatchesTheBuiltGraphOnTheMedicalExample) {
  // ETH[Asian] (t8-t10) and PRV[AB] (t1-t3) are disjoint; the real
  // BuildConstraintGraph must decompose them into two components.
  Relation relation = MedicalRelation();
  auto schema = MedicalSchema();
  auto constraints = ParseConstraintSet(
      *schema, "ETH[Asian] in [2,5]\nPRV[AB] in [1,3]\n");
  ASSERT_TRUE(constraints.ok());
  ConstraintGraph graph = BuildConstraintGraph(relation, *constraints);
  ShardPlan plan = ComputeShardPlan(graph, relation.NumRows());
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0].rows, (std::vector<RowId>{7, 8, 9}));
  EXPECT_EQ(plan.shards[1].rows, (std::vector<RowId>{0, 1, 2}));
  EXPECT_EQ(plan.residual_rows, 4u);
}

TEST(ShardSeedTest, StreamsAreDistinctAndDeterministic) {
  EXPECT_EQ(ShardSeed(42, 0), ShardSeed(42, 0));
  EXPECT_NE(ShardSeed(42, 0), ShardSeed(42, 1));
  EXPECT_NE(ShardSeed(42, 0), ShardSeed(43, 0));
  // The derived stream must not echo the base seed into any shard.
  for (size_t s = 0; s < 8; ++s) EXPECT_NE(ShardSeed(42, s), 42u);
}

// ---------------------------------------------------------------------------
// ColumnStore / Arena

TEST(ArenaTest, AllocationsAreCountedAndChunked) {
  Arena arena(/*chunk_bytes=*/64);
  auto a = arena.AllocateArray<uint32_t>(4);
  auto b = arena.AllocateArray<uint32_t>(4);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(arena.allocated_bytes(), 32u);
  EXPECT_EQ(arena.chunk_count(), 1u);  // both fit the first chunk
  // Oversized allocations get a dedicated chunk but stay contiguous.
  auto big = arena.AllocateArray<uint32_t>(64);
  EXPECT_EQ(big.size(), 64u);
  EXPECT_GE(arena.chunk_count(), 2u);
  big[0] = 1;
  big[63] = 2;  // writable end to end
  EXPECT_EQ(big[0] + big[63], 3u);
}

TEST(ColumnStoreTest, RoundTripsTheMedicalRelation) {
  Relation relation = MedicalRelation();
  ColumnStore store = ColumnStore::FromRelation(relation);
  EXPECT_EQ(store.NumRows(), relation.NumRows());
  EXPECT_EQ(store.NumColumns(), relation.NumAttributes());
  for (size_t row = 0; row < relation.NumRows(); ++row) {
    for (size_t col = 0; col < relation.NumAttributes(); ++col) {
      EXPECT_EQ(store.At(static_cast<RowId>(row), col),
                relation.At(static_cast<RowId>(row), col));
    }
  }
  std::ostringstream original, round_trip;
  ASSERT_TRUE(WriteCsv(relation, original).ok());
  ASSERT_TRUE(WriteCsv(store.ToRelation(), round_trip).ok());
  EXPECT_EQ(round_trip.str(), original.str());
}

TEST(ColumnStoreTest, GatherMatchesSelectRows) {
  Relation relation = MedicalRelation();
  ColumnStore store = ColumnStore::FromRelation(relation);
  const std::vector<RowId> picks = {7, 2, 9, 0};
  std::ostringstream gathered, selected;
  ASSERT_TRUE(WriteCsv(store.GatherRows(picks), gathered).ok());
  ASSERT_TRUE(WriteCsv(relation.SelectRows(picks), selected).ok());
  EXPECT_EQ(gathered.str(), selected.str());
}

// ---------------------------------------------------------------------------
// Shard equivalence: shard on/off x thread width, byte for byte

/// One full DIVA run reduced to everything the shard flag could
/// plausibly perturb: published CSV bytes, the search/report scalars,
/// the shard accounting itself, and every deterministic-scope counter
/// that moved (spans and counters merge in shard-index order, so these
/// pin the telemetry path too).
struct ShardFingerprint {
  std::string csv;
  bool complete = false;
  uint64_t coloring_steps = 0;
  uint64_t backtracks = 0;
  size_t sigma_rows = 0;
  size_t repair_cells = 0;
  size_t shards = 0;
  size_t residual_rows = 0;
  std::vector<size_t> unsatisfied;
  std::vector<std::string> counters;

  bool operator==(const ShardFingerprint&) const = default;
};

std::vector<std::string> MovedDeterministicCounters(
    const std::vector<counters::Sample>& delta) {
  std::vector<std::string> moved;
  for (const counters::Sample& sample :
       counters::FilterScope(delta, counters::Scope::kDeterministic)) {
    if (sample.value == 0 && sample.sum == 0) continue;
    moved.push_back(sample.name + "=" + std::to_string(sample.value) + "/" +
                    std::to_string(sample.sum));
  }
  return moved;
}

ShardFingerprint FingerprintRun(const Relation& relation,
                                const ConstraintSet& constraints, size_t k,
                                bool shard, size_t threads) {
  DivaOptions options;
  options.k = k;
  options.shard = shard;
  options.threads = threads;
  options.audit = true;
  auto result = RunDiva(relation, constraints, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  ShardFingerprint print;
  if (!result.ok()) return print;
  std::ostringstream csv;
  EXPECT_TRUE(WriteCsv(result->relation, csv).ok());
  print.csv = csv.str();
  print.complete = result->report.clustering_complete;
  print.coloring_steps = result->report.coloring_steps;
  print.backtracks = result->report.backtracks;
  print.sigma_rows = result->report.sigma_rows;
  print.repair_cells = result->report.repair_cells;
  print.shards = result->report.shards;
  print.residual_rows = result->report.residual_rows;
  print.unsatisfied = result->report.unsatisfied;
  print.counters = MovedDeterministicCounters(result->report.counters);
  return print;
}

TEST(ShardEquivalenceTest, MultiComponentMedicalIsByteIdentical) {
  Relation relation = MedicalRelation();
  auto schema = MedicalSchema();
  auto constraints = ParseConstraintSet(
      *schema, "ETH[Asian] in [2,5]\nPRV[AB] in [1,3]\n");
  ASSERT_TRUE(constraints.ok());

  ShardFingerprint baseline =
      FingerprintRun(relation, *constraints, 2, /*shard=*/false, /*threads=*/1);
  EXPECT_FALSE(baseline.csv.empty());
  EXPECT_EQ(baseline.shards, 2u);
  EXPECT_EQ(baseline.residual_rows, 4u);
  for (bool shard : {false, true}) {
    for (size_t threads : {1u, 2u, 8u}) {
      ShardFingerprint run =
          FingerprintRun(relation, *constraints, 2, shard, threads);
      EXPECT_EQ(run, baseline)
          << "shard = " << shard << ", threads = " << threads;
    }
  }
  SetParallelThreads(1);
}

TEST(ShardEquivalenceTest, OverlappingChainPlusIslandIsByteIdentical) {
  // ETH[Asian] and CTY[Vancouver] overlap (t8, t10), chaining into one
  // component; PRV[AB] is an island — a mixed plan with a multi-
  // constraint shard and a singleton shard.
  Relation relation = MedicalRelation();
  auto schema = MedicalSchema();
  auto constraints = ParseConstraintSet(*schema,
                                        "ETH[Asian] in [2,5]\n"
                                        "CTY[Vancouver] in [2,4]\n"
                                        "PRV[AB] in [1,3]\n");
  ASSERT_TRUE(constraints.ok());

  ShardFingerprint baseline =
      FingerprintRun(relation, *constraints, 2, /*shard=*/false, /*threads=*/1);
  EXPECT_EQ(baseline.shards, 2u);
  for (bool shard : {false, true}) {
    for (size_t threads : {1u, 2u, 8u}) {
      ShardFingerprint run =
          FingerprintRun(relation, *constraints, 2, shard, threads);
      EXPECT_EQ(run, baseline)
          << "shard = " << shard << ", threads = " << threads;
    }
  }
  SetParallelThreads(1);
}

TEST(ShardEquivalenceTest, SingleComponentTakesTheLegacyPathUnchanged) {
  // The paper's example constraints form one component: the plan is not
  // effective, and the flag must be a strict no-op against the pre-shard
  // pipeline's bytes (determinism_test pins those bytes independently).
  Relation relation = MedicalRelation();
  ConstraintSet constraints =
      testing::MedicalConstraints(*testing::MedicalSchema());
  ShardFingerprint off =
      FingerprintRun(relation, constraints, 2, /*shard=*/false, /*threads=*/1);
  EXPECT_EQ(off.shards, 1u);
  ShardFingerprint on =
      FingerprintRun(relation, constraints, 2, /*shard=*/true, /*threads=*/8);
  EXPECT_EQ(on, off);
  SetParallelThreads(1);
}

/// The fuzz corpus leg: every workload the differential suite draws
/// must fingerprint identically in all six execution modes. Instances
/// here span single-component fallbacks, multi-component plans, and
/// zero-constraint (pure residual) runs — whatever the seed yields.
class ShardCorpusTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardCorpusTest, ShardFlagAndThreadWidthNeverChangeTheBytes) {
  testing::FuzzWorkload workload = MakeWorkload(GetParam());
  ShardFingerprint baseline =
      FingerprintRun(workload.relation, workload.constraints, workload.k,
                     /*shard=*/false, /*threads=*/1);
  EXPECT_FALSE(baseline.csv.empty());
  for (bool shard : {false, true}) {
    for (size_t threads : {1u, 2u, 8u}) {
      if (!shard && threads == 1) continue;  // the baseline itself
      ShardFingerprint run = FingerprintRun(
          workload.relation, workload.constraints, workload.k, shard, threads);
      EXPECT_EQ(run, baseline)
          << "shard = " << shard << ", threads = " << threads;
    }
  }
  SetParallelThreads(1);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ShardCorpusTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace diva
