#include <gtest/gtest.h>

#include "anon/privacy.h"
#include "relation/stats.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;

TEST(StatsTest, ProfileOfPaperTable1) {
  RelationStats stats = ComputeStats(MedicalRelation());
  EXPECT_EQ(stats.num_rows, 10u);
  EXPECT_EQ(stats.num_attributes, 6u);
  EXPECT_EQ(stats.distinct_qi_projections, 10u);

  const AttributeStats& gen = stats.attributes[0];
  EXPECT_EQ(gen.name, "GEN");
  EXPECT_EQ(gen.distinct_values, 2u);
  EXPECT_EQ(gen.suppressed, 0u);
  EXPECT_EQ(gen.modal_value, "Female");  // 5/5 tie -> first-seen code wins
  EXPECT_EQ(gen.modal_count, 5u);

  const AttributeStats& eth = stats.attributes[1];
  EXPECT_EQ(eth.distinct_values, 3u);
  EXPECT_EQ(eth.modal_value, "Caucasian");
  EXPECT_EQ(eth.modal_count, 5u);

  const AttributeStats& age = stats.attributes[2];
  EXPECT_TRUE(age.has_numeric_range);
  EXPECT_DOUBLE_EQ(age.min_value, 32.0);
  EXPECT_DOUBLE_EQ(age.max_value, 80.0);
}

TEST(StatsTest, CountsSuppressedCells) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"*", "Asian", "30", "BC", "V", "x"},
                                {"*", "*", "30", "BC", "V", "x"},
                                {"F", "Asian", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  RelationStats stats = ComputeStats(*r);
  EXPECT_EQ(stats.attributes[0].suppressed, 2u);
  EXPECT_EQ(stats.attributes[0].distinct_values, 1u);
  EXPECT_EQ(stats.attributes[1].suppressed, 1u);
}

TEST(StatsTest, EmptyRelation) {
  Relation r(MedicalSchema());
  RelationStats stats = ComputeStats(r);
  EXPECT_EQ(stats.num_rows, 0u);
  EXPECT_EQ(stats.attributes[2].has_numeric_range, false);
  EXPECT_TRUE(stats.attributes[0].modal_value.empty());
}

TEST(StatsTest, ToStringContainsHeadline) {
  RelationStats stats = ComputeStats(MedicalRelation());
  std::string text = StatsToString(stats);
  EXPECT_NE(text.find("10 rows, 6 attributes"), std::string::npos);
  EXPECT_NE(text.find("GEN"), std::string::npos);
  EXPECT_NE(text.find("range [32, 80]"), std::string::npos);
}

// ------------------------------------------------------- (X,Y)-anonymity

TEST(XYAnonymityTest, ValidatesArguments) {
  Relation r = MedicalRelation();
  EXPECT_FALSE(IsXYAnonymous(r, {}, {0}, 2).ok());
  EXPECT_FALSE(IsXYAnonymous(r, {0}, {}, 2).ok());
  EXPECT_FALSE(IsXYAnonymous(r, {99}, {0}, 2).ok());
  EXPECT_FALSE(IsXYAnonymous(r, {0}, {99}, 2).ok());
}

TEST(XYAnonymityTest, TrivialForKOne) {
  Relation r = MedicalRelation();
  auto result = IsXYAnonymous(r, {0}, {5}, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
}

TEST(XYAnonymityTest, DetectsWeakLinking) {
  // GEN -> DIAG on Table 1: Female links to {Hypertension, Tuberculosis,
  // Seizure, Influenza, Migraine} (5 distinct), Male to {Osteoarthritis,
  // Migraine, Hypertension, Seizure} (4 distinct).
  Relation r = MedicalRelation();
  auto at4 = IsXYAnonymous(r, {0}, {5}, 4);
  auto at5 = IsXYAnonymous(r, {0}, {5}, 5);
  ASSERT_TRUE(at4.ok() && at5.ok());
  EXPECT_TRUE(*at4);
  EXPECT_FALSE(*at5);  // Male has only 4 distinct diagnoses
}

TEST(XYAnonymityTest, GeneralizesKAnonymity) {
  // X = QI, Y = a unique column: (X,Y)-anonymity == k-anonymity.
  auto schema = Schema::Make({
      {"Q", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"UID", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  ASSERT_TRUE(schema.ok());
  auto r = RelationFromRows(*schema, {{"a", "u1"},
                                      {"a", "u2"},
                                      {"b", "u3"},
                                      {"b", "u4"},
                                      {"b", "u5"}});
  ASSERT_TRUE(r.ok());
  auto at2 = IsXYAnonymous(*r, {0}, {1}, 2);
  auto at3 = IsXYAnonymous(*r, {0}, {1}, 3);
  ASSERT_TRUE(at2.ok() && at3.ok());
  EXPECT_TRUE(*at2);
  EXPECT_FALSE(*at3);  // value "a" links to only 2 UIDs
}

}  // namespace
}  // namespace diva
