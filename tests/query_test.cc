#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "core/diva.h"
#include "metrics/query.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

TEST(QueryTest, ExactOnUnsuppressedData) {
  Relation r = MedicalRelation();
  auto asians = CountValue(r, "ETH", "Asian");
  ASSERT_TRUE(asians.ok());
  EXPECT_EQ(asians->certain, 3u);
  EXPECT_EQ(asians->possible, 3u);
  EXPECT_DOUBLE_EQ(UncertaintyRatio(*asians), 0.0);
}

TEST(QueryTest, UnknownAttributeRejected) {
  Relation r = MedicalRelation();
  EXPECT_FALSE(CountValue(r, "ZODIAC", "Leo").ok());
  EXPECT_FALSE(Histogram(r, "ZODIAC").ok());
}

TEST(QueryTest, UnknownValueHasOnlySuppressedUpside) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "*", "30", "BC", "V", "x"},
                                {"F", "Asian", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  auto bounds = CountValue(*r, "ETH", "Martian");
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->certain, 0u);
  EXPECT_EQ(bounds->possible, 1u);  // the star could be anything
}

TEST(QueryTest, SuppressionWidensBounds) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "x"},
                                {"F", "*", "30", "BC", "V", "x"},
                                {"F", "African", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  auto bounds = CountValue(*r, "ETH", "Asian");
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(bounds->certain, 1u);
  EXPECT_EQ(bounds->possible, 2u);
  EXPECT_DOUBLE_EQ(UncertaintyRatio(*bounds), 0.5);
}

TEST(QueryTest, MultiAttributeTargetBounds) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"Male", "African", "30", "BC", "V", "x"},
                                {"Male", "*", "30", "BC", "V", "x"},
                                {"Female", "*", "30", "BC", "V", "x"},
                                {"Male", "Asian", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  auto constraint = MustParse(*MedicalSchema(),
                              "GEN,ETH[Male,African] in [0,9]");
  CountBounds bounds = CountTarget(*r, constraint);
  EXPECT_EQ(bounds.certain, 1u);   // row 0
  EXPECT_EQ(bounds.possible, 2u);  // row 1 compatible; rows 2-3 not
}

TEST(QueryTest, HistogramBounds) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "x"},
                                {"F", "Asian", "30", "BC", "V", "x"},
                                {"F", "African", "30", "BC", "V", "x"},
                                {"F", "*", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  auto histogram = Histogram(*r, "ETH");
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(histogram->at("Asian"), (CountBounds{2, 3}));
  EXPECT_EQ(histogram->at("African"), (CountBounds{1, 2}));
  EXPECT_EQ(histogram->size(), 2u);  // stars are not a value
}

TEST(QueryTest, TruthAlwaysInsideBounds) {
  // Property: for any anonymization of R, the original count lies within
  // [certain, possible] of the published relation.
  Relation original = MedicalRelation();
  auto kmember = MakeKMember({});
  auto published = Anonymize(kmember.get(), original, 3);
  ASSERT_TRUE(published.ok());

  for (const char* value : {"Asian", "African", "Caucasian"}) {
    auto truth = CountValue(original, "ETH", value);
    auto bounds = CountValue(*published, "ETH", value);
    ASSERT_TRUE(truth.ok() && bounds.ok());
    EXPECT_GE(truth->certain, bounds->certain) << value;
    EXPECT_LE(truth->certain, bounds->possible) << value;
  }
}

TEST(QueryTest, DivaKeepsConstraintCountsCertain) {
  // The point of DIVA: counts targeted by Sigma stay certain (within
  // bounds) instead of dissolving into uncertainty.
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  for (const auto& constraint : constraints) {
    CountBounds bounds = CountTarget(result->relation, constraint);
    EXPECT_GE(bounds.certain, constraint.lower()) << constraint.ToString();
  }
}

}  // namespace
}  // namespace diva
