#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/counters.h"
#include "common/parallel.h"
#include "constraint/generator.h"
#include "core/coloring.h"
#include "core/constraint_graph.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

ColoringOutcome Color(const Relation& r, const ConstraintSet& constraints,
                      ColoringOptions options) {
  ConstraintGraph graph = BuildConstraintGraph(r, constraints);
  return ColorConstraints(r, constraints, graph, options);
}

// ------------------------------------------------------------ graph

TEST(ConstraintGraphTest, PaperFigure2) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  ConstraintGraph graph = BuildConstraintGraph(r, constraints);

  ASSERT_EQ(graph.NumNodes(), 3u);
  EXPECT_EQ(graph.targets[0], (std::vector<RowId>{7, 8, 9}));
  EXPECT_EQ(graph.targets[1], (std::vector<RowId>{4, 5}));
  EXPECT_EQ(graph.targets[2], (std::vector<RowId>{5, 6, 7, 9}));

  // Edges: {v1,v3} and {v2,v3}; no edge {v1,v2}.
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_TRUE(graph.HasEdge(1, 2));
  EXPECT_FALSE(graph.HasEdge(0, 1));
  EXPECT_EQ(graph.adjacency[2], (std::vector<size_t>{0, 1}));
}

TEST(ConstraintGraphTest, EmptySetIsEmptyGraph) {
  Relation r = MedicalRelation();
  ConstraintGraph graph = BuildConstraintGraph(r, {});
  EXPECT_EQ(graph.NumNodes(), 0u);
}

// ------------------------------------------------------------ coloring

class ColoringStrategyTest
    : public ::testing::TestWithParam<SelectionStrategy> {};

TEST_P(ColoringStrategyTest, PaperExampleColorsCompletely) {
  // Example 3.4: a complete coloring of {v1, v2, v3} exists for k = 2.
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());

  ColoringOptions options;
  options.k = 2;
  options.strategy = GetParam();
  ColoringOutcome outcome = Color(r, constraints, options);

  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.NumColored(), 3u);
  // Preserved counts within every constraint's bounds.
  for (size_t i = 0; i < constraints.size(); ++i) {
    EXPECT_GE(outcome.preserved[i], constraints[i].lower()) << i;
    EXPECT_LE(outcome.preserved[i], constraints[i].upper()) << i;
  }
  // Chosen clusters pairwise disjoint, each of size >= k.
  std::set<RowId> seen;
  for (const Cluster& cluster : outcome.chosen_clusters) {
    EXPECT_GE(cluster.size(), 2u);
    for (RowId row : cluster) {
      EXPECT_TRUE(seen.insert(row).second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ColoringStrategyTest,
    ::testing::Values(SelectionStrategy::kBasic, SelectionStrategy::kMinChoice,
                      SelectionStrategy::kMaxFanOut),
    [](const ::testing::TestParamInfo<SelectionStrategy>& info) {
      return SelectionStrategyToString(info.param);
    });

TEST(ColoringTest, UpperBoundsNeverExceeded) {
  // Section 3.2's interaction example: s2 = (ETH[African],1,3) preserves
  // two Males as a side effect; a GEN[Male] constraint's upper bound must
  // account for that contribution.
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = {
      MustParse(*schema, "ETH[African] in [1,3]"),
      MustParse(*schema, "GEN[Male] in [1,3]"),
  };
  ColoringOptions options;
  options.k = 2;
  ColoringOutcome outcome = Color(r, constraints, options);
  EXPECT_LE(outcome.preserved[0], 3u);
  EXPECT_LE(outcome.preserved[1], 3u);
  if (outcome.complete) {
    EXPECT_GE(outcome.preserved[0], 1u);
    EXPECT_GE(outcome.preserved[1], 1u);
  }
}

TEST(ColoringTest, CrossContributionSatisfiesNestedConstraint) {
  // The African cluster {t5, t6} preserves two Males, so GEN[Male] with
  // lower bound 2 is satisfiable with no cluster of its own — the
  // dynamic deficit accounting must discover this.
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = {
      MustParse(*schema, "ETH[African] in [2,2]"),
      MustParse(*schema, "GEN[Male] in [2,3]"),
  };
  ColoringOptions options;
  options.k = 2;
  options.strategy = SelectionStrategy::kMaxFanOut;
  ColoringOutcome outcome = Color(r, constraints, options);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.preserved[0], 2u);
  EXPECT_GE(outcome.preserved[1], 2u);
  EXPECT_LE(outcome.preserved[1], 3u);
}

TEST(ColoringTest, IdenticalConstraintsShareClusters) {
  // Two identical constraints: the second's lower bound is covered by the
  // first's cluster; contributions are counted once.
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = {
      MustParse(*schema, "ETH[African] in [2,2]"),
      MustParse(*schema, "ETH[African] in [2,2]"),
  };
  ColoringOptions options;
  options.k = 2;
  ColoringOutcome outcome = Color(r, constraints, options);
  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.preserved[0], 2u);
  EXPECT_EQ(outcome.preserved[1], 2u);
  EXPECT_EQ(outcome.chosen_clusters.size(), 1u);
}

TEST(ColoringTest, OverlappingClustersRejected) {
  // ETH[African] in [2,2] must take rows {4,5}. CTY[Winnipeg] (targets
  // {3,4,8}) must then avoid row 4: only {3,8} remains free.
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = {
      MustParse(*schema, "ETH[African] in [2,2]"),
      MustParse(*schema, "CTY[Winnipeg] in [2,2]"),
  };
  ColoringOptions options;
  options.k = 2;
  ColoringOutcome outcome = Color(r, constraints, options);
  ASSERT_TRUE(outcome.complete);
  std::set<RowId> seen;
  for (const Cluster& cluster : outcome.chosen_clusters) {
    for (RowId row : cluster) {
      EXPECT_TRUE(seen.insert(row).second) << "overlap on row " << row;
    }
  }
  EXPECT_TRUE(seen.count(4));  // African cluster took t5
  EXPECT_TRUE(seen.count(3) && seen.count(8));  // Winnipeg took {t4, t9}
}

TEST(ColoringTest, InfeasibleNodeLeavesPartialAssignment) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = {
      MustParse(*schema, "ETH[Asian] in [2,5]"),
      MustParse(*schema, "ETH[Martian] in [1,3]"),  // no targets
  };
  ColoringOptions options;
  options.k = 2;
  ColoringOutcome outcome = Color(r, constraints, options);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.NumColored(), 1u);  // best partial keeps the Asian node
  EXPECT_GE(outcome.preserved[0], 2u);
}

TEST(ColoringTest, BudgetExhaustionReported) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  ColoringOptions options;
  options.k = 2;
  options.step_budget = 1;  // absurdly small
  ColoringOutcome outcome = Color(r, constraints, options);
  EXPECT_TRUE(outcome.budget_exhausted || outcome.complete);
  // Both search passes together may take a couple of steps each.
  EXPECT_LE(outcome.steps, 4u);
}

TEST(ColoringTest, EmptyConstraintSetIsTriviallyComplete) {
  Relation r = MedicalRelation();
  ColoringOptions options;
  ColoringOutcome outcome = Color(r, {}, options);
  EXPECT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.chosen_clusters.empty());
}

TEST(ColoringTest, DeterministicForSeed) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  ColoringOptions options;
  options.k = 2;
  options.strategy = SelectionStrategy::kBasic;
  options.seed = 123;
  ColoringOutcome a = Color(r, constraints, options);
  ColoringOutcome b = Color(r, constraints, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.steps, b.steps);
}

// ------------------------------------------------------------ portfolio

TEST(PortfolioTest, SingleThreadEqualsSequential) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  ConstraintGraph graph = BuildConstraintGraph(r, constraints);
  ColoringOptions options;
  options.k = 2;
  options.seed = 7;
  ColoringOutcome sequential =
      ColorConstraints(r, constraints, graph, options);
  ColoringOutcome portfolio =
      ColorConstraintsPortfolio(r, constraints, graph, options, 1);
  EXPECT_EQ(sequential.assignment, portfolio.assignment);
  EXPECT_EQ(sequential.complete, portfolio.complete);
}

TEST(PortfolioTest, MultiThreadFindsValidColoring) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  ConstraintGraph graph = BuildConstraintGraph(r, constraints);
  ColoringOptions options;
  options.k = 2;
  ColoringOutcome outcome =
      ColorConstraintsPortfolio(r, constraints, graph, options, 4);
  EXPECT_TRUE(outcome.complete);
  // Valid coloring invariants regardless of which worker won.
  std::set<RowId> seen;
  for (const Cluster& cluster : outcome.chosen_clusters) {
    EXPECT_GE(cluster.size(), 2u);
    for (RowId row : cluster) EXPECT_TRUE(seen.insert(row).second);
  }
  for (size_t i = 0; i < constraints.size(); ++i) {
    EXPECT_GE(outcome.preserved[i], constraints[i].lower());
    EXPECT_LE(outcome.preserved[i], constraints[i].upper());
  }
}

TEST(PortfolioTest, DivaWithPortfolioOption) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.portfolio_threads = 3;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
  EXPECT_TRUE(SatisfiesAll(result->relation, constraints));
}

// ------------------------------------------------------------ memo cache

uint64_t CounterDelta(const std::vector<counters::Sample>& delta,
                      const std::string& name) {
  for (const counters::Sample& sample : delta) {
    if (sample.name == name) return sample.value;
  }
  return 0;
}

/// A heavy-overlap workload (nested refinement chains, tight bounds)
/// that forces real backtracking in the strict passes — the regime the
/// candidate memo exists for.
struct StressWorkload {
  Relation relation;
  ConstraintSet constraints;
};

StressWorkload MakeStressWorkload() {
  ProfileOptions profile_options;
  profile_options.seed = 1000;
  auto relation = GenerateProfile(DatasetProfile::kCredit, profile_options);
  EXPECT_TRUE(relation.ok());
  ConstraintGenOptions gen;
  gen.count = 24;
  gen.slack = 0.05;
  gen.min_support = 15;
  gen.target_conflict = 0.9;
  gen.seed = 1000;
  auto constraints = GenerateConstraints(*relation, gen);
  EXPECT_TRUE(constraints.ok());
  return {*std::move(relation), *std::move(constraints)};
}

ColoringOptions StressOptions() {
  ColoringOptions options;
  options.k = 10;
  options.strategy = SelectionStrategy::kMaxFanOut;
  options.seed = 1000;
  options.step_budget = 40000;
  options.stall_limit = 5000;
  return options;
}

bool SameOutcome(const ColoringOutcome& a, const ColoringOutcome& b) {
  return a.assignment == b.assignment && a.preserved == b.preserved &&
         a.chosen_clusters == b.chosen_clusters && a.steps == b.steps &&
         a.backtracks == b.backtracks && a.complete == b.complete;
}

// Regression guard for the hoisted QI-similarity sorts: one sort per
// constraint per ColorConstraints call, performed at SearchContext
// construction, regardless of how many search steps revisit each node.
// If per-visit sorting ever creeps back into CandidatesFor, this counter
// scales with steps and the assertion fails loudly.
TEST(ColoringTest, TargetSortsHoistedOncePerConstraint) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);
  auto before = counters::Snapshot();
  ColoringOutcome outcome = ColorConstraints(
      workload.relation, workload.constraints, graph, StressOptions());
  auto delta = counters::Delta(before, counters::Snapshot());
  ASSERT_GT(outcome.steps, workload.constraints.size());
  EXPECT_EQ(CounterDelta(delta, "coloring.target_sorts"),
            workload.constraints.size());
}

TEST(ColoringTest, MemoReplaysAfterBacktracking) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);
  auto before = counters::Snapshot();
  ColoringOutcome outcome = ColorConstraints(
      workload.relation, workload.constraints, graph, StressOptions());
  auto delta = counters::Delta(before, counters::Snapshot());
  // The workload must actually backtrack, and backtracking re-visits
  // must replay memoized candidate lists instead of re-enumerating.
  EXPECT_GT(outcome.backtracks, 0u);
  EXPECT_GT(CounterDelta(delta, "coloring.memo_hits"), 0u);
  EXPECT_GT(CounterDelta(delta, "coloring.memo_misses"), 0u);
  // The memo key includes the claimed-rows fingerprint restricted to the
  // node's targets: when a neighbor claims overlapping rows, the node
  // sees a different key and re-enumerates (a stale replay would hand
  // back clusters containing claimed rows). The observable consequence:
  // replayed candidates still never produce overlapping clusters or
  // bound violations.
  std::set<RowId> seen;
  for (const Cluster& cluster : outcome.chosen_clusters) {
    for (RowId row : cluster) {
      EXPECT_TRUE(seen.insert(row).second) << "overlap on row " << row;
    }
  }
  for (size_t j = 0; j < workload.constraints.size(); ++j) {
    EXPECT_LE(outcome.preserved[j], workload.constraints[j].upper()) << j;
  }
}

// The memo is a pure cache: candidate lists are a deterministic function
// of (free target set, deficit, headroom), so disabling it — or forcing
// constant evictions — must not move a single byte of the outcome.
TEST(ColoringTest, MemoDisabledOrEvictingIsByteIdentical) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);

  ColoringOptions with_memo = StressOptions();
  ColoringOutcome baseline = ColorConstraints(
      workload.relation, workload.constraints, graph, with_memo);
  ASSERT_GT(baseline.backtracks, 0u);

  ColoringOptions no_memo = StressOptions();
  no_memo.memo = false;
  ColoringOutcome without = ColorConstraints(
      workload.relation, workload.constraints, graph, no_memo);
  EXPECT_TRUE(SameOutcome(baseline, without));

  // A one-entry capacity forces an eviction on nearly every miss; the
  // search tree still must not change.
  ColoringOptions tiny_memo = StressOptions();
  tiny_memo.memo_capacity = 1;
  auto before = counters::Snapshot();
  ColoringOutcome evicting = ColorConstraints(
      workload.relation, workload.constraints, graph, tiny_memo);
  auto delta = counters::Delta(before, counters::Snapshot());
  EXPECT_TRUE(SameOutcome(baseline, evicting));
  EXPECT_GT(CounterDelta(delta, "coloring.memo_evictions"), 0u);
}

// ------------------------------------------------------------ nogoods

// The nogood table is a pure prune: an entry replays the exact
// step/backtrack cost the recorded failure paid, so disabling the table
// — or strangling it to one entry — must not move a byte. In debug
// builds every record and replay also runs the full-state collision
// oracle (NogoodSignature), so this test doubles as the fingerprint-
// collision check: a 64-bit key collision between different subproblem
// states would trip the DCHECK, not silently corrupt the search.
TEST(ColoringTest, NogoodDisabledOrEvictingIsByteIdentical) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);

  auto before = counters::Snapshot();
  ColoringOutcome baseline = ColorConstraints(
      workload.relation, workload.constraints, graph, StressOptions());
  auto delta = counters::Delta(before, counters::Snapshot());
  ASSERT_GT(baseline.backtracks, 0u);
  // The table is live on this workload: failures are being recorded.
  EXPECT_GT(CounterDelta(delta, "coloring.nogood_misses"), 0u);

  ColoringOptions off = StressOptions();
  off.nogood = false;
  ColoringOutcome without = ColorConstraints(
      workload.relation, workload.constraints, graph, off);
  EXPECT_TRUE(SameOutcome(baseline, without));

  // Capacity 1 evicts (epoch-clears) on nearly every second record; the
  // search trajectory still must not change.
  ColoringOptions tiny = StressOptions();
  tiny.nogood_capacity = 1;
  before = counters::Snapshot();
  ColoringOutcome evicting = ColorConstraints(
      workload.relation, workload.constraints, graph, tiny);
  delta = counters::Delta(before, counters::Snapshot());
  EXPECT_TRUE(SameOutcome(baseline, evicting));
  EXPECT_GT(CounterDelta(delta, "coloring.nogood_evictions"), 0u);
}

// Eviction is an epoch clear at a deterministic point (the insert that
// would exceed capacity), so the eviction count is itself a
// deterministic counter: two identical runs must agree exactly.
TEST(ColoringTest, NogoodEvictionIsBoundedAndDeterministic) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);
  ColoringOptions tiny = StressOptions();
  tiny.nogood_capacity = 2;

  uint64_t evictions[2] = {0, 0};
  uint64_t misses[2] = {0, 0};
  ColoringOutcome outcomes[2];
  for (int run = 0; run < 2; ++run) {
    auto before = counters::Snapshot();
    outcomes[run] = ColorConstraints(workload.relation, workload.constraints,
                                     graph, tiny);
    auto delta = counters::Delta(before, counters::Snapshot());
    evictions[run] = CounterDelta(delta, "coloring.nogood_evictions");
    misses[run] = CounterDelta(delta, "coloring.nogood_misses");
  }
  EXPECT_TRUE(SameOutcome(outcomes[0], outcomes[1]));
  EXPECT_EQ(evictions[0], evictions[1]);
  EXPECT_EQ(misses[0], misses[1]);
  EXPECT_GT(evictions[0], 0u);
}

// ------------------------------------------------------------ speculation

std::vector<counters::Sample> DeterministicDelta(
    const std::vector<counters::Sample>& before) {
  return counters::FilterScope(counters::Delta(before, counters::Snapshot()),
                               counters::Scope::kDeterministic);
}

// The tentpole determinism contract: with speculative attempt search
// enabled (the default), the outcome AND every deterministic counter —
// steps, backtracks, memo and nogood traffic — are byte-identical at
// every thread width. Counter/trace attribution is what makes this
// hold: unadopted speculative attempts buffer their deterministic
// updates and discard them.
TEST(SpeculationTest, OutcomeAndCountersAgreeAcrossThreadWidths) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);

  ColoringOutcome reference;
  std::vector<counters::Sample> reference_delta;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    auto before = counters::Snapshot();
    ColoringOutcome outcome = ColorConstraints(
        workload.relation, workload.constraints, graph, StressOptions());
    std::vector<counters::Sample> delta = DeterministicDelta(before);
    if (threads == 1) {
      reference = std::move(outcome);
      reference_delta = std::move(delta);
      continue;
    }
    EXPECT_TRUE(SameOutcome(reference, outcome)) << "threads=" << threads;
    EXPECT_EQ(reference_delta, delta) << "threads=" << threads;
  }
  SetParallelThreads(1);
}

// Turning speculation off entirely (the sequential attempt loop) is the
// oracle the speculative path must match, including at width 8 where
// all seven spare attempt slots run ahead.
TEST(SpeculationTest, DisablingSpeculationIsByteIdentical) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);

  SetParallelThreads(8);
  ColoringOptions spec = StressOptions();
  ColoringOutcome with_spec = ColorConstraints(
      workload.relation, workload.constraints, graph, spec);

  ColoringOptions no_spec = StressOptions();
  no_spec.speculation = false;
  ColoringOutcome without = ColorConstraints(
      workload.relation, workload.constraints, graph, no_spec);
  SetParallelThreads(1);
  EXPECT_TRUE(SameOutcome(with_spec, without));
}

// The cross-attempt memo share is sound because the greedy fallback
// reuses attempt 0's enumeration seed; sharing is a cache handoff, not
// a semantic change.
TEST(SpeculationTest, MemoShareToggleIsByteIdentical) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);

  ColoringOutcome shared = ColorConstraints(
      workload.relation, workload.constraints, graph, StressOptions());
  ColoringOptions unshared = StressOptions();
  unshared.share_memo = false;
  ColoringOutcome isolated = ColorConstraints(
      workload.relation, workload.constraints, graph, unshared);
  EXPECT_TRUE(SameOutcome(shared, isolated));
}

// share_nogoods trades speculation for cross-attempt pruning (it forces
// the sequential loop). It may legally change the trajectory versus the
// unshared default — later attempts see earlier attempts' dead ends —
// but it must be deterministic across widths and still yield a valid
// outcome.
TEST(SpeculationTest, SharedNogoodsAreDeterministicAcrossWidths) {
  StressWorkload workload = MakeStressWorkload();
  ConstraintGraph graph =
      BuildConstraintGraph(workload.relation, workload.constraints);
  ColoringOptions sharing = StressOptions();
  sharing.share_nogoods = true;

  ColoringOutcome reference;
  std::vector<counters::Sample> reference_delta;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    SetParallelThreads(threads);
    auto before = counters::Snapshot();
    ColoringOutcome outcome = ColorConstraints(
        workload.relation, workload.constraints, graph, sharing);
    std::vector<counters::Sample> delta = DeterministicDelta(before);
    if (threads == 1) {
      reference = std::move(outcome);
      reference_delta = std::move(delta);
      continue;
    }
    EXPECT_TRUE(SameOutcome(reference, outcome));
    EXPECT_EQ(reference_delta, delta);
  }
  SetParallelThreads(1);

  // Still a coherent coloring: no row claimed twice, bounds respected.
  std::set<RowId> seen;
  for (const Cluster& cluster : reference.chosen_clusters) {
    for (RowId row : cluster) {
      EXPECT_TRUE(seen.insert(row).second) << "overlap on row " << row;
    }
  }
  for (size_t j = 0; j < workload.constraints.size(); ++j) {
    EXPECT_LE(reference.preserved[j], workload.constraints[j].upper()) << j;
  }
}

TEST(ColoringTest, PreservedMatchesChosenClusters) {
  // Invariant: outcome.preserved[j] equals the sum of contributions of
  // the distinct chosen clusters.
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  ColoringOptions options;
  options.k = 2;
  ColoringOutcome outcome = Color(r, constraints, options);
  ASSERT_TRUE(outcome.complete);
  for (size_t j = 0; j < constraints.size(); ++j) {
    uint64_t expected = 0;
    for (const Cluster& cluster : outcome.chosen_clusters) {
      bool all_match = true;
      for (RowId row : cluster) {
        if (!constraints[j].MatchesRow(r, row)) {
          all_match = false;
          break;
        }
      }
      if (all_match) expected += cluster.size();
    }
    EXPECT_EQ(outcome.preserved[j], expected) << "constraint " << j;
  }
}

}  // namespace
}  // namespace diva
