#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "relation/csv.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;

TEST(CsvTest, RoundTripThroughString) {
  Relation original = MedicalRelation();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());

  std::istringstream in(out.str());
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->NumRows(), original.NumRows());
  for (RowId row = 0; row < original.NumRows(); ++row) {
    for (size_t col = 0; col < original.NumAttributes(); ++col) {
      EXPECT_EQ(read->ValueString(row, col), original.ValueString(row, col))
          << "row " << row << " col " << col;
    }
  }
}

TEST(CsvTest, HeaderValidated) {
  std::istringstream in("WRONG,ETH,AGE,PRV,CTY,DIAG\n");
  auto read = ReadCsv(in, MedicalSchema());
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, MissingHeaderRejected) {
  std::istringstream in("");
  auto read = ReadCsv(in, MedicalSchema());
  EXPECT_FALSE(read.ok());
}

TEST(CsvTest, NoHeaderMode) {
  std::istringstream in("Female,Asian,30,BC,Vancouver,Flu\n");
  CsvOptions options;
  options.has_header = false;
  auto read = ReadCsv(in, MedicalSchema(), options);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumRows(), 1u);
  EXPECT_EQ(read->ValueString(0, 1), "Asian");
}

TEST(CsvTest, QuotedFieldsWithDelimiterAndQuotes) {
  std::istringstream in(
      "GEN,ETH,AGE,PRV,CTY,DIAG\n"
      "Female,\"As,ian\",30,BC,\"Van\"\"couver\",Flu\n");
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->ValueString(0, 1), "As,ian");
  EXPECT_EQ(read->ValueString(0, 4), "Van\"couver");
}

TEST(CsvTest, QuotedFieldsSurviveRoundTrip) {
  auto relation = RelationFromRows(
      MedicalSchema(), {{"Fe,male", "A\"B", "30", "line\nbreak", "v", "d"}});
  ASSERT_TRUE(relation.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*relation, out).ok());
  std::istringstream in(out.str());
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->ValueString(0, 0), "Fe,male");
  EXPECT_EQ(read->ValueString(0, 1), "A\"B");
  EXPECT_EQ(read->ValueString(0, 3), "line\nbreak");
}

TEST(CsvTest, StarsParseAsSuppressed) {
  std::istringstream in(
      "GEN,ETH,AGE,PRV,CTY,DIAG\n"
      "*,Asian,30,BC,★,Flu\n");
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->IsSuppressed(0, 0));
  EXPECT_TRUE(read->IsSuppressed(0, 4));
}

TEST(CsvTest, ArityMismatchReportsLine) {
  std::istringstream in(
      "GEN,ETH,AGE,PRV,CTY,DIAG\n"
      "Female,Asian,30,BC,Vancouver,Flu\n"
      "too,short\n");
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_NE(read.status().message().find("line 3"), std::string::npos);
}

TEST(CsvTest, EmbeddedNulRejectedWithLineNumber) {
  std::string data = "GEN,ETH,AGE,PRV,CTY,DIAG\nFemale,As";
  data.push_back('\0');
  data += "ian,30,BC,Vancouver,Flu\n";
  std::istringstream in(data);
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("NUL"), std::string::npos);
  EXPECT_NE(read.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, EmbeddedNulInQuotedFieldRejected) {
  std::string data = "GEN,ETH,AGE,PRV,CTY,DIAG\nFemale,\"As";
  data.push_back('\0');
  data += "ian\",30,BC,Vancouver,Flu\n";
  std::istringstream in(data);
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, OversizedFieldRejectedWithLineNumber) {
  CsvOptions options;
  options.max_field_bytes = 16;
  std::string data = "GEN,ETH,AGE,PRV,CTY,DIAG\nFemale," +
                     std::string(64, 'x') + ",30,BC,Vancouver,Flu\n";
  std::istringstream in(data);
  auto read = ReadCsv(in, MedicalSchema(), options);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("max_field_bytes"),
            std::string::npos);
  EXPECT_NE(read.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, FieldLimitZeroDisablesTheCheck) {
  CsvOptions options;
  options.max_field_bytes = 0;
  std::string data = "GEN,ETH,AGE,PRV,CTY,DIAG\nFemale," +
                     std::string(4096, 'x') + ",30,BC,Vancouver,Flu\n";
  std::istringstream in(data);
  auto read = ReadCsv(in, MedicalSchema(), options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->ValueString(0, 1).size(), 4096u);
}

TEST(CsvTest, RaggedRowsNeverAbort) {
  // Too-short and too-long rows are Status errors naming the line, for
  // any header mode.
  std::istringstream too_long(
      "GEN,ETH,AGE,PRV,CTY,DIAG\n"
      "Female,Asian,30,BC,Vancouver,Flu,extra\n");
  auto read = ReadCsv(too_long, MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(read.status().message().find("line 2"), std::string::npos);

  CsvOptions headerless;
  headerless.has_header = false;
  std::istringstream too_short("too,short\n");
  auto read2 = ReadCsv(too_short, MedicalSchema(), headerless);
  ASSERT_FALSE(read2.ok());
  EXPECT_NE(read2.status().message().find("line 1"), std::string::npos);
}

TEST(CsvTest, CrLfLineEndings) {
  std::istringstream in(
      "GEN,ETH,AGE,PRV,CTY,DIAG\r\n"
      "Female,Asian,30,BC,Vancouver,Flu\r\n");
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumRows(), 1u);
  EXPECT_EQ(read->ValueString(0, 5), "Flu");
}

TEST(CsvTest, UnterminatedQuoteRejected) {
  std::istringstream in(
      "GEN,ETH,AGE,PRV,CTY,DIAG\n"
      "\"unterminated,Asian,30,BC,V,Flu\n");
  auto read = ReadCsv(in, MedicalSchema());
  EXPECT_FALSE(read.ok());
}

TEST(CsvTest, FileRoundTrip) {
  const char* path = "csv_test_roundtrip.csv";
  Relation original = MedicalRelation();
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  auto read = ReadCsvFile(path, MedicalSchema());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumRows(), original.NumRows());
  std::remove(path);
}

TEST(CsvTest, MissingFileIsIoError) {
  auto read = ReadCsvFile("/nonexistent/nope.csv", MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace diva
