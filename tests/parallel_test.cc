#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"

namespace diva {
namespace {

/// Marks every index in [begin, end) exactly once; duplicate or missing
/// marks show up as a count mismatch.
void MarkRange(std::vector<std::atomic<int>>* marks, size_t begin,
               size_t end) {
  for (size_t i = begin; i < end; ++i) {
    (*marks)[i].fetch_add(1, std::memory_order_relaxed);
  }
}

void ExpectAllMarkedOnce(const std::vector<std::atomic<int>>& marks) {
  for (size_t i = 0; i < marks.size(); ++i) {
    EXPECT_EQ(marks[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, ResolveThreadCountSemantics) {
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  EXPECT_EQ(ResolveThreadCount(0), HardwareConcurrency());
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelTest, EnvThreadsParsesKnob) {
  ASSERT_EQ(unsetenv("DIVA_THREADS"), 0);
  EXPECT_EQ(EnvThreads(), 1u);  // unset => sequential
  ASSERT_EQ(setenv("DIVA_THREADS", "6", 1), 0);
  EXPECT_EQ(EnvThreads(), 6u);
  ASSERT_EQ(setenv("DIVA_THREADS", "0", 1), 0);
  EXPECT_EQ(EnvThreads(), 0u);  // 0 = hardware, resolved later
  ASSERT_EQ(setenv("DIVA_THREADS", "banana", 1), 0);
  EXPECT_EQ(EnvThreads(), 1u);  // unparsable => sequential
  ASSERT_EQ(unsetenv("DIVA_THREADS"), 0);
}

TEST(ParallelTest, PoolCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  std::vector<std::atomic<int>> marks(1000);
  pool.ParallelFor(marks.size(), /*grain=*/7, [&](size_t begin, size_t end) {
    MarkRange(&marks, begin, end);
  });
  ExpectAllMarkedOnce(marks);
}

TEST(ParallelTest, GrainEdgeCases) {
  ThreadPool pool(3);
  // count == 0: body never runs.
  size_t calls = 0;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  // grain > count: one inline chunk covering everything.
  std::vector<std::atomic<int>> marks(5);
  pool.ParallelFor(5, 100, [&](size_t begin, size_t end) {
    MarkRange(&marks, begin, end);
  });
  ExpectAllMarkedOnce(marks);
  // grain == 1 with count == 1.
  std::vector<std::atomic<int>> one(1);
  pool.ParallelFor(1, 1, [&](size_t begin, size_t end) {
    MarkRange(&one, begin, end);
  });
  ExpectAllMarkedOnce(one);
  // grain == 0 resolves to an automatic chunk size.
  std::vector<std::atomic<int>> autos(317);
  pool.ParallelFor(autos.size(), 0, [&](size_t begin, size_t end) {
    MarkRange(&autos, begin, end);
  });
  ExpectAllMarkedOnce(autos);
}

TEST(ParallelTest, WidthOnePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::atomic<int>> marks(64);
  pool.ParallelFor(marks.size(), 5, [&](size_t begin, size_t end) {
    MarkRange(&marks, begin, end);
  });
  ExpectAllMarkedOnce(marks);
}

TEST(ParallelTest, PoolShutdownJoinsCleanly) {
  // Construction + immediate destruction, with and without work, must
  // not hang or leak (tsan/asan presets watch this test closely).
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    if (round % 2 == 0) {
      std::atomic<size_t> sum{0};
      pool.ParallelFor(100, 3, [&](size_t begin, size_t end) {
        sum.fetch_add(end - begin, std::memory_order_relaxed);
      });
      EXPECT_EQ(sum.load(), 100u);
    }
  }
}

TEST(ParallelTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000, 1,
                       [&](size_t begin, size_t) {
                         if (begin == 500) {
                           throw std::runtime_error("chunk failed");
                         }
                       }),
      std::runtime_error);
  // The pool must still be fully usable after a failed loop.
  std::vector<std::atomic<int>> marks(200);
  pool.ParallelFor(marks.size(), 9, [&](size_t begin, size_t end) {
    MarkRange(&marks, begin, end);
  });
  ExpectAllMarkedOnce(marks);
}

TEST(ParallelTest, ExceptionMessageIsPreserved) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(10, 1, [](size_t begin, size_t) {
      if (begin == 3) throw std::runtime_error("specific failure");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "specific failure");
  }
}

TEST(ParallelTest, NestedUseIsRejected) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(100, 1,
                                [&](size_t, size_t) {
                                  pool.ParallelFor(10, 1,
                                                   [](size_t, size_t) {});
                                }),
               std::logic_error);
}

TEST(ParallelTest, NestedUseIsRejectedAcrossPools) {
  // Nesting is rejected per thread, not per pool: a body may not start a
  // loop on ANY pool, including the global one.
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   100, 1,
                   [&](size_t, size_t) { ParallelFor(4, 1, [](size_t, size_t) {}); }),
               std::logic_error);
}

TEST(ParallelTest, NestedUseIsRejectedOnWidthOnePool) {
  // The inline path runs through the same guard.
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(10, 1,
                                [&](size_t, size_t) {
                                  pool.ParallelFor(2, 1,
                                                   [](size_t, size_t) {});
                                }),
               std::logic_error);
}

TEST(ParallelTest, GlobalPoolReconfigures) {
  SetParallelThreads(3);
  EXPECT_EQ(ParallelThreads(), 3u);
  std::vector<std::atomic<int>> marks(128);
  ParallelFor(marks.size(), 4, [&](size_t begin, size_t end) {
    MarkRange(&marks, begin, end);
  });
  ExpectAllMarkedOnce(marks);
  SetParallelThreads(1);
  EXPECT_EQ(ParallelThreads(), 1u);
}

TEST(ParallelTest, ParallelMapGathersByIndex) {
  SetParallelThreads(4);
  std::vector<int> squares = ParallelMap<int>(
      100, 1, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
  SetParallelThreads(1);
}

TEST(ParallelTest, ParallelReduceCombinesInChunkOrder) {
  // String concatenation is non-commutative: any out-of-order combine
  // would scramble the digits.
  std::string expected;
  for (int i = 0; i < 200; ++i) expected += std::to_string(i) + ",";
  for (size_t threads : {1u, 2u, 5u}) {
    SetParallelThreads(threads);
    std::string joined = ParallelReduce<std::string>(
        200, /*grain=*/7, std::string(),
        [](size_t begin, size_t end) {
          std::string chunk;
          for (size_t i = begin; i < end; ++i) {
            chunk += std::to_string(i) + ",";
          }
          return chunk;
        },
        [](std::string a, std::string b) { return a + b; });
    EXPECT_EQ(joined, expected) << "threads = " << threads;
  }
  SetParallelThreads(1);
}

TEST(ParallelTest, ParallelReduceSumsExactly) {
  SetParallelThreads(8);
  size_t total = ParallelReduce<size_t>(
      10000, /*grain=*/0, size_t{0},
      [](size_t begin, size_t end) {
        size_t sum = 0;
        for (size_t i = begin; i < end; ++i) sum += i;
        return sum;
      },
      [](size_t a, size_t b) { return a + b; });
  EXPECT_EQ(total, 10000u * 9999u / 2);
  SetParallelThreads(1);
}

TEST(ParallelTest, RunTasksRunsEveryTask) {
  std::vector<std::atomic<int>> ran(6);
  RunTasks(ran.size(), [&](size_t task) {
    ran[task].fetch_add(1, std::memory_order_relaxed);
  });
  ExpectAllMarkedOnce(ran);
}

TEST(ParallelTest, RunTasksPropagatesException) {
  EXPECT_THROW(RunTasks(4,
                        [](size_t task) {
                          if (task == 2) {
                            throw std::runtime_error("task failed");
                          }
                        }),
               std::runtime_error);
}

TEST(ParallelTest, TasksMayUseTheDataParallelLayer) {
  // Concurrent tasks racing for the global pool: one wins it, the rest
  // degrade to inline execution of identical chunks — results match
  // either way.
  SetParallelThreads(2);
  std::vector<size_t> sums(4, 0);
  RunTasks(sums.size(), [&](size_t task) {
    sums[task] = ParallelReduce<size_t>(
        1000, /*grain=*/0, size_t{0},
        [](size_t begin, size_t end) {
          size_t sum = 0;
          for (size_t i = begin; i < end; ++i) sum += i;
          return sum;
        },
        [](size_t a, size_t b) { return a + b; });
  });
  for (size_t sum : sums) EXPECT_EQ(sum, 1000u * 999u / 2);
  SetParallelThreads(1);
}

TEST(PoolCancellationTest, ExternalCancelDuringClaimKeepsPrefixExact) {
  // Regression guard for the cancel-during-claim window: a cancel that
  // lands while workers are actively claiming chunks must still leave
  // exactly the completed prefix [0, prefix) executed — CancelUnclaimed
  // exchanges the claim cursor, so a chunk is either fully run (it was
  // claimed before the exchange) or never started. The canceller is an
  // asynchronous external thread so the request races the fetch_add
  // claims themselves, not just the body's poll points.
  SetParallelThreads(4);
  for (int iteration = 0; iteration < 20; ++iteration) {
    CancellationToken token = CancellationToken::Manual();
    ScopedLoopCancellation scope(token);
    std::vector<std::atomic<int>> executed(4096);
    std::atomic<bool> body_started{false};
    // The cancel must come from outside the loop to hit the claim race.
    // lint: allow-thread
    std::thread canceller([&] {
      while (!body_started.load(std::memory_order_acquire)) {
      }
      token.RequestCancel();
    });
    size_t prefix = ParallelFor(4096, 1, [&](size_t begin, size_t end) {
      body_started.store(true, std::memory_order_release);
      for (size_t i = begin; i < end; ++i) {
        executed[i].store(1, std::memory_order_relaxed);
      }
    });
    canceller.join();
    ASSERT_LE(prefix, executed.size());
    for (size_t i = 0; i < executed.size(); ++i) {
      ASSERT_EQ(executed[i].load(std::memory_order_relaxed) != 0, i < prefix)
          << "iteration " << iteration << " index " << i;
    }
  }
  SetParallelThreads(1);
}

// ------------------------------------------------------------ TaskGroup

TEST(TaskGroupTest, SubmitAndWaitRunsEverything) {
  TaskGroup group(3);
  EXPECT_EQ(group.workers(), 3u);
  std::vector<std::atomic<int>> ran(64);
  std::vector<uint64_t> tickets;
  for (size_t i = 0; i < ran.size(); ++i) {
    tickets.push_back(group.Submit(
        [&ran, i] { ran[i].fetch_add(1, std::memory_order_relaxed); }));
  }
  // Tickets are dense and ascending in submission order.
  for (size_t i = 1; i < tickets.size(); ++i) {
    EXPECT_EQ(tickets[i], tickets[i - 1] + 1);
  }
  for (uint64_t ticket : tickets) group.Wait(ticket);
  for (size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "item " << i;
  }
}

TEST(TaskGroupTest, ZeroWorkersRunEverythingInTheWaiter) {
  // workers == 0 is the degenerate sequential mode: nothing runs until
  // a Wait, and then the waiting thread runs it inline via helping.
  TaskGroup group(0);
  EXPECT_EQ(group.workers(), 0u);
  EXPECT_FALSE(group.HasIdleWorker());
  std::atomic<int> ran{0};
  uint64_t ticket =
      group.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 0);
  group.Wait(ticket);
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroupTest, WaiterHelpsPendingItemsInFifoOrder) {
  // With no workers, Wait on the last ticket must claim and run every
  // pending item in submission order before reaching it — the claim
  // order is FIFO by construction, which is what makes speculative
  // adoption deterministic in the coloring driver.
  TaskGroup group(0);
  std::vector<size_t> order;
  uint64_t last = 0;
  for (size_t i = 0; i < 8; ++i) {
    last = group.Submit([&order, i] { order.push_back(i); });
  }
  group.Wait(last);
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(TaskGroupTest, TryAbandonReturnsPendingWorkExactlyOnce) {
  TaskGroup group(0);
  std::atomic<int> ran{0};
  uint64_t ticket =
      group.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_TRUE(group.TryAbandon(ticket));
  EXPECT_FALSE(group.TryAbandon(ticket)) << "already abandoned";
  EXPECT_EQ(ran.load(), 0) << "abandoned work never runs";

  uint64_t done = group.Submit([] {});
  group.Wait(done);
  EXPECT_FALSE(group.TryAbandon(done)) << "completed work cannot be abandoned";
}

TEST(TaskGroupTest, AbandonAllDropsEveryPendingItem) {
  TaskGroup group(0);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    group.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  group.AbandonAll();
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGroupTest, ExceptionPropagatesThroughWait) {
  TaskGroup group(0);
  uint64_t ticket = group.Submit(
      [] { throw std::runtime_error("task group test failure"); });
  EXPECT_THROW(group.Wait(ticket), std::runtime_error);
}

TEST(TaskGroupTest, IdleWorkersParkAndAdvertise) {
  TaskGroup group(2);
  // Workers park once the (empty) queue is drained; the hint is racy
  // but must converge to true in a quiescent group.
  while (!group.HasIdleWorker()) {
  }
  EXPECT_TRUE(group.HasIdleWorker());
}

TEST(TaskGroupTest, DestructorAbandonsPendingAndJoins) {
  std::atomic<int> ran{0};
  {
    TaskGroup group(1);
    uint64_t first =
        group.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    group.Wait(first);
    // Pending-at-destruction items are abandoned, claimed ones drain;
    // either way the dtor joins cleanly and `ran` is coherent after.
    for (int i = 0; i < 16; ++i) {
      group.Submit([&] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 17);
}

TEST(ParallelTest, ManyConcurrentLoopsStressThePool) {
  // Hammer one pool from several top-level tasks; exercised under tsan
  // in CI, this is the data-race canary for the submit/claim protocol.
  SetParallelThreads(4);
  RunTasks(3, [&](size_t) {
    for (int round = 0; round < 20; ++round) {
      std::atomic<size_t> count{0};
      ParallelFor(500, 11, [&](size_t begin, size_t end) {
        count.fetch_add(end - begin, std::memory_order_relaxed);
      });
      ASSERT_EQ(count.load(), 500u);
    }
  });
  SetParallelThreads(1);
}

}  // namespace
}  // namespace diva
