#include <gtest/gtest.h>

#include "anon/suppress.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;

TEST(SuppressTest, PaperExampleClusterSuppression) {
  // Example 3.1: clusters C1={t9,t10}, C2={t5,t6}, C3={t7,t8} with k=2
  // produce the g5..g10 rows of Table 3.
  Relation r = MedicalRelation();
  Clustering clustering = {{8, 9}, {4, 5}, {6, 7}};
  Relation rs = Suppress(r, clustering);

  ASSERT_EQ(rs.NumRows(), 6u);
  // C1 = {t9, t10}: Female Asian, ages/provinces/cities differ -> g9, g10.
  EXPECT_EQ(rs.ValueString(0, 0), "Female");
  EXPECT_EQ(rs.ValueString(0, 1), "Asian");
  EXPECT_EQ(rs.ValueString(0, 2), "*");
  EXPECT_EQ(rs.ValueString(0, 3), "*");
  EXPECT_EQ(rs.ValueString(0, 4), "*");
  EXPECT_EQ(rs.ValueString(0, 5), "Influenza");  // sensitive kept
  // C2 = {t5, t6}: Male African, rest suppressed -> g5, g6.
  EXPECT_EQ(rs.ValueString(2, 0), "Male");
  EXPECT_EQ(rs.ValueString(2, 1), "African");
  EXPECT_EQ(rs.ValueString(2, 3), "*");
  // C3 = {t7, t8}: differ on GEN/ETH/AGE, share BC Vancouver -> g7, g8.
  EXPECT_EQ(rs.ValueString(4, 0), "*");
  EXPECT_EQ(rs.ValueString(4, 1), "*");
  EXPECT_EQ(rs.ValueString(4, 3), "BC");
  EXPECT_EQ(rs.ValueString(4, 4), "Vancouver");
}

TEST(SuppressTest, InPlaceTouchesOnlyClusteredRows) {
  Relation r = MedicalRelation();
  Clustering clustering = {{6, 7}};
  SuppressClustersInPlace(&r, clustering);
  // Clustered rows suppressed on disagreeing columns.
  EXPECT_TRUE(r.IsSuppressed(6, 0));
  EXPECT_TRUE(r.IsSuppressed(7, 1));
  EXPECT_EQ(r.ValueString(6, 4), "Vancouver");
  // Other rows untouched.
  EXPECT_EQ(r.ValueString(0, 0), "Female");
  EXPECT_FALSE(r.IsSuppressed(5, 0));
}

TEST(SuppressTest, UnanimousClusterUnchanged) {
  auto r = RelationFromRows(testing::MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"F", "Asian", "30", "BC", "V", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  Clustering clustering = {{0, 1}};
  SuppressClustersInPlace(&(*r), clustering);
  for (size_t col = 0; col < 5; ++col) {
    EXPECT_FALSE(r->IsSuppressed(0, col));
    EXPECT_FALSE(r->IsSuppressed(1, col));
  }
}

TEST(SuppressTest, SensitiveNeverSuppressed) {
  Relation r = MedicalRelation();
  Clustering clustering = {{0, 1, 2, 3, 4}};
  SuppressClustersInPlace(&r, clustering);
  for (RowId row = 0; row < 5; ++row) {
    EXPECT_FALSE(r.IsSuppressed(row, 5));
  }
}

TEST(SuppressTest, ClustersBecomeQiGroups) {
  Relation r = MedicalRelation();
  Clustering clustering = {{8, 9}, {4, 5}, {6, 7}, {0, 1, 2, 3}};
  SuppressClustersInPlace(&r, clustering);
  EXPECT_TRUE(IsKAnonymous(r, 2));
  QiGroups groups = ComputeQiGroups(r);
  EXPECT_EQ(groups.groups.size(), 4u);
}

TEST(SuppressTest, SuppressionCostCountsStars) {
  Relation r = MedicalRelation();
  // {t9, t10}: identical on GEN and ETH, differ on AGE, PRV, CTY
  // -> 3 columns x 2 rows = 6 stars.
  std::vector<RowId> cluster = {8, 9};
  EXPECT_EQ(SuppressionCost(r, cluster), 6u);
  // Singleton cluster costs nothing.
  std::vector<RowId> single = {0};
  EXPECT_EQ(SuppressionCost(r, single), 0u);
}

TEST(SuppressTest, SuppressionCostMatchesInPlaceStars) {
  Relation r = MedicalRelation();
  Clustering clustering = {{0, 1, 2}, {5, 6}};
  size_t predicted = 0;
  for (const Cluster& c : clustering) predicted += SuppressionCost(r, c);
  SuppressClustersInPlace(&r, clustering);
  size_t stars = 0;
  for (RowId row = 0; row < r.NumRows(); ++row) {
    for (size_t col = 0; col < r.NumAttributes(); ++col) {
      stars += r.IsSuppressed(row, col);
    }
  }
  EXPECT_EQ(stars, predicted);
}

TEST(SuppressTest, AlreadySuppressedCellForcesColumn) {
  auto r = RelationFromRows(testing::MedicalSchema(),
                            {
                                {"*", "Asian", "30", "BC", "V", "Flu"},
                                {"F", "Asian", "30", "BC", "V", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  Clustering clustering = {{0, 1}};
  SuppressClustersInPlace(&(*r), clustering);
  // A pre-suppressed cell cannot be unanimous: the whole column goes.
  EXPECT_TRUE(r->IsSuppressed(1, 0));
}

}  // namespace
}  // namespace diva
