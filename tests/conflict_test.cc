#include <gtest/gtest.h>

#include "constraint/conflict.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

TEST(ConflictTest, SortedIntersectionSize) {
  EXPECT_EQ(SortedIntersectionSize({1, 2, 3}, {2, 3, 4}), 2u);
  EXPECT_EQ(SortedIntersectionSize({}, {1}), 0u);
  EXPECT_EQ(SortedIntersectionSize({1, 5, 9}, {2, 6, 10}), 0u);
  EXPECT_EQ(SortedIntersectionSize({1, 2}, {1, 2}), 2u);
}

TEST(ConflictTest, DisjointTargetsHaveZeroConflict) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  auto asian = MustParse(*schema, "ETH[Asian] in [2,5]");
  auto african = MustParse(*schema, "ETH[African] in [1,3]");
  EXPECT_DOUBLE_EQ(PairConflictRate(r, asian, african), 0.0);
}

TEST(ConflictTest, PaperExampleOverlaps) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  auto s1 = MustParse(*schema, "ETH[Asian] in [2,5]");       // {7,8,9}
  auto s2 = MustParse(*schema, "ETH[African] in [1,3]");     // {4,5}
  auto s3 = MustParse(*schema, "CTY[Vancouver] in [2,4]");   // {5,6,7,9}

  // |I_s1 ∩ I_s3| = |{7,9}| = 2, min size = 3.
  EXPECT_DOUBLE_EQ(PairConflictRate(r, s1, s3), 2.0 / 3.0);
  // |I_s2 ∩ I_s3| = |{5}| = 1, min size = 2.
  EXPECT_DOUBLE_EQ(PairConflictRate(r, s2, s3), 0.5);
}

TEST(ConflictTest, NestedTargetsScoreOne) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  auto outer = MustParse(*schema, "ETH[African] in [1,3]");
  auto inner = MustParse(*schema, "GEN,ETH[Male,African] in [1,2]");
  EXPECT_DOUBLE_EQ(PairConflictRate(r, outer, inner), 1.0);
}

TEST(ConflictTest, EmptyTargetGivesZero) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  auto ghost = MustParse(*schema, "ETH[Martian] in [0,5]");
  auto real = MustParse(*schema, "ETH[Asian] in [2,5]");
  EXPECT_DOUBLE_EQ(PairConflictRate(r, ghost, real), 0.0);
}

TEST(ConflictTest, SetConflictIsMeanOverPairs) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  // Pairs: (s1,s2)=0, (s1,s3)=2/3, (s2,s3)=1/2 -> mean = 7/18.
  EXPECT_NEAR(ConflictRate(r, constraints), (0.0 + 2.0 / 3.0 + 0.5) / 3.0,
              1e-12);
}

TEST(ConflictTest, FewerThanTwoConstraintsIsZero) {
  Relation r = MedicalRelation();
  ConstraintSet one = {MustParse(*MedicalSchema(), "ETH[Asian] in [2,5]")};
  EXPECT_DOUBLE_EQ(ConflictRate(r, {}), 0.0);
  EXPECT_DOUBLE_EQ(ConflictRate(r, one), 0.0);
}

}  // namespace
}  // namespace diva
