#include <gtest/gtest.h>

#include "constraint/conflict.h"
#include "constraint/generator.h"
#include "datagen/synthetic.h"
#include "tests/test_util.h"

namespace diva {
namespace {

/// A 2000-row synthetic relation with a few correlated categorical QI
/// attributes — enough structure for conflict targeting.
Relation GeneratorFixture(uint64_t seed = 7) {
  SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.seed = seed;
  spec.num_latent_classes = 12;
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 6;
  a.distribution = ValueDistribution::kZipfian;
  a.zipf_skew = 1.0;
  a.correlation = 0.4;
  AttributeSpec b = a;
  b.name = "B";
  b.domain_size = 8;
  AttributeSpec c = a;
  c.name = "C";
  c.domain_size = 5;
  c.correlation = 0.5;
  AttributeSpec s;
  s.name = "S";
  s.role = AttributeRole::kSensitive;
  s.domain_size = 4;
  spec.attributes = {a, b, c, s};
  auto relation = GenerateSynthetic(spec);
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

TEST(GeneratorTest, ProducesRequestedCount) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.count = 10;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  EXPECT_EQ(constraints->size(), 10u);
}

TEST(GeneratorTest, ZeroCountIsEmpty) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.count = 0;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok());
  EXPECT_TRUE(constraints->empty());
}

TEST(GeneratorTest, ProportionalConstraintsAreSatisfiedByInput) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.kind = ConstraintClass::kProportional;
  options.count = 12;
  options.slack = 0.25;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok());
  for (const auto& constraint : *constraints) {
    EXPECT_TRUE(constraint.IsSatisfiedBy(r)) << constraint.ToString();
  }
}

TEST(GeneratorTest, MinimumFrequencyHasOpenUpperBound) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.kind = ConstraintClass::kMinimumFrequency;
  options.count = 6;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok());
  for (const auto& constraint : *constraints) {
    EXPECT_EQ(constraint.upper(), r.NumRows());
    EXPECT_TRUE(constraint.IsSatisfiedBy(r)) << constraint.ToString();
  }
}

TEST(GeneratorTest, AverageClassUsesMeanAnchor) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.kind = ConstraintClass::kAverage;
  options.count = 6;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok());
  // All average-class constraints share the same bounds (one anchor).
  for (const auto& constraint : *constraints) {
    EXPECT_EQ(constraint.lower(), (*constraints)[0].lower());
    EXPECT_EQ(constraint.upper(), (*constraints)[0].upper());
  }
}

TEST(GeneratorTest, RespectsMinSupport) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.count = 8;
  options.min_support = 20;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok());
  for (const auto& constraint : *constraints) {
    EXPECT_GE(constraint.CountOccurrences(r), 20u) << constraint.ToString();
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.count = 8;
  options.seed = 99;
  auto a = GenerateConstraints(r, options);
  auto b = GenerateConstraints(r, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToString(), (*b)[i].ToString());
  }
}

TEST(GeneratorTest, FailsWhenPoolTooSmall) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.count = 500;  // far beyond 6+8+5 single-attribute candidates
  auto constraints = GenerateConstraints(r, options);
  EXPECT_FALSE(constraints.ok());
}

TEST(GeneratorTest, InvalidSlackRejected) {
  Relation r = GeneratorFixture();
  ConstraintGenOptions options;
  options.slack = 1.5;
  EXPECT_FALSE(GenerateConstraints(r, options).ok());
  options.slack = -0.1;
  EXPECT_FALSE(GenerateConstraints(r, options).ok());
}

class ConflictTargetingTest : public ::testing::TestWithParam<double> {};

TEST_P(ConflictTargetingTest, HitsRequestedConflictRate) {
  Relation r = GeneratorFixture();
  double target = GetParam();
  ConstraintGenOptions options;
  options.count = 8;
  options.target_conflict = target;
  options.min_support = 8;
  auto constraints = GenerateConstraints(r, options);
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  double achieved = ConflictRate(r, *constraints);
  EXPECT_NEAR(achieved, target, 0.25)
      << "requested cf=" << target << " achieved cf=" << achieved;
}

INSTANTIATE_TEST_SUITE_P(ConflictSweep, ConflictTargetingTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8));

}  // namespace
}  // namespace diva
