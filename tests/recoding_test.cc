#include <gtest/gtest.h>

#include <functional>

#include "hierarchy/recoding.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;

GeneralizationContext MedicalContext() {
  GeneralizationContext context(6);
  auto geography = Taxonomy::FromText(
      "Calgary,West\n"
      "Vancouver,West\n"
      "Winnipeg,Central\n"
      "West,Canada\n"
      "Central,Canada\n");
  DIVA_CHECK(geography.ok());
  context.SetTaxonomy(4, std::move(geography).value());  // CTY
  auto age = Taxonomy::Intervals(0, 99, 10);
  DIVA_CHECK(age.ok());
  context.SetTaxonomy(2, std::move(age).value());  // AGE
  return context;
}

TEST(RecodingVectorTest, HeightAndToString) {
  RecodingVector vector;
  vector.levels = {1, 0, 2};
  EXPECT_EQ(vector.Height(), 3u);
  EXPECT_EQ(vector.ToString(), "[1,0,2]");
}

TEST(GlobalRecoderTest, MaxLevels) {
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  EXPECT_EQ(recoder.MaxLevel(0), 1u);  // GEN: no taxonomy -> 0/1
  EXPECT_EQ(recoder.MaxLevel(2), 2u);  // AGE intervals: leaf->decade->root
  EXPECT_EQ(recoder.MaxLevel(4), 2u);  // CTY: city->region->Canada
  EXPECT_EQ(recoder.MaxLevel(5), 0u);  // DIAG: sensitive, never recoded
}

TEST(GlobalRecoderTest, IdentityVectorIsNoOp) {
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  auto recoded = recoder.Apply(recoder.BottomVector());
  ASSERT_TRUE(recoded.ok());
  for (RowId row = 0; row < r.NumRows(); ++row) {
    for (size_t col = 0; col < r.NumAttributes(); ++col) {
      EXPECT_EQ(recoded->At(row, col), r.At(row, col));
    }
  }
}

TEST(GlobalRecoderTest, FullDomainSemantics) {
  // Level 1 on CTY: EVERY city becomes its region, everywhere.
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  RecodingVector vector = recoder.BottomVector();
  vector.levels[4] = 1;
  auto recoded = recoder.Apply(vector);
  ASSERT_TRUE(recoded.ok());
  for (RowId row = 0; row < recoded->NumRows(); ++row) {
    std::string city = recoded->ValueString(row, 4);
    EXPECT_TRUE(city == "West" || city == "Central") << city;
  }
  // Level 2: everything is Canada.
  vector.levels[4] = 2;
  recoded = recoder.Apply(vector);
  ASSERT_TRUE(recoded.ok());
  for (RowId row = 0; row < recoded->NumRows(); ++row) {
    EXPECT_EQ(recoded->ValueString(row, 4), "Canada");
  }
}

TEST(GlobalRecoderTest, NoTaxonomyLevelOneSuppresses) {
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  RecodingVector vector = recoder.BottomVector();
  vector.levels[0] = 1;  // GEN
  auto recoded = recoder.Apply(vector);
  ASSERT_TRUE(recoded.ok());
  for (RowId row = 0; row < recoded->NumRows(); ++row) {
    EXPECT_TRUE(recoded->IsSuppressed(row, 0));
  }
}

TEST(GlobalRecoderTest, InvalidVectorsRejected) {
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  RecodingVector wrong_arity;
  wrong_arity.levels = {0, 0};
  EXPECT_FALSE(recoder.Apply(wrong_arity).ok());

  RecodingVector too_high = recoder.BottomVector();
  too_high.levels[4] = 9;
  EXPECT_FALSE(recoder.Apply(too_high).ok());

  RecodingVector sensitive = recoder.BottomVector();
  sensitive.levels[5] = 1;
  EXPECT_FALSE(recoder.Apply(sensitive).ok());
}

TEST(GlobalRecoderTest, FindMinimalRecodingIsKAnonymousAndMinimal) {
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  auto result = recoder.FindMinimalRecoding(2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
  EXPECT_GT(result->vector.Height(), 0u);  // Table 1 is not 2-anonymous raw

  // Minimality: no vector of smaller height is k-anonymous. (Exhaustive
  // re-check over the small lattice.)
  size_t height = result->vector.Height();
  std::vector<size_t> qi = r.schema().qi_indices();
  std::vector<size_t> caps;
  for (size_t attr : qi) caps.push_back(recoder.MaxLevel(attr));
  std::vector<size_t> levels(qi.size(), 0);
  std::function<void(size_t)> walk = [&](size_t i) {
    if (i == qi.size()) {
      RecodingVector vector = recoder.BottomVector();
      size_t total = 0;
      for (size_t j = 0; j < qi.size(); ++j) {
        vector.levels[qi[j]] = levels[j];
        total += levels[j];
      }
      if (total < height) {
        auto recoded = recoder.Apply(vector);
        ASSERT_TRUE(recoded.ok());
        EXPECT_FALSE(IsKAnonymous(*recoded, 2))
            << "smaller vector " << vector.ToString() << " is 2-anonymous";
      }
      return;
    }
    for (levels[i] = 0; levels[i] <= caps[i]; ++levels[i]) walk(i + 1);
    levels[i] = 0;
  };
  walk(0);
}

TEST(GlobalRecoderTest, LargerKNeedsMoreGeneralization) {
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  auto k2 = recoder.FindMinimalRecoding(2);
  auto k5 = recoder.FindMinimalRecoding(5);
  ASSERT_TRUE(k2.ok() && k5.ok());
  EXPECT_LE(k2->vector.Height(), k5->vector.Height());
  EXPECT_LE(k2->ncp, k5->ncp + 1e-12);
  EXPECT_TRUE(IsKAnonymous(k5->relation, 5));
}

TEST(GlobalRecoderTest, InfeasibleWhenFewerRowsThanK) {
  auto r = RelationFromRows(MedicalSchema(),
                            {{"F", "Asian", "30", "BC", "Vancouver", "x"}});
  ASSERT_TRUE(r.ok());
  GlobalRecoder recoder(*r, MedicalContext());
  auto result = recoder.FindMinimalRecoding(2);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(GlobalRecoderTest, TopVectorAlwaysKAnonymousForSmallK) {
  // With every QI at its root, all rows are indistinguishable.
  Relation r = MedicalRelation();
  GlobalRecoder recoder(r, MedicalContext());
  RecodingVector top = recoder.BottomVector();
  for (size_t attr : r.schema().qi_indices()) {
    top.levels[attr] = recoder.MaxLevel(attr);
  }
  auto recoded = recoder.Apply(top);
  ASSERT_TRUE(recoded.ok());
  EXPECT_TRUE(IsKAnonymous(*recoded, r.NumRows()));
}

}  // namespace
}  // namespace diva
