#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "anon/suppress.h"
#include "core/diva.h"
#include "hierarchy/generalize.h"
#include "hierarchy/taxonomy.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;

/// Geography taxonomy over the example's cities.
Taxonomy CityTaxonomy() {
  auto taxonomy = Taxonomy::FromText(
      "Calgary,West\n"
      "Vancouver,West\n"
      "Winnipeg,Central\n"
      "West,Canada\n"
      "Central,Canada\n");
  DIVA_CHECK_MSG(taxonomy.ok(), taxonomy.status().ToString());
  return std::move(taxonomy).value();
}

// ------------------------------------------------------------- Taxonomy

TEST(TaxonomyTest, BuildAndQuery) {
  Taxonomy t = CityTaxonomy();
  EXPECT_EQ(t.NumNodes(), 6u);
  EXPECT_EQ(t.NumLeaves(), 3u);
  auto calgary = t.Find("Calgary");
  auto vancouver = t.Find("Vancouver");
  auto winnipeg = t.Find("Winnipeg");
  auto west = t.Find("West");
  auto canada = t.Find("Canada");
  ASSERT_TRUE(calgary && vancouver && winnipeg && west && canada);
  EXPECT_TRUE(t.IsLeaf(*calgary));
  EXPECT_FALSE(t.IsLeaf(*west));
  EXPECT_EQ(t.root(), *canada);
  EXPECT_EQ(t.Depth(*canada), 0u);
  EXPECT_EQ(t.Depth(*west), 1u);
  EXPECT_EQ(t.Depth(*calgary), 2u);
  EXPECT_EQ(t.LeafCount(*west), 2u);
  EXPECT_EQ(t.LeafCount(*canada), 3u);
  EXPECT_FALSE(t.Find("Atlantis").has_value());
}

TEST(TaxonomyTest, Lca) {
  Taxonomy t = CityTaxonomy();
  auto id = [&](const char* label) { return *t.Find(label); };
  EXPECT_EQ(t.Lca(id("Calgary"), id("Vancouver")), id("West"));
  EXPECT_EQ(t.Lca(id("Calgary"), id("Winnipeg")), id("Canada"));
  EXPECT_EQ(t.Lca(id("Calgary"), id("Calgary")), id("Calgary"));
  EXPECT_EQ(t.Lca(id("West"), id("Vancouver")), id("West"));

  auto lca = t.LcaOfLabels({"Calgary", "Vancouver", "Winnipeg"});
  ASSERT_TRUE(lca.ok());
  EXPECT_EQ(*lca, id("Canada"));
  EXPECT_FALSE(t.LcaOfLabels({"Calgary", "Mars"}).ok());
  EXPECT_FALSE(t.LcaOfLabels({}).ok());
}

TEST(TaxonomyTest, RejectsMalformed) {
  // Two roots.
  EXPECT_FALSE(Taxonomy::FromText("a,r1\nb,r2\n").ok());
  // Two parents.
  EXPECT_FALSE(Taxonomy::FromText("a,p\na,q\np,r\nq,r\n").ok());
  // Cycle (no root).
  EXPECT_FALSE(Taxonomy::FromText("a,b\nb,a\n").ok());
  // Self loop.
  EXPECT_FALSE(Taxonomy::FromText("a,a\n").ok());
  // Bad line.
  EXPECT_FALSE(Taxonomy::FromText("justonefield\n").ok());
  // Empty.
  EXPECT_FALSE(Taxonomy::FromText("# only a comment\n").ok());
}

TEST(TaxonomyTest, FlatEqualsSuppressionShape) {
  Taxonomy t = Taxonomy::Flat({"a", "b", "c"}, "*");
  EXPECT_EQ(t.NumLeaves(), 3u);
  EXPECT_EQ(t.Label(t.root()), "*");
  EXPECT_EQ(t.LeafCount(t.root()), 3u);
  EXPECT_EQ(t.Lca(*t.Find("a"), *t.Find("b")), t.root());
}

TEST(TaxonomyTest, IntervalHierarchy) {
  auto t = Taxonomy::Intervals(0, 9, 5);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumLeaves(), 10u);
  auto leaf3 = t->Find("3");
  auto low = t->Find("[0-4]");
  auto high = t->Find("[5-9]");
  auto root = t->Find("[0-9]");
  ASSERT_TRUE(leaf3 && low && high && root);
  EXPECT_EQ(t->Parent(*leaf3), *low);
  EXPECT_EQ(t->Lca(*t->Find("3"), *t->Find("7")), *root);
  EXPECT_EQ(t->Lca(*t->Find("1"), *t->Find("4")), *low);
  EXPECT_EQ(t->LeafCount(*high), 5u);
  EXPECT_FALSE(Taxonomy::Intervals(5, 4, 2).ok());
  EXPECT_FALSE(Taxonomy::Intervals(0, 9, 1).ok());
}

// --------------------------------------------------------- Generalize

GeneralizationContext MedicalContext() {
  GeneralizationContext context(6);
  context.SetTaxonomy(4, CityTaxonomy());  // CTY
  auto age = Taxonomy::Intervals(0, 99, 10);
  DIVA_CHECK(age.ok());
  context.SetTaxonomy(2, std::move(age).value());  // AGE
  return context;
}

TEST(GeneralizeTest, LcaInsteadOfStar) {
  Relation r = MedicalRelation();
  GeneralizationContext context = MedicalContext();
  // t1 (80, Calgary) and t8 (58, Vancouver): GEN/ETH/PRV have no
  // taxonomy -> ★ where they disagree; CTY -> West; AGE -> root range.
  Clustering clustering = {{0, 7}};
  ASSERT_TRUE(GeneralizeClustersInPlace(&r, clustering, context).ok());
  EXPECT_EQ(r.ValueString(0, 4), "West");
  EXPECT_EQ(r.ValueString(7, 4), "West");
  EXPECT_EQ(r.ValueString(0, 2), "[0-99]");  // 80 vs 58 crosses decades
  EXPECT_TRUE(r.IsSuppressed(0, 1));         // ETH differs, no taxonomy
  EXPECT_EQ(r.ValueString(0, 0), "Female");  // unanimous: untouched
}

TEST(GeneralizeTest, SameDecadeGeneralizesNarrowly) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "32", "BC", "Vancouver", "x"},
                                {"F", "Asian", "35", "BC", "Vancouver", "y"},
                            });
  ASSERT_TRUE(r.ok());
  GeneralizationContext context = MedicalContext();
  Clustering clustering = {{0, 1}};
  ASSERT_TRUE(GeneralizeClustersInPlace(&(*r), clustering, context).ok());
  EXPECT_EQ(r->ValueString(0, 2), "[30-39]");
  EXPECT_EQ(r->ValueString(1, 2), "[30-39]");
}

TEST(GeneralizeTest, ClustersBecomeQiGroups) {
  Relation r = MedicalRelation();
  GeneralizationContext context = MedicalContext();
  Clustering clustering = {{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}};
  ASSERT_TRUE(GeneralizeClustersInPlace(&r, clustering, context).ok());
  EXPECT_TRUE(IsKAnonymous(r, 2));
}

TEST(GeneralizeTest, UnknownValueIsError) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "Atlantis", "x"},
                                {"F", "Asian", "30", "BC", "Vancouver", "y"},
                            });
  ASSERT_TRUE(r.ok());
  GeneralizationContext context = MedicalContext();
  Clustering clustering = {{0, 1}};
  auto status = GeneralizeClustersInPlace(&(*r), clustering, context);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(GeneralizeTest, NoTaxonomiesEqualsSuppression) {
  Relation generalized = MedicalRelation();
  Relation suppressed = MedicalRelation();
  GeneralizationContext none(6);
  Clustering clustering = {{0, 1, 2}, {5, 6}};
  ASSERT_TRUE(
      GeneralizeClustersInPlace(&generalized, clustering, none).ok());
  SuppressClustersInPlace(&suppressed, clustering);
  for (RowId row = 0; row < generalized.NumRows(); ++row) {
    for (size_t col = 0; col < generalized.NumAttributes(); ++col) {
      EXPECT_EQ(generalized.At(row, col), suppressed.At(row, col));
    }
  }
}

TEST(GeneralizeTest, NcpLossOrdersRefinement) {
  GeneralizationContext context = MedicalContext();
  // Narrow generalization costs less than wide; original costs 0.
  Relation original = MedicalRelation();
  EXPECT_DOUBLE_EQ(NcpLoss(original, context), 0.0);

  // Two West-coast patients in the same age decade: generalization keeps
  // [30-39] and "West", suppression erases both.
  auto make = [] {
    auto r = RelationFromRows(
        MedicalSchema(),
        {
            {"F", "Asian", "32", "AB", "Calgary", "x"},
            {"F", "Asian", "35", "BC", "Vancouver", "y"},
        });
    DIVA_CHECK(r.ok());
    return std::move(r).value();
  };
  Relation narrow = make();
  Relation wide = make();
  Clustering clustering = {{0, 1}};
  ASSERT_TRUE(GeneralizeClustersInPlace(&narrow, clustering, context).ok());
  SuppressClustersInPlace(&wide, clustering);
  double narrow_loss = NcpLoss(narrow, context);
  double wide_loss = NcpLoss(wide, context);
  EXPECT_GT(narrow_loss, 0.0);
  EXPECT_LT(narrow_loss, wide_loss);
}

TEST(GeneralizeTest, WorksOnTopOfAnyAnonymizer) {
  Relation r = MedicalRelation();
  auto mondrian = MakeMondrian({});
  std::vector<RowId> rows(r.NumRows());
  for (RowId i = 0; i < r.NumRows(); ++i) rows[i] = i;
  auto clusters = mondrian->BuildClusters(r, rows, 3);
  ASSERT_TRUE(clusters.ok());
  GeneralizationContext context = MedicalContext();
  ASSERT_TRUE(GeneralizeClustersInPlace(&r, *clusters, context).ok());
  EXPECT_TRUE(IsKAnonymous(r, 3));
  EXPECT_LT(NcpLoss(r, context), 1.0);
}

// --------------------------------------------- DIVA with generalization

TEST(GeneralizeTest, DivaWithGeneralizationContext) {
  Relation r = MedicalRelation();
  auto constraints = testing::MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.generalization =
      std::make_shared<GeneralizationContext>(MedicalContext());
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
  EXPECT_TRUE(SatisfiesAll(result->relation, constraints));

  // Recoded cells carry taxonomy labels (or stars for attributes
  // without a taxonomy); never a foreign leaf value.
  bool saw_generalized_label = false;
  for (RowId row = 0; row < result->relation.NumRows(); ++row) {
    std::string age = result->relation.ValueString(row, 2);
    if (age.front() == '[') saw_generalized_label = true;
  }
  EXPECT_TRUE(saw_generalized_label);
}

TEST(GeneralizeTest, DivaGeneralizationArityMismatchRejected) {
  Relation r = MedicalRelation();
  DivaOptions options;
  options.k = 2;
  options.generalization = std::make_shared<GeneralizationContext>(3);
  auto result = RunDiva(r, {}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(GeneralizeTest, ArityMismatchRejected) {
  Relation r = MedicalRelation();
  GeneralizationContext wrong(3);
  Clustering clustering = {{0, 1}};
  EXPECT_FALSE(GeneralizeClustersInPlace(&r, clustering, wrong).ok());
}

}  // namespace
}  // namespace diva
