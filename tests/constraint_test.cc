#include <gtest/gtest.h>

#include "constraint/diversity_constraint.h"
#include "constraint/parser.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

TEST(ConstraintTest, MakeValidatesAttributes) {
  auto schema = MedicalSchema();
  EXPECT_FALSE(DiversityConstraint::Make(*schema, {}, {}, 0, 1).ok());
  EXPECT_FALSE(
      DiversityConstraint::Make(*schema, {"NOPE"}, {"x"}, 0, 1).ok());
  EXPECT_FALSE(
      DiversityConstraint::Make(*schema, {"ETH"}, {"a", "b"}, 0, 1).ok());
  EXPECT_FALSE(
      DiversityConstraint::Make(*schema, {"ETH", "ETH"}, {"a", "b"}, 0, 1)
          .ok());
  EXPECT_FALSE(DiversityConstraint::Make(*schema, {"ETH"}, {"a"}, 3, 2).ok());
  EXPECT_TRUE(DiversityConstraint::Make(*schema, {"ETH"}, {"a"}, 2, 2).ok());
}

TEST(ConstraintTest, CountAndSatisfactionOnPaperTable1) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  // sigma_1 = (ETH[Asian], 2, 5): Table 1 has 3 Asians -> satisfied.
  auto s1 = MustParse(*schema, "ETH[Asian] in [2,5]");
  EXPECT_EQ(s1.CountOccurrences(r), 3u);
  EXPECT_TRUE(s1.IsSatisfiedBy(r));
  // 4 Vancouver tuples.
  auto s3 = MustParse(*schema, "CTY[Vancouver] in [2,4]");
  EXPECT_EQ(s3.CountOccurrences(r), 4u);
  EXPECT_TRUE(s3.IsSatisfiedBy(r));
  // Too-tight upper bound fails.
  auto tight = MustParse(*schema, "CTY[Vancouver] in [1,3]");
  EXPECT_FALSE(tight.IsSatisfiedBy(r));
  // Unmet lower bound fails.
  auto high = MustParse(*schema, "ETH[Asian] in [4,9]");
  EXPECT_FALSE(high.IsSatisfiedBy(r));
}

TEST(ConstraintTest, TargetTuplesMatchPaperExample) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  // I_s1 = {t8, t9, t10} -> rows {7, 8, 9}.
  EXPECT_EQ(MustParse(*schema, "ETH[Asian] in [2,5]").TargetTuples(r),
            (std::vector<RowId>{7, 8, 9}));
  // I_s2 = {t5, t6} -> rows {4, 5}.
  EXPECT_EQ(MustParse(*schema, "ETH[African] in [1,3]").TargetTuples(r),
            (std::vector<RowId>{4, 5}));
  // I_s3 = {t6, t7, t8, t10} -> rows {5, 6, 7, 9}.
  EXPECT_EQ(MustParse(*schema, "CTY[Vancouver] in [2,4]").TargetTuples(r),
            (std::vector<RowId>{5, 6, 7, 9}));
}

TEST(ConstraintTest, UnknownValueCountsZero) {
  Relation r = MedicalRelation();
  auto constraint = MustParse(*MedicalSchema(), "ETH[Martian] in [0,5]");
  EXPECT_EQ(constraint.CountOccurrences(r), 0u);
  EXPECT_TRUE(constraint.IsSatisfiedBy(r));  // lower bound 0
  EXPECT_TRUE(constraint.TargetTuples(r).empty());
}

TEST(ConstraintTest, MultiAttributeTarget) {
  Relation r = MedicalRelation();
  auto constraint =
      MustParse(*MedicalSchema(), "GEN,ETH[Male,African] in [1,3]");
  EXPECT_EQ(constraint.CountOccurrences(r), 2u);  // t5, t6
  EXPECT_EQ(constraint.TargetTuples(r), (std::vector<RowId>{4, 5}));
  EXPECT_TRUE(constraint.IsSatisfiedBy(r));
}

TEST(ConstraintTest, SuppressedCellsNeverMatch) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"Female", "*", "30", "BC", "V", "Flu"},
                                {"Female", "Asian", "30", "BC", "V", "Flu"},
                            });
  ASSERT_TRUE(r.ok());
  auto constraint = MustParse(*MedicalSchema(), "ETH[Asian] in [0,5]");
  EXPECT_EQ(constraint.CountOccurrences(*r), 1u);
}

TEST(ConstraintTest, SatisfiesAllAndViolated) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = MedicalConstraints(*schema);
  EXPECT_TRUE(SatisfiesAll(r, constraints));
  EXPECT_TRUE(ViolatedConstraints(r, constraints).empty());

  constraints.push_back(MustParse(*schema, "ETH[Asian] in [4,5]"));
  EXPECT_FALSE(SatisfiesAll(r, constraints));
  EXPECT_EQ(ViolatedConstraints(r, constraints),
            (std::vector<size_t>{3}));
}

TEST(ConstraintTest, ToStringRoundTrip) {
  auto schema = MedicalSchema();
  auto original = MustParse(*schema, "GEN,ETH[Male,African] in [1,3]");
  auto reparsed = MustParse(*schema, original.ToString());
  EXPECT_EQ(original, reparsed);
  EXPECT_EQ(original.ToString(), "GEN,ETH[Male,African] in [1,3]");
}

// ------------------------------------------------------------- Parser

TEST(ParserTest, ParsesSingleAttribute) {
  auto constraint = MustParse(*MedicalSchema(), "  ETH [ Asian ] IN [ 2 , 5 ]");
  EXPECT_EQ(constraint.attribute_names(),
            (std::vector<std::string>{"ETH"}));
  EXPECT_EQ(constraint.values(), (std::vector<std::string>{"Asian"}));
  EXPECT_EQ(constraint.lower(), 2u);
  EXPECT_EQ(constraint.upper(), 5u);
}

TEST(ParserTest, RejectsMalformed) {
  auto schema = MedicalSchema();
  EXPECT_FALSE(ParseConstraint(*schema, "ETH Asian in [2,5]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian in [2,5]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian] [2,5]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian] in 2,5").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian] in [2]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian] in [a,b]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian] in [-1,5]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "ETH[Asian] in [5,2]").ok());
  EXPECT_FALSE(ParseConstraint(*schema, "BOGUS[Asian] in [2,5]").ok());
}

TEST(ParserTest, ParsesSetWithCommentsAndBlanks) {
  auto constraints = ParseConstraintSet(*MedicalSchema(),
                                        "# paper example\n"
                                        "\n"
                                        "ETH[Asian] in [2,5]\n"
                                        "  # another comment\n"
                                        "CTY[Vancouver] in [2,4]\n");
  ASSERT_TRUE(constraints.ok());
  EXPECT_EQ(constraints->size(), 2u);
}

TEST(ParserTest, SetReportsLineNumber) {
  auto constraints = ParseConstraintSet(*MedicalSchema(),
                                        "ETH[Asian] in [2,5]\n"
                                        "garbage here\n");
  ASSERT_FALSE(constraints.ok());
  EXPECT_NE(constraints.status().message().find("line 2"),
            std::string::npos);
}

}  // namespace
}  // namespace diva
