#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "anon/privacy.h"
#include "anon/suppress.h"
#include "core/diva.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;

TEST(PrivacyTest, LOneIsAlwaysSatisfied) {
  Relation r = MedicalRelation();
  EXPECT_TRUE(IsDistinctLDiverse(r, 0));
  EXPECT_TRUE(IsDistinctLDiverse(r, 1));
}

TEST(PrivacyTest, DetectsHomogeneousGroup) {
  // Two identical-QI rows sharing one diagnosis: 2-anonymous but not
  // 2-diverse (the homogeneity attack case).
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"M", "Cauc", "40", "AB", "C", "Flu"},
                                {"M", "Cauc", "40", "AB", "C", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(IsKAnonymous(*r, 2));
  EXPECT_FALSE(IsDistinctLDiverse(*r, 2));
}

TEST(PrivacyTest, CountDistinctSensitiveProjections) {
  Relation r = MedicalRelation();
  // Table 1 diagnoses: Hypertension x3, Tuberculosis, Osteoarthritis,
  // Migraine x2, Seizure x2, Influenza -> 6 distinct.
  EXPECT_EQ(CountDistinctSensitiveProjections(r), 6u);
}

TEST(PrivacyTest, EnforceMergesHomogeneousClusters) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"M", "Cauc", "40", "AB", "C", "Flu"},
                                {"M", "Cauc", "40", "AB", "C", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  Clustering clusters = {{0, 1}, {2, 3}};
  auto merged = EnforceLDiversity(&(*r), clusters, 2);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->size(), 1u);
  EXPECT_TRUE(IsDistinctLDiverse(*r, 2));
  EXPECT_TRUE(IsKAnonymous(*r, 2));
}

TEST(PrivacyTest, EnforceKeepsAlreadyDiverseClusters) {
  Relation r = MedicalRelation();
  Clustering clusters = {{0, 1, 2}, {3, 4, 5, 6}, {7, 8, 9}};
  Relation before = r;
  auto merged = EnforceLDiversity(&r, clusters, 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 3u);  // every cluster already 2-diverse
}

TEST(PrivacyTest, EnforceInfeasibleWhenTooFewSensitiveValues) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"M", "Cauc", "40", "AB", "C", "Flu"},
                            });
  ASSERT_TRUE(r.ok());
  Clustering clusters = {{0, 1}};
  auto merged = EnforceLDiversity(&(*r), clusters, 2);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInfeasible);
}

TEST(PrivacyTest, DivaWithLDiversityOption) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.l_diversity = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
  EXPECT_TRUE(IsDistinctLDiverse(result->relation, 2));
  // Upper bounds still hold even if merging cost some lower bounds.
  for (const auto& constraint : constraints) {
    EXPECT_LE(constraint.CountOccurrences(result->relation),
              constraint.upper());
  }
}

TEST(PrivacyTest, DivaLDiversityInfeasibleReported) {
  // All rows share one diagnosis: l = 2 is impossible.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back({"F", "Asian", std::to_string(30 + i), "BC", "V", "Flu"});
  }
  auto r = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(r.ok());
  DivaOptions options;
  options.k = 2;
  options.l_diversity = 2;
  auto result = RunDiva(*r, {}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

// ------------------------------------------------------------ t-closeness

TEST(TClosenessTest, UniformGroupsAreClose) {
  // Two groups, each mirroring the global 50/50 Flu/Cold split.
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "A", "30", "BC", "V", "Flu"},
                                {"F", "A", "30", "BC", "V", "Cold"},
                                {"M", "B", "40", "AB", "C", "Flu"},
                                {"M", "B", "40", "AB", "C", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(TClosenessDistance(*r), 0.0, 1e-12);
  EXPECT_TRUE(IsTClose(*r, 0.0));
}

TEST(TClosenessTest, SkewedGroupScoresItsDivergence) {
  // Global: 1/2 Flu, 1/2 Cold. Each group is pure -> variational
  // distance 1/2.
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "A", "30", "BC", "V", "Flu"},
                                {"F", "A", "30", "BC", "V", "Flu"},
                                {"M", "B", "40", "AB", "C", "Cold"},
                                {"M", "B", "40", "AB", "C", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(TClosenessDistance(*r), 0.5, 1e-12);
  EXPECT_FALSE(IsTClose(*r, 0.4));
  EXPECT_TRUE(IsTClose(*r, 0.5));
}

TEST(TClosenessTest, EnforceMergesFarGroups) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "A", "30", "BC", "V", "Flu"},
                                {"F", "A", "30", "BC", "V", "Flu"},
                                {"M", "B", "40", "AB", "C", "Cold"},
                                {"M", "B", "40", "AB", "C", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  Clustering clusters = {{0, 1}, {2, 3}};
  auto merged = EnforceTCloseness(&(*r), clusters, 0.2);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 1u);
  EXPECT_TRUE(IsTClose(*r, 0.2));
  EXPECT_TRUE(IsKAnonymous(*r, 2));
}

TEST(TClosenessTest, EnforceKeepsCloseGroups) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "A", "30", "BC", "V", "Flu"},
                                {"F", "A", "30", "BC", "V", "Cold"},
                                {"M", "B", "40", "AB", "C", "Flu"},
                                {"M", "B", "40", "AB", "C", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  Clustering clusters = {{0, 1}, {2, 3}};
  auto merged = EnforceTCloseness(&(*r), clusters, 0.1);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 2u);
}

TEST(TClosenessTest, NegativeTRejected) {
  Relation r = MedicalRelation();
  Clustering clusters = {{0, 1}};
  EXPECT_FALSE(EnforceTCloseness(&r, clusters, -0.1).ok());
}

TEST(TClosenessTest, DivaWithTClosenessOption) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.t_closeness = 0.6;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
  EXPECT_TRUE(IsTClose(result->relation, 0.6));
}

TEST(PrivacyTest, AnonymizerOutputCanBeUpgraded) {
  Relation r = MedicalRelation();
  auto kmember = MakeKMember({});
  std::vector<RowId> rows(r.NumRows());
  for (RowId i = 0; i < r.NumRows(); ++i) rows[i] = i;
  auto clusters = kmember->BuildClusters(r, rows, 2);
  ASSERT_TRUE(clusters.ok());
  Relation out = r;
  SuppressClustersInPlace(&out, *clusters);
  auto merged = EnforceLDiversity(&out, std::move(*clusters), 3);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(IsDistinctLDiverse(out, 3));
  EXPECT_TRUE(IsKAnonymous(out, 2));
}

}  // namespace
}  // namespace diva
