#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"

namespace diva {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kBudgetExhausted),
               "BudgetExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status ReturnNotOkHelper(bool fail) {
  DIVA_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::IoError("reached end");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(ReturnNotOkHelper(true).code(), StatusCode::kInternal);
  EXPECT_EQ(ReturnNotOkHelper(false).code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> AssignOrReturnHelper(bool fail) {
  Result<int> inner = fail ? Result<int>(Status::Internal("nope"))
                           : Result<int>(5);
  DIVA_ASSIGN_OR_RETURN(int v, std::move(inner));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = AssignOrReturnHelper(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 10);
  auto err = AssignOrReturnHelper(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// ---------------------------------------------------------------- Strings

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("single", ','), (std::vector<std::string>{"single"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("3.5").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" -2e3 "), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, StartsWithAndLower) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_EQ(ToLowerAscii("MiXeD"), "mixed");
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values show up
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next(), child.Next());
}

// ---------------------------------------------------------------- Zipf

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler sampler(10, 0.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfSampler sampler(100, 1.2);
  Rng rng(29);
  std::vector<int> counts(100, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], n / 10);  // rank 0 dominates
  // Frequencies are (statistically) non-increasing in rank: compare
  // decade sums to dodge noise.
  int first_decade = 0;
  int last_decade = 0;
  for (int i = 0; i < 10; ++i) first_decade += counts[i];
  for (int i = 90; i < 100; ++i) last_decade += counts[i];
  EXPECT_GT(first_decade, 10 * last_decade);
}

TEST(ZipfTest, SingletonDomain) {
  ZipfSampler sampler(1, 1.0);
  Rng rng(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

}  // namespace
}  // namespace diva
