// Systematic fault injection: every registered failpoint is swept through
// a full pipeline (CSV round trip + RunDiva with every optional layer on),
// asserting a clean error Status — never an abort, a leak, or a silent
// success. The sweep doubles as drift detection for the kKnownSites table:
// a table entry no pipeline hits and an instrumented site missing from the
// table both fail here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "core/incremental.h"
#include "relation/csv.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;

/// One end-to-end pipeline pass that reaches every registered failpoint:
/// CSV write + read (csv.*, relation.append_row), a fully-loaded DIVA run
/// (diva.*, kmember.build, privacy.*, audit.run), and one plain run per
/// remaining baseline (oka.build, mondrian.build).
Status RunPipeline(const Relation& relation,
                   std::shared_ptr<const Schema> schema,
                   const ConstraintSet& constraints, const char* path) {
  DIVA_RETURN_IF_ERROR(WriteCsvFile(relation, path));
  auto read = ReadCsvFile(path, schema);
  if (!read.ok()) return read.status();

  DivaOptions options;
  options.k = 2;
  options.audit = true;
  options.l_diversity = 2;
  options.t_closeness = 0.3;
  options.baseline = BaselineAlgorithm::kKMember;
  auto diva = RunDiva(*read, constraints, options);
  if (!diva.ok()) return diva.status();

  // A disjoint-target Sigma decomposes into two conflict-graph
  // components (ETH[Asian] targets t8-t10, PRV[AB] targets t1-t3), so
  // this run takes the component-sharded coloring path and reaches the
  // shard.run / shard.merge sites (shard.partition fires on every run).
  auto sharded_constraints = ParseConstraintSet(
      *schema, "ETH[Asian] in [2,5]\nPRV[AB] in [1,3]\n");
  if (!sharded_constraints.ok()) return sharded_constraints.status();
  DivaOptions sharded_options;
  sharded_options.k = 2;
  sharded_options.incremental = true;
  auto sharded = RunDiva(*read, *sharded_constraints, sharded_options);
  if (!sharded.ok()) return sharded.status();

  // Replay a small churn through the incremental path (delta.* sites).
  // The two-component run above captured a reusable snapshot; a delta
  // that deletes one row and re-inserts an identical one keeps the run
  // well-formed while exercising apply / recolor / merge.
  if (sharded->snapshot == nullptr) {
    return Status::Internal("two-component incremental run lost its snapshot");
  }
  DeltaBatch delta;
  delta.deleted.push_back(3);
  delta.inserted.push_back(
      {"Male", "Caucasian", "46", "MB", "Winnipeg", "Migraine"});
  auto replayed = ApplyDelta(*sharded->snapshot, delta, sharded_options);
  if (!replayed.ok()) return replayed.status();

  // An empty Sigma leaves every row to the baseline, so each baseline's
  // failpoint is guaranteed reachable.
  for (BaselineAlgorithm baseline :
       {BaselineAlgorithm::kOka, BaselineAlgorithm::kMondrian}) {
    DivaOptions baseline_options;
    baseline_options.k = 2;
    baseline_options.baseline = baseline;
    auto result = RunDiva(*read, ConstraintSet(), baseline_options);
    if (!result.ok()) return result.status();
  }
  DivaOptions kmember_options;
  kmember_options.k = 2;
  kmember_options.baseline = BaselineAlgorithm::kKMember;
  auto kmember = RunDiva(*read, ConstraintSet(), kmember_options);
  if (!kmember.ok()) return kmember.status();
  return Status::OK();
}

TEST(FaultInjectionTest, SweepEveryKnownSiteFailsCleanly) {
  const char* path = "fault_injection_sweep.csv";
  Relation relation = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = MedicalConstraints(*schema);

  for (const std::string& name : failpoint::KnownFailpoints()) {
    // serve.* sites sit on the socket path, which a pipeline run never
    // touches; tests/serve_chaos_test.cc sweeps that domain.
    if (name.rfind("serve.", 0) == 0) continue;
    SCOPED_TRACE(name);
    failpoint::Reset();
    failpoint::Arm(name, StatusCode::kInternal);
    Status status = RunPipeline(relation, schema, constraints, path);
    EXPECT_FALSE(status.ok())
        << "armed failpoint '" << name << "' did not surface";
    // The injected Status reaches the caller with the firing site named
    // in its message (wrappers may change the code, never drop the text).
    EXPECT_NE(status.message().find("failpoint '" + name + "'"),
              std::string::npos)
        << status.ToString();
    EXPECT_GE(failpoint::HitCount(name), 1u);
  }
  failpoint::Reset();
  std::remove(path);
}

TEST(FaultInjectionTest, KnownSitesTableMatchesInstrumentedSites) {
  const char* path = "fault_injection_coverage.csv";
  Relation relation = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = MedicalConstraints(*schema);

  failpoint::Reset();
  failpoint::SetCounting(true);
  Status status = RunPipeline(relation, schema, constraints, path);
  EXPECT_TRUE(status.ok()) << status.ToString();

  std::vector<std::string> known = failpoint::KnownFailpoints();
  for (const std::string& name : known) {
    if (name.rfind("serve.", 0) == 0) continue;  // serve_chaos_test's domain
    EXPECT_GE(failpoint::HitCount(name), 1u)
        << "stale kKnownSites entry (never hit by the pipeline): " << name;
  }
  for (const std::string& name : failpoint::HitSites()) {
    EXPECT_TRUE(std::binary_search(known.begin(), known.end(), name))
        << "instrumented site missing from kKnownSites: " << name;
  }
  failpoint::Reset();
  std::remove(path);
}

TEST(FaultInjectionTest, FiresOnExactlyTheNthHitAndOnlyOnce) {
  failpoint::Reset();
  failpoint::Arm("csv.read.record", StatusCode::kIoError, 3);

  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(MedicalRelation(), out).ok());
  std::istringstream in(out.str());
  auto read = ReadCsv(in, MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_EQ(failpoint::HitCount("csv.read.record"), 3u)
      << "the site must fire on its 3rd hit, not before or after";

  // The fired latch: the same armed site passes on every later hit.
  std::istringstream again(out.str());
  auto reread = ReadCsv(again, MedicalSchema());
  EXPECT_TRUE(reread.ok()) << reread.status().ToString();
  failpoint::Reset();
}

TEST(FaultInjectionTest, InjectedDeadlineDegradesBaselineButStillAudits) {
  failpoint::Reset();
  failpoint::Arm("kmember.build", StatusCode::kDeadlineExceeded);

  DivaOptions options;
  options.k = 2;
  options.audit = true;
  auto result = RunDiva(MedicalRelation(), ConstraintSet(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.baseline_degraded)
      << "an interrupted k-member run must fall back to Mondrian";
  EXPECT_TRUE(result->report.audited);
  EXPECT_FALSE(result->report.deadline_exceeded)
      << "no wall deadline was set; only the baseline was interrupted";
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
  failpoint::Reset();
}

TEST(FaultInjectionTest, InjectedDeadlineIsAnErrorInStrictMode) {
  failpoint::Reset();
  failpoint::Arm("kmember.build", StatusCode::kDeadlineExceeded);

  DivaOptions options;
  options.k = 2;
  options.strict = true;
  auto result = RunDiva(MedicalRelation(), ConstraintSet(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  failpoint::Reset();
}

TEST(FaultInjectionTest, ArmFromSpecArmsEveryEntry) {
  failpoint::Reset();
  ASSERT_TRUE(
      failpoint::ArmFromSpec("csv.open.read=io-error@hit:1,audit.run=Internal")
          .ok());
  auto read = ReadCsvFile("fault_injection_unused.csv", MedicalSchema());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
  EXPECT_NE(read.status().message().find("failpoint 'csv.open.read'"),
            std::string::npos);
  failpoint::Reset();
}

TEST(FaultInjectionTest, ArmFromSpecRejectsMalformedEntries) {
  failpoint::Reset();
  EXPECT_EQ(failpoint::ArmFromSpec("noequals").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("=io").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("a.site=bogus-code").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("a.site=io@hit:0").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::ArmFromSpec("a.site=io@whenever").code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(failpoint::ArmFromSpec("").ok());  // empty spec is a no-op
  failpoint::Reset();
}

TEST(FaultInjectionTest, ArmFromSpecErrorsNameTheEntryAndField) {
  failpoint::Reset();
  // The second entry is broken: the error must carry its ordinal, its
  // column, the entry text, and which field is wrong.
  Status bad_trigger =
      failpoint::ArmFromSpec("audit.run=io,csv.open.read=io@whenever");
  ASSERT_EQ(bad_trigger.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_trigger.message().find("entry 2"), std::string::npos)
      << bad_trigger.ToString();
  EXPECT_NE(bad_trigger.message().find("col 14"), std::string::npos)
      << bad_trigger.ToString();
  EXPECT_NE(bad_trigger.message().find("csv.open.read=io@whenever"),
            std::string::npos)
      << bad_trigger.ToString();
  EXPECT_NE(bad_trigger.message().find("hit:N"), std::string::npos)
      << bad_trigger.ToString();

  Status bad_code = failpoint::ArmFromSpec("audit.run=no-such-code");
  ASSERT_EQ(bad_code.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad_code.message().find("unknown status code 'no-such-code'"),
            std::string::npos)
      << bad_code.ToString();
  failpoint::Reset();
}

TEST(FaultInjectionTest, ArmFromSpecRejectsUnknownSitesAndArmsNothing) {
  failpoint::Reset();
  // A typo'd site would arm a failpoint nothing ever hits — the spec is
  // rejected, and the valid first entry must NOT have been armed either.
  Status status = failpoint::ArmFromSpec("audit.run=io,audit.rnu=io");
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown failpoint site 'audit.rnu'"),
            std::string::npos)
      << status.ToString();
  EXPECT_TRUE(failpoint::Check("audit.run").ok())
      << "a rejected spec must be all-or-nothing";
  failpoint::Reset();
}

}  // namespace
}  // namespace diva
