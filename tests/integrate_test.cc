#include <gtest/gtest.h>

#include "anon/suppress.h"
#include "core/integrate.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

TEST(IntegrateTest, NoViolationIsNoOp) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {MustParse(*MedicalSchema(),
                                         "ETH[Asian] in [2,5]")};
  Clustering rk = {{0, 1, 2}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_EQ(stats.repaired_constraints, 0u);
  EXPECT_EQ(stats.suppressed_cells, 0u);
  EXPECT_EQ(r.ValueString(7, 1), "Asian");
}

TEST(IntegrateTest, QiUpperBoundRepairedByWholeClusters) {
  // Build a relation where a QI-only constraint is over-satisfied by the
  // R_k side: six identical Asian rows in two clusters of three, with an
  // upper bound of 4.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  }
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();

  ConstraintSet constraints = {MustParse(*MedicalSchema(),
                                         "ETH[Asian] in [0,4]")};
  Clustering rk = {{0, 1, 2}, {3, 4, 5}};
  SuppressClustersInPlace(&r, rk);  // no-op: rows identical
  ASSERT_EQ(constraints[0].CountOccurrences(r), 6u);

  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_EQ(stats.repaired_constraints, 1u);
  // Excess = 2, smallest covering cluster has 3 rows.
  EXPECT_EQ(stats.suppressed_cells, 3u);
  EXPECT_LE(constraints[0].CountOccurrences(r), 4u);
  // k-anonymity (k = 3) still holds: the repaired cluster is uniform.
  EXPECT_TRUE(IsKAnonymous(r, 3));
}

TEST(IntegrateTest, PicksSmallestCoveringCluster) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 9; ++i) {
    rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  }
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();
  ConstraintSet constraints = {MustParse(*MedicalSchema(),
                                         "ETH[Asian] in [0,7]")};
  // Clusters of sizes 2, 3, 4; excess = 2 -> the size-2 cluster suffices.
  Clustering rk = {{0, 1}, {2, 3, 4}, {5, 6, 7, 8}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_EQ(stats.suppressed_cells, 2u);
  EXPECT_EQ(constraints[0].CountOccurrences(r), 7u);
}

TEST(IntegrateTest, CombinesClustersWhenOneIsNotEnough) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 9; ++i) {
    rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  }
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();
  ConstraintSet constraints = {MustParse(*MedicalSchema(),
                                         "ETH[Asian] in [0,1]")};
  // Excess = 8; clusters 2+3+4 = 9 rows; repair should remove >= 8.
  Clustering rk = {{0, 1}, {2, 3, 4}, {5, 6, 7, 8}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_LE(constraints[0].CountOccurrences(r), 1u);
  EXPECT_GE(stats.suppressed_cells, 8u);
}

TEST(IntegrateTest, SensitiveTargetRepairedCellWise) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  }
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();
  ConstraintSet constraints = {MustParse(*MedicalSchema(),
                                         "DIAG[Flu] in [0,3]")};
  Clustering rk = {{0, 1, 2, 3, 4}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  // Exactly the excess (2) sensitive cells suppressed — no overshoot.
  EXPECT_EQ(stats.suppressed_cells, 2u);
  EXPECT_EQ(constraints[0].CountOccurrences(r), 3u);
  // QI cells untouched; group intact.
  EXPECT_TRUE(IsKAnonymous(r, 5));
}

TEST(IntegrateTest, MixedTargetPrefersSensitiveCell) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  }
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();
  ConstraintSet constraints = {MustParse(*MedicalSchema(),
                                         "ETH,DIAG[Asian,Flu] in [0,2]")};
  Clustering rk = {{0, 1, 2, 3}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_EQ(stats.suppressed_cells, 2u);
  EXPECT_EQ(constraints[0].CountOccurrences(r), 2u);
  // The QI column survived (repair used DIAG cells).
  for (RowId row = 0; row < 4; ++row) {
    EXPECT_FALSE(r.IsSuppressed(row, 1));
  }
}

TEST(IntegrateTest, MultipleConstraintsRepairedIndependently) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  for (int i = 0; i < 4; ++i) rows.push_back({"M", "African", "30", "BC", "W", "Cold"});
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [0,2]"),
      MustParse(*MedicalSchema(), "ETH[African] in [0,2]"),
  };
  Clustering rk = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_EQ(stats.repaired_constraints, 2u);
  EXPECT_LE(constraints[0].CountOccurrences(r), 2u);
  EXPECT_LE(constraints[1].CountOccurrences(r), 2u);
}

TEST(IntegrateTest, RepairOfOneConstraintCanFixAnother) {
  // Two constraints targeting the same column value: repairing the first
  // also lowers the second's count; the second must then not over-repair.
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 6; ++i) rows.push_back({"F", "Asian", "30", "BC", "V", "Flu"});
  auto relation = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(relation.ok());
  Relation r = std::move(relation).value();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [0,3]"),
      MustParse(*MedicalSchema(), "ETH,CTY[Asian,V] in [0,3]"),
  };
  Clustering rk = {{0, 1, 2}, {3, 4, 5}};
  IntegrateStats stats = IntegrateRepair(&r, constraints, rk);
  EXPECT_EQ(stats.repaired_constraints, 1u);  // second already fixed
  EXPECT_LE(constraints[0].CountOccurrences(r), 3u);
  EXPECT_LE(constraints[1].CountOccurrences(r), 3u);
}

}  // namespace
}  // namespace diva
