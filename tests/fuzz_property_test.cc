// Randomized mini-workload fuzzing: many small random relations and
// constraint sets, every algorithm run on each, core invariants checked.
// Catches interaction bugs that hand-written cases miss.

#include <gtest/gtest.h>

#include <numeric>

#include "anon/anonymizer.h"
#include "anon/privacy.h"
#include "anon/suppress.h"
#include "common/rng.h"
#include "constraint/generator.h"
#include "core/diva.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"
#include "relation/qi_groups.h"

namespace diva {
namespace {

struct FuzzWorkload {
  Relation relation;
  ConstraintSet constraints;
  size_t k;
};

/// Builds a random small workload from a fuzz seed: 20-220 rows, 2-4
/// categorical QI attributes with random domains and skews, an optional
/// numeric attribute, one sensitive attribute, 0-6 generated constraints,
/// k in [2, 8].
FuzzWorkload MakeWorkload(uint64_t fuzz_seed) {
  Rng rng(fuzz_seed);
  SyntheticSpec spec;
  spec.num_rows = 20 + static_cast<size_t>(rng.NextBounded(200));
  spec.seed = rng.Next();
  spec.num_latent_classes = 2 + static_cast<size_t>(rng.NextBounded(12));
  spec.latent_skew = rng.UniformDouble() * 1.5;

  size_t num_qi = 2 + static_cast<size_t>(rng.NextBounded(3));
  for (size_t i = 0; i < num_qi; ++i) {
    AttributeSpec attr;
    attr.name = "Q" + std::to_string(i);
    attr.domain_size = 2 + static_cast<size_t>(rng.NextBounded(9));
    attr.distribution = static_cast<ValueDistribution>(rng.NextBounded(3));
    attr.zipf_skew = 0.5 + rng.UniformDouble();
    attr.correlation = rng.UniformDouble() * 0.5;
    spec.attributes.push_back(attr);
  }
  if (rng.NextBounded(2) == 0) {
    AttributeSpec numeric;
    numeric.name = "NUM";
    numeric.kind = AttributeKind::kNumeric;
    numeric.domain_size = 5 + static_cast<size_t>(rng.NextBounded(40));
    numeric.numeric_base = static_cast<int64_t>(rng.NextBounded(100));
    numeric.distribution = ValueDistribution::kGaussian;
    spec.attributes.push_back(numeric);
  }
  AttributeSpec sensitive;
  sensitive.name = "S";
  sensitive.role = AttributeRole::kSensitive;
  sensitive.domain_size = 2 + static_cast<size_t>(rng.NextBounded(6));
  spec.attributes.push_back(sensitive);

  auto relation = GenerateSynthetic(spec);
  DIVA_CHECK_MSG(relation.ok(), relation.status().ToString());

  size_t k = 2 + static_cast<size_t>(rng.NextBounded(7));

  ConstraintGenOptions gen;
  gen.count = static_cast<size_t>(rng.NextBounded(7));
  gen.min_support = 2;
  gen.slack = 0.1 + rng.UniformDouble() * 0.5;
  gen.kind = static_cast<ConstraintClass>(rng.NextBounded(3));
  gen.seed = rng.Next();
  if (rng.NextBounded(2) == 0) {
    gen.target_conflict = rng.UniformDouble();
  }
  ConstraintSet constraints;
  auto generated = GenerateConstraints(*relation, gen);
  if (generated.ok()) constraints = std::move(generated).value();

  return {std::move(relation).value(), std::move(constraints), k};
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, BaselinesAlwaysKAnonymous) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();
  for (BaselineAlgorithm algorithm :
       {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
        BaselineAlgorithm::kMondrian}) {
    DivaOptions factory;
    factory.baseline = algorithm;
    factory.anonymizer.seed = GetParam();
    auto anonymizer = MakeBaselineAnonymizer(factory);
    auto result = Anonymize(anonymizer.get(), workload.relation, workload.k);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(IsKAnonymous(*result, workload.k))
        << BaselineAlgorithmToString(algorithm) << " seed " << GetParam();
  }
}

TEST_P(FuzzTest, DivaInvariantsHold) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();

  DivaOptions options;
  options.k = workload.k;
  options.seed = GetParam() * 31 + 1;
  options.coloring_budget = 20000;
  auto result = RunDiva(workload.relation, workload.constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant 1: k-anonymity, always.
  EXPECT_TRUE(IsKAnonymous(result->relation, workload.k))
      << "seed " << GetParam();
  // Invariant 2: upper bounds, always.
  for (const auto& constraint : workload.constraints) {
    EXPECT_LE(constraint.CountOccurrences(result->relation),
              constraint.upper())
        << constraint.ToString() << " seed " << GetParam();
  }
  // Invariant 3: complete coloring => Sigma satisfied.
  if (result->report.clustering_complete) {
    EXPECT_TRUE(SatisfiesAll(result->relation, workload.constraints))
        << "seed " << GetParam();
  }
  // Invariant 4: suppression-only output (modulo blanked identifiers).
  for (RowId row = 0; row < workload.relation.NumRows(); ++row) {
    for (size_t col = 0; col < workload.relation.NumAttributes(); ++col) {
      if (!result->relation.IsSuppressed(row, col)) {
        EXPECT_EQ(result->relation.At(row, col),
                  workload.relation.At(row, col));
      }
    }
  }
  // Invariant 5: accuracy within [0, 1].
  double accuracy =
      OverallAccuracy(result->relation, workload.k, workload.constraints);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST_P(FuzzTest, DivaIsDeterministic) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();
  DivaOptions options;
  options.k = workload.k;
  options.seed = GetParam();
  options.coloring_budget = 10000;
  auto a = RunDiva(workload.relation, workload.constraints, options);
  auto b = RunDiva(workload.relation, workload.constraints, options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (RowId row = 0; row < workload.relation.NumRows(); ++row) {
    for (size_t col = 0; col < workload.relation.NumAttributes(); ++col) {
      ASSERT_EQ(a->relation.At(row, col), b->relation.At(row, col))
          << "seed " << GetParam();
    }
  }
}

TEST_P(FuzzTest, PrivacyEnforcementUpgrades) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();
  auto anonymizer = MakeKMember({});
  std::vector<RowId> rows(workload.relation.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  auto clusters =
      anonymizer->BuildClusters(workload.relation, rows, workload.k);
  ASSERT_TRUE(clusters.ok());
  Relation out = workload.relation;
  SuppressClustersInPlace(&out, *clusters);

  size_t l = 2;
  if (CountDistinctSensitiveProjections(out) >= l) {
    auto merged = EnforceLDiversity(&out, *clusters, l);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_TRUE(IsDistinctLDiverse(out, l)) << "seed " << GetParam();
    EXPECT_TRUE(IsKAnonymous(out, workload.k)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 33),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace diva
