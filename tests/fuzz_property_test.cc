// Randomized mini-workload fuzzing: many small random relations and
// constraint sets, every algorithm run on each, core invariants checked.
// Catches interaction bugs that hand-written cases miss.

#include <gtest/gtest.h>

#include <numeric>

#include "anon/anonymizer.h"
#include "anon/privacy.h"
#include "anon/suppress.h"
#include "core/diva.h"
#include "metrics/metrics.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using diva::testing::FuzzWorkload;
using diva::testing::MakeWorkload;

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, BaselinesAlwaysKAnonymous) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();
  for (BaselineAlgorithm algorithm :
       {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
        BaselineAlgorithm::kMondrian}) {
    DivaOptions factory;
    factory.baseline = algorithm;
    factory.anonymizer.seed = GetParam();
    auto anonymizer = MakeBaselineAnonymizer(factory);
    auto result = Anonymize(anonymizer.get(), workload.relation, workload.k);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(IsKAnonymous(*result, workload.k))
        << BaselineAlgorithmToString(algorithm) << " seed " << GetParam();
  }
}

TEST_P(FuzzTest, DivaInvariantsHold) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();

  DivaOptions options;
  options.k = workload.k;
  options.seed = GetParam() * 31 + 1;
  options.coloring_budget = 20000;
  auto result = RunDiva(workload.relation, workload.constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant 1: k-anonymity, always.
  EXPECT_TRUE(IsKAnonymous(result->relation, workload.k))
      << "seed " << GetParam();
  // Invariant 2: upper bounds, always.
  for (const auto& constraint : workload.constraints) {
    EXPECT_LE(constraint.CountOccurrences(result->relation),
              constraint.upper())
        << constraint.ToString() << " seed " << GetParam();
  }
  // Invariant 3: complete coloring => Sigma satisfied.
  if (result->report.clustering_complete) {
    EXPECT_TRUE(SatisfiesAll(result->relation, workload.constraints))
        << "seed " << GetParam();
  }
  // Invariant 4: suppression-only output (modulo blanked identifiers).
  for (RowId row = 0; row < workload.relation.NumRows(); ++row) {
    for (size_t col = 0; col < workload.relation.NumAttributes(); ++col) {
      if (!result->relation.IsSuppressed(row, col)) {
        EXPECT_EQ(result->relation.At(row, col),
                  workload.relation.At(row, col));
      }
    }
  }
  // Invariant 5: accuracy within [0, 1].
  double accuracy =
      OverallAccuracy(result->relation, workload.k, workload.constraints);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST_P(FuzzTest, DivaIsDeterministic) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();
  DivaOptions options;
  options.k = workload.k;
  options.seed = GetParam();
  options.coloring_budget = 10000;
  auto a = RunDiva(workload.relation, workload.constraints, options);
  auto b = RunDiva(workload.relation, workload.constraints, options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (RowId row = 0; row < workload.relation.NumRows(); ++row) {
    for (size_t col = 0; col < workload.relation.NumAttributes(); ++col) {
      ASSERT_EQ(a->relation.At(row, col), b->relation.At(row, col))
          << "seed " << GetParam();
    }
  }
}

TEST_P(FuzzTest, PrivacyEnforcementUpgrades) {
  FuzzWorkload workload = MakeWorkload(GetParam());
  if (workload.relation.NumRows() < workload.k) GTEST_SKIP();
  auto anonymizer = MakeKMember({});
  std::vector<RowId> rows(workload.relation.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  auto clusters =
      anonymizer->BuildClusters(workload.relation, rows, workload.k);
  ASSERT_TRUE(clusters.ok());
  Relation out = workload.relation;
  SuppressClustersInPlace(&out, *clusters);

  size_t l = 2;
  if (CountDistinctSensitiveProjections(out) >= l) {
    auto merged = EnforceLDiversity(&out, *clusters, l);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_TRUE(IsDistinctLDiverse(out, l)) << "seed " << GetParam();
    EXPECT_TRUE(IsKAnonymous(out, workload.k)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 33),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace diva
