#include <gtest/gtest.h>

#include "constraint/generator.h"
#include "core/diva.h"
#include "datagen/synthetic.h"
#include "metrics/metrics.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

// ------------------------------------------------ paper running example

class DivaPaperExampleTest
    : public ::testing::TestWithParam<SelectionStrategy> {};

TEST_P(DivaPaperExampleTest, Table1WithK2SatisfiesSigma) {
  // Example 3.1 / Table 3: R from Table 1, k = 2,
  // Sigma = {(ETH[Asian],2,5), (ETH[African],1,3), (CTY[Vancouver],2,4)}.
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());

  DivaOptions options;
  options.k = 2;
  options.strategy = GetParam();
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const Relation& out = result->relation;
  EXPECT_EQ(out.NumRows(), r.NumRows());
  EXPECT_TRUE(IsKAnonymous(out, 2));
  EXPECT_TRUE(SatisfiesAll(out, constraints));
  EXPECT_TRUE(result->report.clustering_complete);
  EXPECT_TRUE(result->report.unsatisfied.empty());

  // Suppression-only: unsuppressed cells match the input.
  for (RowId row = 0; row < out.NumRows(); ++row) {
    for (size_t col = 0; col < out.NumAttributes(); ++col) {
      if (!out.IsSuppressed(row, col)) {
        EXPECT_EQ(out.At(row, col), r.At(row, col));
      }
    }
  }
  // Sensitive attribute untouched (no sensitive-target constraints here).
  for (RowId row = 0; row < out.NumRows(); ++row) {
    EXPECT_EQ(out.At(row, 5), r.At(row, 5));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DivaPaperExampleTest,
    ::testing::Values(SelectionStrategy::kBasic, SelectionStrategy::kMinChoice,
                      SelectionStrategy::kMaxFanOut),
    [](const ::testing::TestParamInfo<SelectionStrategy>& info) {
      return SelectionStrategyToString(info.param);
    });

// ------------------------------------------------ basic API behaviour

TEST(DivaTest, KZeroRejected) {
  Relation r = MedicalRelation();
  DivaOptions options;
  options.k = 0;
  EXPECT_FALSE(RunDiva(r, {}, options).ok());
}

TEST(DivaTest, FewerRowsThanKInfeasible) {
  Relation r = MedicalRelation();
  DivaOptions options;
  options.k = 11;
  auto result = RunDiva(r, {}, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(DivaTest, EmptyConstraintsDegeneratesToBaseline) {
  Relation r = MedicalRelation();
  DivaOptions options;
  options.k = 3;
  auto result = RunDiva(r, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKAnonymous(result->relation, 3));
  EXPECT_TRUE(result->report.clustering_complete);
  EXPECT_EQ(result->report.sigma_rows, 0u);
}

TEST(DivaTest, StrictModeFailsOnImpossibleConstraint) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [5,9]")};  // only 3 exist
  DivaOptions options;
  options.k = 2;
  options.strict = true;
  auto result = RunDiva(r, constraints, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST(DivaTest, NonStrictModeReportsUnsatisfied) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [5,9]")};
  DivaOptions options;
  options.k = 2;
  options.strict = false;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->report.clustering_complete);
  EXPECT_EQ(result->report.unsatisfied, (std::vector<size_t>{0}));
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));  // anonymity still holds
}

TEST(DivaTest, UpperBoundOnlyConstraintTriggersIntegrate) {
  // All 10 tuples share no constraint lower bound, but CTY[Vancouver]
  // occurrences must stay <= 1. The baseline would typically preserve
  // Vancouver in some group; Integrate must repair it.
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "CTY[Vancouver] in [0,1]")};
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SatisfiesAll(result->relation, constraints));
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
}

TEST(DivaTest, ReportTimingsAndCountsPopulated) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  const DivaReport& report = result->report;
  EXPECT_EQ(report.total_constraints, 3u);
  EXPECT_EQ(report.colored_constraints, 3u);
  EXPECT_GT(report.coloring_steps, 0u);
  EXPECT_GE(report.sigma_rows, 4u);  // at least s1's 2 + s2's 2 tuples
  EXPECT_GE(report.total_seconds, 0.0);
  EXPECT_GE(report.clustering_seconds, 0.0);
}

TEST(DivaTest, DeterministicForSeed) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.seed = 99;
  auto a = RunDiva(r, constraints, options);
  auto b = RunDiva(r, constraints, options);
  ASSERT_TRUE(a.ok() && b.ok());
  for (RowId row = 0; row < r.NumRows(); ++row) {
    for (size_t col = 0; col < r.NumAttributes(); ++col) {
      EXPECT_EQ(a->relation.At(row, col), b->relation.At(row, col));
    }
  }
}

TEST(DivaTest, AllBaselinesWork) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  for (BaselineAlgorithm baseline :
       {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
        BaselineAlgorithm::kMondrian}) {
    DivaOptions options;
    options.k = 2;
    options.baseline = baseline;
    auto result = RunDiva(r, constraints, options);
    ASSERT_TRUE(result.ok()) << BaselineAlgorithmToString(baseline);
    EXPECT_TRUE(IsKAnonymous(result->relation, 2))
        << BaselineAlgorithmToString(baseline);
    EXPECT_TRUE(SatisfiesAll(result->relation, constraints))
        << BaselineAlgorithmToString(baseline);
  }
}

// ------------------------------------------------ property sweep

struct SweepCase {
  size_t rows;
  size_t k;
  size_t num_constraints;
  ValueDistribution distribution;
  uint64_t seed;
};

Relation SweepRelation(const SweepCase& param) {
  SyntheticSpec spec;
  spec.num_rows = param.rows;
  spec.seed = param.seed;
  spec.num_latent_classes = 10;
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 6;
  a.distribution = param.distribution;
  a.zipf_skew = 1.0;
  a.correlation = 0.3;
  AttributeSpec b = a;
  b.name = "B";
  b.domain_size = 9;
  AttributeSpec c = a;
  c.name = "C";
  c.domain_size = 4;
  AttributeSpec age;
  age.name = "AGE";
  age.kind = AttributeKind::kNumeric;
  age.domain_size = 50;
  age.numeric_base = 18;
  age.distribution = ValueDistribution::kGaussian;
  AttributeSpec s;
  s.name = "S";
  s.role = AttributeRole::kSensitive;
  s.domain_size = 5;
  spec.attributes = {a, b, c, age, s};
  auto relation = GenerateSynthetic(spec);
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

class DivaPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DivaPropertyTest, OutputIsKAnonymousAndUpperBoundsHold) {
  const SweepCase& param = GetParam();
  Relation r = SweepRelation(param);

  ConstraintGenOptions gen;
  gen.count = param.num_constraints;
  gen.seed = param.seed;
  gen.min_support = param.k;  // clusterable targets
  auto constraints = GenerateConstraints(r, gen);
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();

  DivaOptions options;
  options.k = param.k;
  options.seed = param.seed;
  auto result = RunDiva(r, *constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Invariant 1: k-anonymity always holds, success or not.
  EXPECT_TRUE(IsKAnonymous(result->relation, param.k));
  // Invariant 2: upper bounds always hold after Integrate.
  for (const auto& constraint : *constraints) {
    EXPECT_LE(constraint.CountOccurrences(result->relation),
              constraint.upper())
        << constraint.ToString();
  }
  // Invariant 3: when the coloring succeeded, all of Sigma is satisfied.
  if (result->report.clustering_complete) {
    EXPECT_TRUE(SatisfiesAll(result->relation, *constraints));
    EXPECT_TRUE(result->report.unsatisfied.empty());
  }
  // Invariant 4: suppression-only anonymization.
  for (RowId row = 0; row < r.NumRows(); ++row) {
    for (size_t col = 0; col < r.NumAttributes(); ++col) {
      if (!result->relation.IsSuppressed(row, col)) {
        EXPECT_EQ(result->relation.At(row, col), r.At(row, col));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DivaPropertyTest,
    ::testing::Values(
        SweepCase{300, 3, 4, ValueDistribution::kZipfian, 1},
        SweepCase{300, 5, 6, ValueDistribution::kUniform, 2},
        SweepCase{500, 4, 8, ValueDistribution::kGaussian, 3},
        SweepCase{500, 10, 5, ValueDistribution::kZipfian, 4},
        SweepCase{800, 8, 10, ValueDistribution::kUniform, 5},
        SweepCase{1000, 20, 6, ValueDistribution::kZipfian, 6}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "n" + std::to_string(info.param.rows) + "_k" +
             std::to_string(info.param.k) + "_c" +
             std::to_string(info.param.num_constraints) + "_" +
             ValueDistributionToString(info.param.distribution) + "_s" +
             std::to_string(info.param.seed);
    });

TEST(DivaTest, AccuracyBeatsNothingButStaysInUnitInterval) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  double accuracy = OverallAccuracy(result->relation, 2, constraints);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
  EXPECT_GT(accuracy, 0.2);  // the 10-row example admits a decent solution
}

}  // namespace
}  // namespace diva
