#include <gtest/gtest.h>

#include "constraint/analysis.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

std::vector<ConstraintIssueKind> Kinds(
    const std::vector<ConstraintIssue>& issues) {
  std::vector<ConstraintIssueKind> kinds;
  for (const auto& issue : issues) kinds.push_back(issue.kind);
  return kinds;
}

TEST(AnalysisTest, CleanSetHasNoIssues) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  EXPECT_TRUE(AnalyzeConstraintSet(r, constraints, 2).empty());
}

TEST(AnalysisTest, InsufficientSupport) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [7,9]")};  // only 3 exist
  auto issues = AnalyzeConstraintSet(r, constraints, 2);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConstraintIssueKind::kInsufficientSupport);
  EXPECT_EQ(issues[0].constraint, 0u);
  EXPECT_EQ(issues[0].other, ConstraintIssue::kNoOther);
}

TEST(AnalysisTest, UnclusterableRange) {
  Relation r = MedicalRelation();
  // k = 4: any preserving cluster has >= 4 target tuples, but upper = 2.
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [1,2]")};
  auto issues = AnalyzeConstraintSet(r, constraints, 4);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConstraintIssueKind::kUnclusterableRange);
}

TEST(AnalysisTest, DuplicateTarget) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [2,5]"),
      MustParse(*MedicalSchema(), "ETH[Asian] in [1,4]"),
  };
  auto issues = AnalyzeConstraintSet(r, constraints, 2);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConstraintIssueKind::kDuplicateTarget);
  EXPECT_EQ(issues[0].constraint, 0u);
  EXPECT_EQ(issues[0].other, 1u);
}

TEST(AnalysisTest, DuplicateDetectionIsOrderInsensitive) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "GEN,ETH[Male,African] in [1,3]"),
      MustParse(*MedicalSchema(), "ETH,GEN[African,Male] in [1,2]"),
  };
  auto issues = AnalyzeConstraintSet(r, constraints, 2);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConstraintIssueKind::kDuplicateTarget);
}

TEST(AnalysisTest, ContradictoryBounds) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [0,1]"),
      MustParse(*MedicalSchema(), "ETH[Asian] in [3,5]"),
  };
  auto issues = AnalyzeConstraintSet(r, constraints, 2);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConstraintIssueKind::kContradictoryBounds);
}

TEST(AnalysisTest, NestedConflict) {
  Relation r = MedicalRelation();
  // Child (Male Africans, 2 tuples) demands >= 2; parent GEN[Male] caps
  // at 1 — impossible, since every Male African is a Male.
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "GEN,ETH[Male,African] in [2,2]"),
      MustParse(*MedicalSchema(), "GEN[Male] in [0,1]"),
  };
  auto issues = AnalyzeConstraintSet(r, constraints, 2);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, ConstraintIssueKind::kNestedConflict);
  EXPECT_EQ(issues[0].constraint, 0u);
  EXPECT_EQ(issues[0].other, 1u);
}

TEST(AnalysisTest, NestedButCompatibleIsClean) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "GEN,ETH[Male,African] in [1,2]"),
      MustParse(*MedicalSchema(), "GEN[Male] in [2,5]"),
  };
  EXPECT_TRUE(AnalyzeConstraintSet(r, constraints, 2).empty());
}

TEST(AnalysisTest, MultipleIssuesAllReported) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [7,9]"),   // support
      MustParse(*MedicalSchema(), "ETH[Asian] in [0,1]"),   // contradiction
      MustParse(*MedicalSchema(), "CTY[Calgary] in [1,2]"),  // unclusterable
  };
  auto issues = AnalyzeConstraintSet(r, constraints, 4);
  auto kinds = Kinds(issues);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                      ConstraintIssueKind::kInsufficientSupport),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                      ConstraintIssueKind::kContradictoryBounds),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(),
                      ConstraintIssueKind::kUnclusterableRange),
            kinds.end());
}

TEST(AnalysisTest, KindNamesAreStable) {
  EXPECT_STREQ(
      ConstraintIssueKindToString(ConstraintIssueKind::kDuplicateTarget),
      "duplicate-target");
  EXPECT_STREQ(
      ConstraintIssueKindToString(ConstraintIssueKind::kNestedConflict),
      "nested-conflict");
}

}  // namespace
}  // namespace diva
