#include <gtest/gtest.h>

#include "anon/anonymizer.h"
#include "metrics/metrics.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

Relation PaperTable2() {
  auto r = RelationFromRows(
      MedicalSchema(),
      {
          {"*", "Caucasian", "*", "AB", "Calgary", "Hypertension"},
          {"*", "Caucasian", "*", "AB", "Calgary", "Tuberculosis"},
          {"*", "Caucasian", "*", "AB", "Calgary", "Osteoarthritis"},
          {"Male", "*", "*", "*", "*", "Migraine"},
          {"Male", "*", "*", "*", "*", "Hypertension"},
          {"Male", "*", "*", "*", "*", "Seizure"},
          {"Male", "*", "*", "*", "*", "Hypertension"},
          {"Female", "Asian", "*", "*", "*", "Seizure"},
          {"Female", "Asian", "*", "*", "*", "Influenza"},
          {"Female", "Asian", "*", "*", "*", "Migraine"},
      });
  DIVA_CHECK(r.ok());
  return std::move(r).value();
}

TEST(MetricsTest, CountStars) {
  EXPECT_EQ(CountStars(MedicalRelation()), 0u);
  // Table 2: rows 1-3 have 2 stars each, rows 4-7 have 4, rows 8-10 have 3.
  EXPECT_EQ(CountStars(PaperTable2()), 3u * 2 + 4u * 4 + 3u * 3);
}

TEST(MetricsTest, SuppressionRatio) {
  EXPECT_DOUBLE_EQ(SuppressionRatio(MedicalRelation()), 0.0);
  // 31 stars over 10 rows x 5 QI attributes.
  EXPECT_DOUBLE_EQ(SuppressionRatio(PaperTable2()), 31.0 / 50.0);
  Relation empty(MedicalSchema());
  EXPECT_DOUBLE_EQ(SuppressionRatio(empty), 0.0);
}

TEST(MetricsTest, DiscernibilityOnHandCases) {
  // Table 2 groups: {3, 4, 3} with k = 3 -> 9 + 16 + 9 = 34.
  EXPECT_EQ(Discernibility(PaperTable2(), 3), 34u);
  // Table 1: ten singleton groups, all below k = 3 -> 10 * (10 * 1) = 100.
  EXPECT_EQ(Discernibility(MedicalRelation(), 3), 100u);
  // With k = 1, singletons are fine: 10 * 1 = 10.
  EXPECT_EQ(Discernibility(MedicalRelation(), 1), 10u);
}

TEST(MetricsTest, DiscernibilityAccuracyBounds) {
  // Perfectly k-grouped relation scores close to 1 (Table 2 is nearly
  // optimal for k=3: groups of 3,4,3 vs ideal 3,3,3(,1)).
  double acc = DiscernibilityAccuracy(PaperTable2(), 3);
  EXPECT_GT(acc, 0.9);
  EXPECT_LE(acc, 1.0);
  // Table 1 under k = 3: all groups undersized -> disc = N^2 -> accuracy 0.
  EXPECT_DOUBLE_EQ(DiscernibilityAccuracy(MedicalRelation(), 3), 0.0);
  // Degenerate n <= k.
  EXPECT_DOUBLE_EQ(DiscernibilityAccuracy(MedicalRelation(), 10), 1.0);
  Relation empty(MedicalSchema());
  EXPECT_DOUBLE_EQ(DiscernibilityAccuracy(empty, 5), 1.0);
}

TEST(MetricsTest, MoreMergingLowersDiscAccuracy) {
  // One giant group (all cells suppressed) must score worse than the
  // paper's Table 2 grouping.
  Relation all_merged = MedicalRelation();
  Clustering one_cluster = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}};
  auto anonymizer = MakeKMember({});
  // Suppress everything by hand: a single 10-row cluster.
  for (RowId row = 0; row < all_merged.NumRows(); ++row) {
    for (size_t col : all_merged.schema().qi_indices()) {
      all_merged.Set(row, col, kSuppressed);
    }
  }
  EXPECT_LT(DiscernibilityAccuracy(all_merged, 3),
            DiscernibilityAccuracy(PaperTable2(), 3));
  EXPECT_DOUBLE_EQ(DiscernibilityAccuracy(all_merged, 3), 0.0);
}

TEST(MetricsTest, SatisfiedFraction) {
  Relation r = MedicalRelation();
  auto schema = MedicalSchema();
  ConstraintSet constraints = MedicalConstraints(*schema);
  EXPECT_DOUBLE_EQ(SatisfiedFraction(r, constraints), 1.0);
  EXPECT_DOUBLE_EQ(SatisfiedFraction(r, {}), 1.0);

  constraints.push_back(MustParse(*schema, "ETH[Asian] in [9,9]"));
  EXPECT_DOUBLE_EQ(SatisfiedFraction(r, constraints), 0.75);
}

TEST(MetricsTest, OverallAccuracyIsProduct) {
  Relation r = PaperTable2();
  auto schema = MedicalSchema();
  ConstraintSet half_violated = {
      MustParse(*schema, "ETH[Asian] in [2,5]"),   // satisfied (3 Asians)
      MustParse(*schema, "ETH[African] in [1,3]"),  // violated (0 survive)
  };
  double expected =
      DiscernibilityAccuracy(r, 3) * SatisfiedFraction(r, half_violated);
  EXPECT_DOUBLE_EQ(OverallAccuracy(r, 3, half_violated), expected);
  EXPECT_DOUBLE_EQ(SatisfiedFraction(r, half_violated), 0.5);
}

}  // namespace
}  // namespace diva
