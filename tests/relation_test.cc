#include <gtest/gtest.h>

#include "relation/dictionary.h"
#include "relation/qi_groups.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;

// ------------------------------------------------------------- Dictionary

TEST(DictionaryTest, InternsInFirstSeenOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrInsert("a"), 0);
  EXPECT_EQ(dict.GetOrInsert("b"), 1);
  EXPECT_EQ(dict.GetOrInsert("a"), 0);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.ValueOf(0), "a");
  EXPECT_EQ(dict.ValueOf(1), "b");
}

TEST(DictionaryTest, FindDoesNotIntern) {
  Dictionary dict;
  EXPECT_FALSE(dict.Find("ghost").has_value());
  EXPECT_EQ(dict.size(), 0u);
  dict.GetOrInsert("real");
  EXPECT_EQ(*dict.Find("real"), 0);
}

TEST(DictionaryTest, NumericInterpretation) {
  Dictionary dict;
  ValueCode n = dict.GetOrInsert("42");
  ValueCode f = dict.GetOrInsert("3.5");
  ValueCode s = dict.GetOrInsert("hello");
  EXPECT_DOUBLE_EQ(*dict.NumericValueOf(n), 42.0);
  EXPECT_DOUBLE_EQ(*dict.NumericValueOf(f), 3.5);
  EXPECT_FALSE(dict.NumericValueOf(s).has_value());
  EXPECT_FALSE(dict.AllNumeric());
}

TEST(DictionaryTest, AllNumeric) {
  Dictionary dict;
  EXPECT_FALSE(dict.AllNumeric());  // empty
  dict.GetOrInsert("1");
  dict.GetOrInsert("2");
  EXPECT_TRUE(dict.AllNumeric());
}

// ------------------------------------------------------------- Schema

TEST(SchemaTest, RejectsEmptyAndDuplicates) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({{"", AttributeRole::kQuasiIdentifier,
                              AttributeKind::kCategorical}})
                   .ok());
  EXPECT_FALSE(Schema::Make({{"A", AttributeRole::kQuasiIdentifier,
                              AttributeKind::kCategorical},
                             {"A", AttributeRole::kSensitive,
                              AttributeKind::kCategorical}})
                   .ok());
}

TEST(SchemaTest, RoleIndexLists) {
  auto schema = MedicalSchema();
  EXPECT_EQ(schema->NumAttributes(), 6u);
  EXPECT_EQ(schema->qi_indices(), (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(schema->sensitive_indices(), (std::vector<size_t>{5}));
  EXPECT_TRUE(schema->identifier_indices().empty());
  EXPECT_TRUE(schema->IsQuasiIdentifier(0));
  EXPECT_FALSE(schema->IsQuasiIdentifier(5));
}

TEST(SchemaTest, IndexOf) {
  auto schema = MedicalSchema();
  EXPECT_EQ(*schema->IndexOf("ETH"), 1u);
  EXPECT_EQ(*schema->IndexOf("DIAG"), 5u);
  EXPECT_FALSE(schema->IndexOf("NOPE").has_value());
}

// ------------------------------------------------------------- Relation

TEST(RelationTest, BuildAndRead) {
  Relation r = MedicalRelation();
  EXPECT_EQ(r.NumRows(), 10u);
  EXPECT_EQ(r.NumAttributes(), 6u);
  EXPECT_EQ(r.ValueString(0, 0), "Female");
  EXPECT_EQ(r.ValueString(4, 1), "African");
  EXPECT_EQ(r.ValueString(9, 5), "Migraine");
}

TEST(RelationTest, SharedCodesAcrossEqualValues) {
  Relation r = MedicalRelation();
  // t1 and t2 are both Female Caucasian AB Calgary.
  EXPECT_EQ(r.At(0, 0), r.At(1, 0));
  EXPECT_EQ(r.At(0, 1), r.At(1, 1));
  EXPECT_NE(r.At(0, 2), r.At(1, 2));  // different ages
}

TEST(RelationTest, SuppressedRoundTrip) {
  auto relation = RelationFromRows(MedicalSchema(),
                                   {{"*", "Asian", "30", "BC", "*", "Flu"}});
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->IsSuppressed(0, 0));
  EXPECT_TRUE(relation->IsSuppressed(0, 4));
  EXPECT_FALSE(relation->IsSuppressed(0, 1));
  EXPECT_EQ(relation->ValueString(0, 0), "*");
}

TEST(RelationTest, UnicodeStarAccepted) {
  auto relation = RelationFromRows(
      MedicalSchema(), {{"★", "Asian", "30", "BC", "x", "Flu"}});
  ASSERT_TRUE(relation.ok());
  EXPECT_TRUE(relation->IsSuppressed(0, 0));
}

TEST(RelationTest, ArityMismatchRejected) {
  Relation r(MedicalSchema());
  EXPECT_FALSE(r.AppendRowStrings({"too", "short"}).ok());
}

TEST(RelationTest, EmptyLikeSharesDictionaries) {
  Relation r = MedicalRelation();
  Relation empty = r.EmptyLike();
  EXPECT_EQ(empty.NumRows(), 0u);
  // Codes must be compatible: the same string resolves to the same code.
  EXPECT_EQ(*empty.FindCode(1, "Asian"), *r.FindCode(1, "Asian"));
  // Interning through the copy is visible to the original (shared).
  ValueCode code = empty.Encode(1, "Martian");
  EXPECT_EQ(*r.FindCode(1, "Martian"), code);
}

TEST(RelationTest, SelectRowsPreservesValues) {
  Relation r = MedicalRelation();
  std::vector<RowId> pick = {7, 8, 9};
  Relation subset = r.SelectRows(pick);
  ASSERT_EQ(subset.NumRows(), 3u);
  EXPECT_EQ(subset.ValueString(0, 1), "Asian");
  EXPECT_EQ(subset.ValueString(2, 5), "Migraine");
}

TEST(RelationTest, CopyIsIndependent) {
  Relation r = MedicalRelation();
  Relation copy = r;
  copy.Set(0, 0, kSuppressed);
  EXPECT_TRUE(copy.IsSuppressed(0, 0));
  EXPECT_FALSE(r.IsSuppressed(0, 0));
}

// ------------------------------------------------------------- QI groups

TEST(QiGroupsTest, GroupsByQiProjection) {
  Relation r = MedicalRelation();
  // Table 1 has all-distinct QI projections (ages differ).
  QiGroups groups = ComputeQiGroups(r);
  EXPECT_EQ(groups.groups.size(), 10u);
  EXPECT_EQ(groups.MinGroupSize(), 1u);
}

TEST(QiGroupsTest, PaperTable2IsThreeAnonymous) {
  // Table 2: the paper's k = 3 anonymization of Table 1.
  auto r = RelationFromRows(
      MedicalSchema(),
      {
          {"*", "Caucasian", "*", "AB", "Calgary", "Hypertension"},
          {"*", "Caucasian", "*", "AB", "Calgary", "Tuberculosis"},
          {"*", "Caucasian", "*", "AB", "Calgary", "Osteoarthritis"},
          {"Male", "*", "*", "*", "*", "Migraine"},
          {"Male", "*", "*", "*", "*", "Hypertension"},
          {"Male", "*", "*", "*", "*", "Seizure"},
          {"Male", "*", "*", "*", "*", "Hypertension"},
          {"Female", "Asian", "*", "*", "*", "Seizure"},
          {"Female", "Asian", "*", "*", "*", "Influenza"},
          {"Female", "Asian", "*", "*", "*", "Migraine"},
      });
  ASSERT_TRUE(r.ok());
  QiGroups groups = ComputeQiGroups(*r);
  EXPECT_EQ(groups.groups.size(), 3u);
  EXPECT_TRUE(IsKAnonymous(*r, 3));
  EXPECT_FALSE(IsKAnonymous(*r, 4));
}

TEST(QiGroupsTest, SubsetGrouping) {
  Relation r = MedicalRelation();
  std::vector<RowId> rows = {0, 1};
  QiGroups groups = ComputeQiGroups(r, rows);
  EXPECT_EQ(groups.groups.size(), 2u);  // ages differ
}

TEST(QiGroupsTest, EmptyRelationIsKAnonymous) {
  Relation r(MedicalSchema());
  EXPECT_TRUE(IsKAnonymous(r, 5));
  EXPECT_EQ(ComputeQiGroups(r).MinGroupSize(), 0u);
}

TEST(QiGroupsTest, SuppressedCellsMatchOnlyEachOther) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"*", "Asian", "30", "BC", "V", "Flu"},
                                {"*", "Asian", "30", "BC", "V", "Flu"},
                                {"Male", "Asian", "30", "BC", "V", "Flu"},
                            });
  ASSERT_TRUE(r.ok());
  QiGroups groups = ComputeQiGroups(*r);
  EXPECT_EQ(groups.groups.size(), 2u);
}

TEST(QiGroupsTest, DistinctQiProjections) {
  Relation r = MedicalRelation();
  EXPECT_EQ(CountDistinctQiProjections(r), 10u);
}

}  // namespace
}  // namespace diva
