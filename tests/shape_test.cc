// Shape-regression tests: scaled-down versions of the paper's headline
// comparisons, asserted with generous margins. These guard the
// *qualitative* claims EXPERIMENTS.md reports — if a refactor breaks
// "DIVA beats the plain baselines under diversity constraints" or
// "uniform data colors better than Zipfian", a unit test should say so,
// not a human reading benchmark output.

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "constraint/generator.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "metrics/metrics.h"

namespace diva {
namespace {

using bench::RunBaselineOnce;
using bench::RunDivaOnce;

/// Fig 5a's headline at one point: on a Credit-style workload with
/// minority-value constraints, DIVA's accuracy beats every plain
/// baseline by a wide margin.
TEST(ShapeTest, DivaBeatsBaselinesOnCredit) {
  ProfileOptions profile_options;
  profile_options.seed = 21;
  auto credit = GenerateProfile(DatasetProfile::kCredit, profile_options);
  ASSERT_TRUE(credit.ok());
  ConstraintGenOptions gen;
  gen.count = 18;
  gen.min_support = 25;
  gen.slack = 0.2;
  gen.seed = 21;
  auto constraints = GenerateConstraints(*credit, gen);
  ASSERT_TRUE(constraints.ok());

  double diva =
      RunDivaOnce(*credit, *constraints, SelectionStrategy::kMinChoice,
                  /*k=*/10, /*seed=*/1000)
          .accuracy;
  for (BaselineAlgorithm baseline :
       {BaselineAlgorithm::kKMember, BaselineAlgorithm::kOka,
        BaselineAlgorithm::kMondrian}) {
    double score =
        RunBaselineOnce(*credit, *constraints, baseline, 10, 1000).accuracy;
    EXPECT_GT(diva, score + 0.05) << BaselineAlgorithmToString(baseline);
  }
  EXPECT_GT(diva, 0.8);
}

/// Fig 4d's headline: uniform characteristic values color better than
/// Zipfian ones.
TEST(ShapeTest, UniformColorsBetterThanZipfian) {
  auto run = [](ValueDistribution distribution) {
    ProfileOptions profile_options;
    profile_options.num_rows = 2000;
    profile_options.characteristic_distribution = distribution;
    profile_options.seed = 13;
    auto popsyn = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
    DIVA_CHECK(popsyn.ok());
    ConstraintGenOptions gen;
    gen.count = 8;
    gen.min_support = 30;
    gen.seed = 13;
    auto constraints = GenerateConstraints(*popsyn, gen);
    DIVA_CHECK_MSG(constraints.ok(), constraints.status().ToString());
    return RunDivaOnce(*popsyn, *constraints, SelectionStrategy::kMinChoice,
                       15, 1000)
        .accuracy;
  };
  double uniform = run(ValueDistribution::kUniform);
  double zipfian = run(ValueDistribution::kZipfian);
  EXPECT_GE(uniform, zipfian - 0.02);
}

/// Fig 4a's headline: DIVA-Basic searches orders of magnitude more than
/// the selective strategies (steps, not seconds — immune to machine
/// load).
TEST(ShapeTest, BasicSearchesMoreThanMinChoice) {
  // The fig4a configuration at |Sigma| = 20: MinChoice colors the set in
  // ~|Sigma| steps, Basic's shuffled pool backtracks by the tens of
  // thousands.
  ProfileOptions profile_options;
  profile_options.num_rows = 9000;
  profile_options.seed = 5;
  auto census = GenerateProfile(DatasetProfile::kCensus, profile_options);
  ASSERT_TRUE(census.ok());
  ConstraintGenOptions gen;
  gen.count = 20;
  gen.min_support = 60;
  gen.seed = 5;
  auto constraints = GenerateConstraints(*census, gen);
  ASSERT_TRUE(constraints.ok());

  auto steps = [&](SelectionStrategy strategy) {
    DivaOptions options;
    options.k = 30;
    options.strategy = strategy;
    options.seed = 1000;
    options.coloring_budget = 150000;
    auto result = RunDiva(*census, *constraints, options);
    DIVA_CHECK(result.ok());
    return result->report.coloring_steps;
  };
  uint64_t min_choice = steps(SelectionStrategy::kMinChoice);
  uint64_t basic = steps(SelectionStrategy::kBasic);
  EXPECT_GT(basic, 2 * min_choice);
}

/// Fig 5a's k-trend: DIVA accuracy does not improve as k grows.
TEST(ShapeTest, AccuracyDeclinesWithK) {
  ProfileOptions profile_options;
  profile_options.seed = 21;
  auto credit = GenerateProfile(DatasetProfile::kCredit, profile_options);
  ASSERT_TRUE(credit.ok());
  ConstraintGenOptions gen;
  gen.count = 18;
  gen.min_support = 25;
  gen.slack = 0.2;
  gen.seed = 21;
  auto constraints = GenerateConstraints(*credit, gen);
  ASSERT_TRUE(constraints.ok());

  double at_k10 = RunDivaOnce(*credit, *constraints,
                              SelectionStrategy::kMinChoice, 10, 1000)
                      .accuracy;
  double at_k50 = RunDivaOnce(*credit, *constraints,
                              SelectionStrategy::kMinChoice, 50, 1000)
                      .accuracy;
  EXPECT_GT(at_k10, at_k50 + 0.1);
}

}  // namespace
}  // namespace diva
