#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "datagen/profiles.h"
#include "datagen/synthetic.h"
#include "relation/qi_groups.h"

namespace diva {
namespace {

TEST(DomainSamplerTest, UniformCoversDomain) {
  DomainSampler sampler(ValueDistribution::kUniform, 10, 1.0);
  Rng rng(3);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [value, count] : counts) {
    EXPECT_LT(value, 10u);
    EXPECT_NEAR(count / 10000.0, 0.1, 0.03);
  }
}

TEST(DomainSamplerTest, ZipfSkews) {
  DomainSampler sampler(ValueDistribution::kZipfian, 20, 1.3);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_GT(counts[0], 3 * counts[5]);
}

TEST(DomainSamplerTest, GaussianCentersOnMiddle) {
  DomainSampler sampler(ValueDistribution::kGaussian, 101, 1.0);
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    size_t v = sampler.Sample(&rng);
    ASSERT_LT(v, 101u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_rows = 200;
  spec.seed = 11;
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 5;
  spec.attributes = {a};
  auto r1 = GenerateSynthetic(spec);
  auto r2 = GenerateSynthetic(spec);
  ASSERT_TRUE(r1.ok() && r2.ok());
  for (RowId row = 0; row < r1->NumRows(); ++row) {
    EXPECT_EQ(r1->At(row, 0), r2->At(row, 0));
  }
  spec.seed = 12;
  auto r3 = GenerateSynthetic(spec);
  ASSERT_TRUE(r3.ok());
  size_t diff = 0;
  for (RowId row = 0; row < r1->NumRows(); ++row) {
    diff += r1->At(row, 0) != r3->At(row, 0);
  }
  EXPECT_GT(diff, 0u);
}

TEST(SyntheticTest, ValidatesSpec) {
  SyntheticSpec spec;
  EXPECT_FALSE(GenerateSynthetic(spec).ok());  // no attributes
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 0;
  spec.attributes = {a};
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
  a.domain_size = 3;
  a.correlation = 2.0;
  spec.attributes = {a};
  EXPECT_FALSE(GenerateSynthetic(spec).ok());
}

TEST(SyntheticTest, NumericAttributeEmitsParsableIntegers) {
  SyntheticSpec spec;
  spec.num_rows = 100;
  AttributeSpec age;
  age.name = "AGE";
  age.kind = AttributeKind::kNumeric;
  age.domain_size = 10;
  age.numeric_base = 30;
  spec.attributes = {age};
  auto r = GenerateSynthetic(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->dictionary(0).AllNumeric());
  for (RowId row = 0; row < r->NumRows(); ++row) {
    double v = *r->dictionary(0).NumericValueOf(r->At(row, 0));
    EXPECT_GE(v, 30.0);
    EXPECT_LT(v, 40.0);
  }
}

TEST(SyntheticTest, IdentifierAttributeIsUnique) {
  SyntheticSpec spec;
  spec.num_rows = 150;
  AttributeSpec id;
  id.name = "ID";
  id.role = AttributeRole::kIdentifier;
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 3;
  spec.attributes = {id, a};
  auto r = GenerateSynthetic(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->dictionary(0).size(), 150u);
}

TEST(SyntheticTest, CorrelationCreatesAssociation) {
  // With full correlation, two attributes become deterministic functions
  // of the latent class -> the joint distinct count equals the per-
  // attribute distinct counts' max, far below the product.
  SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.num_latent_classes = 6;
  AttributeSpec a;
  a.name = "A";
  a.domain_size = 12;
  a.correlation = 1.0;
  AttributeSpec b = a;
  b.name = "B";
  spec.attributes = {a, b};
  auto r = GenerateSynthetic(spec);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(CountDistinctQiProjections(*r), 6u);
}

// ------------------------------------------------------------- profiles

struct ProfileCase {
  DatasetProfile profile;
  size_t rows;
  size_t attrs;
  size_t qi_projections;  // Table 4 target
};

class ProfileTest : public ::testing::TestWithParam<ProfileCase> {};

TEST_P(ProfileTest, MatchesTable4Characteristics) {
  const ProfileCase& param = GetParam();
  auto relation = GenerateProfile(param.profile);
  ASSERT_TRUE(relation.ok()) << relation.status().ToString();
  EXPECT_EQ(relation->NumRows(), param.rows);
  EXPECT_EQ(relation->NumAttributes(), param.attrs);
  // |Pi_QI(R)| within a factor of ~2 of the original dataset's (the
  // generator is calibrated, not fitted).
  size_t projections = CountDistinctQiProjections(*relation);
  EXPECT_GT(projections, param.qi_projections / 2) << projections;
  EXPECT_LT(projections, param.qi_projections * 2) << projections;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, ProfileTest,
    ::testing::Values(
        ProfileCase{DatasetProfile::kPantheon, 11341, 17, 5636},
        ProfileCase{DatasetProfile::kCredit, 1000, 20, 60},
        ProfileCase{DatasetProfile::kPopSyn, 100000, 7, 24630}),
    [](const ::testing::TestParamInfo<ProfileCase>& info) {
      std::string name = DatasetProfileToString(info.param.profile);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ProfileTest, CensusScalesByRowOverride) {
  ProfileOptions options;
  options.num_rows = 5000;  // full census is slow for unit tests
  auto relation = GenerateProfile(DatasetProfile::kCensus, options);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->NumRows(), 5000u);
  EXPECT_EQ(relation->NumAttributes(), 40u);
}

TEST(ProfileTest, DefaultConstraintsSatisfiable) {
  ProfileOptions options;
  options.num_rows = 4000;
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, options);
  ASSERT_TRUE(relation.ok());
  auto constraints = DefaultConstraints(DatasetProfile::kPopSyn, *relation);
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  EXPECT_EQ(constraints->size(),
            DefaultConstraintCount(DatasetProfile::kPopSyn));
  for (const auto& constraint : *constraints) {
    EXPECT_TRUE(constraint.IsSatisfiedBy(*relation)) << constraint.ToString();
  }
}

TEST(ProfileTest, PopSynHonorsDistributionKnob) {
  ProfileOptions uniform;
  uniform.num_rows = 5000;
  uniform.characteristic_distribution = ValueDistribution::kUniform;
  ProfileOptions zipf;
  zipf.num_rows = 5000;
  zipf.characteristic_distribution = ValueDistribution::kZipfian;

  auto ru = GenerateProfile(DatasetProfile::kPopSyn, uniform);
  auto rz = GenerateProfile(DatasetProfile::kPopSyn, zipf);
  ASSERT_TRUE(ru.ok() && rz.ok());

  // Compare the modal frequency of ETH: Zipf concentrates mass.
  auto modal_share = [](const Relation& r, size_t col) {
    std::map<ValueCode, size_t> counts;
    for (RowId row = 0; row < r.NumRows(); ++row) ++counts[r.At(row, col)];
    size_t best = 0;
    for (const auto& [code, count] : counts) best = std::max(best, count);
    return static_cast<double>(best) / static_cast<double>(r.NumRows());
  };
  size_t eth = *ru->schema().IndexOf("ETH");
  EXPECT_GT(modal_share(*rz, eth), modal_share(*ru, eth));
}

}  // namespace
}  // namespace diva
