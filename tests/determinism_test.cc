// The parallel layer's headline guarantee, asserted end to end: the
// published relation (and everything measured about it) is byte-identical
// no matter how many threads execute the pipeline. See common/parallel.h
// for why this holds by construction — chunk boundaries and gather order
// never depend on the thread count.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/parallel.h"
#include "constraint/generator.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "metrics/metrics.h"
#include "relation/csv.h"
#include "tests/test_util.h"
#include "verify/auditor.h"

namespace diva {
namespace {

/// One full DIVA run serialized to CSV, plus the report fields that a
/// thread-count-dependent execution would perturb first.
struct RunFingerprint {
  std::string csv;
  bool complete = false;
  uint64_t coloring_steps = 0;
  uint64_t backtracks = 0;
  size_t sigma_rows = 0;
  size_t repair_cells = 0;
  size_t stars = 0;
  uint64_t discernibility = 0;
  std::vector<size_t> unsatisfied;
  /// Deterministic-scope counters that moved during the run, as
  /// "name=value/sum" strings. Execution-scope counters (pool chunk
  /// accounting, deadline polls) legitimately vary with the pool width
  /// and are excluded; so are zero deltas, whose presence depends only
  /// on registration order elsewhere in the process.
  std::vector<std::string> counters;

  bool operator==(const RunFingerprint&) const = default;
};

std::vector<std::string> DeterministicCounters(
    const std::vector<counters::Sample>& delta) {
  std::vector<std::string> moved;
  for (const counters::Sample& sample :
       counters::FilterScope(delta, counters::Scope::kDeterministic)) {
    if (sample.value == 0 && sample.sum == 0) continue;
    moved.push_back(sample.name + "=" + std::to_string(sample.value) + "/" +
                    std::to_string(sample.sum));
  }
  return moved;
}

RunFingerprint FingerprintRun(const Relation& relation,
                              const ConstraintSet& constraints, size_t k,
                              size_t threads, bool shard = true) {
  DivaOptions options;
  options.k = k;
  options.threads = threads;
  options.shard = shard;
  options.audit = true;
  auto result = RunDiva(relation, constraints, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunFingerprint print;
  if (!result.ok()) return print;
  std::ostringstream csv;
  EXPECT_TRUE(WriteCsv(result->relation, csv).ok());
  print.csv = csv.str();
  print.complete = result->report.clustering_complete;
  print.coloring_steps = result->report.coloring_steps;
  print.backtracks = result->report.backtracks;
  print.sigma_rows = result->report.sigma_rows;
  print.repair_cells = result->report.repair_cells;
  print.stars = CountStars(result->relation);
  print.discernibility = Discernibility(result->relation, k);
  print.unsatisfied = result->report.unsatisfied;
  print.counters = DeterministicCounters(result->report.counters);
  return print;
}

TEST(DeterminismTest, PaperExampleIsByteIdenticalAcrossThreadCounts) {
  Relation relation = testing::MedicalRelation();
  ConstraintSet constraints =
      testing::MedicalConstraints(*testing::MedicalSchema());
  RunFingerprint baseline = FingerprintRun(relation, constraints, 2, 1);
  EXPECT_FALSE(baseline.csv.empty());
  for (size_t threads : {2u, 8u}) {
    RunFingerprint parallel = FingerprintRun(relation, constraints, 2, threads);
    EXPECT_EQ(parallel, baseline) << "threads = " << threads;
  }
  SetParallelThreads(1);
}

TEST(DeterminismTest, ProfileWorkloadIsByteIdenticalAcrossThreadCounts) {
  // Large enough that every parallel hot loop (enumeration, suppression,
  // baseline clustering, metrics, audit) actually chunks.
  ProfileOptions profile_options;
  profile_options.num_rows = 1200;
  profile_options.seed = 20210329;  // the paper's EDBT date, arbitrary
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  ASSERT_TRUE(relation.ok());
  ConstraintGenOptions generator_options;
  generator_options.count = 12;
  generator_options.seed = 7;
  auto constraints = GenerateConstraints(*relation, generator_options);
  ASSERT_TRUE(constraints.ok());

  RunFingerprint baseline = FingerprintRun(*relation, *constraints, 4, 1);
  EXPECT_FALSE(baseline.csv.empty());
  for (size_t threads : {2u, 8u}) {
    RunFingerprint parallel =
        FingerprintRun(*relation, *constraints, 4, threads);
    EXPECT_EQ(parallel, baseline) << "threads = " << threads;
  }
  // Component sharding is an execution knob like the pool width: turning
  // it off (the same per-shard computations, run inline) must reproduce
  // the identical fingerprint at every width (see core/shard.h).
  for (size_t threads : {1u, 8u}) {
    RunFingerprint unsharded =
        FingerprintRun(*relation, *constraints, 4, threads, /*shard=*/false);
    EXPECT_EQ(unsharded, baseline) << "shard off, threads = " << threads;
  }
  SetParallelThreads(1);
}

TEST(DeterminismTest, AuditReportIsIdenticalAcrossThreadCounts) {
  // The auditor's capped violation details (and their omission markers)
  // replay in chunk order; the rendered report must not depend on the
  // pool width even when violations exceed the per-check cap.
  ProfileOptions profile_options;
  profile_options.num_rows = 600;
  profile_options.seed = 99;
  auto original = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  ASSERT_TRUE(original.ok());

  // Publish a deliberately broken relation: k = 600 makes every QI group
  // undersized, so the group-size check floods past its detail cap.
  Relation published = *original;
  std::string baseline;
  for (size_t threads : {1u, 2u, 8u}) {
    SetParallelThreads(threads);
    auto audit =
        AuditAnonymization(*original, published, /*k=*/600, {}, {});
    ASSERT_TRUE(audit.ok());
    EXPECT_FALSE(audit->ok());
    if (threads == 1u) {
      baseline = audit->ToString();
    } else {
      EXPECT_EQ(audit->ToString(), baseline) << "threads = " << threads;
    }
  }
  SetParallelThreads(1);
}

TEST(DeterminismTest, MetricsAreIdenticalAcrossThreadCounts) {
  ProfileOptions profile_options;
  profile_options.num_rows = 800;
  profile_options.seed = 5;
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  ASSERT_TRUE(relation.ok());
  ConstraintGenOptions generator_options;
  generator_options.count = 8;
  generator_options.seed = 3;
  auto constraints = GenerateConstraints(*relation, generator_options);
  ASSERT_TRUE(constraints.ok());

  SetParallelThreads(1);
  size_t stars = CountStars(*relation);
  uint64_t disc = Discernibility(*relation, 5);
  double satisfied = SatisfiedFraction(*relation, *constraints);
  for (size_t threads : {2u, 8u}) {
    SetParallelThreads(threads);
    EXPECT_EQ(CountStars(*relation), stars);
    EXPECT_EQ(Discernibility(*relation, 5), disc);
    EXPECT_EQ(SatisfiedFraction(*relation, *constraints), satisfied);
  }
  SetParallelThreads(1);
}

}  // namespace
}  // namespace diva
