// Tests for the observability layer (common/trace.h, common/counters.h):
// span nesting and collection order, ring-buffer overflow policy,
// deterministic Chrome-trace serialization, phase coverage across thread
// widths, and counter exactness against the pipeline's own report.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/trace.h"
#include "core/diva.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using diva::testing::FuzzWorkload;
using diva::testing::MakeWorkload;

/// Looks up a counter sample by name; fails the test when absent.
const counters::Sample* Find(const std::vector<counters::Sample>& samples,
                             const std::string& name) {
  for (const counters::Sample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

TEST(TraceTest, DisabledPathRecordsNothing) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  trace::Disable();
  EXPECT_FALSE(trace::IsEnabled());
  EXPECT_EQ(trace::Collect().size(), 0u);
  EXPECT_EQ(trace::ActiveBufferCount(), 0u);
  {
    DIVA_TRACE_SPAN("disabled/span");
    DIVA_TRACE_SPAN_RANGE("disabled/range", 0, 10);
  }
  // Disabled spans never open: no buffer registration, no events.
  EXPECT_EQ(trace::ActiveBufferCount(), 0u);
  EXPECT_EQ(trace::Collect().size(), 0u);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
}

TEST(TraceTest, SpanNestingAndCollectionOrder) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  {
    DIVA_TRACE_SPAN("outer");
    {
      DIVA_TRACE_SPAN("inner");
    }
  }
  {
    DIVA_TRACE_SPAN("tail");
  }
  trace::Disable();

  std::vector<trace::SpanEvent> events = trace::Collect();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by (tid, begin_us, depth): parents before their children,
  // siblings in wall-clock order.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "tail");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 0u);
  // The parent's interval contains the child's.
  EXPECT_LE(events[0].begin_us, events[1].begin_us);
  EXPECT_GE(events[0].begin_us + events[0].dur_us,
            events[1].begin_us + events[1].dur_us);
  // All events share the single capture thread.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[1].tid, events[2].tid);
  EXPECT_EQ(trace::ActiveBufferCount(), 1u);
}

TEST(TraceTest, RangeSpanCarriesPayload) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  {
    DIVA_TRACE_SPAN_RANGE("chunk", 128, 256);
  }
  trace::Disable();
  std::vector<trace::SpanEvent> events = trace::Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].has_range);
  EXPECT_EQ(events[0].arg_begin, 128);
  EXPECT_EQ(events[0].arg_end, 256);
}

TEST(TraceTest, RingOverflowDropsNewestAndCounts) {
  trace::SetRingCapacity(4);
  trace::Enable();
  for (int i = 0; i < 10; ++i) {
    DIVA_TRACE_SPAN("overflow/span");
  }
  trace::Disable();
  // Drop-newest: the first `capacity` closed spans survive, the rest are
  // counted, never silently lost.
  EXPECT_EQ(trace::Collect().size(), 4u);
  EXPECT_EQ(trace::DroppedEvents(), 6u);
  trace::SetRingCapacity(65536);
}

TEST(TraceTest, EnableClearsThePreviousCapture) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  {
    DIVA_TRACE_SPAN("first/capture");
  }
  trace::Disable();
  ASSERT_EQ(trace::Collect().size(), 1u);
  trace::Enable();
  trace::Disable();
  EXPECT_EQ(trace::Collect().size(), 0u);
  EXPECT_EQ(trace::DroppedEvents(), 0u);
}

TEST(TraceTest, ChromeJsonIsByteStableAndWellFormed) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  {
    DIVA_TRACE_SPAN("json/\"quoted\"\\name");
    DIVA_TRACE_SPAN_RANGE("json/range", 3, 9);
  }
  trace::Disable();
  std::vector<trace::SpanEvent> events = trace::Collect();
  ASSERT_EQ(events.size(), 2u);

  std::string once = trace::ToChromeJson(events);
  std::string twice = trace::ToChromeJson(events);
  // Same events, same bytes — serialization holds no hidden state.
  EXPECT_EQ(once, twice);

  EXPECT_EQ(once.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(once.substr(once.size() - 4), "\n]}\n");
  EXPECT_NE(once.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(once.find("\"cat\":\"diva\""), std::string::npos);
  // Quotes and backslashes in names are escaped.
  EXPECT_NE(once.find("json/\\\"quoted\\\"\\\\name"), std::string::npos);
  // The range payload is rendered as args.
  EXPECT_NE(once.find("\"args\":{\"begin\":3,\"end\":9}"),
            std::string::npos);

  std::string path =
      ::testing::TempDir() + "/diva_trace_test_trace.json";
  ASSERT_TRUE(trace::WriteChromeTrace(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_FALSE(
      trace::WriteChromeTrace("/nonexistent-dir/trace.json").ok());
}

TEST(TraceTest, PipelineSpansAgreeAcrossThreadWidths) {
  FuzzWorkload workload = MakeWorkload(5);
  ASSERT_GE(workload.relation.NumRows(), workload.k);

  // Span-name multiset per width, pool/* spans excluded: how work is
  // chunked across threads legitimately varies, which phases ran (and
  // how often) must not.
  std::map<size_t, std::multiset<std::string>> phase_spans;
  trace::SetRingCapacity(65536);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    DivaOptions options;
    options.k = workload.k;
    options.seed = 7;
    options.threads = threads;
    options.audit = true;
    trace::Enable();
    auto result = RunDiva(workload.relation, workload.constraints, options);
    trace::Disable();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(trace::DroppedEvents(), 0u);
    for (const trace::SpanEvent& event : trace::Collect()) {
      if (std::string(event.name).rfind("pool/", 0) == 0) continue;
      phase_spans[threads].insert(event.name);
    }
  }

  for (const char* phase :
       {"diva/run", "diva/clustering", "diva/suppress", "diva/anonymize",
        "diva/integrate", "diva/audit"}) {
    EXPECT_EQ(phase_spans[1].count(phase), 1u) << phase;
  }
  EXPECT_EQ(phase_spans[1], phase_spans[2]);
  EXPECT_EQ(phase_spans[1], phase_spans[8]);
}

TEST(TraceTest, CountersMatchTheReportExactly) {
  FuzzWorkload workload = MakeWorkload(11);
  ASSERT_GE(workload.relation.NumRows(), workload.k);

  DivaOptions options;
  options.k = workload.k;
  options.seed = 13;
  options.threads = 1;
  auto result = RunDiva(workload.relation, workload.constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // suppress.stars is the published star count: cells suppressed in the
  // output that were not already suppressed in the input.
  size_t stars = 0;
  for (RowId row = 0; row < workload.relation.NumRows(); ++row) {
    for (size_t col = 0; col < workload.relation.NumAttributes(); ++col) {
      if (result->relation.At(row, col) == kSuppressed &&
          workload.relation.At(row, col) != kSuppressed) {
        ++stars;
      }
    }
  }
  const std::vector<counters::Sample>& delta = result->report.counters;
  const counters::Sample* sample = Find(delta, "suppress.stars");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, stars);

  sample = Find(delta, "coloring.steps");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, result->report.coloring_steps);

  sample = Find(delta, "coloring.backtracks");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, result->report.backtracks);

  sample = Find(delta, "integrate.suppressed_cells");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, result->report.repair_cells);
}

TEST(CountersTest, AddAndSnapshotAndDelta) {
  std::vector<counters::Sample> before = counters::Snapshot();
  DIVA_COUNTER_ADD("test.counters.alpha", 3);
  DIVA_COUNTER_ADD("test.counters.alpha", 4);
  DIVA_HISTOGRAM_RECORD("test.counters.sizes", 10);
  DIVA_HISTOGRAM_RECORD("test.counters.sizes", 2);
  std::vector<counters::Sample> delta =
      counters::Delta(before, counters::Snapshot());

  const counters::Sample* alpha = Find(delta, "test.counters.alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->value, 7u);
  EXPECT_EQ(alpha->kind, counters::Kind::kCounter);
  EXPECT_EQ(alpha->scope, counters::Scope::kDeterministic);

  const counters::Sample* sizes = Find(delta, "test.counters.sizes");
  ASSERT_NE(sizes, nullptr);
  EXPECT_EQ(sizes->kind, counters::Kind::kHistogram);
  EXPECT_EQ(sizes->value, 2u);   // observation count
  EXPECT_EQ(sizes->sum, 12u);
  EXPECT_EQ(sizes->min, 2u);    // cumulative, copied from `after`
  EXPECT_EQ(sizes->max, 10u);

  // Snapshots are sorted by name, so deltas are too.
  for (size_t i = 1; i < delta.size(); ++i) {
    EXPECT_LT(delta[i - 1].name, delta[i].name);
  }
}

TEST(CountersTest, ScopeFilterAndJson) {
  DIVA_COUNTER_ADD("test.scope.det", 1);
  DIVA_COUNTER_ADD_EXEC("test.scope.exec", 1);
  std::vector<counters::Sample> all = counters::Snapshot();
  std::vector<counters::Sample> deterministic =
      counters::FilterScope(all, counters::Scope::kDeterministic);
  std::vector<counters::Sample> execution =
      counters::FilterScope(all, counters::Scope::kExecution);
  EXPECT_NE(Find(deterministic, "test.scope.det"), nullptr);
  EXPECT_EQ(Find(deterministic, "test.scope.exec"), nullptr);
  EXPECT_NE(Find(execution, "test.scope.exec"), nullptr);
  EXPECT_EQ(Find(execution, "test.scope.det"), nullptr);

  std::vector<counters::Sample> two;
  two.push_back(*Find(all, "test.scope.det"));
  DIVA_HISTOGRAM_RECORD("test.scope.hist", 5);
  two.push_back(*Find(counters::Snapshot(), "test.scope.hist"));
  std::string json = counters::ToJson(two);
  EXPECT_NE(json.find("\"test.scope.det\":"), std::string::npos);
  EXPECT_NE(json.find("\"test.scope.hist\":{\"count\":"),
            std::string::npos);
  EXPECT_EQ(json, counters::ToJson(two));  // byte-stable
}

TEST(CountersTest, BufferCommitAppliesAndDiscardDrops) {
  // The speculative-adoption primitive: deterministic-scope updates made
  // under a redirect stay invisible until Commit, and Discard erases
  // them as if the work never ran. Execution-scope updates bypass the
  // redirect on purpose (they are allowed to see unadopted work).
  counters::Buffer buffer;
  auto before = counters::Snapshot();
  {
    counters::ScopedBufferedCounters redirect(&buffer);
    DIVA_COUNTER_ADD("test.buffer.det", 5);
    DIVA_HISTOGRAM_RECORD("test.buffer.hist", 9);
    DIVA_COUNTER_ADD_EXEC("test.buffer.exec", 2);
  }
  auto delta = counters::Delta(before, counters::Snapshot());
  const counters::Sample* det = Find(delta, "test.buffer.det");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->value, 0u) << "buffered update leaked before Commit";
  const counters::Sample* exec = Find(delta, "test.buffer.exec");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->value, 2u) << "execution scope must bypass the redirect";

  EXPECT_FALSE(buffer.empty());
  buffer.Commit();
  EXPECT_TRUE(buffer.empty());
  delta = counters::Delta(before, counters::Snapshot());
  det = Find(delta, "test.buffer.det");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->value, 5u);
  const counters::Sample* hist = Find(delta, "test.buffer.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->value, 1u);
  EXPECT_EQ(hist->sum, 9u);

  // A second batch, discarded: nothing moves.
  before = counters::Snapshot();
  {
    counters::ScopedBufferedCounters redirect(&buffer);
    DIVA_COUNTER_ADD("test.buffer.det", 100);
  }
  buffer.Discard();
  EXPECT_TRUE(buffer.empty());
  delta = counters::Delta(before, counters::Snapshot());
  det = Find(delta, "test.buffer.det");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->value, 0u);
}

TEST(CountersTest, ScopedBufferRedirectNests) {
  counters::Buffer outer;
  counters::Buffer inner;
  auto before = counters::Snapshot();
  {
    counters::ScopedBufferedCounters outer_scope(&outer);
    DIVA_COUNTER_ADD("test.nest.counter", 1);
    {
      counters::ScopedBufferedCounters inner_scope(&inner);
      DIVA_COUNTER_ADD("test.nest.counter", 10);
    }
    // Inner scope gone: updates land in the outer buffer again.
    DIVA_COUNTER_ADD("test.nest.counter", 100);
  }
  inner.Discard();
  outer.Commit();
  auto delta = counters::Delta(before, counters::Snapshot());
  const counters::Sample* sample = Find(delta, "test.nest.counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 101u) << "only the outer batch was committed";
}

TEST(TraceTest, SpanBufferCommitRepublishesUnderOpenSpan) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  trace::SpanBuffer buffer;
  {
    trace::ScopedBufferedSpans redirect(&buffer);
    DIVA_TRACE_SPAN("spec/outer");
    {
      DIVA_TRACE_SPAN("spec/inner");
    }
  }
  // Nothing reaches the capture until the owner adopts the work.
  EXPECT_EQ(trace::Collect().size(), 0u);
  EXPECT_FALSE(buffer.empty());
  {
    DIVA_TRACE_SPAN("adopt/parent");
    buffer.Commit();
  }
  trace::Disable();
  EXPECT_TRUE(buffer.empty());
  std::vector<trace::SpanEvent> events = trace::Collect();
  ASSERT_EQ(events.size(), 3u);
  uint32_t tid = events[0].tid;
  std::map<std::string, const trace::SpanEvent*> by_name;
  for (const trace::SpanEvent& event : events) {
    EXPECT_EQ(event.tid, tid) << "committed spans adopt the committer's tid";
    by_name[event.name] = &event;
  }
  ASSERT_EQ(by_name.count("adopt/parent"), 1u);
  ASSERT_EQ(by_name.count("spec/outer"), 1u);
  ASSERT_EQ(by_name.count("spec/inner"), 1u);
  // Committed spans nest under the committer's open span: parent depth
  // is 0, the buffered spans keep their relative nesting one level down.
  EXPECT_EQ(by_name["adopt/parent"]->depth, 0u);
  EXPECT_EQ(by_name["spec/outer"]->depth, 1u);
  EXPECT_EQ(by_name["spec/inner"]->depth, 2u);
}

TEST(TraceTest, SpanBufferDiscardLeavesNoTrace) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  trace::SpanBuffer buffer;
  {
    trace::ScopedBufferedSpans redirect(&buffer);
    DIVA_TRACE_SPAN("doomed/span");
  }
  buffer.Discard();
  buffer.Commit();  // no-op on an empty buffer
  trace::Disable();
  EXPECT_EQ(trace::Collect().size(), 0u);
}

TEST(TraceTest, SpanBufferDropsSpansFromARetiredCapture) {
  trace::SetRingCapacity(1024);
  trace::Enable();
  trace::SpanBuffer buffer;
  {
    trace::ScopedBufferedSpans redirect(&buffer);
    DIVA_TRACE_SPAN("stale/span");
  }
  // A new capture retires the old timebase: the buffered span can no
  // longer be rebased and must be silently dropped, not misfiled.
  trace::Enable();
  buffer.Commit();
  EXPECT_TRUE(buffer.empty());
  trace::Disable();
  EXPECT_EQ(trace::Collect().size(), 0u);
}

TEST(CountersTest, ResetZeroesEveryCell) {
  DIVA_COUNTER_ADD("test.reset.counter", 42);
  counters::ResetForTest();
  std::vector<counters::Sample> snapshot = counters::Snapshot();
  const counters::Sample* sample = Find(snapshot, "test.reset.counter");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 0u);
}

}  // namespace
}  // namespace diva
