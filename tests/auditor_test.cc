#include "verify/auditor.h"

#include <gtest/gtest.h>

#include "anon/suppress.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "hierarchy/taxonomy.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalConstraints;
using testing::MedicalRelation;
using testing::MedicalSchema;

AuditReport MustAudit(const Relation& input, const Relation& output, size_t k,
                      const ConstraintSet& constraints,
                      const AuditOptions& options = {}) {
  auto report = AuditAnonymization(input, output, k, constraints, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

/// A DIVA run's real output passes every check (the end-to-end positive
/// case for all four invariants at once).
TEST(AuditorTest, DivaOutputPassesFullAudit) {
  Relation input = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(input, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  AuditOptions audit_options;
  audit_options.waived_constraints = result->report.unsatisfied;
  AuditReport report =
      MustAudit(input, result->relation, 2, constraints, audit_options);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.stats.rows, input.NumRows());
  EXPECT_GE(report.stats.min_group_size, 2u);
  EXPECT_EQ(report.stats.removed_stars, 0u);
  EXPECT_EQ(report.stats.edited_cells, 0u);
}

/// Group-size invariant, isolated positive + negative: an identity
/// "anonymization" is perfectly contained and star-consistent, but its
/// singleton QI-groups violate k = 2.
TEST(AuditorTest, FlagsKViolation) {
  Relation input = MedicalRelation();
  Relation output = input;  // singleton QI-groups, nothing suppressed

  AuditReport report = MustAudit(input, output, 2, /*constraints=*/{});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Flagged(AuditCheck::kGroupSize));
  EXPECT_FALSE(report.Flagged(AuditCheck::kContainment));
  EXPECT_FALSE(report.Flagged(AuditCheck::kStarAccounting));
  EXPECT_EQ(report.stats.min_group_size, 1u);

  // The same pair is fine for k = 1.
  EXPECT_TRUE(MustAudit(input, output, 1, {}).ok());
}

/// Constraint-bounds invariant: fully suppressing the QI keeps the
/// relation k-anonymous and contained, but the sensitive column still
/// carries 2 Hypertension + 1 more occurrences — breaching lambda_r = 2.
TEST(AuditorTest, FlagsUpperBoundBreach) {
  Relation input = MedicalRelation();
  Relation output = input;
  Clustering everything(1);
  for (RowId row = 0; row < input.NumRows(); ++row) {
    everything[0].push_back(row);
  }
  SuppressClustersInPlace(&output, everything);
  ASSERT_TRUE(IsKAnonymous(output, 2));

  auto sigma = ParseConstraintSet(*MedicalSchema(), "DIAG[Hypertension] in [0,2]");
  ASSERT_TRUE(sigma.ok());
  ASSERT_EQ((*sigma)[0].CountOccurrences(input), 3u);

  AuditReport report = MustAudit(input, output, 2, *sigma);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Flagged(AuditCheck::kConstraintBounds));
  EXPECT_FALSE(report.Flagged(AuditCheck::kGroupSize));
  EXPECT_FALSE(report.Flagged(AuditCheck::kContainment));
  ASSERT_EQ(report.stats.constraint_counts.size(), 1u);
  EXPECT_EQ(report.stats.constraint_counts[0], 3u);

  // Waiving the constraint (best-effort mode) silences the flag but the
  // measured count is still reported.
  AuditOptions waive;
  waive.waived_constraints = {0};
  AuditReport waived = MustAudit(input, output, 2, *sigma, waive);
  EXPECT_TRUE(waived.ok()) << waived.ToString();
  EXPECT_EQ(waived.stats.constraint_counts[0], 3u);

  // A lower-bound breach is flagged the same way: suppression erased all
  // occurrences required by lambda_l >= 1.
  auto lower = ParseConstraintSet(*MedicalSchema(), "ETH[Asian] in [2,5]");
  ASSERT_TRUE(lower.ok());
  AuditReport lower_report = MustAudit(input, output, 2, *lower);
  EXPECT_FALSE(lower_report.ok());
  EXPECT_TRUE(lower_report.Flagged(AuditCheck::kConstraintBounds));
  EXPECT_EQ(lower_report.stats.constraint_counts[0], 0u);
}

/// Containment invariant: editing a cell to a *different value* is not a
/// legal anonymization step, even though every privacy property holds.
TEST(AuditorTest, FlagsNonSuppressionEdit) {
  Relation input = MedicalRelation();
  Relation output = input;
  Clustering everything(1);
  for (RowId row = 0; row < input.NumRows(); ++row) {
    everything[0].push_back(row);
  }
  SuppressClustersInPlace(&output, everything);

  // Swap one sensitive value (sensitive cells are outside the QI-groups,
  // so group sizes stay valid and the violation is isolated).
  size_t diag = *MedicalSchema()->IndexOf("DIAG");
  output.Set(0, diag, output.Encode(diag, "Gout"));

  AuditReport report = MustAudit(input, output, 2, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Flagged(AuditCheck::kContainment));
  EXPECT_FALSE(report.Flagged(AuditCheck::kGroupSize));
  EXPECT_FALSE(report.Flagged(AuditCheck::kStarAccounting));
  EXPECT_EQ(report.stats.edited_cells, 1u);
}

/// verify_cli reads R and R* from separate CSV files, so their
/// dictionaries assign different codes to equal strings. The audit must
/// compare values, not raw codes, in both directions: no false
/// containment violations on a clean pair, and a genuine edit still
/// caught.
TEST(AuditorTest, AuditsAcrossIndependentDictionaries) {
  Relation input = MedicalRelation();
  Relation output = input;
  Clustering everything(1);
  for (RowId row = 0; row < input.NumRows(); ++row) {
    everything[0].push_back(row);
  }
  SuppressClustersInPlace(&output, everything);

  // Round-trip each relation through strings into fresh dictionaries,
  // pre-skewed with a decoy value so equal strings get unequal codes.
  auto reencode = [](const Relation& source) {
    Relation copy(source.schema_ptr());
    std::vector<std::string> fields(source.NumAttributes());
    for (size_t col = 0; col < source.NumAttributes(); ++col) {
      copy.Encode(col, "decoy-" + std::to_string(col));
    }
    for (RowId row = 0; row < source.NumRows(); ++row) {
      for (size_t col = 0; col < source.NumAttributes(); ++col) {
        fields[col] = source.ValueString(row, col);
      }
      EXPECT_TRUE(copy.AppendRowStrings(fields).ok());
    }
    return copy;
  };
  Relation fresh_input = reencode(input);
  Relation fresh_output = reencode(output);
  size_t diag = *MedicalSchema()->IndexOf("DIAG");
  ASSERT_NE(fresh_input.At(0, diag), input.At(0, diag));  // codes do differ

  AuditReport report = MustAudit(fresh_input, fresh_output, 2, {});
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.stats.edited_cells, 0u);
  EXPECT_EQ(report.stats.removed_stars, 0u);

  fresh_output.Set(0, diag, fresh_output.Encode(diag, "Gout"));
  AuditReport corrupted = MustAudit(fresh_input, fresh_output, 2, {});
  EXPECT_FALSE(corrupted.ok());
  EXPECT_TRUE(corrupted.Flagged(AuditCheck::kContainment));
  EXPECT_EQ(corrupted.stats.edited_cells, 1u);
}

/// Star-accounting invariant, both directions: un-suppressing an input ★
/// and claiming the wrong number of added ★s.
TEST(AuditorTest, FlagsStarAccountingErrors) {
  auto schema = MedicalSchema();
  auto input = RelationFromRows(
      schema, {{"Female", "*", "80", "AB", "Calgary", "Flu"},
               {"Female", "*", "80", "AB", "Calgary", "Flu"}});
  ASSERT_TRUE(input.ok());

  // Un-suppression: the published relation "recovers" the hidden ETH.
  Relation output = *input;
  size_t eth = *schema->IndexOf("ETH");
  output.Set(0, eth, output.Encode(eth, "Asian"));
  output.Set(1, eth, output.Encode(eth, "Asian"));
  AuditReport report = MustAudit(*input, output, 2, {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Flagged(AuditCheck::kStarAccounting));
  EXPECT_EQ(report.stats.removed_stars, 2u);

  // Wrong claimed count: output adds 2 stars (AGE column) but the
  // producer claims 3.
  Relation counted = *input;
  size_t age = *schema->IndexOf("AGE");
  counted.Set(0, age, kSuppressed);
  counted.Set(1, age, kSuppressed);
  AuditOptions audit_options;
  audit_options.expected_added_stars = 3;
  AuditReport miscounted = MustAudit(*input, counted, 2, {}, audit_options);
  EXPECT_FALSE(miscounted.ok());
  EXPECT_TRUE(miscounted.Flagged(AuditCheck::kStarAccounting));
  EXPECT_EQ(miscounted.stats.added_stars, 2u);

  // The correct claim passes.
  audit_options.expected_added_stars = 2;
  EXPECT_TRUE(MustAudit(*input, counted, 2, {}, audit_options).ok());
}

/// Generalized cells are legal exactly when a taxonomy justifies them as
/// proper ancestors of the input values.
TEST(AuditorTest, GeneralizationRequiresTaxonomy) {
  auto schema = MedicalSchema();
  auto input = RelationFromRows(
      schema, {{"Female", "Asian", "32", "AB", "Calgary", "Flu"},
               {"Female", "Asian", "38", "AB", "Calgary", "Flu"}});
  ASSERT_TRUE(input.ok());

  size_t age = *schema->IndexOf("AGE");
  Relation output = *input;
  ValueCode decade = output.Encode(age, "[30-39]");
  output.Set(0, age, decade);
  output.Set(1, age, decade);

  // Without a taxonomy the recode is an illegal edit.
  AuditReport no_context = MustAudit(*input, output, 2, {});
  EXPECT_TRUE(no_context.Flagged(AuditCheck::kContainment));

  // With the interval hierarchy it is a proper generalization.
  auto taxonomy = Taxonomy::Intervals(30, 39, 10);
  ASSERT_TRUE(taxonomy.ok());
  auto context =
      std::make_shared<GeneralizationContext>(schema->NumAttributes());
  context->SetTaxonomy(age, std::move(taxonomy).value());
  AuditOptions audit_options;
  audit_options.generalization = context;
  AuditReport with_context = MustAudit(*input, output, 2, {}, audit_options);
  EXPECT_TRUE(with_context.ok()) << with_context.ToString();
  EXPECT_EQ(with_context.stats.generalized_cells, 2u);
}

/// Unauditable pairs are Status errors, not failed audits.
TEST(AuditorTest, RejectsUnauditablePairs) {
  Relation input = MedicalRelation();

  EXPECT_FALSE(AuditAnonymization(input, input, 0, {}).ok());

  Relation fewer_rows = input.SelectRows(std::vector<RowId>{0, 1, 2});
  EXPECT_EQ(AuditAnonymization(input, fewer_rows, 2, {}).status().code(),
            StatusCode::kInvalidArgument);
}

/// RunDiva's self-audit flag: a clean run reports audited = true; the
/// flag defaults to off.
TEST(AuditorTest, DivaSelfAuditFlag) {
  Relation input = MedicalRelation();
  ConstraintSet constraints = MedicalConstraints(*MedicalSchema());
  DivaOptions options;
  options.k = 2;
  options.audit = true;
  auto result = RunDiva(input, constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->report.audited);

  options.audit = false;
  auto unaudited = RunDiva(input, constraints, options);
  ASSERT_TRUE(unaudited.ok());
  EXPECT_FALSE(unaudited->report.audited);
}

}  // namespace
}  // namespace diva
