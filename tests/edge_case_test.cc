// Edge cases across modules that the per-module suites do not cover:
// degenerate domains, custom delimiters, empty inputs, boundary bounds.

#include <gtest/gtest.h>

#include <sstream>

#include "anon/distance.h"
#include "anon/suppress.h"
#include "constraint/generator.h"
#include "core/diva.h"
#include "core/report_json.h"
#include "metrics/metrics.h"
#include "relation/csv.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;
using testing::MustParse;

TEST(EdgeCaseTest, DegenerateNumericRangeContributesZero) {
  // All AGE values equal: range is 0, numeric distance must not divide
  // by zero and equal values contribute nothing.
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "x"},
                                {"M", "Asian", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  DistanceMetric metric(*r);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 1.0);  // only GEN differs
}

TEST(EdgeCaseTest, CsvCustomDelimiter) {
  Relation original = MedicalRelation();
  CsvOptions options;
  options.delimiter = ';';
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out, options).ok());
  EXPECT_NE(out.str().find(';'), std::string::npos);
  std::istringstream in(out.str());
  auto read = ReadCsv(in, MedicalSchema(), options);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumRows(), original.NumRows());
  EXPECT_EQ(read->ValueString(4, 1), "African");
}

TEST(EdgeCaseTest, CsvFieldContainingCustomDelimiter) {
  auto r = RelationFromRows(MedicalSchema(),
                            {{"a;b", "Asian", "30", "BC", "V", "x"}});
  ASSERT_TRUE(r.ok());
  CsvOptions options;
  options.delimiter = ';';
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*r, out, options).ok());
  std::istringstream in(out.str());
  auto read = ReadCsv(in, MedicalSchema(), options);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->ValueString(0, 0), "a;b");
}

TEST(EdgeCaseTest, ConstraintWithEqualBounds) {
  Relation r = MedicalRelation();
  auto exact = MustParse(*MedicalSchema(), "ETH[Asian] in [3,3]");
  EXPECT_TRUE(exact.IsSatisfiedBy(r));
  auto off_by_one = MustParse(*MedicalSchema(), "ETH[Asian] in [4,4]");
  EXPECT_FALSE(off_by_one.IsSatisfiedBy(r));
}

TEST(EdgeCaseTest, ZeroZeroConstraintForbidsValue) {
  // (A[a], 0, 0): the value must not appear at all. DIVA must suppress
  // every occurrence via Integrate.
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[African] in [0,0]")};
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(constraints[0].CountOccurrences(result->relation), 0u);
  EXPECT_TRUE(IsKAnonymous(result->relation, 2));
}

TEST(EdgeCaseTest, SuppressEmptyClusteringIsNoOp) {
  Relation r = MedicalRelation();
  Relation copy = r;
  SuppressClustersInPlace(&copy, {});
  for (RowId row = 0; row < r.NumRows(); ++row) {
    for (size_t col = 0; col < r.NumAttributes(); ++col) {
      EXPECT_EQ(copy.At(row, col), r.At(row, col));
    }
  }
}

TEST(EdgeCaseTest, KEqualsRelationSize) {
  Relation r = MedicalRelation();
  DivaOptions options;
  options.k = r.NumRows();
  auto result = RunDiva(r, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKAnonymous(result->relation, r.NumRows()));
  // One group of everything: all non-unanimous QI columns starred.
  QiGroups groups = ComputeQiGroups(result->relation);
  EXPECT_EQ(groups.groups.size(), 1u);
}

TEST(EdgeCaseTest, EmptyRelationThroughDiva) {
  Relation empty(MedicalSchema());
  DivaOptions options;
  options.k = 3;
  auto result = RunDiva(empty, {}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.NumRows(), 0u);
}

TEST(EdgeCaseTest, AllRowsIdentical) {
  std::vector<std::vector<std::string>> rows(
      12, {"F", "Asian", "30", "BC", "V", "Flu"});
  auto r = RelationFromRows(MedicalSchema(), rows);
  ASSERT_TRUE(r.ok());
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [12,12]")};
  DivaOptions options;
  options.k = 4;
  auto result = RunDiva(*r, constraints, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKAnonymous(result->relation, 4));
  EXPECT_TRUE(SatisfiesAll(result->relation, constraints));
  EXPECT_EQ(CountStars(result->relation), 0u);  // nothing to suppress
}

TEST(EdgeCaseTest, ZeroConstraintRunIsPureResidual) {
  // No constraints: the shard plan has zero shards and every row is
  // residual — the whole relation flows to the baseline phase, and the
  // shard flag has nothing to change.
  Relation r = MedicalRelation();
  std::string bytes_without;
  for (bool shard : {false, true}) {
    DivaOptions options;
    options.k = 2;
    options.shard = shard;
    auto result = RunDiva(r, {}, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->report.shards, 0u);
    EXPECT_EQ(result->report.residual_rows, r.NumRows());
    EXPECT_TRUE(IsKAnonymous(result->relation, 2));
    std::ostringstream out;
    ASSERT_TRUE(WriteCsv(result->relation, out).ok());
    if (!shard) {
      bytes_without = out.str();
    } else {
      EXPECT_EQ(out.str(), bytes_without);
    }
  }
}

TEST(EdgeCaseTest, EveryRowViolatingSigmaSuppressesAcrossAllShards) {
  // Three forbid-constraints cover every ETH value: every row violates
  // Sigma, the plan has three components and an empty residual, and the
  // pipeline must suppress every occurrence in every shard — in both
  // execution modes, byte for byte.
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Caucasian] in [0,0]"),
      MustParse(*MedicalSchema(), "ETH[African] in [0,0]"),
      MustParse(*MedicalSchema(), "ETH[Asian] in [0,0]"),
  };
  std::string bytes_without;
  for (bool shard : {false, true}) {
    DivaOptions options;
    options.k = 2;
    options.shard = shard;
    auto result = RunDiva(r, constraints, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->report.shards, 3u);
    EXPECT_EQ(result->report.residual_rows, 0u);
    for (const DiversityConstraint& constraint : constraints) {
      EXPECT_EQ(constraint.CountOccurrences(result->relation), 0u);
    }
    EXPECT_TRUE(IsKAnonymous(result->relation, 2));
    std::ostringstream out;
    ASSERT_TRUE(WriteCsv(result->relation, out).ok());
    if (!shard) {
      bytes_without = out.str();
    } else {
      EXPECT_EQ(out.str(), bytes_without);
    }
  }
}

TEST(EdgeCaseTest, DiscernibilityOverflowSafety) {
  // 100k identical rows: disc = N^2 = 1e10 exceeds 32 bits; the metric
  // must not overflow.
  auto schema = Schema::Make({
      {"A", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
  });
  ASSERT_TRUE(schema.ok());
  Relation r(*schema);
  ValueCode code = r.Encode(0, "x");
  std::vector<ValueCode> row = {code};
  for (int i = 0; i < 100000; ++i) r.AppendRow(row);
  EXPECT_EQ(Discernibility(r, 2), 10000000000ULL);
}

TEST(EdgeCaseTest, ReportJsonWellFormed) {
  Relation r = MedicalRelation();
  ConstraintSet constraints = {
      MustParse(*MedicalSchema(), "ETH[Asian] in [2,5]")};
  DivaOptions options;
  options.k = 2;
  auto result = RunDiva(r, constraints, options);
  ASSERT_TRUE(result.ok());
  std::string json = ReportToJson(result->report);
  // Structural sanity without a JSON parser dependency.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"clustering_complete\":true"), std::string::npos);
  EXPECT_NE(json.find("\"total_constraints\":1"), std::string::npos);
  EXPECT_NE(json.find("\"unsatisfied\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
  // Balanced braces/brackets.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(EdgeCaseTest, GeneratorOnTinyRelation) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "x"},
                                {"F", "Asian", "31", "BC", "V", "y"},
                            });
  ASSERT_TRUE(r.ok());
  ConstraintGenOptions gen;
  gen.count = 1;
  gen.min_support = 2;
  auto constraints = GenerateConstraints(*r, gen);
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  EXPECT_EQ(constraints->size(), 1u);
}

}  // namespace
}  // namespace diva
