#include "common/bitset.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/rng.h"

namespace diva {
namespace {

// Reference popcount of the intersection, one bit at a time.
size_t NaiveIntersectionCount(const Bitset& a, const Bitset& b) {
  size_t count = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.Test(i) && b.Test(i)) ++count;
  }
  return count;
}

Bitset RandomBitset(size_t bits, double density, uint64_t seed) {
  Bitset set(bits);
  Rng rng(seed);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.UniformDouble() < density) set.Set(i);
  }
  return set;
}

TEST(BitsetTest, EmptyBitset) {
  Bitset set;
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.num_words(), 0u);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.Count(), 0u);
  EXPECT_FALSE(set.Any());
  EXPECT_TRUE(set.None());
  size_t visited = 0;
  set.ForEachSetBit([&](size_t) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

// Widths straddling the word boundary: 63 (partial word), 64 (exact),
// 65 (one spillover bit). The tail-masking invariant — bits >= size()
// in the last word stay zero — is what keeps Count()/None() honest.
TEST(BitsetTest, WordBoundaryWidths) {
  for (size_t bits : {size_t{63}, size_t{64}, size_t{65}}) {
    SCOPED_TRACE(bits);
    Bitset set(bits);
    EXPECT_EQ(set.size(), bits);
    EXPECT_EQ(set.num_words(), (bits + 63) / 64);
    EXPECT_EQ(set.Count(), 0u);

    // Set every bit; the count must equal the logical width, not the
    // word capacity.
    for (size_t i = 0; i < bits; ++i) set.Set(i);
    EXPECT_EQ(set.Count(), bits);
    EXPECT_TRUE(set.Any());
    EXPECT_FALSE(set.None());

    // First/last bit round trips.
    set.Reset(0);
    set.Reset(bits - 1);
    EXPECT_EQ(set.Count(), bits - 2);
    EXPECT_FALSE(set.Test(0));
    EXPECT_FALSE(set.Test(bits - 1));
    EXPECT_TRUE(set.Test(1));

    set.Clear();
    EXPECT_EQ(set.Count(), 0u);
    EXPECT_TRUE(set.None());
  }
}

TEST(BitsetTest, ForEachSetBitVisitsAscending) {
  Bitset set(130);
  std::vector<size_t> expected = {0, 1, 63, 64, 65, 127, 128, 129};
  for (size_t i : expected) set.Set(i);
  std::vector<size_t> visited;
  set.ForEachSetBit([&](size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(BitsetTest, IntersectionCountMatchesNaive) {
  for (size_t bits : {size_t{1}, size_t{63}, size_t{64}, size_t{65},
                      size_t{1000}, size_t{4096}}) {
    SCOPED_TRACE(bits);
    Bitset a = RandomBitset(bits, 0.3, 42 + bits);
    Bitset b = RandomBitset(bits, 0.7, 1000 + bits);
    EXPECT_EQ(Bitset::IntersectionCount(a, b), NaiveIntersectionCount(a, b));
    EXPECT_EQ(a.Intersects(b), NaiveIntersectionCount(a, b) > 0);
  }
}

TEST(BitsetTest, WordWiseOps) {
  size_t bits = 200;
  Bitset a = RandomBitset(bits, 0.5, 7);
  Bitset b = RandomBitset(bits, 0.5, 8);

  Bitset and_result = a;
  and_result.And(b);
  Bitset andnot_result = a;
  andnot_result.AndNot(b);
  Bitset or_result = a;
  or_result.Or(b);

  for (size_t i = 0; i < bits; ++i) {
    EXPECT_EQ(and_result.Test(i), a.Test(i) && b.Test(i)) << i;
    EXPECT_EQ(andnot_result.Test(i), a.Test(i) && !b.Test(i)) << i;
    EXPECT_EQ(or_result.Test(i), a.Test(i) || b.Test(i)) << i;
  }
  EXPECT_EQ(and_result.Count(), NaiveIntersectionCount(a, b));
}

TEST(BitsetTest, SubsetAndEquality) {
  Bitset a(100);
  Bitset b(100);
  a.Set(3);
  a.Set(64);
  b.Set(3);
  b.Set(64);
  b.Set(99);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_FALSE(a == b);
  a.Set(99);
  EXPECT_TRUE(a == b);
}

// The parallel kernels must be bit-identical to the sequential ones at
// every thread width — Count/IntersectionCount parallelize above
// kParallelWordCutoff words, and popcount sums are order-independent
// integers, so the results must agree exactly.
TEST(BitsetTest, ParallelKernelsMatchSequentialAcrossWidths) {
  // Big enough to cross the parallel cutoff (words >= 1<<16).
  size_t bits = (Bitset::kParallelWordCutoff + 100) * 64;
  Bitset a = RandomBitset(bits, 0.4, 99);
  Bitset b = RandomBitset(bits, 0.6, 100);

  SetParallelThreads(1);
  size_t count1 = a.Count();
  size_t inter1 = Bitset::IntersectionCount(a, b);
  Bitset and1 = a;
  and1.And(b);

  for (size_t threads : {size_t{2}, size_t{8}}) {
    SCOPED_TRACE(threads);
    SetParallelThreads(threads);
    EXPECT_EQ(a.Count(), count1);
    EXPECT_EQ(Bitset::IntersectionCount(a, b), inter1);
    Bitset and_t = a;
    and_t.And(b);
    EXPECT_TRUE(and_t == and1);
  }
  SetParallelThreads(0);  // restore default
}

}  // namespace
}  // namespace diva
