#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "anon/privacy.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "metrics/metrics.h"
#include "relation/csv.h"
#include "relation/qi_groups.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalSchema;

/// Full pipeline: CSV in -> parse constraints -> DIVA -> CSV out ->
/// re-read -> verify k-anonymity and Sigma on the round-tripped data.
TEST(PipelineTest, CsvToDivaToCsvRoundTrip) {
  std::ostringstream csv;
  ASSERT_TRUE(WriteCsv(testing::MedicalRelation(), csv).ok());

  std::istringstream in(csv.str());
  auto relation = ReadCsv(in, MedicalSchema());
  ASSERT_TRUE(relation.ok());

  auto constraints = ParseConstraintSet(*MedicalSchema(),
                                        "ETH[Asian] in [2,5]\n"
                                        "ETH[African] in [1,3]\n"
                                        "CTY[Vancouver] in [2,4]\n");
  ASSERT_TRUE(constraints.ok());

  DivaOptions options;
  options.audit = true;  // every pipeline test audits its output
  options.k = 2;
  auto result = RunDiva(*relation, *constraints, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.audited);

  std::ostringstream out_csv;
  ASSERT_TRUE(WriteCsv(result->relation, out_csv).ok());
  std::istringstream back(out_csv.str());
  auto round_tripped = ReadCsv(back, MedicalSchema());
  ASSERT_TRUE(round_tripped.ok());

  EXPECT_TRUE(IsKAnonymous(*round_tripped, 2));
  EXPECT_TRUE(SatisfiesAll(*round_tripped, *constraints));
  EXPECT_EQ(CountStars(*round_tripped), CountStars(result->relation));
}

/// DIVA on a profile-scale workload with constraints loaded from text —
/// the shape of a real deployment.
TEST(PipelineTest, ProfileWorkloadEndToEnd) {
  ProfileOptions profile_options;
  profile_options.num_rows = 1500;
  profile_options.seed = 77;
  auto cohort = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  ASSERT_TRUE(cohort.ok());

  auto constraints = DefaultConstraints(DatasetProfile::kPopSyn, *cohort, 77);
  ASSERT_TRUE(constraints.ok());

  DivaOptions options;
  options.audit = true;  // every pipeline test audits its output
  options.k = 5;
  options.coloring_budget = 50000;
  auto result = RunDiva(*cohort, *constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(IsKAnonymous(result->relation, 5));
  for (const auto& constraint : *constraints) {
    EXPECT_LE(constraint.CountOccurrences(result->relation),
              constraint.upper())
        << constraint.ToString();
  }
  // Identifier column: present but fully blanked in the published data.
  EXPECT_EQ(result->relation.NumAttributes(), cohort->NumAttributes());
  size_t id_col = *cohort->schema().IndexOf("ID");
  for (RowId row = 0; row < result->relation.NumRows(); ++row) {
    EXPECT_TRUE(result->relation.IsSuppressed(row, id_col));
  }
}

/// Failure injection: malformed inputs surface as clean Status errors at
/// every stage — never a crash, never a silently wrong output.
TEST(PipelineTest, FailureInjection) {
  auto schema = MedicalSchema();

  // Bad CSV (arity).
  std::istringstream bad_csv("GEN,ETH,AGE,PRV,CTY,DIAG\nonly,three,cols\n");
  EXPECT_FALSE(ReadCsv(bad_csv, schema).ok());

  // Bad constraint text.
  EXPECT_FALSE(ParseConstraintSet(*schema, "ETH{Asian} in [2,5]").ok());

  // Unknown attribute in constraint.
  EXPECT_FALSE(ParseConstraintSet(*schema, "ZODIAC[Leo] in [1,2]").ok());

  // k larger than the relation (strict and non-strict agree here).
  Relation r = testing::MedicalRelation();
  DivaOptions options;
  options.audit = true;  // every pipeline test audits its output
  options.k = 100;
  EXPECT_EQ(RunDiva(r, {}, options).status().code(),
            StatusCode::kInfeasible);

  // Unsatisfiable Sigma in strict mode.
  auto impossible = ParseConstraintSet(*schema, "ETH[Asian] in [9,9]");
  ASSERT_TRUE(impossible.ok());
  options.k = 2;
  options.strict = true;
  EXPECT_EQ(RunDiva(r, *impossible, options).status().code(),
            StatusCode::kInfeasible);

  // Same input in best-effort mode still yields a k-anonymous relation.
  options.strict = false;
  auto best_effort = RunDiva(r, *impossible, options);
  ASSERT_TRUE(best_effort.ok());
  EXPECT_TRUE(IsKAnonymous(best_effort->relation, 2));
  EXPECT_FALSE(best_effort->report.unsatisfied.empty());
}

/// The pipeline is bit-for-bit deterministic in (input, seed).
TEST(PipelineTest, DeterministicAcrossWholePipeline) {
  ProfileOptions profile_options;
  profile_options.num_rows = 800;
  profile_options.seed = 123;
  auto a = GenerateProfile(DatasetProfile::kCredit, profile_options);
  auto b = GenerateProfile(DatasetProfile::kCredit, profile_options);
  ASSERT_TRUE(a.ok() && b.ok());

  auto ca = DefaultConstraints(DatasetProfile::kCredit, *a, 9);
  auto cb = DefaultConstraints(DatasetProfile::kCredit, *b, 9);
  ASSERT_TRUE(ca.ok() && cb.ok());

  DivaOptions options;
  options.audit = true;  // every pipeline test audits its output
  options.k = 4;
  options.seed = 99;
  options.coloring_budget = 30000;
  auto ra = RunDiva(*a, *ca, options);
  auto rb = RunDiva(*b, *cb, options);
  ASSERT_TRUE(ra.ok() && rb.ok());

  std::ostringstream csv_a;
  std::ostringstream csv_b;
  ASSERT_TRUE(WriteCsv(ra->relation, csv_a).ok());
  ASSERT_TRUE(WriteCsv(rb->relation, csv_b).ok());
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

/// k-anonymity + l-diversity + Sigma together.
TEST(PipelineTest, CombinedPrivacyModels) {
  ProfileOptions profile_options;
  profile_options.num_rows = 1200;
  profile_options.seed = 31;
  auto cohort = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  ASSERT_TRUE(cohort.ok());
  auto constraints = DefaultConstraints(DatasetProfile::kPopSyn, *cohort, 31);
  ASSERT_TRUE(constraints.ok());

  DivaOptions options;
  options.audit = true;  // every pipeline test audits its output
  options.k = 6;
  options.l_diversity = 3;
  options.coloring_budget = 50000;
  auto result = RunDiva(*cohort, *constraints, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(IsKAnonymous(result->relation, 6));
  EXPECT_TRUE(IsDistinctLDiverse(result->relation, 3));
}

}  // namespace
}  // namespace diva
