#include <gtest/gtest.h>

#include "anon/distance.h"
#include "tests/test_util.h"

namespace diva {
namespace {

using testing::MedicalRelation;
using testing::MedicalSchema;

TEST(DistanceTest, IdenticalRowsAreZero) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "Flu"},
                                {"F", "Asian", "30", "BC", "V", "Cold"},
                            });
  ASSERT_TRUE(r.ok());
  DistanceMetric metric(*r);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 0.0);  // sensitive ignored
}

TEST(DistanceTest, SymmetricAndNonNegative) {
  Relation r = MedicalRelation();
  DistanceMetric metric(r);
  for (RowId a = 0; a < r.NumRows(); ++a) {
    for (RowId b = 0; b < r.NumRows(); ++b) {
      double d = metric.Distance(a, b);
      EXPECT_GE(d, 0.0);
      EXPECT_DOUBLE_EQ(d, metric.Distance(b, a));
    }
  }
}

TEST(DistanceTest, NumericColumnDetected) {
  Relation r = MedicalRelation();
  DistanceMetric metric(r);
  EXPECT_TRUE(metric.IsNumericColumn(2));   // AGE
  EXPECT_FALSE(metric.IsNumericColumn(1));  // ETH
}

TEST(DistanceTest, NumericContributionIsNormalized) {
  Relation r = MedicalRelation();
  DistanceMetric metric(r);
  // t1 (Female Caucasian 80 AB Calgary) vs t2 (Female Caucasian 32 AB
  // Calgary): only AGE differs. Ages span [32, 80] in Table 1, so the
  // normalized gap is (80-32)/(80-32) = 1.
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), (80.0 - 32.0) / (80.0 - 32.0));
  // t5 vs t6 (African males): AGE 32 vs 43, PRV and CTY differ.
  EXPECT_NEAR(metric.Distance(4, 5), (43.0 - 32.0) / 48.0 + 2.0, 1e-12);
}

TEST(DistanceTest, CategoricalIsHamming) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "x"},
                                {"M", "African", "30", "AB", "W", "x"},
                            });
  ASSERT_TRUE(r.ok());
  DistanceMetric metric(*r);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 4.0);  // GEN, ETH, PRV, CTY
}

TEST(DistanceTest, SuppressedMismatchesEverything) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"*", "Asian", "30", "BC", "V", "x"},
                                {"*", "Asian", "30", "BC", "V", "x"},
                                {"F", "Asian", "30", "BC", "V", "x"},
                            });
  ASSERT_TRUE(r.ok());
  DistanceMetric metric(*r);
  EXPECT_DOUBLE_EQ(metric.Distance(0, 1), 1.0);  // star vs star
  EXPECT_DOUBLE_EQ(metric.Distance(0, 2), 1.0);  // star vs value
}

// --------------------------------------------------- ClusterCostTracker

TEST(ClusterCostTrackerTest, SingletonHasZeroCost) {
  Relation r = MedicalRelation();
  ClusterCostTracker tracker(r);
  tracker.Reset(0);
  EXPECT_EQ(tracker.size(), 1u);
  EXPECT_EQ(tracker.TotalCost(), 0u);
}

TEST(ClusterCostTrackerTest, CostIncreaseMatchesSuppressionDelta) {
  Relation r = MedicalRelation();
  ClusterCostTracker tracker(r);
  // t9 + t10 (rows 8, 9): agree on GEN, ETH; diverge on AGE, PRV, CTY.
  tracker.Reset(8);
  // Adding row 9: divergent goes 0 -> 3, cost 2*3 - 1*0 = 6.
  EXPECT_EQ(tracker.CostIncrease(9), 6u);
  tracker.Add(9);
  EXPECT_EQ(tracker.TotalCost(), 6u);
  // Adding row 7 (t8: Female Asian 58 BC Vancouver): still agrees on GEN
  // and ETH -> divergent stays 3, cost 3*3 - 2*3 = 3.
  EXPECT_EQ(tracker.CostIncrease(7), 3u);
  tracker.Add(7);
  EXPECT_EQ(tracker.TotalCost(), 9u);
}

TEST(ClusterCostTrackerTest, IdenticalTupleAddsNothing) {
  auto r = RelationFromRows(MedicalSchema(),
                            {
                                {"F", "Asian", "30", "BC", "V", "a"},
                                {"F", "Asian", "30", "BC", "V", "b"},
                            });
  ASSERT_TRUE(r.ok());
  ClusterCostTracker tracker(*r);
  tracker.Reset(0);
  EXPECT_EQ(tracker.CostIncrease(1), 0u);
  tracker.Add(1);
  EXPECT_EQ(tracker.TotalCost(), 0u);
}

TEST(ClusterCostTrackerTest, TracksAcrossManyAdds) {
  Relation r = MedicalRelation();
  ClusterCostTracker tracker(r);
  tracker.Reset(0);
  size_t total = 0;
  for (RowId row = 1; row < r.NumRows(); ++row) {
    size_t inc = tracker.CostIncrease(row);
    tracker.Add(row);
    total += inc;
    EXPECT_EQ(tracker.TotalCost(), total);
  }
  // All 10 tuples in one cluster: every QI column diverges -> 5 * 10.
  EXPECT_EQ(tracker.TotalCost(), 50u);
}

}  // namespace
}  // namespace diva
