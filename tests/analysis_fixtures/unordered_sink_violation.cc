// Analysis fixture: iteration order of a hash container leaking into
// observable output. Three distinct shapes must each fire once: a write
// sink in the loop body, an order-sensitive hash fold, and an append to
// a sequence that is never sorted in the enclosing function.
//
// expect: unordered-sink=3

#include "fixture_stubs.h"

void WriteRow(const std::string& row);
void HashCombine(unsigned long long* state, int value);

void EmitAll(const std::unordered_map<int, std::string>& table) {
  for (const auto& [key, value] : table) {
    WriteRow(value);
  }
}

unsigned long long Fingerprint(const std::unordered_map<int, int>& table) {
  unsigned long long state = 0;
  for (const auto& [key, value] : table) {
    HashCombine(&state, value);
  }
  return state;
}

std::vector<int> Keys(const std::unordered_map<int, int>& table) {
  std::vector<int> keys;
  for (const auto& [key, value] : table) {
    keys.push_back(key);
  }
  return keys;
}
