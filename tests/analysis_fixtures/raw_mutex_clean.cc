// Analysis fixture: locking through the sanctioned diva::Mutex wrapper,
// plus near-miss spellings that must not trip the lexical ban —
// std::mutex in a comment, in a string literal, and as a suffix of a
// longer qualifier.
//
// expect: raw-mutex=0

namespace diva {
class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu);
};
}  // namespace diva

namespace xstd {
class mutex {};
}  // namespace xstd

struct SharedState {
  diva::Mutex mu;  // not a std::mutex: wrapper type is allowed
  int value = 0;
};

const char* Doc() {
  return "std::mutex only appears inside this string literal";
}

void Touch(SharedState* state);
