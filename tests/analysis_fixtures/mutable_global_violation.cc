// Analysis fixture: mutable namespace-scope state with no
// GUARDED_BY / constinit justification — a plain int, a static flag,
// and a default-constructed container each fire once.
//
// expect: mutable-global=3

#include "fixture_stubs.h"

namespace demo {

int g_counter = 0;

static bool g_enabled;

std::vector<int> g_cache;

}  // namespace demo
