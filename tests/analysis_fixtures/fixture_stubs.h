#ifndef DIVA_TESTS_ANALYSIS_FIXTURES_FIXTURE_STUBS_H_
#define DIVA_TESTS_ANALYSIS_FIXTURES_FIXTURE_STUBS_H_

// Minimal hermetic stand-ins for the std types the analysis fixtures
// mention. The fixtures must parse under the libclang engine without
// system headers (CI runs the analyzer with a pip-installed libclang
// whose resource dir need not match the host toolchain), and the
// canonical type spellings must still read `std::unordered_map<...>` /
// `std::unordered_set<...>` so the semantic checks resolve them.
//
// Nothing here is ever compiled by the build; fixtures are analyzer
// input only.

namespace std {

using size_t = decltype(sizeof(0));

template <typename A, typename B>
struct pair {
  A first;
  B second;
};

class string {
 public:
  string();
  string(const char* s);
};

template <typename T>
class vector {
 public:
  void push_back(const T& value);
  void emplace_back(const T& value);
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  size_t size() const;
};

template <typename K, typename V>
class unordered_map {
 public:
  using value_type = pair<const K, V>;
  value_type* begin();
  value_type* end();
  const value_type* begin() const;
  const value_type* end() const;
  V& operator[](const K& key);
  const V& at(const K& key) const;
  size_t size() const;
};

template <typename K>
class unordered_set {
 public:
  const K* begin() const;
  const K* end() const;
  void insert(const K& key);
  size_t size() const;
};

template <typename It>
void sort(It first, It last);
template <typename It, typename Cmp>
void sort(It first, It last, Cmp cmp);

template <typename T>
struct less {
  bool operator()(const T& a, const T& b) const;
};

class mutex {
 public:
  void lock();
  void unlock();
};

template <typename M>
class lock_guard {
 public:
  explicit lock_guard(M& m);
};

// analyze: allow-raw-random — stub declaration, not a use
class random_device {
 public:
  unsigned operator()();
};

}  // namespace std

#endif  // DIVA_TESTS_ANALYSIS_FIXTURES_FIXTURE_STUBS_H_
