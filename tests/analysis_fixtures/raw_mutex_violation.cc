// Analysis fixture: raw standard-library locking primitives. The field
// declaration fires once; the lock_guard line fires twice (lock_guard
// itself plus its std::mutex template argument).
//
// expect: raw-mutex=3

#include "fixture_stubs.h"

struct SharedState {
  std::mutex mu;
  int value = 0;
};

int Read(SharedState* state) {
  std::lock_guard<std::mutex> lock(state->mu);
  return state->value;
}
