// Analysis fixture: nondeterministic randomness sources — rand(),
// srand(), and std::random_device each fire once.
//
// expect: raw-random=3

int NextToken() {
  return rand();
}

void Reseed(unsigned seed) {
  srand(seed);
}

unsigned HardwareDraw() {
  std::random_device device;
  return device();
}
