// Analysis fixture: the escape hatch. Every check fires exactly once in
// this file and every finding carries an `analyze: allow-<check>` tag on
// the flagged line or the line above, so the analyzer must exit 0 with
// five suppressed findings.
//
// expect: unordered-sink=0 pointer-order=0 raw-mutex=0 raw-random=0 mutable-global=0
// expect-suppressed: unordered-sink=1 pointer-order=1 raw-mutex=1 raw-random=1 mutable-global=1

#include "fixture_stubs.h"

namespace fixture {

int g_mode = 0;  // analyze: allow-mutable-global — toggled only in single-threaded test setup

struct LegacyGuard {
  // analyze: allow-raw-mutex — exercises the suppression path only
  std::mutex mu;
};

unsigned long long HashMix(unsigned long long state, int value);

inline unsigned long long FingerprintAll(
    const std::unordered_map<int, int>& table) {
  unsigned long long state = 0;
  for (const auto& [key, value] : table) {
    // analyze: allow-unordered-sink — commutative mix, order-insensitive
    state = HashMix(state, value);
  }
  return state;
}

inline bool SameArenaOrder(const int* a, const int* b) {
  // analyze: allow-pointer-order — arena membership probe in a test helper
  return a < b;
}

inline int LegacyRoll() {
  return rand();  // analyze: allow-raw-random — suppression-path fixture only
}

}  // namespace fixture
