// Analysis fixture: namespace-scope declarations that are justified or
// out of scope for the mutable-global check — compile-time constants,
// constinit, function declarations, and class members.
//
// expect: mutable-global=0

namespace demo {

constexpr int kLimit = 64;

constinit int g_epoch = 0;

inline const double kScale = 1.5;

static const unsigned kMask = 0xffu;

int Helper(int x);

static int CountHelper();

struct Widget {
  int count = 0;
};

}  // namespace demo
