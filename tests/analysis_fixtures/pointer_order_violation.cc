// Analysis fixture: ordering on raw pointer values — a direct relational
// comparison and a std::less instantiation over a pointer type. Both
// depend on allocation addresses, which vary run to run.
//
// expect: pointer-order=2

#include "fixture_stubs.h"

struct Node {
  int id;
};

bool Before(const Node* a, const Node* b) {
  return a < b;
}

void SortByAddress(std::vector<Node*>* nodes) {
  std::sort(nodes->begin(), nodes->end(), std::less<Node*>());
}
