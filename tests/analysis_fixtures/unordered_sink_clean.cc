// Analysis fixture: the blessed idioms around unordered containers —
// copy keys out, sort, iterate the sorted copy; or reduce
// order-insensitively. None of these may fire.
//
// expect: unordered-sink=0

#include "fixture_stubs.h"

void WriteRow(const std::string& row);

void EmitSorted(const std::unordered_map<int, std::string>& table) {
  std::vector<int> keys;
  for (const auto& [key, value] : table) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (int key : keys) {
    WriteRow(table.at(key));
  }
}

int Sum(const std::unordered_map<int, int>& table) {
  int total = 0;
  for (const auto& [key, value] : table) {
    total += value;
  }
  return total;
}

int MaxId(const std::unordered_set<int>& ids) {
  int best = -1;
  for (int id : ids) {
    if (id > best) best = id;
  }
  return best;
}
