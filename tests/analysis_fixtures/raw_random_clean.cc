// Analysis fixture: seeded randomness through diva::Rng, plus
// identifiers that merely contain the banned substrings — Strand(),
// Operand(), a parameter named brand — none of which may fire.
// std::random_device in this comment must not fire either.
//
// expect: raw-random=0

namespace diva {
class Rng;
}

unsigned long long NextDraw(diva::Rng& rng);

int Strand() {
  return 0;
}

int Operand(int brand) {
  return brand + Strand();
}
