// Analysis fixture: deterministic comparisons involving pointers —
// ordering on pointed-to ids and pointer equality are both fine; only
// relational comparison of the pointer values themselves is banned.
//
// expect: pointer-order=0

struct Node {
  int id;
};

bool Before(const Node* a, const Node* b) {
  return a->id < b->id;
}

bool SameObject(const Node* a, const Node* b) {
  return a == b;
}
