#!/usr/bin/env python3
"""Asserts tools/diva_analyze.py behaves exactly as specified on the
analysis fixtures.

Every fixture .cc file declares its expected outcome inline:

    // expect: <check>=<count> [<check>=<count> ...]
    // expect-suppressed: <check>=<count> ...

Unlisted checks are expected to produce zero findings, so a clean
fixture asserts the absence of false positives just as strictly as a
violation fixture asserts detection. The expected exit code is derived:
1 when any active finding is expected, else 0 (the suppression fixture
must exit 0 despite five findings).

Each fixture runs under the lexical fallback engine and under --engine
auto; with the clang python bindings installed (CI) auto resolves to the
libclang AST engine, so the same expectations pin both engines to
identical behavior.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

FIXTURE_DIR = Path(__file__).resolve().parent
REPO_ROOT = FIXTURE_DIR.parents[1]
ANALYZER = REPO_ROOT / "tools" / "diva_analyze.py"

CHECKS = (
    "unordered-sink",
    "pointer-order",
    "raw-mutex",
    "raw-random",
    "mutable-global",
)

EXPECT_RE = re.compile(r"^\s*//\s*expect(-suppressed)?:\s*(.*)$")


def read_expectations(path: Path) -> tuple[dict[str, int], dict[str, int]]:
    active = {check: 0 for check in CHECKS}
    suppressed = {check: 0 for check in CHECKS}
    tagged = False
    for line in path.read_text().splitlines():
        match = EXPECT_RE.match(line)
        if not match:
            continue
        tagged = True
        bucket = suppressed if match.group(1) else active
        for check, count in re.findall(r"([\w-]+)=(\d+)", match.group(2)):
            if check not in bucket:
                raise ValueError(f"{path.name}: unknown check in expect: {check}")
            bucket[check] = int(count)
    if not tagged:
        raise ValueError(f"{path.name}: fixture has no // expect: line")
    return active, suppressed


def count_by_check(findings: list[dict]) -> dict[str, int]:
    counts = {check: 0 for check in CHECKS}
    for finding in findings:
        counts[finding["check"]] += 1
    return counts


def run_fixture(path: Path, engine: str) -> list[str]:
    """Returns a list of failure messages (empty = pass)."""
    expected_active, expected_suppressed = read_expectations(path)
    expected_exit = 1 if sum(expected_active.values()) else 0

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        report_path = Path(tmp.name)
    try:
        proc = subprocess.run(
            [
                sys.executable,
                str(ANALYZER),
                "--engine",
                engine,
                "--path-role",
                "src",
                "--json",
                str(report_path),
                str(path),
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        failures = []
        if proc.returncode != expected_exit:
            failures.append(
                f"exit code {proc.returncode}, expected {expected_exit}\n"
                f"  stdout: {proc.stdout.strip()}\n"
                f"  stderr: {proc.stderr.strip()}"
            )
        if proc.returncode == 2 or not report_path.read_text().strip():
            return failures or [f"no JSON report written (exit {proc.returncode})"]
        report = json.loads(report_path.read_text())
        actual_active = count_by_check(report["findings"])
        actual_suppressed = count_by_check(report["suppressed"])
        for check in CHECKS:
            if actual_active[check] != expected_active[check]:
                failures.append(
                    f"check {check}: {actual_active[check]} active finding(s), "
                    f"expected {expected_active[check]}"
                )
            if actual_suppressed[check] != expected_suppressed[check]:
                failures.append(
                    f"check {check}: {actual_suppressed[check]} suppressed, "
                    f"expected {expected_suppressed[check]}"
                )
        if engine == "fallback" and report["engine"] != "fallback":
            failures.append(f"engine {report['engine']}, expected fallback")
        return failures
    finally:
        report_path.unlink(missing_ok=True)


def main() -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.cc"))
    if not fixtures:
        print("fixture_test: no fixtures found", file=sys.stderr)
        return 2

    engines = ["fallback", "auto"]
    total = 0
    failed = 0
    suppression_exercised = False
    for engine in engines:
        for fixture in fixtures:
            total += 1
            failures = run_fixture(fixture, engine)
            label = f"{fixture.name} [{engine}]"
            if failures:
                failed += 1
                print(f"FAIL {label}")
                for failure in failures:
                    print(f"  {failure}")
            else:
                print(f"PASS {label}")
            _, expected_suppressed = read_expectations(fixture)
            if sum(expected_suppressed.values()):
                suppression_exercised = True

    if not suppression_exercised:
        print("FAIL no fixture exercises the allow-comment suppression path")
        failed += 1

    print(f"fixture_test: {total - failed}/{total} passed")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
