// anonymize_cli — command-line (k, Sigma)-anonymization tool.
//
// Reads a CSV relation, a schema declaration, and a diversity-constraint
// file; runs DIVA (or one of the baseline k-anonymizers) and writes the
// anonymized CSV plus a quality report.
//
// Usage:
//   anonymize_cli --input data.csv --schema schema.txt --k 10
//       [--constraints sigma.txt] [--algorithm diva|kmember|oka|mondrian]
//       [--strategy basic|minchoice|maxfanout] [--seed N] [--shard on|off]
//       [--taxonomy ATTR=taxonomy.txt]... [--json]
//       [--strict] [--deadline-ms N] [--trace-out trace.json]
//       [--apply-delta delta.txt] [--output out.csv]
//
// --apply-delta FILE (DIVA only) re-anonymizes incrementally: the run on
// --input captures a reusable snapshot, FILE's row delta is applied to
// it, and only the conflict-graph components the delta touches are
// re-colored — clean components adopt the prior run's clusterings. The
// published output is byte-identical to a cold run on the post-delta
// relation (core/incremental.h). Delta file format: one directive per
// line — "- <row_id>" deletes a row of the input CSV (0-based),
// "+ v1,v2,..." inserts a row ("*" = suppressed cell); '#' comments and
// blank lines are ignored.
//
// --shard on|off (default on) selects how multi-component instances
// execute: on runs each conflict-graph component as a concurrent work
// item, off runs the identical per-component searches sequentially.
// Like DIVA_THREADS this is an execution knob — output bytes never
// change (see docs/development.md, "Component sharding").
//
// --deadline-ms N bounds the run's wall time: on expiry DIVA publishes
// its best-effort (still k-anonymous) relation and flags the degraded
// phases in the report; with --strict expiry is an error. Equivalent to
// the DIVA_DEADLINE_MS environment knob, which it overrides.
//
// --trace-out FILE enables span tracing for the run and writes a
// Chrome-trace JSON (open in ui.perfetto.dev or chrome://tracing) with
// one span per pipeline phase and per pool chunk; see "Observability"
// in docs/development.md. A traced DIVA run also turns on the self-audit
// so the trace covers all five phases (clustering, suppress, anonymize,
// integrate, audit). Without the flag, tracing stays off and costs one
// relaxed atomic load per span site.
//
// Schema file: one attribute per line, "NAME,role,kind" where role is
// id|qi|sensitive and kind is cat|num. Example:
//   GEN,qi,cat
//   AGE,qi,num
//   DIAG,sensitive,cat
//
// Constraint file: one constraint per line, e.g. "ETH[Asian] in [2,5]"
// ('#' comments allowed).

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "anon/anonymizer.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "constraint/analysis.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "core/incremental.h"
#include "core/report_json.h"
#include "hierarchy/generalize.h"
#include "examples/example_util.h"
#include "metrics/metrics.h"
#include "relation/csv.h"
#include "relation/qi_groups.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

Result<std::shared_ptr<const Schema>> LoadSchema(const std::string& path) {
  std::ifstream input(path);
  if (!input) return Status::IoError("cannot open schema file: " + path);
  std::vector<Attribute> attributes;
  std::string line;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto parts = Split(trimmed, ',');
    if (parts.size() != 3) {
      return Status::InvalidArgument(
          "schema line " + std::to_string(line_number) +
          ": expected NAME,role,kind");
    }
    Attribute attribute;
    attribute.name = std::string(Trim(parts[0]));
    std::string role = ToLowerAscii(Trim(parts[1]));
    std::string kind = ToLowerAscii(Trim(parts[2]));
    if (role == "id" || role == "identifier") {
      attribute.role = AttributeRole::kIdentifier;
    } else if (role == "qi" || role == "quasi-identifier") {
      attribute.role = AttributeRole::kQuasiIdentifier;
    } else if (role == "sensitive") {
      attribute.role = AttributeRole::kSensitive;
    } else {
      return Status::InvalidArgument("unknown role '" + role + "' on line " +
                                     std::to_string(line_number));
    }
    if (kind == "num" || kind == "numeric") {
      attribute.kind = AttributeKind::kNumeric;
    } else if (kind == "cat" || kind == "categorical") {
      attribute.kind = AttributeKind::kCategorical;
    } else {
      return Status::InvalidArgument("unknown kind '" + kind + "' on line " +
                                     std::to_string(line_number));
    }
    attributes.push_back(std::move(attribute));
  }
  return Schema::Make(std::move(attributes));
}

}  // namespace

int main(int argc, char** argv) {
  // ^C degrades the run through the anytime pipeline and still flushes
  // the partial report; a dead pager/pipe is a write error, not SIGPIPE.
  InstallSignalHygiene();
  std::map<std::string, std::string> args;
  std::vector<std::string> taxonomy_specs;  // repeated ATTR=path pairs
  bool strict = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--json") {
      args["json"] = "1";
    } else if (arg == "--taxonomy" && i + 1 < argc) {
      taxonomy_specs.emplace_back(argv[++i]);
    } else if (StartsWith(arg, "--") &&
               arg.find('=') != std::string::npos) {
      // --key=value form (e.g. --trace-out=t.json).
      size_t eq = arg.find('=');
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (StartsWith(arg, "--") && i + 1 < argc) {
      args[arg.substr(2)] = argv[++i];
    } else {
      return Fail("unexpected argument '" + arg + "' (see file header)");
    }
  }
  if (!args.count("input") || !args.count("schema") || !args.count("k")) {
    return Fail("--input, --schema and --k are required (see file header)");
  }

  auto schema = LoadSchema(args["schema"]);
  if (!schema.ok()) return Fail(schema.status().ToString());

  auto relation = ReadCsvFile(args["input"], *schema);
  if (!relation.ok()) return Fail(relation.status().ToString());

  auto k = ParseInt64(args["k"]);
  if (!k.ok() || *k < 1) return Fail("--k must be a positive integer");

  ConstraintSet constraints;
  if (args.count("constraints")) {
    auto loaded = LoadConstraintSet(**schema, args["constraints"]);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    constraints = std::move(loaded).value();
  }

  uint64_t seed = 42;
  if (args.count("seed")) {
    auto parsed = ParseInt64(args["seed"]);
    if (!parsed.ok()) return Fail("--seed must be an integer");
    seed = static_cast<uint64_t>(*parsed);
  }

  // Optional per-attribute taxonomies (LCA generalization instead of *).
  std::shared_ptr<GeneralizationContext> generalization;
  if (!taxonomy_specs.empty()) {
    generalization =
        std::make_shared<GeneralizationContext>((*schema)->NumAttributes());
    for (const std::string& spec : taxonomy_specs) {
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return Fail("--taxonomy expects ATTR=path, got '" + spec + "'");
      }
      auto attr = (*schema)->IndexOf(spec.substr(0, eq));
      if (!attr.has_value()) {
        return Fail("--taxonomy references unknown attribute '" +
                    spec.substr(0, eq) + "'");
      }
      std::ifstream taxonomy_file(spec.substr(eq + 1));
      if (!taxonomy_file) {
        return Fail("cannot open taxonomy file '" + spec.substr(eq + 1) +
                    "'");
      }
      std::ostringstream buffer;
      buffer << taxonomy_file.rdbuf();
      auto taxonomy = Taxonomy::FromText(buffer.str());
      if (!taxonomy.ok()) return Fail(taxonomy.status().ToString());
      generalization->SetTaxonomy(*attr, std::move(taxonomy).value());
    }
  }

  // Pre-flight lint: warn about constraints no algorithm can satisfy.
  for (const ConstraintIssue& issue :
       AnalyzeConstraintSet(*relation, constraints,
                            static_cast<size_t>(*k))) {
    std::fprintf(stderr, "warning [%s]: %s\n",
                 ConstraintIssueKindToString(issue.kind),
                 issue.message.c_str());
  }

  std::string algorithm =
      args.count("algorithm") ? ToLowerAscii(args["algorithm"]) : "diva";

  const bool tracing = args.count("trace-out") != 0;
  if (tracing) trace::Enable();

  Relation output((*schema));
  if (algorithm == "diva") {
    DivaOptions options;
    options.k = static_cast<size_t>(*k);
    options.seed = seed;
    options.strict = strict;
    options.generalization = generalization;
    options.cancel = InterruptToken();
    // A traced run audits too, so the trace shows every pipeline phase.
    if (tracing) options.audit = true;
    if (args.count("shard")) {
      std::string shard = ToLowerAscii(args["shard"]);
      if (shard == "on" || shard == "1" || shard == "true") {
        options.shard = true;
      } else if (shard == "off" || shard == "0" || shard == "false") {
        options.shard = false;
      } else {
        return Fail("--shard must be on or off");
      }
    }
    if (args.count("deadline-ms")) {
      auto deadline_ms = ParseInt64(args["deadline-ms"]);
      if (!deadline_ms.ok() || *deadline_ms < 0) {
        return Fail("--deadline-ms must be a non-negative integer");
      }
      options.deadline_ms = *deadline_ms;
    }
    std::string strategy =
        args.count("strategy") ? ToLowerAscii(args["strategy"]) : "maxfanout";
    if (strategy == "basic") {
      options.strategy = SelectionStrategy::kBasic;
    } else if (strategy == "minchoice") {
      options.strategy = SelectionStrategy::kMinChoice;
    } else if (strategy == "maxfanout") {
      options.strategy = SelectionStrategy::kMaxFanOut;
    } else {
      return Fail("unknown --strategy '" + strategy + "'");
    }
    options.incremental = args.count("apply-delta") != 0;
    auto result = RunDiva(*relation, constraints, options);
    if (!result.ok()) return Fail(result.status().ToString());
    if (args.count("apply-delta")) {
      std::ifstream delta_file(args["apply-delta"]);
      if (!delta_file) {
        return Fail("cannot open delta file '" + args["apply-delta"] + "'");
      }
      std::ostringstream delta_text;
      delta_text << delta_file.rdbuf();
      auto delta = ParseDeltaFile(delta_text.str());
      if (!delta.ok()) return Fail(delta.status().ToString());
      if (result->snapshot == nullptr) {
        return Fail(
            "the prior run captured no reusable snapshot (single-component, "
            "generalized, or degraded runs cannot replay deltas)");
      }
      auto replayed = ApplyDelta(*result->snapshot, *delta, options);
      if (!replayed.ok()) return Fail(replayed.status().ToString());
      std::fprintf(stderr, "applied delta: -%zu +%zu rows\n",
                   delta->deleted.size(), delta->inserted.size());
      result = std::move(replayed);
    }
    if (args.count("json")) {
      std::printf("%s\n", ReportToJson(result->report).c_str());
    } else {
      PrintReport(result->report);
    }
    output = std::move(result->relation);
  } else {
    AnonymizerOptions anon_options;
    anon_options.seed = seed;
    std::unique_ptr<Anonymizer> anonymizer;
    if (algorithm == "kmember") {
      anonymizer = MakeKMember(anon_options);
    } else if (algorithm == "oka") {
      anonymizer = MakeOka(anon_options);
    } else if (algorithm == "mondrian") {
      anonymizer = MakeMondrian(anon_options);
    } else {
      return Fail("unknown --algorithm '" + algorithm + "'");
    }
    auto result =
        Anonymize(anonymizer.get(), *relation, static_cast<size_t>(*k));
    if (!result.ok()) return Fail(result.status().ToString());
    output = std::move(result).value();
  }

  if (tracing) {
    trace::Disable();
    Status written = trace::WriteChromeTrace(args["trace-out"]);
    if (!written.ok()) return Fail(written.ToString());
    std::fprintf(stderr, "wrote trace %s (%llu event(s) dropped)\n",
                 args["trace-out"].c_str(),
                 static_cast<unsigned long long>(trace::DroppedEvents()));
  }

  if (!IsKAnonymous(output, static_cast<size_t>(*k))) {
    return Fail("internal: output is not k-anonymous");
  }
  if (Interrupted()) {
    std::fprintf(stderr,
                 "interrupted: flushing the best-effort (still k-anonymous) "
                 "result\n");
  }
  PrintQuality(output, static_cast<size_t>(*k), constraints);

  if (args.count("output")) {
    Status written = WriteCsvFile(output, args["output"]);
    if (!written.ok()) return Fail(written.ToString());
    std::printf("wrote %s\n", args["output"].c_str());
  } else {
    std::ostringstream buffer;
    DIVA_CHECK(WriteCsv(output, buffer).ok());
    std::fputs(buffer.str().c_str(), stdout);
  }
  return 0;
}
