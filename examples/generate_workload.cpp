// generate_workload — emits a ready-to-use workload for anonymize_cli:
// a CSV relation from one of the dataset profiles, its schema
// declaration, and a generated diversity-constraint file.
//
// Usage:
//   generate_workload [--profile pantheon|census|credit|popsyn]
//       [--rows N] [--constraints N] [--seed N] [--prefix PATH]
//
// Writes <prefix>_data.csv, <prefix>_schema.txt, <prefix>_sigma.txt
// (default prefix "workload"), then prints the anonymize_cli invocation
// that consumes them.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "common/string_util.h"
#include "constraint/generator.h"
#include "datagen/profiles.h"
#include "relation/csv.h"

namespace {

using namespace diva;  // NOLINT: example brevity

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

const char* RoleToken(AttributeRole role) {
  switch (role) {
    case AttributeRole::kIdentifier:
      return "id";
    case AttributeRole::kQuasiIdentifier:
      return "qi";
    case AttributeRole::kSensitive:
      return "sensitive";
  }
  return "qi";
}

const char* KindToken(AttributeKind kind) {
  return kind == AttributeKind::kNumeric ? "num" : "cat";
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) return Fail("unexpected argument " + arg);
    args[arg.substr(2)] = argv[i + 1];
  }

  DatasetProfile profile = DatasetProfile::kPopSyn;
  if (args.count("profile")) {
    std::string name = ToLowerAscii(args["profile"]);
    if (name == "pantheon") {
      profile = DatasetProfile::kPantheon;
    } else if (name == "census") {
      profile = DatasetProfile::kCensus;
    } else if (name == "credit") {
      profile = DatasetProfile::kCredit;
    } else if (name == "popsyn" || name == "pop-syn") {
      profile = DatasetProfile::kPopSyn;
    } else {
      return Fail("unknown profile '" + name + "'");
    }
  }

  ProfileOptions options;
  options.seed = 42;
  if (args.count("seed")) {
    auto seed = ParseInt64(args["seed"]);
    if (!seed.ok()) return Fail("--seed must be an integer");
    options.seed = static_cast<uint64_t>(*seed);
  }
  if (args.count("rows")) {
    auto rows = ParseInt64(args["rows"]);
    if (!rows.ok() || *rows < 1) return Fail("--rows must be positive");
    options.num_rows = static_cast<size_t>(*rows);
  }

  auto relation = GenerateProfile(profile, options);
  if (!relation.ok()) return Fail(relation.status().ToString());

  ConstraintGenOptions gen;
  gen.count = DefaultConstraintCount(profile);
  if (args.count("constraints")) {
    auto count = ParseInt64(args["constraints"]);
    if (!count.ok() || *count < 0) return Fail("--constraints must be >= 0");
    gen.count = static_cast<size_t>(*count);
  }
  gen.min_support = 8;
  gen.seed = options.seed;
  auto constraints = GenerateConstraints(*relation, gen);
  if (!constraints.ok()) return Fail(constraints.status().ToString());

  std::string prefix = args.count("prefix") ? args["prefix"] : "workload";

  std::string data_path = prefix + "_data.csv";
  Status written = WriteCsvFile(*relation, data_path);
  if (!written.ok()) return Fail(written.ToString());

  std::string schema_path = prefix + "_schema.txt";
  {
    std::ofstream schema_out(schema_path, std::ios::trunc);
    if (!schema_out) return Fail("cannot write " + schema_path);
    for (const Attribute& attr : relation->schema().attributes()) {
      schema_out << attr.name << "," << RoleToken(attr.role) << ","
                 << KindToken(attr.kind) << "\n";
    }
  }

  std::string sigma_path = prefix + "_sigma.txt";
  {
    std::ofstream sigma_out(sigma_path, std::ios::trunc);
    if (!sigma_out) return Fail("cannot write " + sigma_path);
    sigma_out << "# " << DatasetProfileToString(profile)
              << " profile, seed " << options.seed << "\n";
    for (const auto& constraint : *constraints) {
      sigma_out << constraint.ToString() << "\n";
    }
  }

  std::printf("wrote %s (%zu rows), %s (%zu attributes), %s (%zu constraints)\n",
              data_path.c_str(), relation->NumRows(), schema_path.c_str(),
              relation->NumAttributes(), sigma_path.c_str(),
              constraints->size());
  std::printf("\ntry:\n  anonymize_cli --input %s --schema %s \\\n"
              "      --constraints %s --k 10 --output %s_anon.csv\n",
              data_path.c_str(), schema_path.c_str(), sigma_path.c_str(),
              prefix.c_str());
  return 0;
}
