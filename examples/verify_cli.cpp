// verify_cli — audits a published CSV against privacy and diversity
// requirements: k-anonymity, optional distinct l-diversity and
// t-closeness, and a diversity-constraint file. Prints a report and
// exits non-zero when any requested property fails — the receiving
// party's side of the (k, Sigma)-anonymization contract.
//
// With --original the full output auditor (verify/auditor.h) also
// re-checks the suppression-only containment R ⊑ R* and the ★
// bookkeeping against the pre-anonymization relation.
//
// Usage:
//   verify_cli --input anonymized.csv --schema schema.txt --k 10
//       [--l 3] [--t 0.4] [--constraints sigma.txt]
//       [--original raw.csv] [--expected-stars N] [--threads N]
//       [--deadline-ms N] [--trace-out trace.json]
//   verify_cli --list-failpoints
//
// --list-failpoints prints every fault-injection site compiled into the
// library (one per line) and exits — the names DIVA_FAILPOINTS accepts.
//
// --trace-out FILE enables span tracing for the verification run and
// writes Chrome-trace JSON (audit sub-checks, pool chunks); open in
// ui.perfetto.dev.
//
// --threads N sets the verification pool width (0 = one per hardware
// core); it overrides DIVA_THREADS and never changes any verdict, only
// how fast the scans run.
//
// --deadline-ms N bounds the total wall time. The deadline is polled
// between checks; every check that ran reports normally, the rest are
// skipped, and the process exits 3 ("verification incomplete") — never
// a false PASS or FAIL for a check that did not run. Overrides the
// DIVA_DEADLINE_MS environment knob.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "anon/privacy.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "constraint/parser.h"
#include "examples/example_util.h"
#include "metrics/metrics.h"
#include "relation/csv.h"
#include "relation/qi_groups.h"
#include "relation/schema.h"
#include "verify/auditor.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

// Same schema file format as anonymize_cli.
Result<std::shared_ptr<const Schema>> LoadSchemaFile(const std::string& path);

}  // namespace

int main(int argc, char** argv) {
  // ^C mid-verification skips remaining checks and exits 3 (incomplete)
  // with everything already checked flushed; a dead pager is a write
  // error, not SIGPIPE.
  InstallSignalHygiene();
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-failpoints") {
      // The live fault-injection site table, for composing
      // DIVA_FAILPOINTS specs (misspelled sites are rejected at parse).
      for (const std::string& name : failpoint::KnownFailpoints()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (!StartsWith(arg, "--")) return Fail("unexpected argument " + arg);
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      // --key=value form (e.g. --trace-out=t.json).
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc) {
      args[arg.substr(2)] = argv[++i];
    } else {
      return Fail("missing value for argument " + arg);
    }
  }
  if (!args.count("input") || !args.count("schema") || !args.count("k")) {
    return Fail("--input, --schema and --k are required");
  }

  auto schema = LoadSchemaFile(args["schema"]);
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto relation = ReadCsvFile(args["input"], *schema);
  if (!relation.ok()) return Fail(relation.status().ToString());
  auto k = ParseInt64(args["k"]);
  if (!k.ok() || *k < 1) return Fail("--k must be a positive integer");

  if (args.count("threads")) {
    auto threads = ParseInt64(args["threads"]);
    if (!threads.ok() || *threads < 0) {
      return Fail("--threads must be a non-negative integer");
    }
    SetParallelThreads(static_cast<size_t>(*threads));
  } else {
    SetParallelThreads(EnvThreads());
  }

  int64_t deadline_ms = EnvDeadlineMillis();
  if (args.count("deadline-ms")) {
    auto parsed = ParseInt64(args["deadline-ms"]);
    if (!parsed.ok() || *parsed < 0) {
      return Fail("--deadline-ms must be a non-negative integer");
    }
    deadline_ms = *parsed;
  }
  Deadline deadline = deadline_ms > 0 ? Deadline::AfterMillis(deadline_ms)
                                      : Deadline::Infinite();
  // Polled between checks: a check either runs to completion and reports
  // its true verdict, or is skipped entirely. Exit 3 = incomplete.
  bool incomplete = false;
  auto out_of_time = [&]() {
    const bool interrupted = Interrupted();
    if (!deadline.Expired() && !interrupted) return false;
    if (!incomplete) {
      std::printf("%s: remaining checks skipped\n",
                  interrupted ? "interrupted" : "deadline exceeded");
    }
    incomplete = true;
    return true;
  };

  const bool tracing = args.count("trace-out") != 0;
  if (tracing) trace::Enable();

  bool all_ok = true;

  bool k_anonymous = IsKAnonymous(*relation, static_cast<size_t>(*k));
  std::printf("%-28s %s\n", ("k-anonymity (k=" + args["k"] + ")").c_str(),
              k_anonymous ? "PASS" : "FAIL");
  all_ok &= k_anonymous;

  if (args.count("l") && !out_of_time()) {
    auto l = ParseInt64(args["l"]);
    if (!l.ok() || *l < 1) return Fail("--l must be a positive integer");
    bool diverse = IsDistinctLDiverse(*relation, static_cast<size_t>(*l));
    std::printf("%-28s %s\n", ("l-diversity (l=" + args["l"] + ")").c_str(),
                diverse ? "PASS" : "FAIL");
    all_ok &= diverse;
  }

  if (args.count("t") && !out_of_time()) {
    auto t = ParseDouble(args["t"]);
    if (!t.ok() || *t < 0.0) return Fail("--t must be non-negative");
    double distance = TClosenessDistance(*relation);
    bool close = distance <= *t + 1e-12;
    std::printf("%-28s %s (measured t = %.4f)\n",
                ("t-closeness (t=" + args["t"] + ")").c_str(),
                close ? "PASS" : "FAIL", distance);
    all_ok &= close;
  }

  ConstraintSet sigma;
  if (args.count("constraints") && !out_of_time()) {
    auto constraints = LoadConstraintSet(**schema, args["constraints"]);
    if (!constraints.ok()) return Fail(constraints.status().ToString());
    sigma = *constraints;
    auto violated = ViolatedConstraints(*relation, *constraints);
    std::printf("%-28s %s (%zu/%zu satisfied)\n", "diversity constraints",
                violated.empty() ? "PASS" : "FAIL",
                constraints->size() - violated.size(), constraints->size());
    for (size_t index : violated) {
      std::printf("    violated: %s (count %zu)\n",
                  (*constraints)[index].ToString().c_str(),
                  (*constraints)[index].CountOccurrences(*relation));
    }
    all_ok &= violated.empty();
  }

  if (args.count("original") && !out_of_time()) {
    auto original = ReadCsvFile(args["original"], *schema);
    if (!original.ok()) return Fail(original.status().ToString());
    AuditOptions audit_options;
    if (args.count("expected-stars")) {
      auto expected = ParseInt64(args["expected-stars"]);
      if (!expected.ok() || *expected < 0) {
        return Fail("--expected-stars must be a non-negative integer");
      }
      audit_options.expected_added_stars = static_cast<size_t>(*expected);
    }
    auto audit = AuditAnonymization(*original, *relation,
                                    static_cast<size_t>(*k), sigma,
                                    audit_options);
    if (!audit.ok()) return Fail(audit.status().ToString());
    std::printf("%-28s %s\n", "output audit",
                audit->ok() ? "PASS" : "FAIL");
    std::printf("%s\n", audit->ToString().c_str());
    all_ok &= audit->ok();
  }

  std::printf("%-28s %.1f%% of QI cells suppressed, disc. accuracy %.3f\n",
              "information loss", 100.0 * SuppressionRatio(*relation),
              DiscernibilityAccuracy(*relation, static_cast<size_t>(*k)));

  if (tracing) {
    trace::Disable();
    Status written = trace::WriteChromeTrace(args["trace-out"]);
    if (!written.ok()) return Fail(written.ToString());
    std::fprintf(stderr, "wrote trace %s\n", args["trace-out"].c_str());
  }

  // An incomplete verification must not look like a verdict: checks that
  // ran reported honestly, but the contract as a whole is unconfirmed.
  if (incomplete) return 3;
  return all_ok ? 0 : 1;
}

namespace {

Result<std::shared_ptr<const Schema>> LoadSchemaFile(
    const std::string& path) {
  std::ifstream input(path);
  if (!input) return Status::IoError("cannot open schema file: " + path);
  std::vector<Attribute> attributes;
  std::string line;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto parts = Split(trimmed, ',');
    if (parts.size() != 3) {
      return Status::InvalidArgument("schema line " +
                                     std::to_string(line_number) +
                                     ": expected NAME,role,kind");
    }
    Attribute attribute;
    attribute.name = std::string(Trim(parts[0]));
    std::string role = ToLowerAscii(Trim(parts[1]));
    std::string kind = ToLowerAscii(Trim(parts[2]));
    if (role == "id" || role == "identifier") {
      attribute.role = AttributeRole::kIdentifier;
    } else if (role == "qi" || role == "quasi-identifier") {
      attribute.role = AttributeRole::kQuasiIdentifier;
    } else if (role == "sensitive") {
      attribute.role = AttributeRole::kSensitive;
    } else {
      return Status::InvalidArgument("unknown role '" + role + "'");
    }
    attribute.kind = (kind == "num" || kind == "numeric")
                         ? AttributeKind::kNumeric
                         : AttributeKind::kCategorical;
    attributes.push_back(std::move(attribute));
  }
  return Schema::Make(std::move(attributes));
}

}  // namespace
