#ifndef DIVA_EXAMPLES_EXAMPLE_UTIL_H_
#define DIVA_EXAMPLES_EXAMPLE_UTIL_H_

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/diva.h"
#include "metrics/metrics.h"
#include "relation/relation.h"

namespace diva {
namespace examples {

/// ------------------------------------------------------------------
/// Signal hygiene shared by the CLIs and daemons.
///
/// SIGPIPE: a peer (pager, socket, downstream pipe) hanging up must
/// surface as a write error Status, not kill the process mid-report.
///
/// SIGINT: first ^C trips InterruptToken() — a manual CancellationToken
/// the tool threads through DivaOptions::cancel or polls between steps —
/// so the run degrades through the anytime path and the tool can still
/// flush whatever partial report it has. A second ^C falls back to the
/// default disposition (immediate kill) so a wedged tool stays killable.

/// The process-wide interrupt token (trips on the first SIGINT).
inline CancellationToken& InterruptToken() {
  static CancellationToken* token =
      new CancellationToken(CancellationToken::Manual());
  return *token;
}

/// True once SIGINT was received.
inline std::atomic<bool>& InterruptedFlag() {
  static std::atomic<bool> interrupted{false};
  return interrupted;
}

inline bool Interrupted() {
  return InterruptedFlag().load(std::memory_order_relaxed);
}

namespace internal {
/// Async-signal-safe: two relaxed atomic stores and a sigaction reset.
inline void HandleInterrupt(int) {
  InterruptedFlag().store(true, std::memory_order_relaxed);
  InterruptToken().RequestCancel();
  std::signal(SIGINT, SIG_DFL);  // second ^C kills for real
}
}  // namespace internal

/// Installs the handlers above. Call once at the top of main(); the
/// token and flag must be touched once beforehand so their lazy
/// construction never races the first signal.
inline void InstallSignalHygiene() {
  (void)InterruptToken();
  (void)Interrupted();
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, internal::HandleInterrupt);
}

/// Prints a relation as an aligned text table (up to `max_rows` rows).
inline void PrintRelation(const Relation& relation, size_t max_rows = 20) {
  size_t rows = std::min<size_t>(relation.NumRows(), max_rows);
  size_t cols = relation.NumAttributes();

  std::vector<size_t> widths(cols);
  for (size_t c = 0; c < cols; ++c) {
    widths[c] = relation.schema().attribute(c).name.size();
    for (RowId r = 0; r < rows; ++r) {
      widths[c] = std::max(widths[c], relation.ValueString(r, c).size());
    }
  }
  for (size_t c = 0; c < cols; ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]),
                relation.schema().attribute(c).name.c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < cols; ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (RowId r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]),
                  relation.ValueString(r, c).c_str());
    }
    std::printf("\n");
  }
  if (relation.NumRows() > rows) {
    std::printf("... (%zu more rows)\n", relation.NumRows() - rows);
  }
}

/// Prints a one-line summary of a DIVA run.
inline void PrintReport(const DivaReport& report) {
  std::printf(
      "constraints: %zu/%zu colored%s | steps %llu, backtracks %llu | "
      "|S_Sigma| = %zu rows | repair stars %zu | %.3fs total\n",
      report.colored_constraints, report.total_constraints,
      report.budget_exhausted ? " (budget exhausted)" : "",
      static_cast<unsigned long long>(report.coloring_steps),
      static_cast<unsigned long long>(report.backtracks), report.sigma_rows,
      report.repair_cells, report.total_seconds);
  if (report.deadline_exceeded) {
    std::printf(
        "deadline exceeded: best-effort output%s%s%s\n",
        report.baseline_degraded ? " | baseline fell back to Mondrian" : "",
        report.integrate_skipped ? " | integrate repair skipped" : "",
        report.privacy_truncated ? " | privacy merging truncated" : "");
  }
}

/// Prints the standard quality metrics of an anonymized relation.
inline void PrintQuality(const Relation& relation, size_t k,
                         const ConstraintSet& constraints) {
  std::printf(
      "stars: %zu (%.1f%% of QI cells) | discernibility accuracy %.3f | "
      "constraints satisfied %.0f%% | overall accuracy %.3f\n",
      CountStars(relation), 100.0 * SuppressionRatio(relation),
      DiscernibilityAccuracy(relation, k),
      100.0 * SatisfiedFraction(relation, constraints),
      OverallAccuracy(relation, k, constraints));
}

}  // namespace examples
}  // namespace diva

#endif  // DIVA_EXAMPLES_EXAMPLE_UTIL_H_
