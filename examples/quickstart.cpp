// Quickstart: the paper's running example end-to-end.
//
// Builds the 10-tuple medical relation of Table 1, anonymizes it with
// DIVA for k = 2 under the diversity constraints of Example 3.1, and
// prints the diverse 2-anonymous result (compare with the paper's
// Table 3). Also shows what a plain k-anonymizer loses.

#include <cstdio>

#include "anon/anonymizer.h"
#include "constraint/parser.h"
#include "core/diva.h"
#include "examples/example_util.h"
#include "relation/qi_groups.h"
#include "relation/relation.h"

namespace {

using namespace diva;           // NOLINT: example brevity
using namespace diva::examples; // NOLINT

Relation BuildTable1() {
  auto schema = Schema::Make({
      {"GEN", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"ETH", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"PRV", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"CTY", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK(schema.ok());
  auto relation = RelationFromRows(
      *schema,
      {
          {"Female", "Caucasian", "80", "AB", "Calgary", "Hypertension"},
          {"Female", "Caucasian", "32", "AB", "Calgary", "Tuberculosis"},
          {"Male", "Caucasian", "59", "AB", "Calgary", "Osteoarthritis"},
          {"Male", "Caucasian", "46", "MB", "Winnipeg", "Migraine"},
          {"Male", "African", "32", "MB", "Winnipeg", "Hypertension"},
          {"Male", "African", "43", "BC", "Vancouver", "Seizure"},
          {"Male", "Caucasian", "35", "BC", "Vancouver", "Hypertension"},
          {"Female", "Asian", "58", "BC", "Vancouver", "Seizure"},
          {"Female", "Asian", "63", "MB", "Winnipeg", "Influenza"},
          {"Female", "Asian", "71", "BC", "Vancouver", "Migraine"},
      });
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

}  // namespace

int main() {
  Relation table1 = BuildTable1();

  std::printf("=== Input: medical records (paper Table 1) ===\n");
  PrintRelation(table1);

  // Example 3.1's constraint set Sigma.
  auto constraints = ParseConstraintSet(table1.schema(),
                                        "ETH[Asian] in [2,5]\n"
                                        "ETH[African] in [1,3]\n"
                                        "CTY[Vancouver] in [2,4]\n");
  DIVA_CHECK(constraints.ok());
  std::printf("\n=== Diversity constraints ===\n");
  for (const auto& constraint : *constraints) {
    std::printf("  %s\n", constraint.ToString().c_str());
  }

  // Plain k-member anonymization for contrast (cf. the paper's Table 2).
  std::printf("\n=== Plain k-member anonymization (k = 3) ===\n");
  auto kmember = MakeKMember({});
  auto plain = Anonymize(kmember.get(), table1, 3);
  DIVA_CHECK(plain.ok());
  PrintRelation(*plain);
  PrintQuality(*plain, 3, *constraints);
  std::printf("note: a plain anonymizer offers no diversity guarantee —\n"
              "      characteristic values can vanish behind stars.\n");

  // DIVA (k = 2, as in Example 3.1 / Table 3).
  std::printf("\n=== DIVA (k = 2, MaxFanOut) ===\n");
  DivaOptions options;
  options.k = 2;
  options.strategy = SelectionStrategy::kMaxFanOut;
  auto result = RunDiva(table1, *constraints, options);
  DIVA_CHECK(result.ok());

  PrintRelation(result->relation);
  PrintReport(result->report);
  PrintQuality(result->relation, options.k, *constraints);

  DIVA_CHECK(IsKAnonymous(result->relation, options.k));
  DIVA_CHECK(SatisfiesAll(result->relation, *constraints));
  std::printf(
      "\nThe output is 2-anonymous AND satisfies every diversity "
      "constraint\n(compare with the paper's Table 3).\n");
  return 0;
}
