// diva_loadgen — replay driver for diva_serverd: a fleet of client
// workers fires anonymize/verify/fetch traffic at a server with jittered
// exponential backoff and a Finagle-style retry budget (common/
// backoff.h), then reports latency percentiles, shed/degraded rates and
// the crash-tolerance invariants as a bench_diff-compatible JSON report.
//
// Usage:
//   diva_loadgen [--scenario steady|overload|both] [--clients N]
//       [--requests N] [--rows N] [--k N] [--deadline-ms N] [--seed N]
//       [--sessions N] [--queue N] [--json out.json]
//       [--connect HOST:PORT]
//
// Scenarios (in-process server unless --connect):
//   steady    offered concurrency == session workers; nothing sheds.
//   overload  4x the server's admission capacity (sessions + queue) with
//             tight per-request deadlines; admission control sheds, the
//             backoff ladder spreads retries, the retry budget stops the
//             herd from amplifying, and every response that does come
//             back is still audited.
//   both      run steady then overload (the BENCH_serve.json shapes).
//
// The JSON report maps each scenario to flat metrics. Deterministic,
// CI-gated keys: requests, unaccounted (= requests that ended in no
// terminal outcome, always 0), leaked_inflight (server in-flight after
// Stop, always 0), unaudited_snapshots (always 0), protocol_errors.
// exec_-prefixed keys (shed counts, retries, budget denials) vary with
// scheduling and are never gated; *_ms / *_per_sec keys are timing.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "constraint/generator.h"
#include "datagen/profiles.h"
#include "examples/example_util.h"
#include "serve/client.h"
#include "serve/server.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

int Fail(const std::string& message) {
  std::fprintf(stderr, "diva_loadgen: error: %s\n", message.c_str());
  return 1;
}

/// Interruptible sleep (the codebase's one timed wait primitive).
void SleepMs(double ms) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  cv.WaitFor(lock, ms / 1e3);
}

/// Outcome counts of one worker; merged under a lock at the end.
struct WorkerTally {
  uint64_t ok = 0;
  uint64_t degraded = 0;
  uint64_t gave_up = 0;      // retries exhausted or budget denied
  uint64_t failed = 0;       // non-retryable error response
  uint64_t retries = 0;      // retry attempts actually sent
  uint64_t budget_denied = 0;
  uint64_t reconnects = 0;
  std::vector<double> latencies_ms;  // per successful logical request
  std::string first_error;           // first non-retryable error seen
};

struct ScenarioConfig {
  std::string name;
  size_t clients = 2;
  size_t requests_per_client = 20;  // logical requests per worker
  int64_t deadline_ms = -1;         // per-request deadline (-1 = none)
};

struct ScenarioResult {
  ScenarioConfig config;
  WorkerTally tally;              // merged across workers
  double wall_seconds = 0.0;
  serve::ServerStats server_stats;
  size_t leaked_inflight = 0;
  size_t unaudited_snapshots = 0;
  bool have_server_side = false;  // false when driving a remote server
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  index = std::min(index, values.size() - 1);
  return values[index];
}

/// One worker: `requests` logical anonymize requests, each retried on
/// kUnavailable through its own jittered Backoff ladder, all workers
/// sharing one RetryBudget. Every third request verifies the snapshot it
/// just published (the audit-replay path).
WorkerTally RunWorker(const std::string& host, int port, size_t worker,
                      const ScenarioConfig& config, uint64_t seed,
                      RetryBudget* budget) {
  WorkerTally tally;
  BackoffOptions backoff_options;
  backoff_options.initial_ms = 5.0;
  backoff_options.max_ms = 250.0;
  backoff_options.max_retries = 6;
  Backoff backoff(backoff_options, seed + 0x9e3779b9u * (worker + 1));

  auto client = serve::Client::Connect(host, port);
  for (size_t r = 0; r < config.requests_per_client; ++r) {
    serve::Request request;
    request.verb = "anonymize";
    request.params["k"] = "4";
    request.params["seed"] = std::to_string(seed + r);
    if (config.deadline_ms >= 0) {
      request.params["deadline_ms"] = std::to_string(config.deadline_ms);
    }
    budget->RecordCall();
    backoff.Reset();
    StopWatch watch;
    bool settled = false;
    while (!settled) {
      if (!client.ok() || !client->connected()) {
        client = serve::Client::Connect(host, port);
        if (client.ok()) ++tally.reconnects;
      }
      Result<serve::Response> response =
          client.ok() ? client->Call(request)
                      : Result<serve::Response>(client.status());
      const bool unavailable =
          response.ok()
              ? (!response->ok && response->code == StatusCode::kUnavailable)
              : response.status().code() == StatusCode::kUnavailable;
      if (response.ok() && response->ok) {
        ++tally.ok;
        tally.latencies_ms.push_back(watch.ElapsedMillis());
        if (response->Field("degraded", "0") == "1") ++tally.degraded;
        // Replay the audit over the wire for a third of the publishes.
        if (r % 3 == 0) {
          serve::Request verify;
          verify.verb = "verify";
          verify.params["snapshot"] = response->Field("snapshot", "0");
          (void)client->Call(verify);  // best-effort; counted server-side
        }
        settled = true;
      } else if (unavailable) {
        // Shed (or shed-by-close). Retry iff both the per-request ladder
        // and the shared budget allow it; otherwise the request is
        // dropped on the floor by design — load shedding worked.
        if (!response.ok() && client.ok()) {
          // Connection-level failure: drop the client so the next
          // attempt reconnects instead of reusing a dead socket.
          client = Result<serve::Client>(response.status());
        }
        std::optional<double> delay = backoff.NextDelayMs();
        if (!delay.has_value()) {
          ++tally.gave_up;
          settled = true;
        } else if (!budget->TryWithdrawRetry()) {
          ++tally.budget_denied;
          ++tally.gave_up;
          settled = true;
        } else {
          ++tally.retries;
          SleepMs(*delay);
        }
      } else {
        ++tally.failed;
        if (tally.first_error.empty()) {
          tally.first_error = response.ok() ? response->ToStatus().ToString()
                                            : response.status().ToString();
        }
        settled = true;
      }
    }
  }
  return tally;
}

ScenarioResult RunScenario(const ScenarioConfig& config,
                           const std::string& connect_host, int connect_port,
                           const Relation& base,
                           const ConstraintSet& constraints,
                           const serve::ServerOptions& server_options,
                           uint64_t seed) {
  ScenarioResult result;
  result.config = config;

  std::unique_ptr<serve::Server> server;
  std::string host = connect_host;
  int port = connect_port;
  if (host.empty()) {
    server = std::make_unique<serve::Server>(base, constraints,
                                             server_options);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "diva_loadgen: server start failed: %s\n",
                   started.ToString().c_str());
      return result;
    }
    host = server_options.host;
    port = server->port();
  }

  RetryBudget budget(/*deposit_per_call=*/0.25, /*initial_tokens=*/4.0,
                     /*max_tokens=*/32.0);
  Mutex merge_mutex;
  StopWatch watch;
  {
    TaskGroup workers(config.clients);
    std::vector<uint64_t> tickets;
    for (size_t w = 0; w < config.clients; ++w) {
      tickets.push_back(workers.Submit([&, w]() {
        WorkerTally tally = RunWorker(host, port, w, config, seed, &budget);
        MutexLock lock(merge_mutex);
        result.tally.ok += tally.ok;
        result.tally.degraded += tally.degraded;
        result.tally.gave_up += tally.gave_up;
        result.tally.failed += tally.failed;
        result.tally.retries += tally.retries;
        result.tally.budget_denied += tally.budget_denied;
        result.tally.reconnects += tally.reconnects;
        result.tally.latencies_ms.insert(result.tally.latencies_ms.end(),
                                         tally.latencies_ms.begin(),
                                         tally.latencies_ms.end());
        if (result.tally.first_error.empty()) {
          result.tally.first_error = tally.first_error;
        }
      }));
    }
    for (uint64_t ticket : tickets) workers.Wait(ticket);
  }
  result.wall_seconds = watch.ElapsedSeconds();

  if (server) {
    server->Stop();
    result.server_stats = server->stats();
    result.leaked_inflight = server->inflight();
    const serve::SnapshotStore& store = server->snapshots();
    for (uint64_t id = 1; id <= store.latest_id(); ++id) {
      auto snapshot = store.Find(id);
      if (snapshot && !snapshot->audited) ++result.unaudited_snapshots;
    }
    result.have_server_side = true;
  }
  return result;
}

void PrintScenario(const ScenarioResult& result) {
  const WorkerTally& t = result.tally;
  const uint64_t offered =
      result.config.clients * result.config.requests_per_client;
  std::printf(
      "%-9s clients=%zu offered=%llu ok=%llu gave_up=%llu failed=%llu | "
      "retries=%llu budget_denied=%llu degraded=%llu | "
      "p50=%.1fms p99=%.1fms | %.2fs (%.0f req/s)\n",
      result.config.name.c_str(), result.config.clients,
      static_cast<unsigned long long>(offered),
      static_cast<unsigned long long>(t.ok),
      static_cast<unsigned long long>(t.gave_up),
      static_cast<unsigned long long>(t.failed),
      static_cast<unsigned long long>(t.retries),
      static_cast<unsigned long long>(t.budget_denied),
      static_cast<unsigned long long>(t.degraded),
      Percentile(t.latencies_ms, 0.50), Percentile(t.latencies_ms, 0.99),
      result.wall_seconds,
      result.wall_seconds > 0.0
          ? static_cast<double>(t.ok) / result.wall_seconds
          : 0.0);
  if (!t.first_error.empty()) {
    std::printf("          first error: %s\n", t.first_error.c_str());
  }
  if (result.have_server_side) {
    const serve::ServerStats& s = result.server_stats;
    std::printf(
        "          server: requests=%llu shed=%llu degraded=%llu "
        "watchdog=%llu snapshots=%llu leaked=%zu unaudited=%zu\n",
        static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.shed),
        static_cast<unsigned long long>(s.degraded),
        static_cast<unsigned long long>(s.watchdog_cancels),
        static_cast<unsigned long long>(s.snapshots_published),
        result.leaked_inflight, result.unaudited_snapshots);
  }
}

void AppendJson(std::string* out, const ScenarioResult& result) {
  const WorkerTally& t = result.tally;
  const uint64_t offered =
      result.config.clients * result.config.requests_per_client;
  const uint64_t settled = t.ok + t.gave_up + t.failed;
  char buffer[512];
  *out += "  \"" + result.config.name + "\": {\n";
  auto add = [&](const char* key, double value, bool integer) {
    if (integer) {
      std::snprintf(buffer, sizeof(buffer), "    \"%s\": %llu,\n", key,
                    static_cast<unsigned long long>(value));
    } else {
      std::snprintf(buffer, sizeof(buffer), "    \"%s\": %.4f,\n", key,
                    value);
    }
    *out += buffer;
  };
  // Deterministic, CI-gated invariants.
  add("requests", static_cast<double>(offered), true);
  add("unaccounted", static_cast<double>(offered - settled), true);
  if (result.have_server_side) {
    add("leaked_inflight", static_cast<double>(result.leaked_inflight), true);
    add("unaudited_snapshots", static_cast<double>(result.unaudited_snapshots),
        true);
    add("protocol_errors",
        static_cast<double>(result.server_stats.protocol_errors), true);
  }
  // Scheduling-dependent (never gated).
  add("exec_ok", static_cast<double>(t.ok), true);
  add("exec_gave_up", static_cast<double>(t.gave_up), true);
  add("exec_failed", static_cast<double>(t.failed), true);
  add("exec_retries", static_cast<double>(t.retries), true);
  add("exec_budget_denied", static_cast<double>(t.budget_denied), true);
  add("exec_degraded", static_cast<double>(t.degraded), true);
  if (result.have_server_side) {
    add("exec_server_shed", static_cast<double>(result.server_stats.shed),
        true);
    add("exec_watchdog_cancels",
        static_cast<double>(result.server_stats.watchdog_cancels), true);
    add("exec_snapshots_published",
        static_cast<double>(result.server_stats.snapshots_published), true);
  }
  // Timing (informational via the _ms/_seconds/_per_sec suffixes).
  add("latency_p50_ms", Percentile(t.latencies_ms, 0.50), false);
  add("latency_p99_ms", Percentile(t.latencies_ms, 0.99), false);
  add("wall_seconds", result.wall_seconds, false);
  std::snprintf(buffer, sizeof(buffer), "    \"throughput_per_sec\": %.2f\n",
                result.wall_seconds > 0.0
                    ? static_cast<double>(t.ok) / result.wall_seconds
                    : 0.0);
  *out += buffer;
  *out += "  }";
}

}  // namespace

int main(int argc, char** argv) {
  InstallSignalHygiene();
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (StartsWith(arg, "--") && arg.find('=') != std::string::npos) {
      size_t eq = arg.find('=');
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (StartsWith(arg, "--") && i + 1 < argc) {
      args[arg.substr(2)] = argv[++i];
    } else {
      return Fail("unexpected argument '" + arg + "' (see file header)");
    }
  }

  auto int_arg = [&](const std::string& key, int64_t fallback,
                     int64_t min_value) -> Result<int64_t> {
    if (!args.count(key)) return fallback;
    auto parsed = ParseInt64(args[key]);
    if (!parsed.ok() || *parsed < min_value) {
      return Status::InvalidArgument("--" + key + " must be an integer >= " +
                                     std::to_string(min_value));
    }
    return *parsed;
  };

  uint64_t seed = 42;
  if (args.count("seed")) {
    auto parsed = ParseInt64(args["seed"]);
    if (!parsed.ok()) return Fail("--seed must be an integer");
    seed = static_cast<uint64_t>(*parsed);
  }

  std::string connect_host;
  int connect_port = 0;
  if (args.count("connect")) {
    size_t colon = args["connect"].rfind(':');
    if (colon == std::string::npos) {
      return Fail("--connect expects HOST:PORT");
    }
    connect_host = args["connect"].substr(0, colon);
    auto port = ParseInt64(args["connect"].substr(colon + 1));
    if (!port.ok() || *port < 1 || *port > 65535) {
      return Fail("--connect expects a port in [1, 65535]");
    }
    connect_port = static_cast<int>(*port);
  }

  auto rows = int_arg("rows", 160, 8);
  auto sessions = int_arg("sessions", 2, 1);
  auto queue = int_arg("queue", 4, 1);
  auto requests = int_arg("requests", 0, 1);  // 0 = per-scenario default
  auto clients = int_arg("clients", 0, 1);
  auto deadline = int_arg("deadline-ms", 0, 0);  // 0 = scenario default
  for (const auto* parsed : {&rows, &sessions, &queue}) {
    if (!parsed->ok()) return Fail(parsed->status().ToString());
  }
  if (!requests.ok() || !clients.ok() || !deadline.ok()) {
    return Fail("--requests/--clients/--deadline-ms must be positive");
  }

  // Small synthetic workload: requests must be millisecond-scale so the
  // overload scenario exercises queuing, not sheer compute.
  ProfileOptions profile_options;
  profile_options.seed = seed;
  profile_options.num_rows = static_cast<size_t>(*rows);
  auto relation = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  if (!relation.ok()) return Fail(relation.status().ToString());
  ConstraintGenOptions gen;
  gen.count = 4;
  gen.min_support = 2;
  gen.seed = seed;
  auto constraints = GenerateConstraints(*relation, gen);
  if (!constraints.ok()) return Fail(constraints.status().ToString());

  serve::ServerOptions server_options;
  server_options.sessions = static_cast<size_t>(*sessions);
  server_options.queue_capacity = static_cast<size_t>(*queue);
  server_options.initial_cost_ms = 20.0;
  server_options.seed = seed;

  // Admission capacity = everyone the server will hold at once; the
  // overload scenario offers 4x that.
  const size_t capacity =
      server_options.sessions + server_options.queue_capacity;

  ScenarioConfig steady;
  steady.name = "steady";
  steady.clients = server_options.sessions;
  steady.requests_per_client = 20;
  steady.deadline_ms = 10000;

  ScenarioConfig overload;
  overload.name = "overload";
  overload.clients = 4 * capacity;
  overload.requests_per_client = 8;
  overload.deadline_ms = 150;

  for (ScenarioConfig* config : {&steady, &overload}) {
    if (*clients > 0) config->clients = static_cast<size_t>(*clients);
    if (*requests > 0) {
      config->requests_per_client = static_cast<size_t>(*requests);
    }
    if (*deadline > 0) config->deadline_ms = *deadline;
  }
  // Every publish must fit the store: exhaustion would turn the steady
  // scenario into a shed test.
  server_options.snapshot_capacity =
      std::max(steady.clients * steady.requests_per_client,
               overload.clients * overload.requests_per_client) +
      8;

  std::string scenario =
      args.count("scenario") ? ToLowerAscii(args["scenario"]) : "both";
  std::vector<ScenarioConfig> configs;
  if (scenario == "steady" || scenario == "both") configs.push_back(steady);
  if (scenario == "overload" || scenario == "both") {
    configs.push_back(overload);
  }
  if (configs.empty()) {
    return Fail("unknown --scenario '" + scenario +
                "' (steady|overload|both)");
  }

  std::vector<ScenarioResult> results;
  for (const ScenarioConfig& config : configs) {
    results.push_back(RunScenario(config, connect_host, connect_port,
                                  *relation, *constraints, server_options,
                                  seed));
    PrintScenario(results.back());
    if (Interrupted()) break;
  }

  bool invariants_ok = true;
  for (const ScenarioResult& result : results) {
    const uint64_t offered =
        result.config.clients * result.config.requests_per_client;
    const WorkerTally& t = result.tally;
    if (t.ok + t.gave_up + t.failed != offered) invariants_ok = false;
    if (result.leaked_inflight != 0) invariants_ok = false;
    if (result.unaudited_snapshots != 0) invariants_ok = false;
  }

  if (args.count("json")) {
    std::string out = "{\n";
    out += "  \"_meta\": {\"bench\": \"serve\", \"seed\": " +
           std::to_string(seed) + ", \"rows\": " + std::to_string(*rows) +
           "},\n";
    for (size_t i = 0; i < results.size(); ++i) {
      AppendJson(&out, results[i]);
      out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "}\n";
    std::ofstream file(args["json"], std::ios::trunc);
    if (!file) return Fail("cannot write " + args["json"]);
    file << out;
    std::fprintf(stderr, "diva_loadgen: wrote %s\n", args["json"].c_str());
  }

  if (!invariants_ok) {
    return Fail("invariant violation (unaccounted requests, leaked "
                "in-flight work, or unaudited snapshots)");
  }
  return 0;
}
