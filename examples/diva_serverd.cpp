// diva_serverd — the crash-tolerant anonymization service. Loads (or
// generates) one relation and its diversity constraints at startup, then
// serves anonymize / verify / fetch / stats / ping / update requests over
// the length-prefixed protocol in serve/protocol.h until drained by SIGTERM
// or SIGINT. See docs/serving.md for the wire protocol, the admission
// formula and the degradation ladder.
//
// Usage:
//   diva_serverd --input data.csv --schema schema.txt
//       [--constraints sigma.txt] [serve knobs...]
//   diva_serverd [--profile pantheon|census|credit|popsyn] [--rows N]
//       [--gen-constraints N] [serve knobs...]       # synthetic workload
//
// Serve knobs (defaults in serve/server.h):
//   --host H              listen address      (default 127.0.0.1)
//   --port P              listen port         (default 0 = ephemeral)
//   --sessions N          session workers
//   --queue N             accepted-connection queue capacity
//   --snapshot-capacity N published results retained (oldest unpinned
//                         evicted past this; refused only when every
//                         snapshot is pinned by an in-flight request)
//   --snapshot-max-age N  evict snapshots N or more publishes old
//                         (0 = no age bound)
//   --initial-cost-ms X   admission cost prior
//   --ewma-alpha X        admission cost EWMA weight
//   --wedge-timeout-ms X  watchdog budget for deadline-less requests
//   --deadline-grace-ms X watchdog slack past a request deadline
//   --drain-grace-ms X    drain wait before force-cancel
//   --pipeline-threads N  DivaOptions::threads per request
//   --shard on|off        component-sharded coloring per request
//                         (execution knob, default on; requests may
//                         override with a shard= param)
//   --seed N              default pipeline seed
//   --run-seconds N       self-drain after N seconds (0 = until signal)
//   --quiet               suppress per-event log lines
//
// Shutdown: SIGTERM and SIGINT both request a graceful drain (stop
// accepting, let queued and in-flight work finish within the drain
// grace, force-cancel stragglers — which still produce audited, degraded
// responses where possible). A second signal falls back to the default
// disposition and kills the process.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "common/mutex.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "constraint/generator.h"
#include "constraint/parser.h"
#include "datagen/profiles.h"
#include "examples/example_util.h"
#include "relation/csv.h"
#include "relation/schema.h"
#include "serve/server.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

int Fail(const std::string& message) {
  std::fprintf(stderr, "diva_serverd: error: %s\n", message.c_str());
  return 1;
}

// The server the signal handler drains. Installed after construction,
// cleared before destruction; the handler only ever performs relaxed
// atomic loads/stores (async-signal-safe).
std::atomic<serve::Server*> g_server{nullptr};
std::atomic<bool> g_shutdown{false};

void HandleShutdownSignal(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
  if (serve::Server* server = g_server.load(std::memory_order_relaxed)) {
    server->RequestDrain();  // one relaxed store
  }
  // A second signal kills for real: a wedged drain must stay killable.
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
}

// Same schema file format as anonymize_cli ("NAME,role,kind" per line).
Result<std::shared_ptr<const Schema>> LoadSchemaFile(
    const std::string& path) {
  std::ifstream input(path);
  if (!input) return Status::IoError("cannot open schema file: " + path);
  std::vector<Attribute> attributes;
  std::string line;
  size_t line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    auto parts = Split(trimmed, ',');
    if (parts.size() != 3) {
      return Status::InvalidArgument("schema line " +
                                     std::to_string(line_number) +
                                     ": expected NAME,role,kind");
    }
    Attribute attribute;
    attribute.name = std::string(Trim(parts[0]));
    std::string role = ToLowerAscii(Trim(parts[1]));
    std::string kind = ToLowerAscii(Trim(parts[2]));
    if (role == "id" || role == "identifier") {
      attribute.role = AttributeRole::kIdentifier;
    } else if (role == "qi" || role == "quasi-identifier") {
      attribute.role = AttributeRole::kQuasiIdentifier;
    } else if (role == "sensitive") {
      attribute.role = AttributeRole::kSensitive;
    } else {
      return Status::InvalidArgument("unknown role '" + role + "'");
    }
    attribute.kind = (kind == "num" || kind == "numeric")
                         ? AttributeKind::kNumeric
                         : AttributeKind::kCategorical;
    attributes.push_back(std::move(attribute));
  }
  return Schema::Make(std::move(attributes));
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (StartsWith(arg, "--") && arg.find('=') != std::string::npos) {
      size_t eq = arg.find('=');
      args[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (StartsWith(arg, "--") && i + 1 < argc) {
      args[arg.substr(2)] = argv[++i];
    } else {
      return Fail("unexpected argument '" + arg + "' (see file header)");
    }
  }

  auto int_arg = [&](const std::string& key, int64_t fallback,
                     int64_t min_value) -> Result<int64_t> {
    if (!args.count(key)) return fallback;
    auto parsed = ParseInt64(args[key]);
    if (!parsed.ok() || *parsed < min_value) {
      return Status::InvalidArgument("--" + key + " must be an integer >= " +
                                     std::to_string(min_value));
    }
    return *parsed;
  };
  auto double_arg = [&](const std::string& key,
                        double fallback) -> Result<double> {
    if (!args.count(key)) return fallback;
    auto parsed = ParseDouble(args[key]);
    if (!parsed.ok() || *parsed <= 0.0) {
      return Status::InvalidArgument("--" + key + " must be positive");
    }
    return *parsed;
  };

  uint64_t seed = 42;
  if (args.count("seed")) {
    auto parsed = ParseInt64(args["seed"]);
    if (!parsed.ok()) return Fail("--seed must be an integer");
    seed = static_cast<uint64_t>(*parsed);
  }

  // ---- The served relation: a CSV on disk or a synthetic profile. ----
  std::shared_ptr<const Schema> schema;
  Result<Relation> relation = Status::Internal("unset");
  if (args.count("input")) {
    if (!args.count("schema")) {
      return Fail("--input requires --schema (NAME,role,kind per line)");
    }
    auto loaded_schema = LoadSchemaFile(args["schema"]);
    if (!loaded_schema.ok()) return Fail(loaded_schema.status().ToString());
    schema = *loaded_schema;
    relation = ReadCsvFile(args["input"], schema);
  } else {
    DatasetProfile profile = DatasetProfile::kPopSyn;
    if (args.count("profile")) {
      std::string name = ToLowerAscii(args["profile"]);
      if (name == "pantheon") {
        profile = DatasetProfile::kPantheon;
      } else if (name == "census") {
        profile = DatasetProfile::kCensus;
      } else if (name == "credit") {
        profile = DatasetProfile::kCredit;
      } else if (name == "popsyn" || name == "pop-syn") {
        profile = DatasetProfile::kPopSyn;
      } else {
        return Fail("unknown profile '" + name + "'");
      }
    }
    ProfileOptions profile_options;
    profile_options.seed = seed;
    auto rows = int_arg("rows", 400, 1);
    if (!rows.ok()) return Fail(rows.status().ToString());
    profile_options.num_rows = static_cast<size_t>(*rows);
    relation = GenerateProfile(profile, profile_options);
  }
  if (!relation.ok()) return Fail(relation.status().ToString());

  // ---- Diversity constraints: a sigma file or generated in-memory. ----
  ConstraintSet constraints;
  if (args.count("constraints")) {
    if (!schema) {
      return Fail("--constraints requires --schema to resolve attributes");
    }
    auto loaded = LoadConstraintSet(*schema, args["constraints"]);
    if (!loaded.ok()) return Fail(loaded.status().ToString());
    constraints = std::move(loaded).value();
  } else {
    auto count = int_arg("gen-constraints", 6, 0);
    if (!count.ok()) return Fail(count.status().ToString());
    if (*count > 0) {
      ConstraintGenOptions gen;
      gen.count = static_cast<size_t>(*count);
      gen.min_support = 2;
      gen.seed = seed;
      auto generated = GenerateConstraints(*relation, gen);
      if (!generated.ok()) return Fail(generated.status().ToString());
      constraints = std::move(generated).value();
    }
  }

  // ---- Serve knobs onto ServerOptions. ----
  serve::ServerOptions options;
  options.host = args.count("host") ? args["host"] : options.host;
  options.seed = seed;
  struct IntKnob {
    const char* key;
    size_t* out;
  };
  auto port = int_arg("port", 0, 0);
  if (!port.ok()) return Fail(port.status().ToString());
  options.port = static_cast<int>(*port);
  const IntKnob int_knobs[] = {
      {"sessions", &options.sessions},
      {"queue", &options.queue_capacity},
      {"snapshot-capacity", &options.snapshot_capacity},
      {"pipeline-threads", &options.pipeline_threads},
  };
  for (const IntKnob& knob : int_knobs) {
    auto value = int_arg(knob.key, static_cast<int64_t>(*knob.out), 1);
    if (!value.ok()) return Fail(value.status().ToString());
    *knob.out = static_cast<size_t>(*value);
  }
  auto max_age = int_arg("snapshot-max-age",
                         static_cast<int64_t>(options.snapshot_max_age), 0);
  if (!max_age.ok()) return Fail(max_age.status().ToString());
  options.snapshot_max_age = static_cast<uint64_t>(*max_age);
  if (args.count("shard")) {
    std::string shard = ToLowerAscii(args["shard"]);
    if (shard == "on" || shard == "1" || shard == "true") {
      options.pipeline_shard = true;
    } else if (shard == "off" || shard == "0" || shard == "false") {
      options.pipeline_shard = false;
    } else {
      return Fail("--shard must be on or off");
    }
  }
  struct DoubleKnob {
    const char* key;
    double* out;
  };
  const DoubleKnob double_knobs[] = {
      {"initial-cost-ms", &options.initial_cost_ms},
      {"ewma-alpha", &options.ewma_alpha},
      {"wedge-timeout-ms", &options.wedge_timeout_ms},
      {"deadline-grace-ms", &options.deadline_grace_ms},
      {"drain-grace-ms", &options.drain_grace_ms},
  };
  for (const DoubleKnob& knob : double_knobs) {
    auto value = double_arg(knob.key, *knob.out);
    if (!value.ok()) return Fail(value.status().ToString());
    *knob.out = *value;
  }
  auto run_seconds = int_arg("run-seconds", 0, 0);
  if (!run_seconds.ok()) return Fail(run_seconds.status().ToString());

  if (!quiet) {
    options.logger = [](const std::string& message) {
      // Server::Log already prefixes "diva_serverd: ".
      std::fprintf(stderr, "%s\n", message.c_str());
    };
  }

  const size_t num_rows = relation->NumRows();
  const size_t num_constraints = constraints.size();
  serve::Server server(std::move(relation).value(), std::move(constraints),
                       options);
  Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());

  // Handlers go in only after the server exists: the handler's relaxed
  // load either sees null (drain flag alone suffices) or a live server.
  g_server.store(&server, std::memory_order_relaxed);
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  std::fprintf(stderr, "diva_serverd: listening on %s:%d (%zu rows, %zu "
               "constraints, %zu sessions, queue %zu)\n",
               options.host.c_str(), server.port(), num_rows,
               num_constraints, options.sessions, options.queue_capacity);

  // Park until a signal (or the --run-seconds budget) requests drain.
  // CondVar::WaitFor is the codebase's interruptible sleep; the signal
  // handler cannot notify it (not async-signal-safe), so poll.
  const double started_at = MonotonicSeconds();
  {
    Mutex nap_mutex;
    CondVar nap_cv;
    MutexLock lock(nap_mutex);
    while (!g_shutdown.load(std::memory_order_relaxed) &&
           !server.draining()) {
      if (*run_seconds > 0 &&
          MonotonicSeconds() - started_at >=
              static_cast<double>(*run_seconds)) {
        server.RequestDrain();
        break;
      }
      nap_cv.WaitFor(lock, 0.05);
    }
  }

  std::fprintf(stderr, "diva_serverd: draining\n");
  server.Stop();
  g_server.store(nullptr, std::memory_order_relaxed);

  const serve::ServerStats stats = server.stats();
  std::fprintf(
      stderr,
      "diva_serverd: served %llu request(s) (%llu response(s), %llu "
      "shed, %llu degraded, %llu watchdog cancel(s), %llu snapshot(s)); "
      "inflight=%zu\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.responses),
      static_cast<unsigned long long>(stats.shed),
      static_cast<unsigned long long>(stats.degraded),
      static_cast<unsigned long long>(stats.watchdog_cancels),
      static_cast<unsigned long long>(stats.snapshots_published),
      server.inflight());
  // A leaked in-flight request after Stop() is a bug (the chaos suite
  // asserts the same invariant).
  return server.inflight() == 0 ? 0 : 1;
}
