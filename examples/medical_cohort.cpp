// Medical cohort publishing: diversity-preserving anonymization of a
// synthetic patient population (the scenario motivating the paper's
// introduction — pharmaceutical / insurance third parties want a
// k-anonymous cohort that still represents minorities).
//
// Generates a Pop-Syn-style cohort, derives proportional-representation
// constraints for ethnicity and gender, and contrasts DIVA with a plain
// k-member anonymization: the baseline silently under-represents minority
// groups (their characteristic cells get suppressed), DIVA does not.

#include <cstdio>
#include <map>

#include "anon/anonymizer.h"
#include "constraint/generator.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "examples/example_util.h"
#include "relation/qi_groups.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

/// Visible (non-suppressed) frequency of each value of `attr`.
std::map<std::string, size_t> VisibleCounts(const Relation& relation,
                                            size_t attr) {
  std::map<std::string, size_t> counts;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    if (!relation.IsSuppressed(row, attr)) {
      ++counts[relation.ValueString(row, attr)];
    }
  }
  return counts;
}

void PrintVisible(const char* label, const Relation& relation, size_t attr) {
  std::printf("%s:", label);
  for (const auto& [value, count] : VisibleCounts(relation, attr)) {
    std::printf("  %s=%zu", value.c_str(), count);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr size_t kCohortSize = 4000;
  constexpr size_t kK = 8;

  ProfileOptions profile_options;
  profile_options.num_rows = kCohortSize;
  profile_options.seed = 2026;
  auto cohort = GenerateProfile(DatasetProfile::kPopSyn, profile_options);
  DIVA_CHECK(cohort.ok());
  std::printf("Cohort: %zu patients, %zu attributes, %zu distinct QI "
              "profiles\n\n",
              cohort->NumRows(), cohort->NumAttributes(),
              CountDistinctQiProjections(*cohort));

  size_t eth = *cohort->schema().IndexOf("ETH");
  size_t gen = *cohort->schema().IndexOf("GEN");

  // Proportional-representation constraints over ethnicity and gender.
  ConstraintGenOptions gen_options;
  gen_options.kind = ConstraintClass::kProportional;
  gen_options.count = 8;
  gen_options.slack = 0.35;
  gen_options.min_support = kK;
  gen_options.attributes = {gen, eth};
  gen_options.seed = 7;
  auto constraints = GenerateConstraints(*cohort, gen_options);
  DIVA_CHECK(constraints.ok());
  std::printf("Diversity constraints (proportional representation):\n");
  for (const auto& constraint : *constraints) {
    std::printf("  %s\n", constraint.ToString().c_str());
  }

  std::printf("\nOriginal representation —\n");
  PrintVisible("  ETH", *cohort, eth);
  PrintVisible("  GEN", *cohort, gen);

  // Plain k-member baseline.
  AnonymizerOptions anon_options;
  anon_options.sample_size = 64;
  auto kmember = MakeKMember(anon_options);
  auto baseline = Anonymize(kmember.get(), *cohort, kK);
  DIVA_CHECK(baseline.ok());
  std::printf("\n=== Plain k-member (k = %zu) ===\n", kK);
  PrintVisible("  ETH", *baseline, eth);
  PrintVisible("  GEN", *baseline, gen);
  PrintQuality(*baseline, kK, *constraints);

  // DIVA.
  DivaOptions options;
  options.k = kK;
  options.strategy = SelectionStrategy::kMaxFanOut;
  options.anonymizer = anon_options;
  options.coloring_budget = 100000;  // keep the demo interactive
  auto diva_result = RunDiva(*cohort, *constraints, options);
  DIVA_CHECK(diva_result.ok());
  std::printf("\n=== DIVA (k = %zu, MaxFanOut) ===\n", kK);
  PrintVisible("  ETH", diva_result->relation, eth);
  PrintVisible("  GEN", diva_result->relation, gen);
  PrintReport(diva_result->report);
  PrintQuality(diva_result->relation, kK, *constraints);

  size_t baseline_violations =
      ViolatedConstraints(*baseline, *constraints).size();
  size_t diva_violations = diva_result->report.unsatisfied.size();
  std::printf(
      "\nConstraint violations — k-member: %zu, DIVA: %zu.\n"
      "DIVA publishes a cohort that keeps every group's representation\n"
      "inside its declared bounds; the baseline makes no such promise.\n",
      baseline_violations, diva_violations);
  return 0;
}
