// Generalization hierarchies: publish coarser values instead of stars.
//
// The paper treats suppression as "a maximal form of generalization";
// this demo shows the milder form the library also supports — cluster
// values are replaced by their lowest common ancestor in a per-attribute
// taxonomy (ages to decades, cities to regions) rather than ★, cutting
// the NCP information loss while preserving the same k-anonymity.

#include <cstdio>
#include <numeric>

#include "anon/anonymizer.h"
#include "anon/suppress.h"
#include "examples/example_util.h"
#include "hierarchy/generalize.h"
#include "hierarchy/taxonomy.h"
#include "relation/qi_groups.h"
#include "relation/relation.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

Relation BuildTable1() {
  auto schema = Schema::Make({
      {"GEN", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"ETH", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"AGE", AttributeRole::kQuasiIdentifier, AttributeKind::kNumeric},
      {"PRV", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"CTY", AttributeRole::kQuasiIdentifier, AttributeKind::kCategorical},
      {"DIAG", AttributeRole::kSensitive, AttributeKind::kCategorical},
  });
  DIVA_CHECK(schema.ok());
  auto relation = RelationFromRows(
      *schema,
      {
          {"Female", "Caucasian", "80", "AB", "Calgary", "Hypertension"},
          {"Female", "Caucasian", "32", "AB", "Calgary", "Tuberculosis"},
          {"Male", "Caucasian", "59", "AB", "Calgary", "Osteoarthritis"},
          {"Male", "Caucasian", "46", "MB", "Winnipeg", "Migraine"},
          {"Male", "African", "32", "MB", "Winnipeg", "Hypertension"},
          {"Male", "African", "43", "BC", "Vancouver", "Seizure"},
          {"Male", "Caucasian", "35", "BC", "Vancouver", "Hypertension"},
          {"Female", "Asian", "58", "BC", "Vancouver", "Seizure"},
          {"Female", "Asian", "63", "MB", "Winnipeg", "Influenza"},
          {"Female", "Asian", "71", "BC", "Vancouver", "Migraine"},
      });
  DIVA_CHECK(relation.ok());
  return std::move(relation).value();
}

GeneralizationContext BuildContext() {
  GeneralizationContext context(6);
  auto age = Taxonomy::Intervals(0, 99, 10);
  DIVA_CHECK(age.ok());
  context.SetTaxonomy(2, std::move(age).value());

  auto geography = Taxonomy::FromText(
      "Calgary,West\n"
      "Vancouver,West\n"
      "Winnipeg,Central\n"
      "West,Canada\n"
      "Central,Canada\n");
  DIVA_CHECK(geography.ok());
  context.SetTaxonomy(4, std::move(geography).value());

  auto provinces = Taxonomy::FromText(
      "AB,WestPrv\n"
      "BC,WestPrv\n"
      "MB,CentralPrv\n"
      "WestPrv,CA\n"
      "CentralPrv,CA\n");
  DIVA_CHECK(provinces.ok());
  context.SetTaxonomy(3, std::move(provinces).value());
  return context;
}

}  // namespace

int main() {
  Relation table1 = BuildTable1();
  GeneralizationContext context = BuildContext();

  auto mondrian = MakeMondrian({});
  std::vector<RowId> rows(table1.NumRows());
  std::iota(rows.begin(), rows.end(), 0);
  auto clusters = mondrian->BuildClusters(table1, rows, 3);
  DIVA_CHECK(clusters.ok());

  Relation suppressed = table1;
  SuppressClustersInPlace(&suppressed, *clusters);
  std::printf("=== Suppression (k = 3, Mondrian clusters) ===\n");
  PrintRelation(suppressed);
  std::printf("NCP loss: %.3f\n\n", NcpLoss(suppressed, context));

  Relation generalized = table1;
  DIVA_CHECK(
      GeneralizeClustersInPlace(&generalized, *clusters, context).ok());
  std::printf("=== Generalization (same clusters, taxonomies for AGE/PRV/CTY) ===\n");
  PrintRelation(generalized);
  std::printf("NCP loss: %.3f\n", NcpLoss(generalized, context));

  DIVA_CHECK(IsKAnonymous(suppressed, 3));
  DIVA_CHECK(IsKAnonymous(generalized, 3));
  std::printf(
      "\nBoth outputs are 3-anonymous; generalization retains decade and\n"
      "region information that suppression throws away.\n");
  return 0;
}
