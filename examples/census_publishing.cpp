// Census microdata release planner: sweeps the privacy parameter k and
// the DIVA node-selection strategy over a census-style workload and
// prints an accuracy/runtime decision table — the analysis a data
// steward would run before settling on release parameters.

#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/diva.h"
#include "datagen/profiles.h"
#include "examples/example_util.h"
#include "metrics/metrics.h"
#include "relation/qi_groups.h"

namespace {

using namespace diva;            // NOLINT: example brevity
using namespace diva::examples;  // NOLINT

}  // namespace

int main() {
  constexpr size_t kRows = 8000;  // scaled-down census extract

  ProfileOptions profile_options;
  profile_options.num_rows = kRows;
  profile_options.seed = 11;
  auto census = GenerateProfile(DatasetProfile::kCensus, profile_options);
  DIVA_CHECK(census.ok());

  auto constraints =
      DefaultConstraints(DatasetProfile::kCensus, *census, /*seed=*/11);
  DIVA_CHECK(constraints.ok());

  std::printf("Census extract: %zu rows, %zu attributes, |Sigma| = %zu\n\n",
              census->NumRows(), census->NumAttributes(),
              constraints->size());

  std::printf("%-4s  %-10s  %-10s  %-10s  %-12s  %-10s\n", "k", "strategy",
              "accuracy", "stars%", "satisfied%", "time(s)");
  std::printf("%s\n", std::string(66, '-').c_str());

  for (size_t k : {5u, 10u, 20u, 40u}) {
    for (SelectionStrategy strategy :
         {SelectionStrategy::kMinChoice, SelectionStrategy::kMaxFanOut}) {
      DivaOptions options;
      options.k = k;
      options.strategy = strategy;
      options.seed = 17;
      options.anonymizer.sample_size = 64;  // keep k-member sub-quadratic
      options.coloring_budget = 100000;     // keep the demo interactive

      StopWatch watch;
      auto result = RunDiva(*census, *constraints, options);
      DIVA_CHECK(result.ok());
      double seconds = watch.ElapsedSeconds();

      DIVA_CHECK(IsKAnonymous(result->relation, k));
      std::printf("%-4zu  %-10s  %-10.3f  %-10.1f  %-12.0f  %-10.2f\n", k,
                  SelectionStrategyToString(strategy),
                  OverallAccuracy(result->relation, k, *constraints),
                  100.0 * SuppressionRatio(result->relation),
                  100.0 * SatisfiedFraction(result->relation, *constraints),
                  seconds);
    }
  }

  std::printf(
      "\nReading the table: pick the largest k whose accuracy is still\n"
      "acceptable for the downstream analysis; MaxFanOut is the default\n"
      "strategy (it prunes conflicting clusterings earliest).\n");
  return 0;
}
