#ifndef DIVA_VERIFY_AUDITOR_H_
#define DIVA_VERIFY_AUDITOR_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "constraint/diversity_constraint.h"
#include "hierarchy/generalize.h"
#include "relation/relation.h"

namespace diva {

/// The four invariants of DIVA's output contract (Definition 2.4 plus the
/// suppression-only publishing model): R* must be k-anonymous, satisfy
/// every sigma in Sigma, be derivable from R by suppression (or
/// hierarchy-consistent generalization) alone, and account for every ★ it
/// introduces.
///
/// Verifying a solution is cheap even when finding one is NP-hard
/// (Chakaravarthy et al. for k-anonymization, Xiao et al. for
/// l-diversity), so the auditor re-checks all four independently of the
/// search that produced R* — it shares no code with the anonymizers, the
/// coloring, or the Integrate repair.
enum class AuditCheck {
  /// Every QI-group of R* holds at least k tuples.
  kGroupSize,
  /// Every constraint sigma = (X[t], lambda_l, lambda_r) has its
  /// occurrence count in [lambda_l, lambda_r].
  kConstraintBounds,
  /// R ⊑ R*: each cell of R* equals the input cell, is suppressed, or —
  /// when a taxonomy is supplied — is a proper ancestor of it.
  kContainment,
  /// ★ bookkeeping: no input ★ was un-suppressed, and (when an expected
  /// count is supplied) exactly that many ★s were added.
  kStarAccounting,
};

const char* AuditCheckToString(AuditCheck check);

/// One concrete breach of one check, human-readable.
struct AuditViolation {
  AuditCheck check = AuditCheck::kGroupSize;
  std::string detail;
};

/// Raw measurements the auditor took while checking (also useful as a
/// cheap summary of how much the anonymization changed).
struct AuditStats {
  size_t rows = 0;
  size_t num_groups = 0;
  /// Smallest QI-group of R* (0 when R* has no rows).
  size_t min_group_size = 0;
  /// Cells suppressed in R* but not in R.
  size_t added_stars = 0;
  /// Cells suppressed in R but not in R* (always a violation).
  size_t removed_stars = 0;
  /// Cells recoded to a taxonomy ancestor (generalization mode only).
  size_t generalized_cells = 0;
  /// Cells that differ from R without being a ★ or a valid ancestor.
  size_t edited_cells = 0;
  /// Per-constraint occurrence counts in R*, parallel to Sigma.
  std::vector<size_t> constraint_counts;
};

struct AuditOptions {
  /// Constraint indices the producer already declared unsatisfied
  /// (best-effort mode): bound breaches on these are recorded in
  /// `constraint_counts` but not flagged. Must be sorted ascending.
  std::vector<size_t> waived_constraints;

  /// When set, a changed cell may also be a proper taxonomy ancestor of
  /// the input value (LCA recoding); without it only ★ is allowed.
  std::shared_ptr<const GeneralizationContext> generalization;

  /// When set, kStarAccounting additionally requires added_stars to equal
  /// this value (e.g. a producer's claimed suppression count).
  std::optional<size_t> expected_added_stars;

  /// Cap on per-check violation details kept in the report (the counts in
  /// AuditStats stay exact).
  size_t max_details_per_check = 8;
};

/// Outcome of an audit: empty `violations` means the output honors the
/// full contract.
struct AuditReport {
  bool ok() const { return violations.empty(); }

  /// True when at least one violation of `check` was recorded.
  bool Flagged(AuditCheck check) const;

  std::vector<AuditViolation> violations;
  AuditStats stats;

  /// Multi-line human-readable summary ("audit OK ..." or one line per
  /// violation).
  std::string ToString() const;
};

/// Independently re-checks the anonymization contract for output `output`
/// produced from `input` under (k, Sigma). Fails with InvalidArgument
/// when the pair is not auditable at all (schema arity or row-count
/// mismatch, k = 0) — a failed *audit* is a populated AuditReport, not an
/// error Status.
[[nodiscard]] Result<AuditReport> AuditAnonymization(
    const Relation& input, const Relation& output, size_t k,
    const ConstraintSet& constraints, const AuditOptions& options = {});

}  // namespace diva

#endif  // DIVA_VERIFY_AUDITOR_H_
