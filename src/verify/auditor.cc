#include "verify/auditor.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/counters.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace diva {

const char* AuditCheckToString(AuditCheck check) {
  switch (check) {
    case AuditCheck::kGroupSize:
      return "group-size";
    case AuditCheck::kConstraintBounds:
      return "constraint-bounds";
    case AuditCheck::kContainment:
      return "containment";
    case AuditCheck::kStarAccounting:
      return "star-accounting";
  }
  return "unknown";
}

bool AuditReport::Flagged(AuditCheck check) const {
  for (const AuditViolation& violation : violations) {
    if (violation.check == check) return true;
  }
  return false;
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  if (ok()) {
    out << "audit OK";
  } else {
    out << "audit FAILED (" << violations.size() << " violation"
        << (violations.size() == 1 ? "" : "s") << ")";
    for (const AuditViolation& violation : violations) {
      out << "\n  [" << AuditCheckToString(violation.check) << "] "
          << violation.detail;
    }
  }
  out << "\nstats: rows=" << stats.rows << " qi_groups=" << stats.num_groups
      << " min_group=" << stats.min_group_size
      << " added_stars=" << stats.added_stars
      << " removed_stars=" << stats.removed_stars
      << " generalized_cells=" << stats.generalized_cells
      << " edited_cells=" << stats.edited_cells;
  return out.str();
}

namespace {

/// Collects violations with a per-check cap on retained details; the
/// exact totals stay in AuditStats.
class ViolationRecorder {
 public:
  ViolationRecorder(AuditReport* report, size_t max_per_check)
      : report_(report), max_per_check_(max_per_check) {}

  void Record(AuditCheck check, std::string detail) {
    size_t& count = counts_[static_cast<size_t>(check)];
    ++count;
    if (count <= max_per_check_) {
      report_->violations.push_back({check, std::move(detail)});
    } else if (count == max_per_check_ + 1) {
      report_->violations.push_back(
          {check, "further violations of this check omitted"});
    }
  }

  /// Accounts for `n` violations whose details a caller dropped (they
  /// could only ever land past the cap). Equivalent to `n` Record calls
  /// with discarded details: it bumps the count and emits the omission
  /// marker if this batch is what crosses the cap.
  void RecordOmitted(AuditCheck check, size_t n) {
    if (n == 0) return;
    size_t& count = counts_[static_cast<size_t>(check)];
    bool was_within_cap = count <= max_per_check_;
    count += n;
    if (was_within_cap && count > max_per_check_) {
      report_->violations.push_back(
          {check, "further violations of this check omitted"});
    }
  }

  size_t max_per_check() const { return max_per_check_; }

 private:
  AuditReport* report_;
  size_t max_per_check_;
  size_t counts_[4] = {0, 0, 0, 0};
};

bool IsWaived(const AuditOptions& options, size_t constraint_index) {
  return std::binary_search(options.waived_constraints.begin(),
                            options.waived_constraints.end(),
                            constraint_index);
}

/// True when `descendant` lies strictly below `ancestor` in `taxonomy`.
bool IsProperAncestor(const Taxonomy& taxonomy, Taxonomy::NodeId ancestor,
                      Taxonomy::NodeId descendant) {
  if (ancestor == descendant) return false;
  for (Taxonomy::NodeId node = taxonomy.Parent(descendant);
       node != Taxonomy::kInvalidNode; node = taxonomy.Parent(node)) {
    if (node == ancestor) return true;
  }
  return false;
}

/// Re-derives the QI-groups of `relation` from scratch (independent of
/// relation/qi_groups.cc) and records undersized groups.
void CheckGroupSizes(const Relation& relation, size_t k,
                     ViolationRecorder* recorder, AuditStats* stats) {
  const std::vector<size_t>& qi = relation.schema().qi_indices();
  // Ordered map keyed by the full QI projection: a suppressed cell only
  // matches another suppressed cell, which code equality gives us for
  // free (kSuppressed is a reserved code). Rows are counted in
  // row-range chunks whose per-key sums merge commutatively, so the
  // merged map — and the ordered iteration below — is independent of
  // the thread count. Chunk boundaries are a pure function of the row
  // count.
  using GroupMap = std::map<std::vector<ValueCode>, size_t>;
  size_t chunk_size = relation.NumRows() / 64 + 1;
  size_t chunks = (relation.NumRows() + chunk_size - 1) / chunk_size;
  std::vector<GroupMap> partials =
      ParallelMap<GroupMap>(chunks, /*grain=*/1, [&](size_t c) {
        GroupMap local;
        std::vector<ValueCode> key(qi.size());
        size_t begin = c * chunk_size;
        size_t end = std::min(begin + chunk_size, relation.NumRows());
        for (size_t row = begin; row < end; ++row) {
          for (size_t i = 0; i < qi.size(); ++i) {
            key[i] = relation.At(static_cast<RowId>(row), qi[i]);
          }
          ++local[key];
        }
        return local;
      });
  GroupMap group_sizes;
  for (GroupMap& partial : partials) {
    for (auto& [pattern, size] : partial) group_sizes[pattern] += size;
  }
  stats->num_groups = group_sizes.size();
  stats->min_group_size = 0;
  bool first = true;
  for (const auto& [pattern, size] : group_sizes) {
    if (first || size < stats->min_group_size) stats->min_group_size = size;
    first = false;
    if (size < k) {
      std::ostringstream detail;
      detail << "QI-group of size " << size << " < k = " << k
             << " (pattern";
      for (size_t i = 0; i < qi.size(); ++i) {
        detail << ' ' << relation.schema().attribute(qi[i]).name << '='
               << (pattern[i] == kSuppressed
                       ? std::string("*")
                       : relation.dictionary(qi[i]).ValueOf(pattern[i]));
      }
      detail << ')';
      recorder->Record(AuditCheck::kGroupSize, detail.str());
    }
  }
}

/// Counts each constraint's occurrences with a plain row scan (no shared
/// code with DiversityConstraint::CountOccurrences) and records bound
/// breaches.
void CheckConstraintBounds(const Relation& relation,
                           const ConstraintSet& constraints,
                           const AuditOptions& options,
                           ViolationRecorder* recorder, AuditStats* stats) {
  stats->constraint_counts.assign(constraints.size(), 0);
  for (size_t ci = 0; ci < constraints.size(); ++ci) {
    const DiversityConstraint& constraint = constraints[ci];
    const std::vector<size_t>& attrs = constraint.attribute_indices();
    // Resolve the target values against the output dictionaries; a value
    // absent from a dictionary can never match (count stays 0).
    std::vector<ValueCode> targets(attrs.size());
    bool resolvable = true;
    for (size_t i = 0; i < attrs.size() && resolvable; ++i) {
      auto code = relation.FindCode(attrs[i], constraint.values()[i]);
      if (code.has_value()) {
        targets[i] = *code;
      } else {
        resolvable = false;
      }
    }
    // The constraint loop itself stays sequential so the recorder sees
    // violations in constraint order; the row scan underneath carries
    // the parallelism as an exact chunked integer sum.
    size_t count = 0;
    if (resolvable) {
      count = ParallelReduce<size_t>(
          relation.NumRows(), /*grain=*/0, size_t{0},
          [&](size_t begin, size_t end) {
            size_t local = 0;
            for (size_t row = begin; row < end; ++row) {
              bool match = true;
              for (size_t i = 0; i < attrs.size(); ++i) {
                if (relation.At(static_cast<RowId>(row), attrs[i]) !=
                    targets[i]) {
                  match = false;
                  break;
                }
              }
              local += match ? 1 : 0;
            }
            return local;
          },
          [](size_t a, size_t b) { return a + b; });
    }
    stats->constraint_counts[ci] = count;
    bool in_bounds =
        count >= constraint.lower() && count <= constraint.upper();
    if (!in_bounds && !IsWaived(options, ci)) {
      std::ostringstream detail;
      detail << "constraint #" << ci << " " << constraint.ToString()
             << " has " << count << " occurrences";
      recorder->Record(AuditCheck::kConstraintBounds, detail.str());
    }
  }
}

/// Sentinel for an input value with no equal value in the output
/// dictionary; distinct from every valid code and from kSuppressed.
constexpr ValueCode kUnmatched = -2;

/// Cell-by-cell pass shared by the containment and star-accounting
/// checks: classifies every output cell as unchanged, newly suppressed,
/// generalized, un-suppressed, or edited. Cells are compared by *value*,
/// not by raw code: when the two relations were read independently (as
/// in verify_cli --original) equal strings carry different codes, so
/// each column gets an input-code -> output-code translation table
/// unless the dictionaries are the same object.
void CheckCellsAndStars(const Relation& input, const Relation& output,
                        const AuditOptions& options,
                        ViolationRecorder* recorder, AuditStats* stats) {
  const GeneralizationContext* context = options.generalization.get();
  std::vector<std::vector<ValueCode>> translate(output.NumAttributes());
  for (size_t col = 0; col < output.NumAttributes(); ++col) {
    if (&input.dictionary(col) == &output.dictionary(col)) continue;
    const Dictionary& in_dict = input.dictionary(col);
    translate[col].resize(in_dict.size());
    for (size_t code = 0; code < in_dict.size(); ++code) {
      translate[col][code] =
          output.FindCode(col, in_dict.ValueOf(static_cast<ValueCode>(code)))
              .value_or(kUnmatched);
    }
  }
  // The cell pass chunks over row ranges. Each chunk tallies its own
  // exact stat counters and keeps violation details interleaved in cell
  // order — but at most cap+1 per check, because a detail past the
  // recorder's cap can never be published; beyond that only the exact
  // per-check overflow count is kept. Replaying chunks in ascending
  // order then feeds the recorder the same Record sequence as the
  // sequential pass (dropped details are accounted via RecordOmitted,
  // which by then can no longer change what gets published), so stats
  // and the violation list are bit-identical for every thread count.
  struct CellChunk {
    size_t added_stars = 0;
    size_t removed_stars = 0;
    size_t generalized_cells = 0;
    size_t edited_cells = 0;
    std::vector<std::pair<AuditCheck, std::string>> details;
    size_t stored_star = 0, omitted_star = 0;
    size_t stored_contain = 0, omitted_contain = 0;
  };
  size_t detail_cap = recorder->max_per_check() + 1;
  size_t chunk_size = output.NumRows() / 64 + 1;
  size_t chunks = (output.NumRows() + chunk_size - 1) / chunk_size;
  std::vector<CellChunk> cell_chunks =
      ParallelMap<CellChunk>(chunks, /*grain=*/1, [&](size_t c) {
        CellChunk local;
        size_t row_begin = c * chunk_size;
        size_t row_end = std::min(row_begin + chunk_size, output.NumRows());
        for (size_t r = row_begin; r < row_end; ++r) {
          RowId row = static_cast<RowId>(r);
          for (size_t col = 0; col < output.NumAttributes(); ++col) {
            ValueCode in = input.At(row, col);
            ValueCode out = output.At(row, col);
            if (!translate[col].empty() && in != kSuppressed) {
              in = translate[col][in];
            }
            if (in == out) continue;
            if (out == kSuppressed) {
              ++local.added_stars;
              continue;
            }
            if (in == kSuppressed) {
              ++local.removed_stars;
              if (local.stored_star < detail_cap) {
                ++local.stored_star;
                local.details.emplace_back(
                    AuditCheck::kStarAccounting,
                    "row " + std::to_string(row) + " col " +
                        std::to_string(col) +
                        ": suppressed input cell re-published as '" +
                        output.ValueString(row, col) + "'");
              } else {
                ++local.omitted_star;
              }
              continue;
            }
            // Differing, non-star cell: only legal as a taxonomy ancestor.
            if (context != nullptr && col < context->num_attributes() &&
                context->HasTaxonomy(col)) {
              const Taxonomy& taxonomy = context->taxonomy(col);
              auto in_node = taxonomy.Find(input.ValueString(row, col));
              auto out_node = taxonomy.Find(output.ValueString(row, col));
              if (in_node.has_value() && out_node.has_value() &&
                  IsProperAncestor(taxonomy, *out_node, *in_node)) {
                ++local.generalized_cells;
                continue;
              }
            }
            ++local.edited_cells;
            if (local.stored_contain < detail_cap) {
              ++local.stored_contain;
              local.details.emplace_back(
                  AuditCheck::kContainment,
                  "row " + std::to_string(row) + " col " +
                      std::to_string(col) + ": '" +
                      input.ValueString(row, col) + "' became '" +
                      output.ValueString(row, col) +
                      "' (neither suppression nor a taxonomy ancestor)");
            } else {
              ++local.omitted_contain;
            }
          }
        }
        return local;
      });
  for (CellChunk& chunk : cell_chunks) {
    stats->added_stars += chunk.added_stars;
    stats->removed_stars += chunk.removed_stars;
    stats->generalized_cells += chunk.generalized_cells;
    stats->edited_cells += chunk.edited_cells;
    for (auto& [check, detail] : chunk.details) {
      recorder->Record(check, std::move(detail));
    }
    recorder->RecordOmitted(AuditCheck::kStarAccounting, chunk.omitted_star);
    recorder->RecordOmitted(AuditCheck::kContainment, chunk.omitted_contain);
  }
  if (options.expected_added_stars.has_value() &&
      stats->added_stars != *options.expected_added_stars) {
    recorder->Record(
        AuditCheck::kStarAccounting,
        "expected " + std::to_string(*options.expected_added_stars) +
            " added stars, counted " + std::to_string(stats->added_stars));
  }
}

}  // namespace

Result<AuditReport> AuditAnonymization(const Relation& input,
                                       const Relation& output, size_t k,
                                       const ConstraintSet& constraints,
                                       const AuditOptions& options) {
  DIVA_TRACE_SPAN("audit/run");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("audit.run"));
  if (k == 0) {
    return Status::InvalidArgument("audit: k must be >= 1");
  }
  if (input.NumAttributes() != output.NumAttributes()) {
    return Status::InvalidArgument(
        "audit: input has " + std::to_string(input.NumAttributes()) +
        " attributes, output has " +
        std::to_string(output.NumAttributes()));
  }
  if (input.NumRows() != output.NumRows()) {
    return Status::InvalidArgument(
        "audit: input has " + std::to_string(input.NumRows()) +
        " rows, output has " + std::to_string(output.NumRows()) +
        " (suppression-only publishing keeps row ids stable)");
  }
  if (!std::is_sorted(options.waived_constraints.begin(),
                      options.waived_constraints.end())) {
    return Status::InvalidArgument(
        "audit: waived_constraints must be sorted ascending");
  }

  AuditReport report;
  report.stats.rows = output.NumRows();
  ViolationRecorder recorder(&report, options.max_details_per_check);

  {
    DIVA_TRACE_SPAN("audit/group_sizes");
    CheckGroupSizes(output, k, &recorder, &report.stats);
  }
  {
    DIVA_TRACE_SPAN("audit/constraint_bounds");
    CheckConstraintBounds(output, constraints, options, &recorder,
                          &report.stats);
  }
  {
    DIVA_TRACE_SPAN("audit/cells_and_stars");
    CheckCellsAndStars(input, output, options, &recorder, &report.stats);
  }

  DIVA_COUNTER_ADD("audit.violations", report.violations.size());
  return report;
}

}  // namespace diva
