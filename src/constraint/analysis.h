#ifndef DIVA_CONSTRAINT_ANALYSIS_H_
#define DIVA_CONSTRAINT_ANALYSIS_H_

#include <string>
#include <vector>

#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// Pre-flight linter for a diversity constraint set: surfaces problems a
/// data steward should fix *before* spending an anonymization run —
/// constraints no algorithm can satisfy, redundant duplicates, and
/// mutually contradictory bounds.
enum class ConstraintIssueKind {
  /// Two constraints share exactly the same target; the set behaves as
  /// if only the tighter one existed.
  kDuplicateTarget,
  /// Two constraints on the same target have disjoint frequency ranges —
  /// no relation satisfies both.
  kContradictoryBounds,
  /// The relation holds fewer target tuples than the lower bound.
  kInsufficientSupport,
  /// Lower bound > 0 but max(k, lower) > upper: no clustering of >= k
  /// target tuples can land inside the range.
  kUnclusterableRange,
  /// A nested target (child ⊆ parent) demands more occurrences than the
  /// parent's upper bound allows.
  kNestedConflict,
};

const char* ConstraintIssueKindToString(ConstraintIssueKind kind);

struct ConstraintIssue {
  ConstraintIssueKind kind;
  /// Index of the primary offending constraint in the analyzed set.
  size_t constraint;
  /// Index of the other constraint involved (duplicate/contradiction/
  /// nesting), or SIZE_MAX when the issue is unary.
  size_t other;
  /// Human-readable explanation.
  std::string message;

  static constexpr size_t kNoOther = static_cast<size_t>(-1);
};

/// Analyzes `constraints` against `relation` for the given k. Returns
/// the issues found (empty = clean). Purely advisory: DIVA runs with a
/// dirty set too, satisfying what it can.
std::vector<ConstraintIssue> AnalyzeConstraintSet(
    const Relation& relation, const ConstraintSet& constraints, size_t k);

}  // namespace diva

#endif  // DIVA_CONSTRAINT_ANALYSIS_H_
