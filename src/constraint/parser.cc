#include "constraint/parser.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace diva {

Result<DiversityConstraint> ParseConstraint(const Schema& schema,
                                            std::string_view text) {
  std::string_view trimmed = Trim(text);
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument("cannot parse constraint '" +
                                   std::string(text) + "': " + why);
  };

  size_t open_bracket = trimmed.find('[');
  if (open_bracket == std::string_view::npos) {
    return fail("missing '[' after attribute list");
  }
  size_t close_bracket = trimmed.find(']', open_bracket);
  if (close_bracket == std::string_view::npos) {
    return fail("missing ']' after value list");
  }

  std::string_view attr_part = Trim(trimmed.substr(0, open_bracket));
  std::string_view value_part =
      trimmed.substr(open_bracket + 1, close_bracket - open_bracket - 1);
  std::string_view rest = Trim(trimmed.substr(close_bracket + 1));

  // rest must be: in [l,r]
  std::string rest_lower = ToLowerAscii(rest);
  if (!StartsWith(rest_lower, "in")) {
    return fail("expected 'in [lower,upper]' after target values");
  }
  std::string_view range = Trim(rest.substr(2));
  if (range.size() < 2 || range.front() != '[' || range.back() != ']') {
    return fail("frequency range must be of the form [lower,upper]");
  }
  range = range.substr(1, range.size() - 2);
  std::vector<std::string> bounds = Split(range, ',');
  if (bounds.size() != 2) {
    return fail("frequency range must have exactly two bounds");
  }
  auto lower = ParseInt64(bounds[0]);
  if (!lower.ok()) return fail(lower.status().message());
  auto upper = ParseInt64(bounds[1]);
  if (!upper.ok()) return fail(upper.status().message());
  if (*lower < 0 || *upper < 0) {
    return fail("frequency bounds must be non-negative");
  }

  std::vector<std::string> attributes;
  for (const std::string& raw : Split(attr_part, ',')) {
    attributes.emplace_back(Trim(raw));
  }
  std::vector<std::string> values;
  for (const std::string& raw : Split(value_part, ',')) {
    values.emplace_back(Trim(raw));
  }

  return DiversityConstraint::Make(schema, std::move(attributes),
                                   std::move(values),
                                   static_cast<uint32_t>(*lower),
                                   static_cast<uint32_t>(*upper));
}

Result<ConstraintSet> ParseConstraintSet(const Schema& schema,
                                         std::string_view text) {
  ConstraintSet constraints;
  size_t line_number = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    auto constraint = ParseConstraint(schema, line);
    if (!constraint.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + constraint.status().message());
    }
    constraints.push_back(std::move(constraint).value());
  }
  return constraints;
}

Result<ConstraintSet> LoadConstraintSet(const Schema& schema,
                                        const std::string& path) {
  std::ifstream input(path);
  if (!input) {
    return Status::IoError("cannot open constraint file: " + path);
  }
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return ParseConstraintSet(schema, buffer.str());
}

}  // namespace diva
