#include "constraint/diversity_constraint.h"

#include <algorithm>
#include <unordered_set>

#include "common/parallel.h"
#include "common/string_util.h"

namespace diva {

namespace {

/// Resolves the constraint's target values to codes in `relation`'s
/// dictionaries. Returns false if some value never occurs in the relation
/// (then the match count is trivially 0).
bool ResolveCodes(const DiversityConstraint& constraint,
                  const Relation& relation, std::vector<ValueCode>* codes) {
  const auto& attrs = constraint.attribute_indices();
  const auto& values = constraint.values();
  codes->clear();
  codes->reserve(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    auto code = relation.FindCode(attrs[i], values[i]);
    if (!code.has_value()) return false;
    codes->push_back(*code);
  }
  return true;
}

}  // namespace

Result<DiversityConstraint> DiversityConstraint::Make(
    const Schema& schema, std::vector<std::string> attributes,
    std::vector<std::string> values, uint32_t lower, uint32_t upper) {
  if (attributes.empty()) {
    return Status::InvalidArgument(
        "diversity constraint needs at least one attribute");
  }
  if (attributes.size() != values.size()) {
    return Status::InvalidArgument(
        "constraint attribute/value arity mismatch: " +
        std::to_string(attributes.size()) + " vs " +
        std::to_string(values.size()));
  }
  if (lower > upper) {
    return Status::InvalidArgument(
        "constraint frequency range is empty: [" + std::to_string(lower) +
        "," + std::to_string(upper) + "]");
  }
  DiversityConstraint constraint;
  std::unordered_set<size_t> seen;
  for (const std::string& name : attributes) {
    auto index = schema.IndexOf(name);
    if (!index.has_value()) {
      return Status::NotFound("constraint references unknown attribute '" +
                              name + "'");
    }
    if (!seen.insert(*index).second) {
      return Status::InvalidArgument("constraint repeats attribute '" + name +
                                     "'");
    }
    constraint.attribute_indices_.push_back(*index);
  }
  constraint.attribute_names_ = std::move(attributes);
  constraint.values_ = std::move(values);
  constraint.lower_ = lower;
  constraint.upper_ = upper;
  return constraint;
}

bool DiversityConstraint::MatchesRow(const Relation& relation,
                                     RowId row) const {
  std::vector<ValueCode> codes;
  if (!ResolveCodes(*this, relation, &codes)) return false;
  for (size_t i = 0; i < attribute_indices_.size(); ++i) {
    if (relation.At(row, attribute_indices_[i]) != codes[i]) return false;
  }
  return true;
}

size_t DiversityConstraint::CountOccurrences(const Relation& relation) const {
  std::vector<ValueCode> codes;
  if (!ResolveCodes(*this, relation, &codes)) return 0;
  // Exact integer sum of chunk partials: the parallel total equals the
  // sequential scan for every thread count.
  return ParallelReduce<size_t>(
      relation.NumRows(), /*grain=*/0, size_t{0},
      [&](size_t begin, size_t end) {
        size_t count = 0;
        for (size_t row = begin; row < end; ++row) {
          bool match = true;
          for (size_t i = 0; i < attribute_indices_.size(); ++i) {
            if (relation.At(static_cast<RowId>(row), attribute_indices_[i]) !=
                codes[i]) {
              match = false;
              break;
            }
          }
          if (match) ++count;
        }
        return count;
      },
      [](size_t a, size_t b) { return a + b; });
}

bool DiversityConstraint::IsSatisfiedBy(const Relation& relation) const {
  size_t count = CountOccurrences(relation);
  return count >= lower_ && count <= upper_;
}

std::vector<RowId> DiversityConstraint::TargetTuples(
    const Relation& relation) const {
  std::vector<ValueCode> codes;
  if (!ResolveCodes(*this, relation, &codes)) return {};
  // Chunk-local hit lists concatenated in ascending chunk order rebuild
  // the exact row order of the sequential scan.
  return ParallelReduce<std::vector<RowId>>(
      relation.NumRows(), /*grain=*/0, {},
      [&](size_t begin, size_t end) {
        std::vector<RowId> local;
        for (size_t row = begin; row < end; ++row) {
          bool match = true;
          for (size_t i = 0; i < attribute_indices_.size(); ++i) {
            if (relation.At(static_cast<RowId>(row), attribute_indices_[i]) !=
                codes[i]) {
              match = false;
              break;
            }
          }
          if (match) local.push_back(static_cast<RowId>(row));
        }
        return local;
      },
      [](std::vector<RowId> acc, std::vector<RowId> chunk) {
        acc.insert(acc.end(), chunk.begin(), chunk.end());
        return acc;
      });
}

std::string DiversityConstraint::ToString() const {
  std::string out = Join(attribute_names_, ",");
  out += "[";
  out += Join(values_, ",");
  out += "] in [";
  out += std::to_string(lower_);
  out += ",";
  out += std::to_string(upper_);
  out += "]";
  return out;
}

bool DiversityConstraint::operator==(const DiversityConstraint& other) const {
  return attribute_indices_ == other.attribute_indices_ &&
         values_ == other.values_ && lower_ == other.lower_ &&
         upper_ == other.upper_;
}

bool SatisfiesAll(const Relation& relation,
                  const ConstraintSet& constraints) {
  for (const auto& constraint : constraints) {
    if (!constraint.IsSatisfiedBy(relation)) return false;
  }
  return true;
}

std::vector<size_t> ViolatedConstraints(const Relation& relation,
                                        const ConstraintSet& constraints) {
  std::vector<size_t> counts = CountAllOccurrences(relation, constraints);
  std::vector<size_t> violated;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (counts[i] < constraints[i].lower() || counts[i] > constraints[i].upper())
      violated.push_back(i);
  }
  return violated;
}

std::vector<size_t> CountAllOccurrences(const Relation& relation,
                                        const ConstraintSet& constraints) {
  std::vector<size_t> counts(constraints.size(), 0);
  if (constraints.empty() || relation.NumRows() == 0) return counts;

  // Resolve every constraint once. Unresolved constraints (some target
  // value absent from the dictionary) keep count 0, exactly like
  // CountOccurrences.
  struct Resolved {
    size_t index;
    std::vector<ValueCode> codes;
  };
  std::vector<Resolved> single;
  std::vector<Resolved> multi;
  std::vector<ValueCode> codes;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (!ResolveCodes(constraints[i], relation, &codes)) continue;
    if (codes.size() == 1) {
      single.push_back({i, codes});
    } else {
      multi.push_back({i, codes});
    }
  }

  // Single-attribute constraints read per-attribute code histograms built
  // in one scan. Histogram cells are exact integer sums, so the merged
  // totals equal the sequential scan at every thread width.
  if (!single.empty()) {
    std::vector<size_t> attrs;
    for (const Resolved& r : single)
      attrs.push_back(constraints[r.index].attribute_indices().front());
    std::sort(attrs.begin(), attrs.end());
    attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
    std::vector<size_t> slot_of(relation.NumAttributes(), attrs.size());
    for (size_t s = 0; s < attrs.size(); ++s) slot_of[attrs[s]] = s;

    using Histograms = std::vector<std::vector<size_t>>;
    Histograms zero(attrs.size());
    for (size_t s = 0; s < attrs.size(); ++s)
      zero[s].assign(relation.dictionary(attrs[s]).size(), 0);
    Histograms hist = ParallelReduce<Histograms>(
        relation.NumRows(), /*grain=*/0, zero,
        [&](size_t begin, size_t end) {
          Histograms local = zero;
          for (size_t row = begin; row < end; ++row) {
            for (size_t s = 0; s < attrs.size(); ++s) {
              ValueCode code = relation.At(static_cast<RowId>(row), attrs[s]);
              if (code >= 0 &&
                  static_cast<size_t>(code) < local[s].size()) {
                ++local[s][static_cast<size_t>(code)];
              }
            }
          }
          return local;
        },
        [](Histograms acc, Histograms chunk) {
          for (size_t s = 0; s < acc.size(); ++s)
            for (size_t v = 0; v < acc[s].size(); ++v) acc[s][v] += chunk[s][v];
          return acc;
        });
    for (const Resolved& r : single) {
      size_t attr = constraints[r.index].attribute_indices().front();
      counts[r.index] = hist[slot_of[attr]][static_cast<size_t>(r.codes[0])];
    }
  }

  // Multi-attribute constraints share one additional row scan, each row
  // checked against every such constraint.
  if (!multi.empty()) {
    std::vector<size_t> totals = ParallelReduce<std::vector<size_t>>(
        relation.NumRows(), /*grain=*/0,
        std::vector<size_t>(multi.size(), 0),
        [&](size_t begin, size_t end) {
          std::vector<size_t> local(multi.size(), 0);
          for (size_t row = begin; row < end; ++row) {
            for (size_t m = 0; m < multi.size(); ++m) {
              const auto& attrs = constraints[multi[m].index].attribute_indices();
              bool match = true;
              for (size_t i = 0; i < attrs.size(); ++i) {
                if (relation.At(static_cast<RowId>(row), attrs[i]) !=
                    multi[m].codes[i]) {
                  match = false;
                  break;
                }
              }
              if (match) ++local[m];
            }
          }
          return local;
        },
        [](std::vector<size_t> acc, std::vector<size_t> chunk) {
          for (size_t m = 0; m < acc.size(); ++m) acc[m] += chunk[m];
          return acc;
        });
    for (size_t m = 0; m < multi.size(); ++m)
      counts[multi[m].index] = totals[m];
  }
  return counts;
}

}  // namespace diva
