#include "constraint/diversity_constraint.h"

#include <unordered_set>

#include "common/parallel.h"
#include "common/string_util.h"

namespace diva {

namespace {

/// Resolves the constraint's target values to codes in `relation`'s
/// dictionaries. Returns false if some value never occurs in the relation
/// (then the match count is trivially 0).
bool ResolveCodes(const DiversityConstraint& constraint,
                  const Relation& relation, std::vector<ValueCode>* codes) {
  const auto& attrs = constraint.attribute_indices();
  const auto& values = constraint.values();
  codes->clear();
  codes->reserve(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    auto code = relation.FindCode(attrs[i], values[i]);
    if (!code.has_value()) return false;
    codes->push_back(*code);
  }
  return true;
}

}  // namespace

Result<DiversityConstraint> DiversityConstraint::Make(
    const Schema& schema, std::vector<std::string> attributes,
    std::vector<std::string> values, uint32_t lower, uint32_t upper) {
  if (attributes.empty()) {
    return Status::InvalidArgument(
        "diversity constraint needs at least one attribute");
  }
  if (attributes.size() != values.size()) {
    return Status::InvalidArgument(
        "constraint attribute/value arity mismatch: " +
        std::to_string(attributes.size()) + " vs " +
        std::to_string(values.size()));
  }
  if (lower > upper) {
    return Status::InvalidArgument(
        "constraint frequency range is empty: [" + std::to_string(lower) +
        "," + std::to_string(upper) + "]");
  }
  DiversityConstraint constraint;
  std::unordered_set<size_t> seen;
  for (const std::string& name : attributes) {
    auto index = schema.IndexOf(name);
    if (!index.has_value()) {
      return Status::NotFound("constraint references unknown attribute '" +
                              name + "'");
    }
    if (!seen.insert(*index).second) {
      return Status::InvalidArgument("constraint repeats attribute '" + name +
                                     "'");
    }
    constraint.attribute_indices_.push_back(*index);
  }
  constraint.attribute_names_ = std::move(attributes);
  constraint.values_ = std::move(values);
  constraint.lower_ = lower;
  constraint.upper_ = upper;
  return constraint;
}

bool DiversityConstraint::MatchesRow(const Relation& relation,
                                     RowId row) const {
  std::vector<ValueCode> codes;
  if (!ResolveCodes(*this, relation, &codes)) return false;
  for (size_t i = 0; i < attribute_indices_.size(); ++i) {
    if (relation.At(row, attribute_indices_[i]) != codes[i]) return false;
  }
  return true;
}

size_t DiversityConstraint::CountOccurrences(const Relation& relation) const {
  std::vector<ValueCode> codes;
  if (!ResolveCodes(*this, relation, &codes)) return 0;
  // Exact integer sum of chunk partials: the parallel total equals the
  // sequential scan for every thread count.
  return ParallelReduce<size_t>(
      relation.NumRows(), /*grain=*/0, size_t{0},
      [&](size_t begin, size_t end) {
        size_t count = 0;
        for (size_t row = begin; row < end; ++row) {
          bool match = true;
          for (size_t i = 0; i < attribute_indices_.size(); ++i) {
            if (relation.At(static_cast<RowId>(row), attribute_indices_[i]) !=
                codes[i]) {
              match = false;
              break;
            }
          }
          if (match) ++count;
        }
        return count;
      },
      [](size_t a, size_t b) { return a + b; });
}

bool DiversityConstraint::IsSatisfiedBy(const Relation& relation) const {
  size_t count = CountOccurrences(relation);
  return count >= lower_ && count <= upper_;
}

std::vector<RowId> DiversityConstraint::TargetTuples(
    const Relation& relation) const {
  std::vector<ValueCode> codes;
  if (!ResolveCodes(*this, relation, &codes)) return {};
  // Chunk-local hit lists concatenated in ascending chunk order rebuild
  // the exact row order of the sequential scan.
  return ParallelReduce<std::vector<RowId>>(
      relation.NumRows(), /*grain=*/0, {},
      [&](size_t begin, size_t end) {
        std::vector<RowId> local;
        for (size_t row = begin; row < end; ++row) {
          bool match = true;
          for (size_t i = 0; i < attribute_indices_.size(); ++i) {
            if (relation.At(static_cast<RowId>(row), attribute_indices_[i]) !=
                codes[i]) {
              match = false;
              break;
            }
          }
          if (match) local.push_back(static_cast<RowId>(row));
        }
        return local;
      },
      [](std::vector<RowId> acc, std::vector<RowId> chunk) {
        acc.insert(acc.end(), chunk.begin(), chunk.end());
        return acc;
      });
}

std::string DiversityConstraint::ToString() const {
  std::string out = Join(attribute_names_, ",");
  out += "[";
  out += Join(values_, ",");
  out += "] in [";
  out += std::to_string(lower_);
  out += ",";
  out += std::to_string(upper_);
  out += "]";
  return out;
}

bool DiversityConstraint::operator==(const DiversityConstraint& other) const {
  return attribute_indices_ == other.attribute_indices_ &&
         values_ == other.values_ && lower_ == other.lower_ &&
         upper_ == other.upper_;
}

bool SatisfiesAll(const Relation& relation,
                  const ConstraintSet& constraints) {
  for (const auto& constraint : constraints) {
    if (!constraint.IsSatisfiedBy(relation)) return false;
  }
  return true;
}

std::vector<size_t> ViolatedConstraints(const Relation& relation,
                                        const ConstraintSet& constraints) {
  std::vector<size_t> violated;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (!constraints[i].IsSatisfiedBy(relation)) violated.push_back(i);
  }
  return violated;
}

}  // namespace diva
