#ifndef DIVA_CONSTRAINT_CONFLICT_H_
#define DIVA_CONSTRAINT_CONFLICT_H_

#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// Conflict rate between two diversity constraints over `relation`
/// (Section 4, "Metrics and Parameters"): the normalized number of
/// overlapping relevant (target) tuples,
///
///   cf(si, sj) = |I_si ∩ I_sj| / min(|I_si|, |I_sj|)  ∈ [0, 1],
///
/// 0 when either target set is empty. 0 = no overlap; 1 = one target set
/// contains the other. (The paper defers the exact formula to its extended
/// report; this definition matches its stated properties.)
double PairConflictRate(const Relation& relation,
                        const DiversityConstraint& a,
                        const DiversityConstraint& b);

/// Conflict rate of a constraint set: mean pairwise conflict over all
/// unordered pairs. 0 for fewer than two constraints.
double ConflictRate(const Relation& relation,
                    const ConstraintSet& constraints);

/// Intersection size of two sorted row-id lists.
size_t SortedIntersectionSize(const std::vector<RowId>& a,
                              const std::vector<RowId>& b);

}  // namespace diva

#endif  // DIVA_CONSTRAINT_CONFLICT_H_
