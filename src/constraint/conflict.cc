#include "constraint/conflict.h"

#include <algorithm>

namespace diva {

size_t SortedIntersectionSize(const std::vector<RowId>& a,
                              const std::vector<RowId>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

double PairConflictRate(const Relation& relation,
                        const DiversityConstraint& a,
                        const DiversityConstraint& b) {
  std::vector<RowId> ta = a.TargetTuples(relation);
  std::vector<RowId> tb = b.TargetTuples(relation);
  if (ta.empty() || tb.empty()) return 0.0;
  // TargetTuples scans rows in order, so both lists are already sorted.
  size_t overlap = SortedIntersectionSize(ta, tb);
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(ta.size(), tb.size()));
}

double ConflictRate(const Relation& relation,
                    const ConstraintSet& constraints) {
  if (constraints.size() < 2) return 0.0;
  // Materialize the target sets once; pairwise intersect.
  std::vector<std::vector<RowId>> targets;
  targets.reserve(constraints.size());
  for (const auto& c : constraints) targets.push_back(c.TargetTuples(relation));

  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    for (size_t j = i + 1; j < targets.size(); ++j) {
      ++pairs;
      if (targets[i].empty() || targets[j].empty()) continue;
      size_t overlap = SortedIntersectionSize(targets[i], targets[j]);
      total += static_cast<double>(overlap) /
               static_cast<double>(std::min(targets[i].size(),
                                            targets[j].size()));
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace diva
