#include "constraint/analysis.h"

#include <algorithm>

#include "constraint/conflict.h"

namespace diva {

const char* ConstraintIssueKindToString(ConstraintIssueKind kind) {
  switch (kind) {
    case ConstraintIssueKind::kDuplicateTarget:
      return "duplicate-target";
    case ConstraintIssueKind::kContradictoryBounds:
      return "contradictory-bounds";
    case ConstraintIssueKind::kInsufficientSupport:
      return "insufficient-support";
    case ConstraintIssueKind::kUnclusterableRange:
      return "unclusterable-range";
    case ConstraintIssueKind::kNestedConflict:
      return "nested-conflict";
  }
  return "unknown";
}

namespace {

/// True when the constraints target the same attributes and values
/// (order-insensitive on the attribute list).
bool SameTarget(const DiversityConstraint& a, const DiversityConstraint& b) {
  if (a.attribute_indices().size() != b.attribute_indices().size()) {
    return false;
  }
  // Pair up (attribute, value) and compare as sets.
  std::vector<std::pair<size_t, std::string>> ta;
  std::vector<std::pair<size_t, std::string>> tb;
  for (size_t i = 0; i < a.attribute_indices().size(); ++i) {
    ta.emplace_back(a.attribute_indices()[i], a.values()[i]);
    tb.emplace_back(b.attribute_indices()[i], b.values()[i]);
  }
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  return ta == tb;
}

}  // namespace

std::vector<ConstraintIssue> AnalyzeConstraintSet(
    const Relation& relation, const ConstraintSet& constraints, size_t k) {
  std::vector<ConstraintIssue> issues;
  std::vector<std::vector<RowId>> targets;
  targets.reserve(constraints.size());
  for (const auto& constraint : constraints) {
    targets.push_back(constraint.TargetTuples(relation));
  }

  for (size_t i = 0; i < constraints.size(); ++i) {
    const DiversityConstraint& c = constraints[i];

    if (c.lower() > 0 && targets[i].size() < c.lower()) {
      issues.push_back(
          {ConstraintIssueKind::kInsufficientSupport, i,
           ConstraintIssue::kNoOther,
           c.ToString() + ": only " + std::to_string(targets[i].size()) +
               " target tuples exist, lower bound is " +
               std::to_string(c.lower())});
    }
    if (c.lower() > 0 && std::max<size_t>(k, c.lower()) > c.upper()) {
      issues.push_back(
          {ConstraintIssueKind::kUnclusterableRange, i,
           ConstraintIssue::kNoOther,
           c.ToString() + ": preserving the lower bound requires a cluster"
                          " of >= max(k=" +
               std::to_string(k) + ", " + std::to_string(c.lower()) +
               ") target tuples, which exceeds the upper bound"});
    }

    for (size_t j = i + 1; j < constraints.size(); ++j) {
      const DiversityConstraint& d = constraints[j];
      if (SameTarget(c, d)) {
        bool disjoint_ranges =
            c.upper() < d.lower() || d.upper() < c.lower();
        if (disjoint_ranges) {
          issues.push_back({ConstraintIssueKind::kContradictoryBounds, i, j,
                            c.ToString() + " and " + d.ToString() +
                                " target the same tuples with disjoint"
                                " frequency ranges"});
        } else {
          issues.push_back({ConstraintIssueKind::kDuplicateTarget, i, j,
                            c.ToString() + " duplicates the target of " +
                                d.ToString()});
        }
        continue;
      }
      // Nesting: child's target tuples a subset of the parent's. Every
      // preserved child occurrence is also a parent occurrence, so
      // child.lower > parent.upper is unsatisfiable.
      size_t overlap = SortedIntersectionSize(targets[i], targets[j]);
      if (overlap == 0) continue;
      const bool i_in_j = overlap == targets[i].size();
      const bool j_in_i = overlap == targets[j].size();
      if (i_in_j && c.lower() > d.upper()) {
        issues.push_back({ConstraintIssueKind::kNestedConflict, i, j,
                          c.ToString() + " is nested inside " + d.ToString() +
                              " but demands more occurrences than the outer"
                              " upper bound allows"});
      } else if (j_in_i && d.lower() > c.upper()) {
        issues.push_back({ConstraintIssueKind::kNestedConflict, j, i,
                          d.ToString() + " is nested inside " + c.ToString() +
                              " but demands more occurrences than the outer"
                              " upper bound allows"});
      }
    }
  }
  return issues;
}

}  // namespace diva
