#include "constraint/generator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/bitset.h"
#include "common/rng.h"
#include "constraint/conflict.h"

namespace diva {

namespace {

/// A prospective constraint target: one or two attributes, concrete
/// values, and the rows of R carrying them (sorted).
struct Candidate {
  std::vector<size_t> attrs;
  std::vector<std::string> attr_names;
  std::vector<std::string> values;
  std::vector<RowId> rows;

  size_t support() const { return rows.size(); }
};

/// Frequency-ordered single-attribute candidates for one attribute.
std::vector<Candidate> SingleAttributeCandidates(
    const Relation& relation, size_t attr,
    const ConstraintGenOptions& options) {
  std::unordered_map<ValueCode, std::vector<RowId>> rows_by_code;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    ValueCode code = relation.At(row, attr);
    if (code == kSuppressed) continue;
    rows_by_code[code].push_back(row);
  }
  std::vector<Candidate> candidates;
  // Determinism audit: this loop visits rows_by_code in hash order, but
  // the (support, value) sort below fully re-orders candidates before
  // anything observes them, so no iteration order escapes.
  for (auto& [code, rows] : rows_by_code) {
    if (rows.size() < options.min_support) continue;
    Candidate c;
    c.attrs = {attr};
    c.attr_names = {relation.schema().attribute(attr).name};
    c.values = {relation.dictionary(attr).ValueOf(code)};
    c.rows = std::move(rows);
    candidates.push_back(std::move(c));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.support() != b.support()) return a.support() > b.support();
              return a.values[0] < b.values[0];
            });
  if (candidates.size() > options.max_values_per_attribute) {
    candidates.resize(options.max_values_per_attribute);
  }
  return candidates;
}

/// Builds a two-attribute refinement of `parent`: restricts the parent's
/// rows to the modal value of a second attribute. Its target set nests
/// inside the parent's, so cf(refinement, parent) = 1 — the lever used to
/// reach high requested conflict rates.
std::optional<Candidate> RefineCandidate(const Relation& relation,
                                         const Candidate& parent,
                                         size_t other_attr,
                                         size_t min_support) {
  for (size_t attr : parent.attrs) {
    if (attr == other_attr) return std::nullopt;
  }
  std::unordered_map<ValueCode, std::vector<RowId>> rows_by_code;
  for (RowId row : parent.rows) {
    ValueCode code = relation.At(row, other_attr);
    if (code == kSuppressed) continue;
    rows_by_code[code].push_back(row);
  }
  const std::vector<RowId>* best = nullptr;
  ValueCode best_code = kSuppressed;
  // Determinism audit: hash-order iteration feeding an order-insensitive
  // max-reduction; ties break on the stable ValueCode, so the modal
  // value selected is independent of iteration order.
  for (const auto& [code, rows] : rows_by_code) {
    if (best == nullptr || rows.size() > best->size() ||
        (rows.size() == best->size() && code < best_code)) {
      best = &rows;
      best_code = code;
    }
  }
  if (best == nullptr || best->size() < min_support) return std::nullopt;
  Candidate refined;
  refined.attrs = parent.attrs;
  refined.attrs.push_back(other_attr);
  refined.attr_names = parent.attr_names;
  refined.attr_names.push_back(relation.schema().attribute(other_attr).name);
  refined.values = parent.values;
  refined.values.push_back(relation.dictionary(other_attr).ValueOf(best_code));
  refined.rows = *best;
  return refined;
}

/// Frequency range for one candidate under the requested class.
std::pair<uint32_t, uint32_t> BoundsFor(const Candidate& candidate,
                                        const ConstraintGenOptions& options,
                                        size_t num_rows, double mean_support) {
  double anchor = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  switch (options.kind) {
    case ConstraintClass::kMinimumFrequency:
      anchor = static_cast<double>(candidate.support());
      lo = std::floor(anchor * (1.0 - options.slack));
      hi = static_cast<double>(num_rows);
      break;
    case ConstraintClass::kAverage:
      anchor = mean_support;
      lo = std::floor(anchor * (1.0 - options.slack));
      hi = std::ceil(anchor * (1.0 + options.slack));
      break;
    case ConstraintClass::kProportional:
      anchor = static_cast<double>(candidate.support());
      lo = std::floor(anchor * (1.0 - options.slack));
      hi = std::ceil(anchor * (1.0 + options.slack));
      break;
  }
  uint32_t lower = static_cast<uint32_t>(std::max(1.0, lo));
  uint32_t upper =
      static_cast<uint32_t>(std::max(static_cast<double>(lower), hi));
  return {lower, upper};
}

Result<DiversityConstraint> ToConstraint(const Relation& relation,
                                         const Candidate& candidate,
                                         const ConstraintGenOptions& options,
                                         double mean_support) {
  auto [lower, upper] =
      BoundsFor(candidate, options, relation.NumRows(), mean_support);
  return DiversityConstraint::Make(relation.schema(), candidate.attr_names,
                                   candidate.values, lower, upper);
}

}  // namespace

Result<ConstraintSet> GenerateConstraints(
    const Relation& relation, const ConstraintGenOptions& options) {
  if (options.count == 0) return ConstraintSet{};
  if (options.slack < 0.0 || options.slack >= 1.0) {
    return Status::InvalidArgument("slack must be in [0, 1)");
  }

  std::vector<size_t> attrs = options.attributes;
  if (attrs.empty()) {
    for (size_t i : relation.schema().qi_indices()) {
      if (relation.schema().attribute(i).kind == AttributeKind::kCategorical) {
        attrs.push_back(i);
      }
    }
  }
  if (attrs.empty()) {
    return Status::InvalidArgument(
        "no candidate attributes for constraint generation");
  }

  // Candidate pool: per-attribute frequent values...
  std::vector<Candidate> pool;
  for (size_t attr : attrs) {
    auto singles = SingleAttributeCandidates(relation, attr, options);
    pool.insert(pool.end(), std::make_move_iterator(singles.begin()),
                std::make_move_iterator(singles.end()));
  }
  if (pool.empty()) {
    return Status::InvalidArgument(
        "no attribute value reaches min_support=" +
        std::to_string(options.min_support));
  }

  // ...plus nested refinement chains when a high conflict rate is
  // requested: A[a] ⊃ A,B[a,b] ⊃ A,B,C[a,b,c] ... Every pair inside a
  // chain has conflict rate 1, so long chains let the greedy selection
  // reach targets near 1.
  bool want_conflict =
      options.target_conflict.has_value() && *options.target_conflict > 0.0;
  // Also refine when the single-attribute pool alone cannot supply the
  // requested |Sigma| (e.g., few low-cardinality characteristic
  // attributes, as in the German Credit dataset).
  if (pool.size() < options.count) want_conflict = true;
  if (want_conflict && attrs.size() >= 2) {
    size_t num_singles = pool.size();
    for (size_t i = 0; i < num_singles; ++i) {
      Candidate current = pool[i];
      for (size_t round = 0; round + 1 < attrs.size(); ++round) {
        std::optional<Candidate> next;
        for (size_t other : attrs) {
          next = RefineCandidate(relation, current, other,
                                 options.min_support);
          if (next.has_value()) break;
        }
        if (!next.has_value()) break;
        current = *next;
        pool.push_back(current);
      }
    }
  }

  double mean_support = 0.0;
  for (const Candidate& c : pool) {
    mean_support += static_cast<double>(c.support());
  }
  mean_support /= static_cast<double>(pool.size());

  Rng rng(options.seed);
  std::vector<size_t> selected;

  if (!options.target_conflict.has_value()) {
    // No conflict target: spread picks across attributes, most frequent
    // values first, with a shuffled attribute order for seed variety.
    std::vector<size_t> order(pool.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return pool[a].support() > pool[b].support();
    });
    std::map<size_t, std::vector<size_t>> by_attr;  // attr -> pool indices
    for (size_t idx : order) by_attr[pool[idx].attrs[0]].push_back(idx);
    std::vector<std::vector<size_t>> queues;
    for (auto& [attr, q] : by_attr) queues.push_back(std::move(q));
    rng.Shuffle(&queues);
    size_t round = 0;
    while (selected.size() < options.count) {
      bool any = false;
      for (auto& queue : queues) {
        if (round < queue.size()) {
          selected.push_back(queue[round]);
          any = true;
          if (selected.size() == options.count) break;
        }
      }
      if (!any) break;
      ++round;
    }
  } else {
    // Greedy conflict targeting: keep the running mean pairwise conflict
    // of the selected set as close to the target as possible.
    double target = std::clamp(*options.target_conflict, 0.0, 1.0);
    Bitset used(pool.size());
    // cf_sum[i] = sum of cf(pool[i], s) over already-selected s.
    std::vector<double> cf_sum(pool.size(), 0.0);
    // Seed with the most frequent candidate (stable across seeds so curves
    // are comparable; the rng breaks later ties).
    size_t first = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      if (pool[i].support() > pool[first].support()) first = i;
    }
    selected.push_back(first);
    used.Set(first);
    double pair_sum = 0.0;
    while (selected.size() < options.count) {
      size_t just_added = selected.back();
      for (size_t i = 0; i < pool.size(); ++i) {
        if (used.Test(i)) continue;
        size_t overlap =
            SortedIntersectionSize(pool[i].rows, pool[just_added].rows);
        double denom = static_cast<double>(
            std::min(pool[i].rows.size(), pool[just_added].rows.size()));
        cf_sum[i] += denom > 0 ? static_cast<double>(overlap) / denom : 0.0;
      }
      size_t n = selected.size();
      double next_pairs = static_cast<double>(n * (n + 1)) / 2.0;
      double best_error = 2.0;
      size_t best = pool.size();
      size_t ties = 0;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (used.Test(i)) continue;
        double mean_cf = (pair_sum + cf_sum[i]) / next_pairs;
        double error = std::fabs(mean_cf - target);
        if (error < best_error - 1e-12) {
          best_error = error;
          best = i;
          ties = 1;
        } else if (std::fabs(error - best_error) <= 1e-12) {
          // Reservoir-style random tie-break.
          ++ties;
          if (rng.NextBounded(ties) == 0) best = i;
        }
      }
      if (best == pool.size()) break;
      pair_sum += cf_sum[best];
      selected.push_back(best);
      used.Set(best);
    }
  }

  if (selected.size() < options.count) {
    return Status::InvalidArgument(
        "candidate pool too small: requested " +
        std::to_string(options.count) + " constraints, can generate " +
        std::to_string(selected.size()));
  }

  ConstraintSet constraints;
  constraints.reserve(selected.size());
  for (size_t idx : selected) {
    DIVA_ASSIGN_OR_RETURN(
        DiversityConstraint constraint,
        ToConstraint(relation, pool[idx], options, mean_support));
    constraints.push_back(std::move(constraint));
  }
  return constraints;
}

}  // namespace diva
