#ifndef DIVA_CONSTRAINT_PARSER_H_
#define DIVA_CONSTRAINT_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "constraint/diversity_constraint.h"

namespace diva {

/// Parses one constraint from its textual form:
///
///   ETH[Asian] in [2,5]
///   GEN,ETH[Male,African] in [1,3]
///
/// Whitespace around tokens is ignored; the "in" keyword is
/// case-insensitive.
[[nodiscard]] Result<DiversityConstraint> ParseConstraint(const Schema& schema,
                                            std::string_view text);

/// Parses a newline-separated constraint set. Blank lines and lines
/// starting with '#' are skipped.
[[nodiscard]] Result<ConstraintSet> ParseConstraintSet(const Schema& schema,
                                         std::string_view text);

/// Loads a constraint set from a file at `path`.
[[nodiscard]] Result<ConstraintSet> LoadConstraintSet(const Schema& schema,
                                        const std::string& path);

}  // namespace diva

#endif  // DIVA_CONSTRAINT_PARSER_H_
