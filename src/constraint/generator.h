#ifndef DIVA_CONSTRAINT_GENERATOR_H_
#define DIVA_CONSTRAINT_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// The three diversity-constraint classes evaluated in the paper
/// (after Stoyanovich et al. [23], Section 4 "Experimental Setup").
enum class ConstraintClass {
  /// Lower bound only: at least (1 - slack) * support occurrences.
  kMinimumFrequency,
  /// Range around the mean support of the attribute's candidate values.
  kAverage,
  /// Range proportional to the value's own support in R (the class the
  /// paper runs its experiments with).
  kProportional,
};

/// Parameters for data-driven constraint generation.
struct ConstraintGenOptions {
  ConstraintClass kind = ConstraintClass::kProportional;

  /// Number of constraints to generate (|Sigma|).
  size_t count = 8;

  /// Half-width of the frequency range relative to the anchor frequency;
  /// e.g. 0.3 yields [0.7 * f, 1.3 * f].
  double slack = 0.3;

  /// Only values supported by at least this many tuples become targets.
  size_t min_support = 2;

  /// Candidate pool cap per attribute (most frequent values first).
  size_t max_values_per_attribute = 32;

  /// When set, the generator greedily selects targets so the set's
  /// average conflict rate approaches this value (see ConflictRate()).
  /// Values near 1 are reached with multi-attribute refinements whose
  /// target sets nest inside single-attribute targets.
  std::optional<double> target_conflict;

  /// Candidate attribute indices; empty = all categorical QI attributes.
  std::vector<size_t> attributes;

  uint64_t seed = 42;
};

/// Generates `options.count` diversity constraints whose targets exist in
/// `relation` with the requested support, class and (optionally) conflict
/// rate. Fails with InvalidArgument if the candidate pool is too small.
///
/// The generated set is always satisfied by `relation` itself for the
/// kProportional and kMinimumFrequency classes (the anchor frequency lies
/// inside the range).
[[nodiscard]] Result<ConstraintSet> GenerateConstraints(const Relation& relation,
                                          const ConstraintGenOptions& options);

}  // namespace diva

#endif  // DIVA_CONSTRAINT_GENERATOR_H_
