#ifndef DIVA_CONSTRAINT_DIVERSITY_CONSTRAINT_H_
#define DIVA_CONSTRAINT_DIVERSITY_CONSTRAINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relation/relation.h"

namespace diva {

/// A diversity constraint sigma = (X[t], lambda_l, lambda_r)
/// (Definition 2.3, extended to multiple attributes): the published
/// relation must contain between lambda_l and lambda_r tuples whose
/// attributes X carry exactly the values t (suppressed cells never match).
///
/// Target values are stored as strings and resolved against a relation's
/// dictionaries on demand, so one constraint can be checked against R, RΣ,
/// and R* interchangeably.
class DiversityConstraint {
 public:
  /// Validates attribute names against `schema` and bounds
  /// (lower <= upper). Attribute list and value list must be the same
  /// length, non-empty, with no duplicate attributes.
  [[nodiscard]] static Result<DiversityConstraint> Make(const Schema& schema,
                                          std::vector<std::string> attributes,
                                          std::vector<std::string> values,
                                          uint32_t lower, uint32_t upper);

  /// Attribute indices X (in schema order of declaration).
  const std::vector<size_t>& attribute_indices() const {
    return attribute_indices_;
  }
  const std::vector<std::string>& attribute_names() const {
    return attribute_names_;
  }
  /// Target values t, parallel to attribute_indices().
  const std::vector<std::string>& values() const { return values_; }

  uint32_t lower() const { return lower_; }
  uint32_t upper() const { return upper_; }

  /// True if the tuple `row` of `relation` carries the target values on
  /// every target attribute.
  bool MatchesRow(const Relation& relation, RowId row) const;

  /// Number of tuples of `relation` matching the target (the validation
  /// count query of Definition 2.3).
  size_t CountOccurrences(const Relation& relation) const;

  /// R |= sigma: CountOccurrences in [lower, upper].
  bool IsSatisfiedBy(const Relation& relation) const;

  /// The target tuples I_sigma: ids of rows matching the target values.
  std::vector<RowId> TargetTuples(const Relation& relation) const;

  /// "ETH[Asian] in [2,5]" / "GEN,ETH[Male,African] in [1,3]".
  std::string ToString() const;

  bool operator==(const DiversityConstraint& other) const;

 private:
  DiversityConstraint() = default;

  std::vector<size_t> attribute_indices_;
  std::vector<std::string> attribute_names_;
  std::vector<std::string> values_;
  uint32_t lower_ = 0;
  uint32_t upper_ = 0;

  // Per-relation resolution cache would be unsafe (constraints outlive
  // relations); resolution is recomputed per call and is O(|X|) hash
  // lookups, negligible next to the row scan.
};

/// A set Sigma of diversity constraints. R |= Sigma iff R satisfies every
/// member (Definition 2.3).
using ConstraintSet = std::vector<DiversityConstraint>;

/// True iff relation satisfies every constraint in `constraints`.
bool SatisfiesAll(const Relation& relation, const ConstraintSet& constraints);

/// Indices of constraints in `constraints` violated by `relation`.
std::vector<size_t> ViolatedConstraints(const Relation& relation,
                                        const ConstraintSet& constraints);

/// Occurrence counts of every constraint in one pass over the relation:
/// counts[i] == constraints[i].CountOccurrences(relation), exactly.
/// Single-attribute constraints (the common case) read per-attribute code
/// histograms built in one parallel scan, so the cost is O(|R| * |QI|)
/// instead of O(|R| * |Sigma|); multi-attribute constraints share one
/// additional row scan. Exact integer sums, so the result is identical
/// at every thread width.
std::vector<size_t> CountAllOccurrences(const Relation& relation,
                                        const ConstraintSet& constraints);

}  // namespace diva

#endif  // DIVA_CONSTRAINT_DIVERSITY_CONSTRAINT_H_
