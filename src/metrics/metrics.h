#ifndef DIVA_METRICS_METRICS_H_
#define DIVA_METRICS_METRICS_H_

#include <cstdint>

#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// Number of suppressed cells (★s) in the relation — the paper's primary
/// information-loss measure (Definition 2.2).
size_t CountStars(const Relation& relation);

/// ★s as a fraction of all QI cells, in [0, 1]. 0 for an empty relation.
double SuppressionRatio(const Relation& relation);

/// Bayardo–Agrawal discernibility metric disc(R', k): each tuple is
/// penalized by the size of its QI-group when that group meets the
/// k-anonymity bound, and by |R'| otherwise, i.e.
///   disc = sum over groups G of (|G| >= k ? |G|^2 : |R'| * |G|).
uint64_t Discernibility(const Relation& relation, size_t k);

/// Discernibility normalized to an accuracy score in [0, 1]:
///   1  when every QI-group has the minimum size k (disc = N*k),
///   0  when all tuples are mutually indistinguishable (disc = N^2).
/// Degenerate cases (N <= k) score 1.
double DiscernibilityAccuracy(const Relation& relation, size_t k);

/// Fraction of constraints in `constraints` satisfied by `relation`
/// (1.0 for an empty set).
double SatisfiedFraction(const Relation& relation,
                         const ConstraintSet& constraints);

/// The evaluation's accuracy measure (DESIGN.md §3): discernibility
/// accuracy multiplied by the satisfied-constraint fraction, so both
/// information loss and failed diversity requirements lower the score.
double OverallAccuracy(const Relation& relation, size_t k,
                       const ConstraintSet& constraints);

}  // namespace diva

#endif  // DIVA_METRICS_METRICS_H_
