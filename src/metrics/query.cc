#include "metrics/query.h"

namespace diva {

Result<CountBounds> CountValue(const Relation& relation,
                               std::string_view attribute,
                               std::string_view value) {
  auto attr = relation.schema().IndexOf(attribute);
  if (!attr.has_value()) {
    return Status::NotFound("unknown attribute '" + std::string(attribute) +
                            "'");
  }
  auto code = relation.FindCode(*attr, value);
  CountBounds bounds;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    ValueCode cell = relation.At(row, *attr);
    if (cell == kSuppressed) {
      ++bounds.possible;
    } else if (code.has_value() && cell == *code) {
      ++bounds.certain;
      ++bounds.possible;
    }
  }
  return bounds;
}

CountBounds CountTarget(const Relation& relation,
                        const DiversityConstraint& constraint) {
  const auto& attrs = constraint.attribute_indices();
  const auto& values = constraint.values();
  std::vector<std::optional<ValueCode>> codes(attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    codes[i] = relation.FindCode(attrs[i], values[i]);
  }
  CountBounds bounds;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    bool all_match = true;
    bool all_compatible = true;
    for (size_t i = 0; i < attrs.size() && all_compatible; ++i) {
      ValueCode cell = relation.At(row, attrs[i]);
      if (cell == kSuppressed) {
        all_match = false;  // could match, does not certainly
      } else if (!codes[i].has_value() || cell != *codes[i]) {
        all_match = false;
        all_compatible = false;
      }
    }
    if (all_match) ++bounds.certain;
    if (all_compatible) ++bounds.possible;
  }
  return bounds;
}

Result<std::map<std::string, CountBounds>> Histogram(
    const Relation& relation, std::string_view attribute) {
  auto attr = relation.schema().IndexOf(attribute);
  if (!attr.has_value()) {
    return Status::NotFound("unknown attribute '" + std::string(attribute) +
                            "'");
  }
  std::map<std::string, CountBounds> histogram;
  size_t suppressed = 0;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    if (relation.IsSuppressed(row, *attr)) {
      ++suppressed;
    } else {
      ++histogram[relation.ValueString(row, *attr)].certain;
    }
  }
  for (auto& [value, bounds] : histogram) {
    bounds.possible = bounds.certain + suppressed;
  }
  return histogram;
}

double UncertaintyRatio(const CountBounds& bounds) {
  if (bounds.possible == 0) return 0.0;
  return static_cast<double>(bounds.possible - bounds.certain) /
         static_cast<double>(bounds.possible);
}

}  // namespace diva
