#ifndef DIVA_METRICS_QUERY_H_
#define DIVA_METRICS_QUERY_H_

#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// Interval answer to a counting query over suppressed data: the true
/// count on the original relation is guaranteed to lie in
/// [certain, possible]. `certain` counts rows that still match exactly;
/// `possible` additionally counts rows whose suppressed cells *could*
/// have matched. On an unsuppressed relation certain == possible.
struct CountBounds {
  size_t certain = 0;
  size_t possible = 0;

  bool operator==(const CountBounds& other) const {
    return certain == other.certain && possible == other.possible;
  }
};

/// Bounds for "how many rows carry `value` in attribute `attr`".
/// Fails with NotFound for an unknown attribute name.
[[nodiscard]] Result<CountBounds> CountValue(const Relation& relation,
                               std::string_view attribute,
                               std::string_view value);

/// Bounds for a multi-attribute target (the same match semantics as a
/// diversity constraint): a row is certain if every target attribute
/// matches, possible if every target attribute matches or is suppressed.
CountBounds CountTarget(const Relation& relation,
                        const DiversityConstraint& constraint);

/// Per-value histogram of `attribute` with bounds. Every value's
/// `possible` includes the attribute's suppressed cells (any of them
/// could hide any value). Fails with NotFound for an unknown attribute.
[[nodiscard]] Result<std::map<std::string, CountBounds>> Histogram(
    const Relation& relation, std::string_view attribute);

/// Relative width of the uncertainty interval of a counting query,
/// (possible - certain) / max(1, possible) in [0, 1] — a quick
/// utility-degradation gauge for analysts.
double UncertaintyRatio(const CountBounds& bounds);

}  // namespace diva

#endif  // DIVA_METRICS_QUERY_H_
