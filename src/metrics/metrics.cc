#include "metrics/metrics.h"

#include "relation/qi_groups.h"

namespace diva {

size_t CountStars(const Relation& relation) {
  size_t stars = 0;
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    for (size_t col = 0; col < relation.NumAttributes(); ++col) {
      if (relation.At(row, col) == kSuppressed) ++stars;
    }
  }
  return stars;
}

double SuppressionRatio(const Relation& relation) {
  size_t qi_cells = relation.NumRows() * relation.schema().qi_indices().size();
  if (qi_cells == 0) return 0.0;
  return static_cast<double>(CountStars(relation)) /
         static_cast<double>(qi_cells);
}

uint64_t Discernibility(const Relation& relation, size_t k) {
  QiGroups groups = ComputeQiGroups(relation);
  uint64_t n = relation.NumRows();
  uint64_t disc = 0;
  for (const auto& group : groups.groups) {
    uint64_t size = group.size();
    disc += size >= k ? size * size : n * size;
  }
  return disc;
}

double DiscernibilityAccuracy(const Relation& relation, size_t k) {
  uint64_t n = relation.NumRows();
  if (n == 0 || n <= k) return 1.0;
  uint64_t disc = Discernibility(relation, k);
  double best = static_cast<double>(n) * static_cast<double>(k);
  double worst = static_cast<double>(n) * static_cast<double>(n);
  if (worst <= best) return 1.0;
  double accuracy =
      (worst - static_cast<double>(disc)) / (worst - best);
  if (accuracy < 0.0) return 0.0;
  if (accuracy > 1.0) return 1.0;
  return accuracy;
}

double SatisfiedFraction(const Relation& relation,
                         const ConstraintSet& constraints) {
  if (constraints.empty()) return 1.0;
  size_t satisfied = 0;
  for (const auto& constraint : constraints) {
    if (constraint.IsSatisfiedBy(relation)) ++satisfied;
  }
  return static_cast<double>(satisfied) /
         static_cast<double>(constraints.size());
}

double OverallAccuracy(const Relation& relation, size_t k,
                       const ConstraintSet& constraints) {
  return DiscernibilityAccuracy(relation, k) *
         SatisfiedFraction(relation, constraints);
}

}  // namespace diva
