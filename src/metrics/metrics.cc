#include "metrics/metrics.h"

#include "common/parallel.h"
#include "relation/qi_groups.h"

namespace diva {

size_t CountStars(const Relation& relation) {
  // Exact integer sum of per-chunk star counts == the sequential scan.
  return ParallelReduce<size_t>(
      relation.NumRows(), /*grain=*/0, size_t{0},
      [&](size_t begin, size_t end) {
        size_t stars = 0;
        for (size_t row = begin; row < end; ++row) {
          for (size_t col = 0; col < relation.NumAttributes(); ++col) {
            if (relation.At(static_cast<RowId>(row), col) == kSuppressed) {
              ++stars;
            }
          }
        }
        return stars;
      },
      [](size_t a, size_t b) { return a + b; });
}

double SuppressionRatio(const Relation& relation) {
  size_t qi_cells = relation.NumRows() * relation.schema().qi_indices().size();
  if (qi_cells == 0) return 0.0;
  return static_cast<double>(CountStars(relation)) /
         static_cast<double>(qi_cells);
}

uint64_t Discernibility(const Relation& relation, size_t k) {
  QiGroups groups = ComputeQiGroups(relation);
  uint64_t n = relation.NumRows();
  // Integer penalty sum over groups; chunk partials add up exactly.
  return ParallelReduce<uint64_t>(
      groups.groups.size(), /*grain=*/0, uint64_t{0},
      [&](size_t begin, size_t end) {
        uint64_t disc = 0;
        for (size_t g = begin; g < end; ++g) {
          uint64_t size = groups.groups[g].size();
          disc += size >= k ? size * size : n * size;
        }
        return disc;
      },
      [](uint64_t a, uint64_t b) { return a + b; });
}

double DiscernibilityAccuracy(const Relation& relation, size_t k) {
  uint64_t n = relation.NumRows();
  if (n == 0 || n <= k) return 1.0;
  uint64_t disc = Discernibility(relation, k);
  double best = static_cast<double>(n) * static_cast<double>(k);
  double worst = static_cast<double>(n) * static_cast<double>(n);
  if (worst <= best) return 1.0;
  double accuracy =
      (worst - static_cast<double>(disc)) / (worst - best);
  if (accuracy < 0.0) return 0.0;
  if (accuracy > 1.0) return 1.0;
  return accuracy;
}

double SatisfiedFraction(const Relation& relation,
                         const ConstraintSet& constraints) {
  if (constraints.empty()) return 1.0;
  // Stays a plain loop on purpose: IsSatisfiedBy -> CountOccurrences is
  // already a parallel row scan, and the layer rejects nested loops.
  // Rows outnumber constraints by orders of magnitude, so the inner
  // level is the right one to parallelize.
  size_t satisfied = 0;
  for (const auto& constraint : constraints) {
    if (constraint.IsSatisfiedBy(relation)) ++satisfied;
  }
  return static_cast<double>(satisfied) /
         static_cast<double>(constraints.size());
}

double OverallAccuracy(const Relation& relation, size_t k,
                       const ConstraintSet& constraints) {
  return DiscernibilityAccuracy(relation, k) *
         SatisfiedFraction(relation, constraints);
}

}  // namespace diva
