#ifndef DIVA_DATAGEN_PROFILES_H_
#define DIVA_DATAGEN_PROFILES_H_

#include "common/result.h"
#include "constraint/generator.h"
#include "datagen/synthetic.h"

namespace diva {

/// Synthetic stand-ins for the paper's four evaluation datasets
/// (Table 4). Each profile matches the original's row count, attribute
/// count, approximate QI-projection cardinality |Pi_QI(R)|, and value
/// skew; see DESIGN.md §3 for the substitution argument.
enum class DatasetProfile {
  /// Pantheon (Wikipedia individuals): 11,341 x 17, |Pi_QI| ~ 5,636.
  kPantheon,
  /// U.S. Census population data: 299,285 x 40, |Pi_QI| ~ 12,405.
  kCensus,
  /// German Credit: 1,000 x 20, |Pi_QI| ~ 60.
  kCredit,
  /// Pop-Syn (Synner.io-style synthetic population): 100,000 x 7,
  /// |Pi_QI| ~ 24,630. Mirrors the paper's running medical example
  /// (GEN/ETH/AGE/PRV/CTY quasi-identifiers, DIAG sensitive).
  kPopSyn,
};

const char* DatasetProfileToString(DatasetProfile profile);

/// Default |Sigma| used with each profile in the paper (Table 4).
size_t DefaultConstraintCount(DatasetProfile profile);

struct ProfileOptions {
  /// Override the profile's default row count (0 = default). Used by the
  /// |R| sweeps of Fig 5c/5d.
  size_t num_rows = 0;

  /// Distribution of the characteristic attributes' values (Fig 4d knob;
  /// honored by kPopSyn, others use their calibrated skew).
  ValueDistribution characteristic_distribution = ValueDistribution::kZipfian;

  uint64_t seed = 42;
};

/// The SyntheticSpec behind a profile (exposed for tests and ablations).
SyntheticSpec ProfileSpec(DatasetProfile profile,
                          const ProfileOptions& options = {});

/// Generates the profile's relation.
[[nodiscard]] Result<Relation> GenerateProfile(DatasetProfile profile,
                                 const ProfileOptions& options = {});

/// Generates the profile's default constraint set (proportional class,
/// Table 4 sizes) against `relation`, which must come from the same
/// profile.
[[nodiscard]] Result<ConstraintSet> DefaultConstraints(DatasetProfile profile,
                                         const Relation& relation,
                                         uint64_t seed = 42);

}  // namespace diva

#endif  // DIVA_DATAGEN_PROFILES_H_
