#ifndef DIVA_DATAGEN_SYNTHETIC_H_
#define DIVA_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "relation/relation.h"

namespace diva {

/// Marginal distribution of an attribute's values over its domain.
enum class ValueDistribution {
  kUniform,
  /// Rank-frequency f(r) ~ 1/r^s (skew parameter per attribute).
  kZipfian,
  /// Discretized normal centered on the middle of the domain
  /// (stddev = domain/6, clamped).
  kGaussian,
};

const char* ValueDistributionToString(ValueDistribution dist);

/// One synthetic attribute.
struct AttributeSpec {
  std::string name;
  AttributeRole role = AttributeRole::kQuasiIdentifier;
  AttributeKind kind = AttributeKind::kCategorical;

  /// Number of distinct values the attribute can take (>= 1).
  size_t domain_size = 8;

  ValueDistribution distribution = ValueDistribution::kUniform;
  /// Zipf skew (only for kZipfian).
  double zipf_skew = 1.0;

  /// Probability in [0, 1] that a row's value is derived from the row's
  /// latent class instead of sampled independently. Correlated attributes
  /// produce overlapping constraint target sets (non-zero conflict rates).
  double correlation = 0.0;

  /// Numeric attributes emit integer strings starting here
  /// (value = numeric_base + domain index), e.g. ages 18..(18+domain-1).
  int64_t numeric_base = 0;
};

/// Full synthetic relation spec.
struct SyntheticSpec {
  std::vector<AttributeSpec> attributes;
  size_t num_rows = 1000;
  /// Number of latent classes driving correlated attributes.
  size_t num_latent_classes = 16;
  /// Skew of the latent class distribution.
  double latent_skew = 1.0;
  uint64_t seed = 42;
};

/// Samples values over a fixed domain according to one distribution.
class DomainSampler {
 public:
  DomainSampler(ValueDistribution distribution, size_t domain_size,
                double zipf_skew);

  /// Returns a domain index in [0, domain_size).
  size_t Sample(Rng* rng) const;

  size_t domain_size() const { return domain_size_; }

 private:
  ValueDistribution distribution_;
  size_t domain_size_;
  std::optional<ZipfSampler> zipf_;
};

/// Generates a relation per `spec`. Categorical attribute values are
/// "<name>_v<i>"; numeric attribute values are decimal integers.
/// Deterministic in spec.seed.
[[nodiscard]] Result<Relation> GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace diva

#endif  // DIVA_DATAGEN_SYNTHETIC_H_
