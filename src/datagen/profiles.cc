#include "datagen/profiles.h"

namespace diva {

namespace {

AttributeSpec Id(const std::string& name) {
  AttributeSpec spec;
  spec.name = name;
  spec.role = AttributeRole::kIdentifier;
  spec.domain_size = 1;  // ignored for identifiers
  return spec;
}

AttributeSpec Categorical(const std::string& name, AttributeRole role,
                          size_t domain, ValueDistribution dist,
                          double skew = 1.0, double correlation = 0.0) {
  AttributeSpec spec;
  spec.name = name;
  spec.role = role;
  spec.kind = AttributeKind::kCategorical;
  spec.domain_size = domain;
  spec.distribution = dist;
  spec.zipf_skew = skew;
  spec.correlation = correlation;
  return spec;
}

AttributeSpec Numeric(const std::string& name, AttributeRole role,
                      size_t domain, int64_t base, ValueDistribution dist) {
  AttributeSpec spec;
  spec.name = name;
  spec.role = role;
  spec.kind = AttributeKind::kNumeric;
  spec.domain_size = domain;
  spec.numeric_base = base;
  spec.distribution = dist;
  return spec;
}

/// Low-cardinality published (sensitive-role) filler columns that bring
/// the attribute count up to the original dataset's width without
/// entering the QI projection.
void AddFillers(SyntheticSpec* spec, const std::string& prefix,
                size_t count) {
  for (size_t i = 0; i < count; ++i) {
    spec->attributes.push_back(
        Categorical(prefix + std::to_string(i), AttributeRole::kSensitive,
                    4 + (i % 5), ValueDistribution::kUniform));
  }
}

constexpr AttributeRole kQi = AttributeRole::kQuasiIdentifier;
constexpr AttributeRole kSens = AttributeRole::kSensitive;
constexpr ValueDistribution kUnif = ValueDistribution::kUniform;
constexpr ValueDistribution kZipf = ValueDistribution::kZipfian;
constexpr ValueDistribution kGauss = ValueDistribution::kGaussian;

}  // namespace

const char* DatasetProfileToString(DatasetProfile profile) {
  switch (profile) {
    case DatasetProfile::kPantheon:
      return "Pantheon";
    case DatasetProfile::kCensus:
      return "Census";
    case DatasetProfile::kCredit:
      return "Credit";
    case DatasetProfile::kPopSyn:
      return "Pop-Syn";
  }
  return "unknown";
}

size_t DefaultConstraintCount(DatasetProfile profile) {
  switch (profile) {
    case DatasetProfile::kPantheon:
      return 24;
    case DatasetProfile::kCensus:
      return 21;
    case DatasetProfile::kCredit:
      return 18;
    case DatasetProfile::kPopSyn:
      return 10;
  }
  return 8;
}

SyntheticSpec ProfileSpec(DatasetProfile profile,
                          const ProfileOptions& options) {
  SyntheticSpec spec;
  spec.seed = options.seed;
  switch (profile) {
    case DatasetProfile::kPantheon: {
      spec.num_rows = options.num_rows ? options.num_rows : 11341;
      spec.num_latent_classes = 24;
      spec.latent_skew = 1.0;
      spec.attributes.push_back(Id("ID"));
      spec.attributes.push_back(
          Categorical("GEN", kQi, 2, kZipf, 0.6, /*correlation=*/0.2));
      spec.attributes.push_back(
          Categorical("CONTINENT", kQi, 6, kUnif, 1.0, 0.3));
      spec.attributes.push_back(
          Categorical("COUNTRY", kQi, 40, kZipf, 1.3, 0.3));
      spec.attributes.push_back(
          Categorical("OCCUPATION", kQi, 30, kZipf, 1.45, 0.25));
      spec.attributes.push_back(Numeric("BIRTH_DECADE", kQi, 12, 1900, kGauss));
      spec.attributes.push_back(
          Categorical("NOTABILITY", kSens, 20, kZipf, 1.1));
      AddFillers(&spec, "P", 17 - spec.attributes.size());
      break;
    }
    case DatasetProfile::kCensus: {
      spec.num_rows = options.num_rows ? options.num_rows : 299285;
      spec.num_latent_classes = 32;
      spec.latent_skew = 1.1;
      spec.attributes.push_back(Id("ID"));
      spec.attributes.push_back(
          Categorical("SEX", kQi, 2, kUnif, 1.0, 0.2));
      spec.attributes.push_back(
          Categorical("RACE", kQi, 9, kZipf, 1.8, 0.35));
      spec.attributes.push_back(
          Categorical("STATE", kQi, 51, kZipf, 1.7, 0.3));
      spec.attributes.push_back(Numeric("AGE", kQi, 60, 18, kGauss));
      spec.attributes.push_back(
          Categorical("INCOME_BAND", kSens, 16, kZipf, 1.2));
      AddFillers(&spec, "C", 40 - spec.attributes.size());
      break;
    }
    case DatasetProfile::kCredit: {
      spec.num_rows = options.num_rows ? options.num_rows : 1000;
      spec.num_latent_classes = 8;
      spec.latent_skew = 1.2;
      spec.attributes.push_back(Id("ID"));
      spec.attributes.push_back(
          Categorical("SEX", kQi, 2, kUnif, 1.0, 0.3));
      spec.attributes.push_back(
          Categorical("HOUSING", kQi, 3, kZipf, 1.0, 0.35));
      spec.attributes.push_back(
          Categorical("PURPOSE", kQi, 10, kZipf, 1.4, 0.35));
      spec.attributes.push_back(
          Categorical("RISK", kSens, 2, kZipf, 0.7));
      AddFillers(&spec, "G", 20 - spec.attributes.size());
      break;
    }
    case DatasetProfile::kPopSyn: {
      spec.num_rows = options.num_rows ? options.num_rows : 100000;
      spec.num_latent_classes = 16;
      spec.latent_skew = 1.0;
      ValueDistribution char_dist = options.characteristic_distribution;
      // Mirrors the paper's running example schema (Tables 1-3).
      spec.attributes.push_back(Id("ID"));
      spec.attributes.push_back(
          Categorical("GEN", kQi, 3, char_dist, 0.7, 0.25));
      spec.attributes.push_back(
          Categorical("ETH", kQi, 8, char_dist, 1.3, 0.35));
      spec.attributes.push_back(Numeric("AGE", kQi, 35, 20, kGauss));
      spec.attributes.push_back(
          Categorical("PRV", kQi, 13, char_dist, 1.2, 0.3));
      spec.attributes.push_back(
          Categorical("CTY", kQi, 40, char_dist, 1.6, 0.4));
      spec.attributes.push_back(
          Categorical("DIAG", kSens, 40, kZipf, 1.1));
      break;
    }
  }
  return spec;
}

Result<Relation> GenerateProfile(DatasetProfile profile,
                                 const ProfileOptions& options) {
  return GenerateSynthetic(ProfileSpec(profile, options));
}

Result<ConstraintSet> DefaultConstraints(DatasetProfile profile,
                                         const Relation& relation,
                                         uint64_t seed) {
  ConstraintGenOptions gen;
  gen.kind = ConstraintClass::kProportional;
  gen.count = DefaultConstraintCount(profile);
  gen.slack = 0.3;
  gen.min_support = 4;
  gen.seed = seed;
  return GenerateConstraints(relation, gen);
}

}  // namespace diva
