#include "datagen/synthetic.h"

#include <algorithm>
#include <cmath>

namespace diva {

const char* ValueDistributionToString(ValueDistribution dist) {
  switch (dist) {
    case ValueDistribution::kUniform:
      return "Uniform";
    case ValueDistribution::kZipfian:
      return "Zipfian";
    case ValueDistribution::kGaussian:
      return "Gaussian";
  }
  return "unknown";
}

DomainSampler::DomainSampler(ValueDistribution distribution,
                             size_t domain_size, double zipf_skew)
    : distribution_(distribution), domain_size_(std::max<size_t>(1, domain_size)) {
  if (distribution_ == ValueDistribution::kZipfian) {
    zipf_.emplace(domain_size_, zipf_skew);
  }
}

size_t DomainSampler::Sample(Rng* rng) const {
  switch (distribution_) {
    case ValueDistribution::kUniform:
      return static_cast<size_t>(rng->NextBounded(domain_size_));
    case ValueDistribution::kZipfian:
      return zipf_->Sample(rng);
    case ValueDistribution::kGaussian: {
      double center = static_cast<double>(domain_size_ - 1) / 2.0;
      double stddev = std::max(1.0, static_cast<double>(domain_size_) / 6.0);
      double v = std::round(center + rng->Gaussian() * stddev);
      if (v < 0.0) v = 0.0;
      double max_index = static_cast<double>(domain_size_ - 1);
      if (v > max_index) v = max_index;
      return static_cast<size_t>(v);
    }
  }
  return 0;
}

Result<Relation> GenerateSynthetic(const SyntheticSpec& spec) {
  if (spec.attributes.empty()) {
    return Status::InvalidArgument("synthetic spec has no attributes");
  }
  std::vector<Attribute> schema_attrs;
  schema_attrs.reserve(spec.attributes.size());
  for (const AttributeSpec& attr : spec.attributes) {
    if (attr.domain_size == 0) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' has empty domain");
    }
    if (attr.correlation < 0.0 || attr.correlation > 1.0) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' correlation must be in [0,1]");
    }
    schema_attrs.push_back({attr.name, attr.role, attr.kind});
  }
  DIVA_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                        Schema::Make(std::move(schema_attrs)));

  // Pre-render value strings per attribute so row generation is just
  // index sampling + code lookup.
  Relation relation(schema);
  std::vector<std::vector<ValueCode>> codes(spec.attributes.size());
  for (size_t a = 0; a < spec.attributes.size(); ++a) {
    const AttributeSpec& attr = spec.attributes[a];
    if (attr.role == AttributeRole::kIdentifier) continue;  // per-row values
    codes[a].reserve(attr.domain_size);
    for (size_t v = 0; v < attr.domain_size; ++v) {
      std::string text =
          attr.kind == AttributeKind::kNumeric
              ? std::to_string(attr.numeric_base + static_cast<int64_t>(v))
              : attr.name + "_v" + std::to_string(v);
      codes[a].push_back(relation.Encode(a, text));
    }
  }

  std::vector<DomainSampler> samplers;
  samplers.reserve(spec.attributes.size());
  for (const AttributeSpec& attr : spec.attributes) {
    samplers.emplace_back(attr.distribution, attr.domain_size,
                          attr.zipf_skew);
  }

  size_t latent_classes = std::max<size_t>(1, spec.num_latent_classes);
  ZipfSampler latent(latent_classes, spec.latent_skew);
  Rng rng(spec.seed);

  std::vector<ValueCode> row(spec.attributes.size());
  for (size_t r = 0; r < spec.num_rows; ++r) {
    size_t latent_class = latent.Sample(&rng);
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      const AttributeSpec& attr = spec.attributes[a];
      size_t index;
      if (attr.role == AttributeRole::kIdentifier) {
        // Identifiers are unique per row; domain_size is ignored.
        row[a] = relation.Encode(a, attr.name + "_" + std::to_string(r));
        continue;
      }
      if (attr.correlation > 0.0 &&
          rng.UniformDouble() < attr.correlation) {
        // Deterministic mapping latent class -> domain value, salted per
        // attribute so correlated attributes are not identical.
        index = (latent_class * 2654435761ULL + a * 97003ULL) %
                attr.domain_size;
      } else {
        index = samplers[a].Sample(&rng);
      }
      row[a] = codes[a][index];
    }
    relation.AppendRow(row);
  }
  return relation;
}

}  // namespace diva
