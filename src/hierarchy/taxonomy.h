#ifndef DIVA_HIERARCHY_TAXONOMY_H_
#define DIVA_HIERARCHY_TAXONOMY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace diva {

/// A value generalization hierarchy (taxonomy tree) for one attribute:
/// leaves are domain values, internal nodes are coarser labels, the root
/// generalizes everything (suppression is the degenerate flat taxonomy —
/// the paper treats ★ as "a maximal form of generalization").
///
/// Used by the generalization recoder (hierarchy/generalize.h) to replace
/// a cluster's disagreeing values with their lowest common ancestor
/// instead of a ★, and by the NCP information-loss metric.
class Taxonomy {
 public:
  using NodeId = int32_t;
  static constexpr NodeId kInvalidNode = -1;

  /// Builds from (child, parent) label pairs. Exactly one label must end
  /// up parentless (the root); labels are unique; cycles are rejected.
  [[nodiscard]] static Result<Taxonomy> FromParentPairs(
      const std::vector<std::pair<std::string, std::string>>& pairs);

  /// Parses the textual form: one "child,parent" pair per line; blank
  /// lines and '#' comments ignored.
  [[nodiscard]] static Result<Taxonomy> FromText(std::string_view text);

  /// Flat two-level taxonomy: every value under a single root label.
  /// Generalizing with it is exactly suppression.
  static Taxonomy Flat(const std::vector<std::string>& leaves,
                       const std::string& root_label = "*");

  /// Interval hierarchy over the integers [lo, hi]: leaves are single
  /// values, parents are ranges of `fanout` children ("[20-29]"), up to a
  /// root spanning everything. fanout >= 2.
  [[nodiscard]] static Result<Taxonomy> Intervals(int64_t lo, int64_t hi, size_t fanout);

  NodeId root() const { return root_; }
  size_t NumNodes() const { return labels_.size(); }
  size_t NumLeaves() const { return num_leaves_; }

  /// Node carrying `label`, if any.
  std::optional<NodeId> Find(std::string_view label) const;

  const std::string& Label(NodeId node) const { return labels_[node]; }
  NodeId Parent(NodeId node) const { return parents_[node]; }
  bool IsLeaf(NodeId node) const { return leaf_counts_[node] == 1; }
  /// Distance from the root (root = 0).
  size_t Depth(NodeId node) const { return depths_[node]; }
  /// Number of leaves in the subtree under `node`.
  size_t LeafCount(NodeId node) const { return leaf_counts_[node]; }

  /// Lowest common ancestor of two nodes.
  NodeId Lca(NodeId a, NodeId b) const;

  /// LCA of a set of labels; fails if any label is unknown.
  [[nodiscard]] Result<NodeId> LcaOfLabels(const std::vector<std::string>& labels) const;

 private:
  Taxonomy() = default;
  [[nodiscard]] Status FinishConstruction();

  std::vector<std::string> labels_;
  std::vector<NodeId> parents_;        // kInvalidNode for the root
  std::vector<size_t> depths_;
  std::vector<size_t> leaf_counts_;
  std::unordered_map<std::string, NodeId> index_;
  NodeId root_ = kInvalidNode;
  size_t num_leaves_ = 0;
};

}  // namespace diva

#endif  // DIVA_HIERARCHY_TAXONOMY_H_
