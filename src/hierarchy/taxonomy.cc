#include "hierarchy/taxonomy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace diva {

namespace {

std::string IntervalLabel(int64_t lo, int64_t hi) {
  if (lo == hi) return std::to_string(lo);
  return "[" + std::to_string(lo) + "-" + std::to_string(hi) + "]";
}

}  // namespace

Result<Taxonomy> Taxonomy::FromParentPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Taxonomy taxonomy;
  auto intern = [&taxonomy](const std::string& label) -> NodeId {
    auto it = taxonomy.index_.find(label);
    if (it != taxonomy.index_.end()) return it->second;
    NodeId id = static_cast<NodeId>(taxonomy.labels_.size());
    taxonomy.labels_.push_back(label);
    taxonomy.parents_.push_back(kInvalidNode);
    taxonomy.index_.emplace(label, id);
    return id;
  };

  for (const auto& [child, parent] : pairs) {
    if (child.empty() || parent.empty()) {
      return Status::InvalidArgument("taxonomy labels must be non-empty");
    }
    if (child == parent) {
      return Status::InvalidArgument("taxonomy self-loop on '" + child + "'");
    }
    NodeId child_id = intern(child);
    NodeId parent_id = intern(parent);
    if (taxonomy.parents_[child_id] != kInvalidNode &&
        taxonomy.parents_[child_id] != parent_id) {
      return Status::InvalidArgument("taxonomy node '" + child +
                                     "' has two parents");
    }
    taxonomy.parents_[child_id] = parent_id;
  }
  DIVA_RETURN_IF_ERROR(taxonomy.FinishConstruction());
  return taxonomy;
}

Result<Taxonomy> Taxonomy::FromText(std::string_view text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    auto parts = Split(line, ',');
    if (parts.size() != 2) {
      return Status::InvalidArgument("taxonomy line must be 'child,parent': " +
                                     std::string(line));
    }
    pairs.emplace_back(std::string(Trim(parts[0])),
                       std::string(Trim(parts[1])));
  }
  return FromParentPairs(pairs);
}

Taxonomy Taxonomy::Flat(const std::vector<std::string>& leaves,
                        const std::string& root_label) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(leaves.size());
  for (const std::string& leaf : leaves) {
    pairs.emplace_back(leaf, root_label);
  }
  auto taxonomy = FromParentPairs(pairs);
  DIVA_CHECK_MSG(taxonomy.ok(), taxonomy.status().ToString());
  return std::move(taxonomy).value();
}

Result<Taxonomy> Taxonomy::Intervals(int64_t lo, int64_t hi, size_t fanout) {
  if (hi < lo) return Status::InvalidArgument("empty interval domain");
  if (fanout < 2) return Status::InvalidArgument("interval fanout must be >= 2");

  std::vector<std::pair<std::string, std::string>> pairs;
  // Level 0: single values; build ranges upward until one range remains.
  struct Range {
    int64_t lo;
    int64_t hi;
  };
  std::vector<Range> current;
  for (int64_t v = lo; v <= hi; ++v) current.push_back({v, v});
  while (current.size() > 1) {
    std::vector<Range> next;
    for (size_t i = 0; i < current.size(); i += fanout) {
      size_t end = std::min(current.size(), i + fanout);
      Range merged = {current[i].lo, current[end - 1].hi};
      next.push_back(merged);
      std::string parent_label = IntervalLabel(merged.lo, merged.hi);
      for (size_t j = i; j < end; ++j) {
        std::string child_label =
            IntervalLabel(current[j].lo, current[j].hi);
        // A singleton group's range equals its only child's: that child
        // simply carries over to the next level.
        if (child_label != parent_label) {
          pairs.emplace_back(std::move(child_label), parent_label);
        }
      }
    }
    // Guard against a single child inheriting its own label (lo..hi equal
    // to the parent's): FromParentPairs rejects self-loops, and a level
    // with one range terminates the loop anyway.
    current = std::move(next);
  }
  return FromParentPairs(pairs);
}

Status Taxonomy::FinishConstruction() {
  if (labels_.empty()) {
    return Status::InvalidArgument("taxonomy is empty");
  }
  root_ = kInvalidNode;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (parents_[i] == kInvalidNode) {
      if (root_ != kInvalidNode) {
        return Status::InvalidArgument("taxonomy has two roots: '" +
                                       labels_[root_] + "' and '" +
                                       labels_[i] + "'");
      }
      root_ = static_cast<NodeId>(i);
    }
  }
  if (root_ == kInvalidNode) {
    return Status::InvalidArgument("taxonomy has no root (cycle)");
  }

  // Depths (and cycle detection).
  depths_.assign(labels_.size(), 0);
  for (size_t i = 0; i < labels_.size(); ++i) {
    size_t depth = 0;
    NodeId node = static_cast<NodeId>(i);
    while (parents_[node] != kInvalidNode) {
      node = parents_[node];
      if (++depth > labels_.size()) {
        return Status::InvalidArgument("taxonomy contains a cycle");
      }
    }
    depths_[i] = depth;
    (void)node;
  }

  // Leaf counts: a leaf is a node that is no one's parent.
  std::vector<bool> is_parent(labels_.size(), false);
  for (NodeId parent : parents_) {
    if (parent != kInvalidNode) is_parent[parent] = true;
  }
  leaf_counts_.assign(labels_.size(), 0);
  num_leaves_ = 0;
  for (size_t i = 0; i < labels_.size(); ++i) {
    if (is_parent[i]) continue;
    ++num_leaves_;
    NodeId node = static_cast<NodeId>(i);
    while (node != kInvalidNode) {
      ++leaf_counts_[node];
      node = parents_[node];
    }
  }
  return Status::OK();
}

std::optional<Taxonomy::NodeId> Taxonomy::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

Taxonomy::NodeId Taxonomy::Lca(NodeId a, NodeId b) const {
  while (depths_[a] > depths_[b]) a = parents_[a];
  while (depths_[b] > depths_[a]) b = parents_[b];
  while (a != b) {
    a = parents_[a];
    b = parents_[b];
  }
  return a;
}

Result<Taxonomy::NodeId> Taxonomy::LcaOfLabels(
    const std::vector<std::string>& labels) const {
  if (labels.empty()) {
    return Status::InvalidArgument("LCA of an empty label set");
  }
  NodeId lca = kInvalidNode;
  for (const std::string& label : labels) {
    auto node = Find(label);
    if (!node.has_value()) {
      return Status::NotFound("taxonomy has no node labelled '" + label +
                              "'");
    }
    lca = (lca == kInvalidNode) ? *node : Lca(lca, *node);
  }
  return lca;
}

}  // namespace diva
