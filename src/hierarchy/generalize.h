#ifndef DIVA_HIERARCHY_GENERALIZE_H_
#define DIVA_HIERARCHY_GENERALIZE_H_

#include <memory>
#include <optional>
#include <vector>

#include "anon/cluster.h"
#include "common/result.h"
#include "hierarchy/taxonomy.h"
#include "relation/relation.h"

namespace diva {

/// Per-attribute taxonomies for generalization-based recoding. Attributes
/// without a taxonomy fall back to suppression (★), which the paper
/// treats as the maximal generalization.
class GeneralizationContext {
 public:
  /// No taxonomies: recoding degenerates to plain suppression.
  explicit GeneralizationContext(size_t num_attributes)
      : taxonomies_(num_attributes) {}

  /// Installs a taxonomy for attribute `attr` (overwrites any previous).
  void SetTaxonomy(size_t attr, Taxonomy taxonomy) {
    taxonomies_[attr] = std::move(taxonomy);
  }

  bool HasTaxonomy(size_t attr) const {
    return taxonomies_[attr].has_value();
  }
  const Taxonomy& taxonomy(size_t attr) const { return *taxonomies_[attr]; }

  size_t num_attributes() const { return taxonomies_.size(); }

 private:
  std::vector<std::optional<Taxonomy>> taxonomies_;
};

/// Generalization counterpart of SuppressClustersInPlace: for every
/// cluster and every quasi-identifier attribute on which the cluster
/// disagrees, all of the cluster's cells are replaced by the lowest
/// common ancestor label of their values (interned into the attribute's
/// dictionary) — or by ★ when the attribute has no taxonomy. Each
/// cluster becomes a QI-group, so k-anonymity follows exactly as with
/// suppression.
///
/// Fails with NotFound if a cluster value is missing from the attribute's
/// taxonomy (leaves the relation partially recoded — treat as fatal).
[[nodiscard]] Status GeneralizeClustersInPlace(Relation* relation,
                                 const Clustering& clustering,
                                 const GeneralizationContext& context);

/// NCP (Normalized Certainty Penalty) information loss of a generalized
/// relation: a cell carrying taxonomy node g costs
/// (LeafCount(g) - 1) / (NumLeaves - 1) ∈ [0, 1]; a suppressed cell costs
/// 1; an untouched leaf costs 0. Returns the total over all QI cells
/// divided by the number of QI cells (average per-cell loss in [0, 1]).
/// Cells whose label is not in the attribute's taxonomy cost 1 (treated
/// as suppressed) when the attribute has a taxonomy; attributes without
/// taxonomies charge only for ★s.
double NcpLoss(const Relation& relation, const GeneralizationContext& context);

}  // namespace diva

#endif  // DIVA_HIERARCHY_GENERALIZE_H_
