#include "hierarchy/generalize.h"

#include "common/logging.h"

namespace diva {

namespace {

/// True if all rows of `cluster` share one non-suppressed value on `col`.
bool Unanimous(const Relation& relation, const Cluster& cluster, size_t col) {
  ValueCode first = relation.At(cluster[0], col);
  if (first == kSuppressed) return false;
  for (size_t i = 1; i < cluster.size(); ++i) {
    if (relation.At(cluster[i], col) != first) return false;
  }
  return true;
}

}  // namespace

Status GeneralizeClustersInPlace(Relation* relation,
                                 const Clustering& clustering,
                                 const GeneralizationContext& context) {
  if (context.num_attributes() != relation->NumAttributes()) {
    return Status::InvalidArgument(
        "generalization context arity mismatch: " +
        std::to_string(context.num_attributes()) + " vs " +
        std::to_string(relation->NumAttributes()));
  }
  const auto& qi = relation->schema().qi_indices();
  for (const Cluster& cluster : clustering) {
    if (cluster.empty()) continue;
    for (size_t col : qi) {
      if (Unanimous(*relation, cluster, col)) continue;
      if (!context.HasTaxonomy(col)) {
        for (RowId row : cluster) relation->Set(row, col, kSuppressed);
        continue;
      }
      const Taxonomy& taxonomy = context.taxonomy(col);
      // LCA over the cluster's (distinct) values.
      Taxonomy::NodeId lca = Taxonomy::kInvalidNode;
      for (RowId row : cluster) {
        ValueCode code = relation->At(row, col);
        if (code == kSuppressed) {
          // A pre-suppressed cell can only generalize to the root.
          lca = taxonomy.root();
          break;
        }
        auto node = taxonomy.Find(relation->dictionary(col).ValueOf(code));
        if (!node.has_value()) {
          return Status::NotFound(
              "value '" + relation->dictionary(col).ValueOf(code) +
              "' of attribute '" + relation->schema().attribute(col).name +
              "' is not in its taxonomy");
        }
        lca = (lca == Taxonomy::kInvalidNode) ? *node
                                              : taxonomy.Lca(lca, *node);
      }
      ValueCode generalized =
          relation->Encode(col, taxonomy.Label(lca));
      for (RowId row : cluster) relation->Set(row, col, generalized);
    }
  }
  return Status::OK();
}

double NcpLoss(const Relation& relation,
               const GeneralizationContext& context) {
  DIVA_CHECK_MSG(context.num_attributes() == relation.NumAttributes(),
                 "generalization context arity mismatch");
  const auto& qi = relation.schema().qi_indices();
  size_t cells = relation.NumRows() * qi.size();
  if (cells == 0) return 0.0;

  double total = 0.0;
  for (size_t col : qi) {
    if (!context.HasTaxonomy(col)) {
      for (RowId row = 0; row < relation.NumRows(); ++row) {
        if (relation.At(row, col) == kSuppressed) total += 1.0;
      }
      continue;
    }
    const Taxonomy& taxonomy = context.taxonomy(col);
    double denom = taxonomy.NumLeaves() > 1
                       ? static_cast<double>(taxonomy.NumLeaves() - 1)
                       : 1.0;
    // Cache per-code cost: dictionaries are small relative to rows.
    std::vector<double> cost_of_code;
    for (RowId row = 0; row < relation.NumRows(); ++row) {
      ValueCode code = relation.At(row, col);
      if (code == kSuppressed) {
        total += 1.0;
        continue;
      }
      size_t index = static_cast<size_t>(code);
      if (index >= cost_of_code.size()) {
        cost_of_code.resize(index + 1, -1.0);
      }
      if (cost_of_code[index] < 0.0) {
        auto node = taxonomy.Find(relation.dictionary(col).ValueOf(code));
        cost_of_code[index] =
            node.has_value()
                ? static_cast<double>(taxonomy.LeafCount(*node) - 1) / denom
                : 1.0;
      }
      total += cost_of_code[index];
    }
  }
  return total / static_cast<double>(cells);
}

}  // namespace diva
