#ifndef DIVA_HIERARCHY_RECODING_H_
#define DIVA_HIERARCHY_RECODING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "hierarchy/generalize.h"
#include "relation/relation.h"

namespace diva {

/// A full-domain generalization level per attribute: level 0 keeps
/// original values; level l replaces every value by its ancestor l steps
/// up its taxonomy (clamped at the root). Attributes without a taxonomy
/// have two levels: 0 = original, 1 = suppressed. Non-QI attributes are
/// never recoded (their level must be 0).
struct RecodingVector {
  std::vector<size_t> levels;  // one per attribute

  /// Sum of levels — the lattice height used by Samarati's search.
  size_t Height() const;

  /// "[1,0,2]" over QI attributes, for reports.
  std::string ToString() const;

  bool operator==(const RecodingVector& other) const {
    return levels == other.levels;
  }
};

/// Full-domain global recoding (Samarati 2001): unlike the clustering
/// anonymizers, every occurrence of a value is generalized to the same
/// level everywhere in the relation. Complements the local-recoding
/// algorithms (k-member/OKA/Mondrian + Suppress/Generalize).
class GlobalRecoder {
 public:
  /// `context` supplies the taxonomies; attributes without one fall back
  /// to the 0/1 (original/suppressed) ladder.
  GlobalRecoder(const Relation& relation, GeneralizationContext context);

  /// Maximum level of attribute `attr` (0 for non-QI attributes).
  size_t MaxLevel(size_t attr) const { return max_levels_[attr]; }

  /// The identity vector (all zeros).
  RecodingVector BottomVector() const;

  /// Applies `vector` to a copy of the relation. Fails on invalid levels
  /// or on values missing from their taxonomy.
  [[nodiscard]] Result<Relation> Apply(const RecodingVector& vector) const;

  /// Searches the generalization lattice bottom-up (breadth-first by
  /// height, with the standard monotonicity pruning: any vector above a
  /// k-anonymous one is also k-anonymous) for a minimal-height vector
  /// whose recoding is k-anonymous; ties broken by NCP loss. Fails with
  /// Infeasible when even the top vector is not k-anonymous (fewer than
  /// k rows).
  struct SearchResult {
    RecodingVector vector;
    Relation relation;
    double ncp = 0.0;
  };
  [[nodiscard]] Result<SearchResult> FindMinimalRecoding(size_t k) const;

 private:
  const Relation* relation_;
  GeneralizationContext context_;
  std::vector<size_t> max_levels_;
};

}  // namespace diva

#endif  // DIVA_HIERARCHY_RECODING_H_
