#include "hierarchy/recoding.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "relation/qi_groups.h"

namespace diva {

size_t RecodingVector::Height() const {
  size_t height = 0;
  for (size_t level : levels) height += level;
  return height;
}

std::string RecodingVector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(levels[i]);
  }
  out += "]";
  return out;
}

GlobalRecoder::GlobalRecoder(const Relation& relation,
                             GeneralizationContext context)
    : relation_(&relation), context_(std::move(context)) {
  DIVA_CHECK_MSG(context_.num_attributes() == relation.NumAttributes(),
                 "generalization context arity mismatch");
  max_levels_.assign(relation.NumAttributes(), 0);
  for (size_t attr : relation.schema().qi_indices()) {
    if (!context_.HasTaxonomy(attr)) {
      max_levels_[attr] = 1;  // original / suppressed
      continue;
    }
    const Taxonomy& taxonomy = context_.taxonomy(attr);
    size_t height = 0;
    for (size_t node = 0; node < taxonomy.NumNodes(); ++node) {
      if (taxonomy.IsLeaf(static_cast<Taxonomy::NodeId>(node))) {
        height = std::max(height,
                          taxonomy.Depth(static_cast<Taxonomy::NodeId>(node)));
      }
    }
    max_levels_[attr] = height;
  }
}

RecodingVector GlobalRecoder::BottomVector() const {
  RecodingVector vector;
  vector.levels.assign(relation_->NumAttributes(), 0);
  return vector;
}

Result<Relation> GlobalRecoder::Apply(const RecodingVector& vector) const {
  if (vector.levels.size() != relation_->NumAttributes()) {
    return Status::InvalidArgument("recoding vector arity mismatch");
  }
  for (size_t attr = 0; attr < vector.levels.size(); ++attr) {
    if (vector.levels[attr] > max_levels_[attr]) {
      return Status::InvalidArgument(
          "recoding level " + std::to_string(vector.levels[attr]) +
          " exceeds attribute '" + relation_->schema().attribute(attr).name +
          "' height " + std::to_string(max_levels_[attr]));
    }
    if (vector.levels[attr] > 0 &&
        !relation_->schema().IsQuasiIdentifier(attr)) {
      return Status::InvalidArgument("cannot recode non-QI attribute '" +
                                     relation_->schema().attribute(attr).name +
                                     "'");
    }
  }

  Relation out = *relation_;
  for (size_t attr : relation_->schema().qi_indices()) {
    size_t level = vector.levels[attr];
    if (level == 0) continue;
    if (!context_.HasTaxonomy(attr)) {
      for (RowId row = 0; row < out.NumRows(); ++row) {
        out.Set(row, attr, kSuppressed);
      }
      continue;
    }
    const Taxonomy& taxonomy = context_.taxonomy(attr);
    // Per-code generalized target, computed once per distinct value.
    std::vector<ValueCode> recoded_of_code;
    for (RowId row = 0; row < out.NumRows(); ++row) {
      ValueCode code = relation_->At(row, attr);
      if (code == kSuppressed) continue;
      size_t index = static_cast<size_t>(code);
      if (index >= recoded_of_code.size()) {
        recoded_of_code.resize(index + 1, kSuppressed - 1);  // sentinel -2
      }
      if (recoded_of_code[index] == kSuppressed - 1) {
        auto node = taxonomy.Find(relation_->dictionary(attr).ValueOf(code));
        if (!node.has_value()) {
          return Status::NotFound(
              "value '" + relation_->dictionary(attr).ValueOf(code) +
              "' of attribute '" + relation_->schema().attribute(attr).name +
              "' is not in its taxonomy");
        }
        Taxonomy::NodeId current = *node;
        for (size_t step = 0;
             step < level && taxonomy.Parent(current) != Taxonomy::kInvalidNode;
             ++step) {
          current = taxonomy.Parent(current);
        }
        recoded_of_code[index] = out.Encode(attr, taxonomy.Label(current));
      }
      out.Set(row, attr, recoded_of_code[index]);
    }
  }
  return out;
}

Result<GlobalRecoder::SearchResult> GlobalRecoder::FindMinimalRecoding(
    size_t k) const {
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  if (relation_->NumRows() > 0 && relation_->NumRows() < k) {
    return Status::Infeasible("relation has fewer than k tuples");
  }

  const auto& qi = relation_->schema().qi_indices();
  size_t max_height = 0;
  for (size_t attr : qi) max_height += max_levels_[attr];

  // Enumerate vectors of a given total height over the QI attributes.
  std::vector<RecodingVector> at_height;
  std::function<void(size_t, size_t, RecodingVector*)> enumerate =
      [&](size_t qi_index, size_t remaining, RecodingVector* current) {
        if (qi_index == qi.size()) {
          if (remaining == 0) at_height.push_back(*current);
          return;
        }
        size_t attr = qi[qi_index];
        size_t cap = std::min(remaining, max_levels_[attr]);
        for (size_t level = 0; level <= cap; ++level) {
          current->levels[attr] = level;
          enumerate(qi_index + 1, remaining - level, current);
        }
        current->levels[attr] = 0;
      };

  for (size_t height = 0; height <= max_height; ++height) {
    at_height.clear();
    RecodingVector scratch = BottomVector();
    enumerate(0, height, &scratch);

    SearchResult best{BottomVector(), relation_->EmptyLike(), 0.0};
    bool found = false;
    for (const RecodingVector& vector : at_height) {
      DIVA_ASSIGN_OR_RETURN(Relation recoded, Apply(vector));
      if (!IsKAnonymous(recoded, k)) continue;
      double ncp = NcpLoss(recoded, context_);
      if (!found || ncp < best.ncp) {
        found = true;
        best.vector = vector;
        best.relation = std::move(recoded);
        best.ncp = ncp;
      }
    }
    if (found) return best;
  }
  return Status::Infeasible(
      "no full-domain recoding achieves k-anonymity (fewer than k rows)");
}

}  // namespace diva
