#ifndef DIVA_RELATION_RELATION_H_
#define DIVA_RELATION_RELATION_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "relation/dictionary.h"
#include "relation/schema.h"
#include "relation/value.h"

namespace diva {

/// A dictionary-encoded relation: row-major int32 codes over a shared
/// immutable schema. Suppressed cells hold kSuppressed.
///
/// Relations derived from one another (e.g., R and its anonymization R*)
/// share dictionaries, so equal codes mean equal values across them, and
/// row ids are stable: row i of R* is the anonymized row i of R.
class Relation {
 public:
  /// Creates an empty relation over `schema` with fresh dictionaries.
  explicit Relation(std::shared_ptr<const Schema> schema);

  Relation(const Relation&) = default;
  Relation& operator=(const Relation&) = default;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const Schema& schema() const { return *schema_; }
  const std::shared_ptr<const Schema>& schema_ptr() const { return schema_; }

  size_t NumRows() const { return num_rows_; }
  size_t NumAttributes() const { return schema_->NumAttributes(); }

  ValueCode At(RowId row, size_t col) const {
    return data_[static_cast<size_t>(row) * stride_ + col];
  }
  void Set(RowId row, size_t col, ValueCode value) {
    data_[static_cast<size_t>(row) * stride_ + col] = value;
  }
  bool IsSuppressed(RowId row, size_t col) const {
    return At(row, col) == kSuppressed;
  }

  /// Read-only view of a row's codes.
  std::span<const ValueCode> Row(RowId row) const {
    return {data_.data() + static_cast<size_t>(row) * stride_, stride_};
  }

  /// Appends a row of pre-encoded codes; must have NumAttributes entries.
  RowId AppendRow(std::span<const ValueCode> codes);

  /// Appends `n` rows of kSuppressed cells and returns a mutable view of
  /// the appended row-major block (n * NumAttributes codes). Bulk
  /// construction hook for the columnar gather path (relation/columnar.h),
  /// which fills the block column-at-a-time instead of row-at-a-time.
  std::span<ValueCode> AppendSuppressedRows(size_t n);

  /// Encodes `fields` through the dictionaries and appends; "*"/"★" map to
  /// kSuppressed. Must have NumAttributes entries.
  [[nodiscard]] Result<RowId> AppendRowStrings(const std::vector<std::string>& fields);

  /// Textual value of a cell ("*" when suppressed).
  std::string ValueString(RowId row, size_t col) const;

  /// Dictionary of attribute `col` (shared with derived relations).
  Dictionary& dictionary(size_t col) { return *dictionaries_[col]; }
  const Dictionary& dictionary(size_t col) const {
    return *dictionaries_[col];
  }

  /// An empty relation sharing this relation's schema and dictionaries.
  /// Rows appended to it use compatible codes.
  Relation EmptyLike() const;

  /// A relation containing copies of the given rows (in the given order),
  /// sharing schema and dictionaries.
  Relation SelectRows(std::span<const RowId> rows) const;

  /// Interns `value` in attribute `col`'s dictionary and returns its code.
  ValueCode Encode(size_t col, std::string_view value) {
    return dictionaries_[col]->GetOrInsert(value);
  }

  /// Looks up the code of `value` in attribute `col` without interning.
  std::optional<ValueCode> FindCode(size_t col, std::string_view value) const {
    return dictionaries_[col]->Find(value);
  }

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<std::shared_ptr<Dictionary>> dictionaries_;
  std::vector<ValueCode> data_;
  size_t stride_ = 0;
  size_t num_rows_ = 0;
};

/// Convenience test/demo builder: encodes `rows` of strings over `schema`.
[[nodiscard]] Result<Relation> RelationFromRows(
    std::shared_ptr<const Schema> schema,
    const std::vector<std::vector<std::string>>& rows);

}  // namespace diva

#endif  // DIVA_RELATION_RELATION_H_
