#ifndef DIVA_RELATION_VALUE_H_
#define DIVA_RELATION_VALUE_H_

#include <cstdint>
#include <string_view>

namespace diva {

/// Dictionary code of an attribute value. Codes are dense non-negative
/// integers assigned per attribute in first-seen order; the reserved code
/// kSuppressed represents a suppressed cell.
using ValueCode = int32_t;

/// Reserved code for a suppressed ("★") cell.
inline constexpr ValueCode kSuppressed = -1;

/// Index of a tuple within its relation. Stable across suppression: the
/// anonymized relation R* keeps the row ids of R.
using RowId = uint32_t;

/// Canonical textual rendering of a suppressed cell (paper uses ★; we emit
/// "*" for CSV portability and accept both on input).
inline constexpr std::string_view kStarToken = "*";
inline constexpr std::string_view kStarTokenUnicode = "★";

}  // namespace diva

#endif  // DIVA_RELATION_VALUE_H_
