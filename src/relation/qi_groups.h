#ifndef DIVA_RELATION_QI_GROUPS_H_
#define DIVA_RELATION_QI_GROUPS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "relation/relation.h"

namespace diva {

/// FNV-1a over the QI codes of a row — the hash GroupRows buckets by.
/// Exposed so incremental re-anonymization (core/incremental.h) can
/// maintain per-row QI hashes under a delta instead of rehashing the
/// whole relation.
uint64_t QiProjectionHash(const Relation& relation, RowId row);

/// Partition of (a subset of) a relation's rows into QI-groups: maximal
/// sets of rows that agree on every quasi-identifier attribute
/// (a suppressed cell only matches another suppressed cell).
struct QiGroups {
  /// Each group is a list of row ids; groups are disjoint and cover the
  /// rows that were passed in.
  std::vector<std::vector<RowId>> groups;

  /// Size of the smallest group (0 when there are no rows).
  size_t MinGroupSize() const;
};

/// Groups all rows of `relation` by their QI projection.
QiGroups ComputeQiGroups(const Relation& relation);

/// Groups only the rows in `rows`.
QiGroups ComputeQiGroups(const Relation& relation,
                         std::span<const RowId> rows);

/// True iff every tuple lies in a QI-group of size >= k (Definition 2.1).
/// An empty relation is k-anonymous for any k.
bool IsKAnonymous(const Relation& relation, size_t k);

/// Number of distinct QI projections |Pi_QI(R)| (Table 4 statistic).
/// Counts suppressed patterns as distinct values.
size_t CountDistinctQiProjections(const Relation& relation);

}  // namespace diva

#endif  // DIVA_RELATION_QI_GROUPS_H_
