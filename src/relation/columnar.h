#ifndef DIVA_RELATION_COLUMNAR_H_
#define DIVA_RELATION_COLUMNAR_H_

/// Columnar, arena-backed storage mode for a Relation.
///
/// The row-major Relation is the pipeline's working representation; the
/// ColumnStore is its scan/slice representation: one contiguous code
/// array per attribute, bump-allocated from a chunked Arena. The shard
/// driver (core/shard.cc) snapshots the input once and materializes each
/// shard as a column-at-a-time gather of that shard's row list — a
/// sequential read per column instead of a strided row-major copy, and
/// the first step toward streaming 10M–100M-row inputs shard-by-shard
/// instead of holding per-shard row-major copies alive at once.
///
/// A gathered Relation shares the source's schema and dictionaries, so
/// codes stay comparable across the store, its slices, and anything
/// derived from them (exactly the Relation::SelectRows contract).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "relation/relation.h"

namespace diva {

/// Chunked bump allocator. Each Allocate returns contiguous storage;
/// allocations larger than the chunk size get a dedicated chunk. Memory
/// is released wholesale when the arena dies — there is no per-object
/// free, which is the point: a store's columns live and die together.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{1} << 20;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes);

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Contiguous storage for `count` elements of T, aligned for T.
  template <typename T>
  std::span<T> AllocateArray(size_t count) {
    return {static_cast<T*>(Allocate(count * sizeof(T), alignof(T))), count};
  }

  void* Allocate(size_t bytes, size_t align);

  /// Bytes handed out by Allocate (excludes per-chunk slack).
  size_t allocated_bytes() const { return allocated_; }
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
    size_t used = 0;
  };

  std::vector<Chunk> chunks_;
  size_t chunk_bytes_;
  size_t allocated_ = 0;
};

/// Immutable column-major snapshot of a Relation.
class ColumnStore {
 public:
  /// Transposes `relation` into arena-backed columns. The store keeps a
  /// reference to the relation's schema and dictionaries (shared, not
  /// copied), so gathered slices stay code-compatible with the source.
  static ColumnStore FromRelation(const Relation& relation);

  ColumnStore(ColumnStore&&) = default;
  ColumnStore& operator=(ColumnStore&&) = default;
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns_.size(); }

  std::span<const ValueCode> Column(size_t col) const {
    return columns_[col];
  }
  ValueCode At(RowId row, size_t col) const {
    return columns_[col][static_cast<size_t>(row)];
  }

  /// Materializes the given rows (in the given order) as a row-major
  /// Relation sharing the source's schema and dictionaries. Gathers
  /// column-at-a-time: each column is one sequential scan of the row
  /// list against one contiguous array. Aborts on an out-of-range row id
  /// (same contract as Relation::SelectRows).
  Relation GatherRows(std::span<const RowId> rows) const;

  /// GatherRows over every row — the row-major round trip.
  Relation ToRelation() const;

  /// Arena bytes backing the columns.
  size_t AllocatedBytes() const { return arena_.allocated_bytes(); }

 private:
  explicit ColumnStore(Relation prototype)
      : prototype_(std::move(prototype)) {}

  /// Empty relation carrying the shared schema + dictionaries; every
  /// gather derives its output from this via EmptyLike().
  Relation prototype_;
  Arena arena_;
  std::vector<std::span<ValueCode>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace diva

#endif  // DIVA_RELATION_COLUMNAR_H_
