#include "relation/dictionary.h"

#include <cstdlib>

#include "common/logging.h"

namespace diva {

namespace {

std::optional<double> TryParseNumber(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return value;
}

}  // namespace

ValueCode Dictionary::GetOrInsert(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueCode code = static_cast<ValueCode>(values_.size());
  values_.emplace_back(value);
  numeric_values_.push_back(TryParseNumber(values_.back()));
  index_.emplace(values_.back(), code);
  return code;
}

std::optional<ValueCode> Dictionary::Find(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(ValueCode code) const {
  DIVA_CHECK_MSG(code >= 0 && static_cast<size_t>(code) < values_.size(),
                 "dictionary code out of range");
  return values_[static_cast<size_t>(code)];
}

std::optional<double> Dictionary::NumericValueOf(ValueCode code) const {
  DIVA_CHECK_MSG(code >= 0 && static_cast<size_t>(code) < values_.size(),
                 "dictionary code out of range");
  return numeric_values_[static_cast<size_t>(code)];
}

bool Dictionary::AllNumeric() const {
  if (values_.empty()) return false;
  for (const auto& v : numeric_values_) {
    if (!v.has_value()) return false;
  }
  return true;
}

}  // namespace diva
