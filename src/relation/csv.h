#ifndef DIVA_RELATION_CSV_H_
#define DIVA_RELATION_CSV_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/result.h"
#include "relation/relation.h"

namespace diva {

/// Options shared by the CSV reader and writer.
struct CsvOptions {
  char delimiter = ',';
  /// Reader: first line holds attribute names which must match `schema`
  /// (in order). Writer: emit a header line.
  bool has_header = true;
  /// Reader: a single field longer than this is rejected with
  /// InvalidArgument instead of growing without bound — malformed input
  /// (an unterminated quote swallowing the rest of the file, a binary
  /// blob) must not take the process down with it. 0 disables the cap.
  size_t max_field_bytes = 1 << 20;
};

/// Parses CSV text into a relation over `schema`. Supports RFC-4180
/// quoting ("" escapes a quote inside a quoted field) and both "*" and
/// "★" as suppressed-cell markers. Every record must have exactly
/// schema->NumAttributes() fields.
[[nodiscard]] Result<Relation> ReadCsv(std::istream& input,
                         std::shared_ptr<const Schema> schema,
                         const CsvOptions& options = {});

/// Reads a CSV file from `path`.
[[nodiscard]] Result<Relation> ReadCsvFile(const std::string& path,
                             std::shared_ptr<const Schema> schema,
                             const CsvOptions& options = {});

/// Writes `relation` as CSV (suppressed cells as "*"). Fields containing
/// the delimiter, quotes, or newlines are quoted.
[[nodiscard]] Status WriteCsv(const Relation& relation, std::ostream& output,
                const CsvOptions& options = {});

/// Writes to a file at `path`, replacing any existing content.
[[nodiscard]] Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace diva

#endif  // DIVA_RELATION_CSV_H_
