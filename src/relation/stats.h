#ifndef DIVA_RELATION_STATS_H_
#define DIVA_RELATION_STATS_H_

#include <string>
#include <vector>

#include "relation/relation.h"

namespace diva {

/// Per-attribute profile of a relation — the statistics a data steward
/// inspects before configuring anonymization (domain sizes drive
/// re-identification risk; star counts measure damage afterwards).
struct AttributeStats {
  std::string name;
  AttributeRole role = AttributeRole::kQuasiIdentifier;
  AttributeKind kind = AttributeKind::kCategorical;

  /// Distinct non-suppressed values present in the data.
  size_t distinct_values = 0;
  /// Suppressed cells.
  size_t suppressed = 0;
  /// Most frequent non-suppressed value and its count (empty when the
  /// column is fully suppressed).
  std::string modal_value;
  size_t modal_count = 0;
  /// For numeric attributes with at least one parseable value.
  double min_value = 0.0;
  double max_value = 0.0;
  bool has_numeric_range = false;
};

/// Whole-relation profile.
struct RelationStats {
  size_t num_rows = 0;
  size_t num_attributes = 0;
  /// |Pi_QI(R)| — distinct quasi-identifier projections.
  size_t distinct_qi_projections = 0;
  std::vector<AttributeStats> attributes;
};

/// Computes the profile in one pass per attribute.
RelationStats ComputeStats(const Relation& relation);

/// Renders the profile as an aligned text table (for CLIs and reports).
std::string StatsToString(const RelationStats& stats);

}  // namespace diva

#endif  // DIVA_RELATION_STATS_H_
