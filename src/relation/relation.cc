#include "relation/relation.h"

#include "common/failpoint.h"
#include "common/logging.h"

namespace diva {

Relation::Relation(std::shared_ptr<const Schema> schema)
    : schema_(std::move(schema)), stride_(schema_->NumAttributes()) {
  DIVA_CHECK_MSG(schema_ != nullptr, "Relation requires a schema");
  dictionaries_.reserve(stride_);
  for (size_t i = 0; i < stride_; ++i) {
    dictionaries_.push_back(std::make_shared<Dictionary>());
  }
}

RowId Relation::AppendRow(std::span<const ValueCode> codes) {
  DIVA_CHECK_MSG(codes.size() == stride_, "row arity mismatch");
  data_.insert(data_.end(), codes.begin(), codes.end());
  return static_cast<RowId>(num_rows_++);
}

std::span<ValueCode> Relation::AppendSuppressedRows(size_t n) {
  const size_t begin = data_.size();
  data_.resize(begin + n * stride_, kSuppressed);
  num_rows_ += n;
  return {data_.data() + begin, n * stride_};
}

Result<RowId> Relation::AppendRowStrings(
    const std::vector<std::string>& fields) {
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("relation.append_row"));
  if (fields.size() != stride_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(fields.size()) + " fields, schema has " +
        std::to_string(stride_));
  }
  for (size_t i = 0; i < stride_; ++i) {
    const std::string& f = fields[i];
    if (f == kStarToken || f == kStarTokenUnicode) {
      data_.push_back(kSuppressed);
    } else {
      data_.push_back(dictionaries_[i]->GetOrInsert(f));
    }
  }
  return static_cast<RowId>(num_rows_++);
}

std::string Relation::ValueString(RowId row, size_t col) const {
  ValueCode code = At(row, col);
  if (code == kSuppressed) return std::string(kStarToken);
  return dictionaries_[col]->ValueOf(code);
}

Relation Relation::EmptyLike() const {
  Relation out(schema_);
  out.dictionaries_ = dictionaries_;  // share
  return out;
}

Relation Relation::SelectRows(std::span<const RowId> rows) const {
  Relation out = EmptyLike();
  out.data_.reserve(rows.size() * stride_);
  for (RowId r : rows) {
    // Load-bearing bounds check: a stale RowId would read out of bounds
    // in release builds, so this must not compile away.
    DIVA_CHECK_MSG(static_cast<size_t>(r) < num_rows_,
                   "SelectRows: row id out of range");
    out.AppendRow(Row(r));
  }
  return out;
}

Result<Relation> RelationFromRows(
    std::shared_ptr<const Schema> schema,
    const std::vector<std::vector<std::string>>& rows) {
  Relation relation(std::move(schema));
  for (const auto& row : rows) {
    DIVA_RETURN_IF_ERROR(relation.AppendRowStrings(row));
  }
  return relation;
}

}  // namespace diva
