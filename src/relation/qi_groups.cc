#include "relation/qi_groups.h"

#include <cstdint>
#include <unordered_map>

namespace diva {

namespace {

/// FNV-1a over the QI codes of a row.
struct QiRowHasher {
  const Relation* relation;

  uint64_t operator()(RowId row) const {
    uint64_t h = 1469598103934665603ULL;
    for (size_t col : relation->schema().qi_indices()) {
      uint64_t v = static_cast<uint64_t>(
          static_cast<uint32_t>(relation->At(row, col)));
      h ^= v;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct QiRowEquals {
  const Relation* relation;

  bool operator()(RowId a, RowId b) const {
    for (size_t col : relation->schema().qi_indices()) {
      if (relation->At(a, col) != relation->At(b, col)) return false;
    }
    return true;
  }
};

QiGroups GroupRows(const Relation& relation, std::span<const RowId> rows) {
  QiGroups out;
  std::unordered_map<RowId, size_t, QiRowHasher, QiRowEquals> group_index(
      16, QiRowHasher{&relation}, QiRowEquals{&relation});
  for (RowId row : rows) {
    auto [it, inserted] = group_index.try_emplace(row, out.groups.size());
    if (inserted) {
      out.groups.emplace_back();
    }
    out.groups[it->second].push_back(row);
  }
  return out;
}

}  // namespace

size_t QiGroups::MinGroupSize() const {
  if (groups.empty()) return 0;
  size_t min_size = groups[0].size();
  for (const auto& g : groups) {
    if (g.size() < min_size) min_size = g.size();
  }
  return min_size;
}

QiGroups ComputeQiGroups(const Relation& relation) {
  std::vector<RowId> all(relation.NumRows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<RowId>(i);
  return GroupRows(relation, all);
}

QiGroups ComputeQiGroups(const Relation& relation,
                         std::span<const RowId> rows) {
  return GroupRows(relation, rows);
}

bool IsKAnonymous(const Relation& relation, size_t k) {
  if (relation.NumRows() == 0) return true;
  QiGroups groups = ComputeQiGroups(relation);
  return groups.MinGroupSize() >= k;
}

size_t CountDistinctQiProjections(const Relation& relation) {
  QiGroups groups = ComputeQiGroups(relation);
  return groups.groups.size();
}

}  // namespace diva
