#include "relation/qi_groups.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/parallel.h"

namespace diva {

namespace {

/// FNV-1a over the QI codes of a row.
struct QiRowHasher {
  const Relation* relation;

  uint64_t operator()(RowId row) const {
    uint64_t h = 1469598103934665603ULL;
    for (size_t col : relation->schema().qi_indices()) {
      uint64_t v = static_cast<uint64_t>(
          static_cast<uint32_t>(relation->At(row, col)));
      h ^= v;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct QiRowEquals {
  const Relation* relation;

  bool operator()(RowId a, RowId b) const {
    for (size_t col : relation->schema().qi_indices()) {
      if (relation->At(a, col) != relation->At(b, col)) return false;
    }
    return true;
  }
};

QiGroups GroupRowsSequential(const Relation& relation,
                             std::span<const RowId> rows) {
  QiGroups out;
  std::unordered_map<RowId, size_t, QiRowHasher, QiRowEquals> group_index(
      16, QiRowHasher{&relation}, QiRowEquals{&relation});
  for (RowId row : rows) {
    auto [it, inserted] = group_index.try_emplace(row, out.groups.size());
    if (inserted) {
      out.groups.emplace_back();
    }
    out.groups[it->second].push_back(row);
  }
  return out;
}

QiGroups GroupRows(const Relation& relation, std::span<const RowId> rows) {
  // Below this size the per-chunk hash maps cost more than they save.
  // Both paths produce the identical grouping (proof below), so where
  // the cutoff falls never affects results.
  constexpr size_t kMinParallelRows = 4096;
  if (rows.size() < kMinParallelRows) {
    return GroupRowsSequential(relation, rows);
  }

  // Chunk boundaries are a pure function of rows.size(): identical
  // partials for every thread count.
  size_t chunk_size = rows.size() / 64 + 1;
  size_t chunks = (rows.size() + chunk_size - 1) / chunk_size;
  std::vector<QiGroups> partials =
      ParallelMap<QiGroups>(chunks, /*grain=*/1, [&](size_t c) {
        size_t begin = c * chunk_size;
        size_t end = std::min(begin + chunk_size, rows.size());
        return GroupRowsSequential(relation, rows.subspan(begin, end - begin));
      });

  // Merging partials in ascending chunk order rebuilds the sequential
  // result exactly: a group's global index is set by its first occurrence
  // (earlier chunks always merge first), and each group's rows land in
  // original scan order (chunk order outer, within-chunk order inner).
  QiGroups out;
  std::unordered_map<RowId, size_t, QiRowHasher, QiRowEquals> group_index(
      16, QiRowHasher{&relation}, QiRowEquals{&relation});
  for (QiGroups& partial : partials) {
    for (auto& group : partial.groups) {
      auto [it, inserted] =
          group_index.try_emplace(group.front(), out.groups.size());
      if (inserted) {
        out.groups.emplace_back();
      }
      auto& merged = out.groups[it->second];
      merged.insert(merged.end(), group.begin(), group.end());
    }
  }
  return out;
}

}  // namespace

size_t QiGroups::MinGroupSize() const {
  if (groups.empty()) return 0;
  size_t min_size = groups[0].size();
  for (const auto& g : groups) {
    if (g.size() < min_size) min_size = g.size();
  }
  return min_size;
}

QiGroups ComputeQiGroups(const Relation& relation) {
  std::vector<RowId> all(relation.NumRows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<RowId>(i);
  return GroupRows(relation, all);
}

QiGroups ComputeQiGroups(const Relation& relation,
                         std::span<const RowId> rows) {
  return GroupRows(relation, rows);
}

bool IsKAnonymous(const Relation& relation, size_t k) {
  if (relation.NumRows() == 0) return true;
  QiGroups groups = ComputeQiGroups(relation);
  return groups.MinGroupSize() >= k;
}

size_t CountDistinctQiProjections(const Relation& relation) {
  QiGroups groups = ComputeQiGroups(relation);
  return groups.groups.size();
}

}  // namespace diva
