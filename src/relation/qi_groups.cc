#include "relation/qi_groups.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/parallel.h"

namespace diva {

uint64_t QiProjectionHash(const Relation& relation, RowId row) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t col : relation.schema().qi_indices()) {
    uint64_t v =
        static_cast<uint64_t>(static_cast<uint32_t>(relation.At(row, col)));
    h ^= v;
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// True when rows a and b agree on every quasi-identifier attribute.
bool SameQiProjection(const Relation& relation, RowId a, RowId b) {
  for (size_t col : relation.schema().qi_indices()) {
    if (relation.At(a, col) != relation.At(b, col)) return false;
  }
  return true;
}

QiGroups GroupRows(const Relation& relation, std::span<const RowId> rows) {
  // Hash-then-verify: one 64-bit QI-projection hash per row, computed up
  // front (in parallel above the cutoff — a pure per-row function, so
  // identical at every thread width), then a sequential grouping pass
  // that touches full projections only when two hashes collide. The old
  // scheme re-hashed a row's projection on every map probe and compared
  // projections along whole collision chains.
  constexpr size_t kMinParallelRows = 4096;
  std::vector<uint64_t> hashes;
  if (rows.size() < kMinParallelRows) {
    hashes.reserve(rows.size());
    for (RowId row : rows) hashes.push_back(QiProjectionHash(relation, row));
  } else {
    hashes = ParallelMap<uint64_t>(rows.size(), /*grain=*/1024, [&](size_t i) {
      return QiProjectionHash(relation, rows[i]);
    });
  }

  // Group ids are assigned at first occurrence and rows appended in scan
  // order, so the grouping (and its order) is exactly what a pairwise
  // projection-comparing pass would produce. Determinism audit: by_hash
  // is probe-only — operator[] lookups keyed by the row's projection
  // hash; it is never iterated, so hash-map order cannot leak into the
  // group numbering.
  QiGroups out;
  std::unordered_map<uint64_t, std::vector<size_t>> by_hash;  // -> group ids
  by_hash.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    std::vector<size_t>& bucket = by_hash[hashes[i]];
    size_t group = out.groups.size();
    for (size_t candidate : bucket) {
      if (SameQiProjection(relation, out.groups[candidate].front(), rows[i])) {
        group = candidate;
        break;
      }
    }
    if (group == out.groups.size()) {
      out.groups.emplace_back();
      bucket.push_back(group);
    }
    out.groups[group].push_back(rows[i]);
  }
  return out;
}

}  // namespace

size_t QiGroups::MinGroupSize() const {
  if (groups.empty()) return 0;
  size_t min_size = groups[0].size();
  for (const auto& g : groups) {
    if (g.size() < min_size) min_size = g.size();
  }
  return min_size;
}

QiGroups ComputeQiGroups(const Relation& relation) {
  std::vector<RowId> all(relation.NumRows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<RowId>(i);
  return GroupRows(relation, all);
}

QiGroups ComputeQiGroups(const Relation& relation,
                         std::span<const RowId> rows) {
  return GroupRows(relation, rows);
}

bool IsKAnonymous(const Relation& relation, size_t k) {
  if (relation.NumRows() == 0) return true;
  QiGroups groups = ComputeQiGroups(relation);
  return groups.MinGroupSize() >= k;
}

size_t CountDistinctQiProjections(const Relation& relation) {
  QiGroups groups = ComputeQiGroups(relation);
  return groups.groups.size();
}

}  // namespace diva
