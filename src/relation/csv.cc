#include "relation/csv.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/failpoint.h"

namespace diva {

namespace {

/// Splits one logical CSV record starting at the current stream position.
/// Handles quoted fields that may contain delimiters and newlines.
/// Returns false at EOF with no data consumed. Malformed input — an
/// embedded NUL byte (CSV is a text format; a NUL means binary garbage
/// that would silently truncate C-string handling downstream) or a field
/// longer than `max_field_bytes` — sets *error and returns false.
bool ReadRecord(std::istream& input, char delimiter, size_t max_field_bytes,
                std::vector<std::string>* fields, Status* error) {
  fields->clear();
  int first = input.peek();
  if (first == EOF) return false;

  std::string field;
  bool in_quotes = false;
  bool saw_any = false;
  while (true) {
    int ci = input.get();
    if (ci == EOF) {
      if (in_quotes) {
        *error = Status::InvalidArgument("unterminated quoted CSV field");
        return false;
      }
      break;
    }
    saw_any = true;
    char c = static_cast<char>(ci);
    if (c == '\0') {
      *error = Status::InvalidArgument(
          "CSV input contains an embedded NUL byte (binary data?)");
      return false;
    }
    if (max_field_bytes > 0 && field.size() >= max_field_bytes) {
      *error = Status::InvalidArgument(
          "CSV field exceeds max_field_bytes = " +
          std::to_string(max_field_bytes));
      return false;
    }
    if (in_quotes) {
      if (c == '"') {
        if (input.peek() == '"') {
          input.get();
          field.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delimiter) {
      fields->push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      if (input.peek() == '\n') input.get();
      break;
    } else if (c == '\n') {
      break;
    } else {
      field.push_back(c);
    }
  }
  if (!saw_any) return false;
  fields->push_back(std::move(field));
  return true;
}

bool NeedsQuoting(const std::string& field, char delimiter) {
  for (char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void WriteField(std::ostream& out, const std::string& field, char delimiter) {
  if (!NeedsQuoting(field, delimiter)) {
    out << field;
    return;
  }
  out << '"';
  for (char c : field) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

}  // namespace

Result<Relation> ReadCsv(std::istream& input,
                         std::shared_ptr<const Schema> schema,
                         const CsvOptions& options) {
  Relation relation(schema);
  std::vector<std::string> fields;
  Status error;
  size_t line = 0;

  if (options.has_header) {
    if (!ReadRecord(input, options.delimiter, options.max_field_bytes,
                    &fields, &error)) {
      DIVA_RETURN_IF_ERROR(error);
      return Status::InvalidArgument("CSV input is empty (expected header)");
    }
    ++line;
    if (fields.size() != schema->NumAttributes()) {
      return Status::InvalidArgument(
          "CSV header has " + std::to_string(fields.size()) +
          " columns, schema has " + std::to_string(schema->NumAttributes()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i] != schema->attribute(i).name) {
        return Status::InvalidArgument("CSV header column " +
                                       std::to_string(i) + " is '" +
                                       fields[i] + "', schema expects '" +
                                       schema->attribute(i).name + "'");
      }
    }
  }

  while (ReadRecord(input, options.delimiter, options.max_field_bytes,
                    &fields, &error)) {
    ++line;
    DIVA_RETURN_IF_ERROR(DIVA_FAIL("csv.read.record"));
    auto row = relation.AppendRowStrings(fields);
    if (!row.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                     row.status().message());
    }
  }
  if (!error.ok()) {
    return Status(error.code(), "line " + std::to_string(line + 1) + ": " +
                                    error.message());
  }
  return relation;
}

Result<Relation> ReadCsvFile(const std::string& path,
                             std::shared_ptr<const Schema> schema,
                             const CsvOptions& options) {
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("csv.open.read"));
  std::ifstream input(path);
  if (!input) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return ReadCsv(input, std::move(schema), options);
}

Status WriteCsv(const Relation& relation, std::ostream& output,
                const CsvOptions& options) {
  if (options.has_header) {
    for (size_t i = 0; i < relation.NumAttributes(); ++i) {
      if (i > 0) output << options.delimiter;
      WriteField(output, relation.schema().attribute(i).name,
                 options.delimiter);
    }
    output << '\n';
  }
  for (RowId row = 0; row < relation.NumRows(); ++row) {
    DIVA_RETURN_IF_ERROR(DIVA_FAIL("csv.write.row"));
    for (size_t col = 0; col < relation.NumAttributes(); ++col) {
      if (col > 0) output << options.delimiter;
      WriteField(output, relation.ValueString(row, col), options.delimiter);
    }
    output << '\n';
  }
  if (!output) return Status::IoError("CSV write failed");
  return Status::OK();
}

Status WriteCsvFile(const Relation& relation, const std::string& path,
                    const CsvOptions& options) {
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("csv.open.write"));
  std::ofstream output(path, std::ios::trunc);
  if (!output) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return WriteCsv(relation, output, options);
}

}  // namespace diva
