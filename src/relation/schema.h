#ifndef DIVA_RELATION_SCHEMA_H_
#define DIVA_RELATION_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace diva {

/// Privacy role of an attribute (Samarati/Sweeney taxonomy).
enum class AttributeRole {
  /// Uniquely identifying (SSN, record id); dropped before publishing.
  kIdentifier,
  /// Quasi-identifier: subject to suppression and k-anonymity grouping.
  kQuasiIdentifier,
  /// Sensitive value: published as-is (never grouped, suppressible only by
  /// the Integrate repair when a diversity constraint targets it).
  kSensitive,
};

/// Value kind, controlling distance and split semantics.
enum class AttributeKind {
  kCategorical,
  kNumeric,
};

const char* AttributeRoleToString(AttributeRole role);
const char* AttributeKindToString(AttributeKind kind);

/// A single attribute declaration.
struct Attribute {
  std::string name;
  AttributeRole role = AttributeRole::kQuasiIdentifier;
  AttributeKind kind = AttributeKind::kCategorical;
};

/// Immutable attribute list with O(1) name lookup and cached index lists
/// per role. Shared (via shared_ptr) between a relation and its
/// anonymized derivatives.
class Schema {
 public:
  /// Builds a schema; attribute names must be non-empty and unique.
  [[nodiscard]] static Result<std::shared_ptr<const Schema>> Make(
      std::vector<Attribute> attributes);

  size_t NumAttributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, if any.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// Indices of quasi-identifier attributes, in schema order.
  const std::vector<size_t>& qi_indices() const { return qi_indices_; }
  /// Indices of sensitive attributes, in schema order.
  const std::vector<size_t>& sensitive_indices() const {
    return sensitive_indices_;
  }
  /// Indices of identifier attributes, in schema order.
  const std::vector<size_t>& identifier_indices() const {
    return identifier_indices_;
  }

  bool IsQuasiIdentifier(size_t i) const {
    return attributes_[i].role == AttributeRole::kQuasiIdentifier;
  }

 private:
  explicit Schema(std::vector<Attribute> attributes);

  std::vector<Attribute> attributes_;
  std::vector<size_t> qi_indices_;
  std::vector<size_t> sensitive_indices_;
  std::vector<size_t> identifier_indices_;
};

}  // namespace diva

#endif  // DIVA_RELATION_SCHEMA_H_
