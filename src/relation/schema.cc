#include "relation/schema.h"

#include <unordered_set>

namespace diva {

const char* AttributeRoleToString(AttributeRole role) {
  switch (role) {
    case AttributeRole::kIdentifier:
      return "identifier";
    case AttributeRole::kQuasiIdentifier:
      return "quasi-identifier";
    case AttributeRole::kSensitive:
      return "sensitive";
  }
  return "unknown";
}

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kCategorical:
      return "categorical";
    case AttributeKind::kNumeric:
      return "numeric";
  }
  return "unknown";
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    switch (attributes_[i].role) {
      case AttributeRole::kIdentifier:
        identifier_indices_.push_back(i);
        break;
      case AttributeRole::kQuasiIdentifier:
        qi_indices_.push_back(i);
        break;
      case AttributeRole::kSensitive:
        sensitive_indices_.push_back(i);
        break;
    }
  }
}

Result<std::shared_ptr<const Schema>> Schema::Make(
    std::vector<Attribute> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema must have at least one attribute");
  }
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr.name);
    }
  }
  return std::shared_ptr<const Schema>(new Schema(std::move(attributes)));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace diva
