#include "relation/stats.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "relation/qi_groups.h"

namespace diva {

RelationStats ComputeStats(const Relation& relation) {
  RelationStats stats;
  stats.num_rows = relation.NumRows();
  stats.num_attributes = relation.NumAttributes();
  stats.distinct_qi_projections = CountDistinctQiProjections(relation);

  for (size_t col = 0; col < relation.NumAttributes(); ++col) {
    AttributeStats attr;
    const Attribute& declared = relation.schema().attribute(col);
    attr.name = declared.name;
    attr.role = declared.role;
    attr.kind = declared.kind;

    std::unordered_map<ValueCode, size_t> counts;
    for (RowId row = 0; row < relation.NumRows(); ++row) {
      ValueCode code = relation.At(row, col);
      if (code == kSuppressed) {
        ++attr.suppressed;
      } else {
        ++counts[code];
      }
    }
    attr.distinct_values = counts.size();
    ValueCode modal_code = kSuppressed;
    for (const auto& [code, count] : counts) {
      if (count > attr.modal_count ||
          (count == attr.modal_count && modal_code != kSuppressed &&
           code < modal_code)) {
        attr.modal_count = count;
        modal_code = code;
      }
    }
    if (modal_code != kSuppressed) {
      attr.modal_value = relation.dictionary(col).ValueOf(modal_code);
    }

    if (declared.kind == AttributeKind::kNumeric) {
      bool first = true;
      for (const auto& [code, count] : counts) {
        auto value = relation.dictionary(col).NumericValueOf(code);
        if (!value.has_value()) continue;
        if (first) {
          attr.min_value = attr.max_value = *value;
          attr.has_numeric_range = true;
          first = false;
        } else {
          attr.min_value = std::min(attr.min_value, *value);
          attr.max_value = std::max(attr.max_value, *value);
        }
      }
    }
    stats.attributes.push_back(std::move(attr));
  }
  return stats;
}

std::string StatsToString(const RelationStats& stats) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%zu rows, %zu attributes, %zu distinct QI projections\n",
                stats.num_rows, stats.num_attributes,
                stats.distinct_qi_projections);
  out += line;
  std::snprintf(line, sizeof(line), "%-16s %-16s %-12s %9s %9s  %s\n",
                "attribute", "role", "kind", "distinct", "stars", "mode");
  out += line;
  for (const AttributeStats& attr : stats.attributes) {
    std::string mode = attr.modal_value;
    if (!mode.empty()) {
      mode += " (" + std::to_string(attr.modal_count) + ")";
    }
    if (attr.has_numeric_range) {
      char range[64];
      std::snprintf(range, sizeof(range), " range [%g, %g]", attr.min_value,
                    attr.max_value);
      mode += range;
    }
    std::snprintf(line, sizeof(line), "%-16s %-16s %-12s %9zu %9zu  %s\n",
                  attr.name.c_str(), AttributeRoleToString(attr.role),
                  AttributeKindToString(attr.kind), attr.distinct_values,
                  attr.suppressed, mode.c_str());
    out += line;
  }
  return out;
}

}  // namespace diva
