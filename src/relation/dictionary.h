#ifndef DIVA_RELATION_DICTIONARY_H_
#define DIVA_RELATION_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relation/value.h"

namespace diva {

/// Per-attribute value dictionary: interns strings to dense ValueCodes in
/// first-seen order and supports reverse lookup. Also caches a numeric
/// interpretation of each value so numeric attributes (e.g., AGE) can be
/// ordered and measured without re-parsing.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code for `value`, interning it if new.
  ValueCode GetOrInsert(std::string_view value);

  /// Returns the code for `value` if present.
  std::optional<ValueCode> Find(std::string_view value) const;

  /// Returns the string for `code`. `code` must be a valid code of this
  /// dictionary (kSuppressed is not; render that at a higher level).
  const std::string& ValueOf(ValueCode code) const;

  /// Numeric interpretation of `code` if the interned string parses as a
  /// number (used for numeric attribute distance and Mondrian splits).
  std::optional<double> NumericValueOf(ValueCode code) const;

  /// True if every interned value parses as a number (and the dictionary
  /// is non-empty).
  bool AllNumeric() const;

  /// Number of distinct interned values.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

 private:
  std::vector<std::string> values_;
  std::vector<std::optional<double>> numeric_values_;
  std::unordered_map<std::string, ValueCode> index_;
};

}  // namespace diva

#endif  // DIVA_RELATION_DICTIONARY_H_
