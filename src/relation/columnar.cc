#include "relation/columnar.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"

namespace diva {

Arena::Arena(size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  DIVA_CHECK_MSG(chunk_bytes_ > 0, "Arena chunk size must be positive");
}

void* Arena::Allocate(size_t bytes, size_t align) {
  DIVA_CHECK_MSG(align > 0 && (align & (align - 1)) == 0,
                 "Arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;  // distinct non-null pointers for empty arrays
  if (chunks_.empty() || chunks_.back().used + bytes + align >
                             chunks_.back().capacity) {
    Chunk chunk;
    chunk.capacity = std::max(bytes + align, chunk_bytes_);
    chunk.data = std::make_unique<std::byte[]>(chunk.capacity);
    chunks_.push_back(std::move(chunk));
  }
  Chunk& chunk = chunks_.back();
  uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get()) + chunk.used;
  uintptr_t aligned = (base + align - 1) & ~(uintptr_t{align} - 1);
  chunk.used += (aligned - base) + bytes;
  allocated_ += bytes;
  return reinterpret_cast<void*>(aligned);
}

ColumnStore ColumnStore::FromRelation(const Relation& relation) {
  ColumnStore store(relation.EmptyLike());
  const size_t num_rows = relation.NumRows();
  const size_t num_cols = relation.NumAttributes();
  store.num_rows_ = num_rows;
  store.columns_.reserve(num_cols);
  for (size_t col = 0; col < num_cols; ++col) {
    std::span<ValueCode> column =
        store.arena_.AllocateArray<ValueCode>(num_rows);
    for (size_t row = 0; row < num_rows; ++row) {
      column[row] = relation.At(static_cast<RowId>(row), col);
    }
    store.columns_.push_back(column);
  }
  return store;
}

Relation ColumnStore::GatherRows(std::span<const RowId> rows) const {
  Relation out = prototype_.EmptyLike();
  std::span<ValueCode> block = out.AppendSuppressedRows(rows.size());
  const size_t stride = columns_.size();
  for (size_t col = 0; col < stride; ++col) {
    std::span<const ValueCode> column = columns_[col];
    ValueCode* cell = block.data() + col;
    for (RowId row : rows) {
      // Load-bearing bounds check, same contract as Relation::SelectRows:
      // a stale RowId must abort, not read out of bounds in release.
      DIVA_CHECK_MSG(static_cast<size_t>(row) < num_rows_,
                     "GatherRows: row id out of range");
      *cell = column[static_cast<size_t>(row)];
      cell += stride;
    }
  }
  return out;
}

Relation ColumnStore::ToRelation() const {
  std::vector<RowId> all(num_rows_);
  for (size_t row = 0; row < num_rows_; ++row) {
    all[row] = static_cast<RowId>(row);
  }
  return GatherRows(all);
}

}  // namespace diva
