#include "core/constraint_graph.h"

#include <algorithm>

#include "common/rng.h"
#include "constraint/conflict.h"

namespace diva {

bool ConstraintGraph::HasEdge(size_t i, size_t j) const {
  const auto& neighbors = adjacency[i];
  return std::binary_search(neighbors.begin(), neighbors.end(), j);
}

ConstraintGraph BuildConstraintGraph(const Relation& relation,
                                     const ConstraintSet& constraints) {
  ConstraintGraph graph;
  graph.targets.reserve(constraints.size());
  for (const auto& constraint : constraints) {
    graph.targets.push_back(constraint.TargetTuples(relation));
  }
  graph.adjacency.assign(constraints.size(), {});
  for (size_t i = 0; i < constraints.size(); ++i) {
    for (size_t j = i + 1; j < constraints.size(); ++j) {
      if (SortedIntersectionSize(graph.targets[i], graph.targets[j]) > 0) {
        graph.adjacency[i].push_back(j);
        graph.adjacency[j].push_back(i);
      }
    }
  }
  for (auto& neighbors : graph.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  graph.row_tags = MakeRowTags(relation.NumRows());
  return graph;
}

std::vector<uint64_t> MakeRowTags(size_t num_rows) {
  // Constant seed: row tags (and every fingerprint derived from them)
  // must not vary run to run, or the coloring search would stop being
  // reproducible for a given options seed.
  Rng tag_rng(uint64_t{0x5e7f1a9bc0ffee11ULL});
  std::vector<uint64_t> tags(num_rows);
  for (uint64_t& tag : tags) {
    tag = tag_rng.Next();
  }
  return tags;
}

}  // namespace diva
