#ifndef DIVA_CORE_SHARD_H_
#define DIVA_CORE_SHARD_H_

/// Component sharding of the DIVA pipeline (ROADMAP item 1).
///
/// The conflict graph (edge iff I_si ∩ I_sj != ∅) decomposes into
/// connected components that are fully independent: a cluster chosen for
/// a component-c constraint is a subset of that component's target rows,
/// so it can never contribute occurrences to — or claim rows from — a
/// constraint in another component. Coloring therefore runs per
/// component over a column-gathered sub-relation, and the merged result
/// is a valid coloring of the whole instance.
///
/// Determinism contract: whenever the plan is *effective* (>= 2
/// components), the plan — not the execution mode — fixes every search
/// decision. Each shard colors its sub-relation with its own
/// deterministic RNG stream (a splitmix of the run seed and the shard
/// index), full step budget, and locally regenerated row tags, and the
/// shard outcomes are merged in component-index order. The
/// DivaOptions::shard flag only chooses *how* those identical per-shard
/// computations execute — concurrently as TaskGroup work items, or
/// sequentially inline — so CSV/report/audit bytes are identical with
/// sharding on or off and at every thread width (tests/shard_test.cc
/// asserts this on the fuzz corpus). A single-component graph falls back
/// to the legacy global search, byte-for-byte.

#include <cstdint>
#include <vector>

#include "common/counters.h"
#include "common/result.h"
#include "core/coloring.h"
#include "core/constraint_graph.h"
#include "relation/columnar.h"
#include "relation/relation.h"

namespace diva {

/// Disjoint-set forest over constraint indices (union by rank, path
/// halving). Deterministic: the final partition depends only on the
/// union sequence's connectivity, never on its order.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  size_t Find(size_t x);
  /// Merges the sets of a and b; no-op when already joined.
  void Union(size_t a, size_t b);
  size_t NumSets() const { return sets_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  size_t sets_;
};

/// One connected component of the conflict graph.
struct Shard {
  /// Global constraint indices, ascending.
  std::vector<size_t> constraints;
  /// Union of the member constraints' target rows, ascending global ids.
  std::vector<RowId> rows;
};

/// The partition of an instance: one shard per conflict-graph component
/// (ordered by smallest member constraint index — the component index),
/// plus the residual rows no constraint targets. Residual rows need no
/// coloring; they flow to the baseline phase untouched.
struct ShardPlan {
  std::vector<Shard> shards;
  size_t residual_rows = 0;
  size_t num_rows = 0;

  /// Largest shard row count (0 when there are no shards).
  size_t MaxShardRows() const;

  /// Decomposition pays off only with >= 2 independent searches; below
  /// that the caller takes the legacy single-search path unchanged.
  bool Effective() const { return shards.size() >= 2; }
};

/// Computes the component partition from the already-built conflict
/// graph. Pure function of (graph, num_rows): identical at every thread
/// width and in both execution modes.
ShardPlan ComputeShardPlan(const ConstraintGraph& graph, size_t num_rows);

/// A reusable record of one shard's coloring: the outcome in *local*
/// coordinates (cluster rows are positions into the shard's ascending
/// row list, captured before the global remap) plus the deterministic
/// counter updates buffered while the shard ran. An incremental run
/// adopts the record for a clean shard by remapping the local clusters
/// through the new shard's row list and replaying the counter buffer in
/// shard-index order — every search decision and every deterministic
/// counter op is a pure function of the shard's local sub-instance, so
/// adoption is byte-identical to re-running the search.
struct ShardColoringRecord {
  ColoringOutcome outcome;
  counters::Buffer telemetry;
};

/// Runs the coloring search per shard and merges the outcomes in
/// component-index order. `store` must be a columnar snapshot of the
/// full relation; each shard colors a column-gathered sub-relation of
/// its rows against its remapped sub-graph. `base_options` carries the
/// run's tuned coloring knobs; per-shard seeds are derived from them.
/// `workers` > 1 executes shards as TaskGroup work items (per-shard
/// counter/span buffers committed in shard order); <= 1 runs the same
/// computations sequentially inline. The merged outcome is identical
/// either way. Fails only via the shard.run / shard.merge failpoints —
/// a faulted shard discards every shard's buffered telemetry and
/// surfaces a clean Status, never a partially merged coloring.
///
/// `adopt` (optional, per-shard, nullptr entries allowed) replaces a
/// shard's live search with a prior ShardColoringRecord: the recorded
/// local outcome is remapped through the shard's current rows and its
/// telemetry replayed at the shard's merge slot. Callers must only
/// adopt records captured from an identical local sub-instance (same
/// member constraints, same row contents, same options/seed stream).
/// `capture` (optional) receives one record per shard, adopted records
/// copied through verbatim so snapshots chain across deltas.
[[nodiscard]] Result<ColoringOutcome> RunShardedColoring(
    const ColumnStore& store, const ConstraintSet& constraints,
    const ConstraintGraph& graph, const ShardPlan& plan,
    const ColoringOptions& base_options, size_t workers,
    const std::vector<const ShardColoringRecord*>* adopt = nullptr,
    std::vector<ShardColoringRecord>* capture = nullptr);

/// The per-shard seed stream: a splitmix64 mix of the run seed and the
/// shard index, so shards draw from decorrelated deterministic streams.
/// Exposed for tests.
uint64_t ShardSeed(uint64_t seed, size_t shard_index);

}  // namespace diva

#endif  // DIVA_CORE_SHARD_H_
