#include "core/clusterings.h"

#include <algorithm>
#include <optional>

#include "common/counters.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace diva {

std::vector<RowId> SortByQiSimilarity(const Relation& relation,
                                      const std::vector<RowId>& targets) {
  std::vector<RowId> sorted = targets;
  const auto& qi = relation.schema().qi_indices();
  std::stable_sort(sorted.begin(), sorted.end(), [&](RowId a, RowId b) {
    for (size_t col : qi) {
      ValueCode ca = relation.At(a, col);
      ValueCode cb = relation.At(b, col);
      if (ca != cb) return ca < cb;
    }
    return a < b;
  });
  return sorted;
}

namespace {

/// True when rows a and b agree on every quasi-identifier attribute.
bool SameQiProjection(const Relation& relation, RowId a, RowId b) {
  for (size_t col : relation.schema().qi_indices()) {
    if (relation.At(a, col) != relation.At(b, col)) return false;
  }
  return true;
}

/// Appends the block partitions of `subset` (which must be sorted by QI
/// similarity) to `out`, respecting the cap. Blocks are grown to >= k
/// rows and cut at QI-projection boundaries whenever possible, so a block
/// is a union of whole runs of identical tuples — identical runs keep
/// their values (and their contribution to other constraints' counts)
/// instead of being split across mixed clusters. The one-block variant is
/// optionally emitted too.
void AddPartitions(const Relation& relation, const std::vector<RowId>& subset,
                   size_t k, const ClusteringEnumOptions& options,
                   std::vector<CandidateClustering>* out) {
  if (out->size() >= options.max_clusterings) return;
  size_t m = subset.size();
  if (m < k) return;

  // Decompose the subset into runs of identical QI projections, then
  // assemble blocks from whole runs: a run of >= k rows becomes its own
  // uniform block(s) (full credit toward every constraint its tuples
  // match); runs smaller than k accumulate in a mixed buffer that is
  // flushed once it reaches k. Keeping small runs out of the big runs'
  // blocks is what preserves cross-constraint contributions.
  CandidateClustering blocked;
  blocked.preserved = m;
  Cluster buffer;  // small runs awaiting enough mass
  size_t run_begin = 0;
  for (size_t i = 0; i < m; ++i) {
    bool at_boundary =
        i + 1 == m || !SameQiProjection(relation, subset[i], subset[i + 1]);
    if (!at_boundary) continue;
    size_t run_length = i + 1 - run_begin;
    if (run_length >= k) {
      blocked.clusters.emplace_back(subset.begin() + run_begin,
                                    subset.begin() + i + 1);
    } else {
      buffer.insert(buffer.end(), subset.begin() + run_begin,
                    subset.begin() + i + 1);
      if (buffer.size() >= k) {
        blocked.clusters.push_back(std::move(buffer));
        buffer.clear();
      }
    }
    run_begin = i + 1;
  }
  if (!buffer.empty()) {
    if (!blocked.clusters.empty()) {
      // Leftover small runs: fold into the smallest existing block (the
      // least credit to lose).
      size_t smallest = 0;
      for (size_t b = 1; b < blocked.clusters.size(); ++b) {
        if (blocked.clusters[b].size() < blocked.clusters[smallest].size()) {
          smallest = b;
        }
      }
      blocked.clusters[smallest].insert(blocked.clusters[smallest].end(),
                                        buffer.begin(), buffer.end());
    } else {
      blocked.clusters.push_back(std::move(buffer));  // m >= k guaranteed
    }
    buffer.clear();
  }
  size_t num_blocks = blocked.clusters.size();
  out->push_back(std::move(blocked));

  if (options.single_block_variant && num_blocks > 1 &&
      out->size() < options.max_clusterings) {
    CandidateClustering single;
    single.preserved = m;
    single.clusters.emplace_back(subset.begin(), subset.end());
    out->push_back(std::move(single));
  }
}

/// One unit of enumeration work for the parallel phase: a row subset to
/// partition (windows arrive as rows pre-sorted by QI similarity; random
/// subsets as positions into the sorted order) or a candidate that was
/// already materialized inline (the interleaved escape-route clustering).
struct EnumerationJob {
  std::vector<RowId> subset;  // rows, already in QI-similarity order
  /// When non-empty, `subset` is ignored: these are positions into the
  /// caller's sorted target order. Sorting positions ascending and
  /// gathering reproduces SortByQiSimilarity of the subset exactly (the
  /// similarity order IS the position order) without ever touching the
  /// relation's comparator.
  std::vector<uint32_t> positions;
  /// When set, everything else is ignored and this candidate is emitted
  /// as-is.
  std::optional<CandidateClustering> ready;
};

/// Runs the partitioning of one job into a fresh candidate list. Pure
/// function of (sorted, job, k, options) — safe to evaluate for every
/// job concurrently; callers concatenate results in job order, which
/// reproduces the sequential emission order exactly.
std::vector<CandidateClustering> RunEnumerationJob(
    const Relation& relation, const std::vector<RowId>& sorted,
    EnumerationJob&& job, size_t k, const ClusteringEnumOptions& options) {
  std::vector<CandidateClustering> local;
  if (job.ready.has_value()) {
    local.push_back(std::move(*job.ready));
    return local;
  }
  if (!job.positions.empty()) {
    std::sort(job.positions.begin(), job.positions.end());
    job.subset.reserve(job.positions.size());
    for (uint32_t position : job.positions) {
      job.subset.push_back(sorted[position]);
    }
  }
  AddPartitions(relation, job.subset, k, options, &local);
  return local;
}

}  // namespace

std::vector<CandidateClustering> EnumerateClusterings(
    const Relation& relation, const DiversityConstraint& constraint,
    const std::vector<RowId>& targets, size_t k,
    const ClusteringEnumOptions& options) {
  std::vector<CandidateClustering> out;
  if (k == 0) return out;

  // With no lower bound to meet, preserving nothing is the minimal (and
  // always-consistent) choice; upper-bound spill from R_k is repaired by
  // Integrate.
  if (constraint.lower() == 0) {
    out.push_back(CandidateClustering{});
  }

  size_t lower = std::max<size_t>(1, constraint.lower());
  auto bounded = EnumerateClusteringsWithBounds(relation, targets, k, lower,
                                                constraint.upper(), options);
  out.insert(out.end(), std::make_move_iterator(bounded.begin()),
             std::make_move_iterator(bounded.end()));
  if (!options.ordered && out.size() > 1) {
    Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
    rng.Shuffle(&out);
  }
  return out;
}

std::vector<CandidateClustering> EnumerateClusteringsWithBounds(
    const Relation& relation, const std::vector<RowId>& free_targets,
    size_t k, size_t min_preserve, size_t max_preserve,
    const ClusteringEnumOptions& options) {
  std::vector<CandidateClustering> out;
  if (EnumerationIsTriviallyEmpty(free_targets.size(), k, min_preserve,
                                  max_preserve)) {
    return out;
  }

  // coloring.target_sorts counts full-target stable_sorts; the coloring
  // engine hoists them to construction time, so after one ColorConstraints
  // the deterministic counter equals the constraint count exactly
  // (coloring_test asserts this). Any future code path that reaches this
  // per-call sort from inside the search loop breaks that invariant
  // loudly instead of silently regressing.
  std::vector<RowId> sorted = SortByQiSimilarity(relation, free_targets);
  DIVA_COUNTER_ADD("coloring.target_sorts", 1);
  return EnumerateClusteringsQiSorted(relation, sorted, k, min_preserve,
                                      max_preserve, options);
}

bool EnumerationIsTriviallyEmpty(size_t free_targets, size_t k,
                                 size_t min_preserve, size_t max_preserve) {
  if (k == 0 || free_targets == 0) return true;
  size_t m_lo = std::max(k, std::max<size_t>(1, min_preserve));
  size_t m_hi = std::min(max_preserve, free_targets);
  return m_lo > m_hi;
}

std::vector<CandidateClustering> EnumerateClusteringsQiSorted(
    const Relation& relation, const std::vector<RowId>& sorted_free_targets,
    size_t k, size_t min_preserve, size_t max_preserve,
    const ClusteringEnumOptions& options) {
  DIVA_TRACE_SPAN("clusterings/enumerate");
  std::vector<CandidateClustering> out;
  if (EnumerationIsTriviallyEmpty(sorted_free_targets.size(), k,
                                  min_preserve, max_preserve)) {
    return out;
  }
  size_t m_lo = std::max(k, std::max<size_t>(1, min_preserve));
  size_t m_hi = std::min(max_preserve, sorted_free_targets.size());

  const std::vector<RowId>& sorted = sorted_free_targets;
  Rng rng(options.seed);

  std::vector<size_t> preserved_values;
  for (size_t step = 0; step < options.preserved_steps; ++step) {
    size_t m = m_lo + step * k;
    if (m > m_hi) break;
    preserved_values.push_back(m);
  }
  if (preserved_values.empty() ||
      (preserved_values.back() != m_hi && preserved_values.size() > 0)) {
    // Always consider the largest admissible subset too: preserving every
    // target tuple is sometimes the only way to respect a tight range.
    if (preserved_values.empty() || m_hi > preserved_values.back()) {
      preserved_values.push_back(m_hi);
    }
  }

  for (size_t m : preserved_values) {
    if (out.size() >= options.max_clusterings) break;

    // Describe this m's work as independent jobs, sequentially and in
    // the exact emission order; every RNG draw happens here, up front,
    // so the stream is identical no matter how the jobs execute.
    std::vector<EnumerationJob> jobs;

    // Deterministic sliding windows over the similarity order.
    size_t positions = sorted.size() - m + 1;
    size_t windows = std::min(options.max_window_candidates, positions);
    if (windows > 0) {
      size_t stride = std::max<size_t>(1, positions / windows);
      for (size_t w = 0; w < windows; ++w) {
        size_t begin = w * stride;
        if (begin >= positions) break;
        EnumerationJob job;
        job.subset.assign(sorted.begin() + begin, sorted.begin() + begin + m);
        jobs.push_back(std::move(job));
      }
    }

    // A strided subset with an interleaved partition: rows are spread
    // across the similarity order and each block mixes dissimilar
    // tuples. Such clusters suppress more, but they contribute (almost)
    // nothing to OTHER constraints' preserved counts — the escape route
    // when similarity blocks keep tripping neighbors' upper bounds.
    if (m < sorted.size()) {
      size_t step = sorted.size() / m;
      std::vector<RowId> subset;
      subset.reserve(m);
      for (size_t i = 0; i < m; ++i) subset.push_back(sorted[i * step]);
      size_t num_blocks = m / k;
      if (num_blocks > 0) {
        CandidateClustering interleaved;
        interleaved.preserved = m;
        interleaved.clusters.assign(num_blocks, {});
        for (size_t i = 0; i < m; ++i) {
          interleaved.clusters[i % num_blocks].push_back(subset[i]);
        }
        EnumerationJob job;
        job.ready = std::move(interleaved);
        jobs.push_back(std::move(job));
      }
    }

    // Seeded random subsets for diversity beyond the similarity order.
    // The pool holds positions into `sorted`, not rows: the RNG swap
    // sequence is unchanged, and the job re-sorts positions instead of
    // running the QI comparator over the relation again.
    std::vector<uint32_t> pool(sorted.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      pool[i] = static_cast<uint32_t>(i);
    }
    for (size_t r = 0; r < options.random_subsets; ++r) {
      // Partial Fisher-Yates: the first m entries become a random subset.
      for (size_t i = 0; i < m; ++i) {
        size_t j = i + static_cast<size_t>(rng.NextBounded(pool.size() - i));
        std::swap(pool[i], pool[j]);
      }
      EnumerationJob job;
      job.positions.assign(pool.begin(), pool.begin() + m);
      jobs.push_back(std::move(job));
    }

    // Partition every subset concurrently; gathering by job index keeps
    // the candidate order byte-identical for every thread count.
    std::vector<std::vector<CandidateClustering>> produced =
        ParallelMap<std::vector<CandidateClustering>>(
            jobs.size(), /*grain=*/1, [&](size_t i) {
              return RunEnumerationJob(relation, sorted, std::move(jobs[i]),
                                       k, options);
            });
    for (std::vector<CandidateClustering>& batch : produced) {
      for (CandidateClustering& candidate : batch) {
        if (out.size() >= options.max_clusterings) break;
        out.push_back(std::move(candidate));
      }
    }
  }

  if (!options.ordered) {
    rng.Shuffle(&out);
  }
  DIVA_COUNTER_ADD("clusterings.enumerated", out.size());
  return out;
}

}  // namespace diva
