#include "core/integrate.h"

#include <algorithm>
#include <optional>

#include "common/counters.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace diva {

namespace {

/// First sensitive (non-QI, non-identifier) attribute among the
/// constraint's target attributes, if any.
std::optional<size_t> SensitiveTargetAttribute(
    const Relation& relation, const DiversityConstraint& constraint) {
  for (size_t attr : constraint.attribute_indices()) {
    if (relation.schema().attribute(attr).role == AttributeRole::kSensitive) {
      return attr;
    }
  }
  return std::nullopt;
}

/// First quasi-identifier attribute among the targets (exists whenever
/// SensitiveTargetAttribute is empty, since identifier-attribute targets
/// are legal but pointless; fall back to the first target attribute).
size_t QiTargetAttribute(const Relation& relation,
                         const DiversityConstraint& constraint) {
  for (size_t attr : constraint.attribute_indices()) {
    if (relation.schema().IsQuasiIdentifier(attr)) return attr;
  }
  return constraint.attribute_indices().front();
}

/// Per-constraint occurrence counts computed once up front (one batched
/// pass) and decremented exactly under every repair suppression, so each
/// lookup equals what CountOccurrences would return on the live relation
/// without rescanning it per constraint.
class MaintainedCounts {
 public:
  MaintainedCounts(const Relation& relation, const ConstraintSet& constraints)
      : constraints_(constraints),
        counts_(CountAllOccurrences(relation, constraints)),
        by_attr_(relation.NumAttributes()) {
    for (size_t c = 0; c < constraints.size(); ++c) {
      for (size_t attr : constraints[c].attribute_indices()) {
        by_attr_[attr].push_back(c);
      }
    }
  }

  size_t count(size_t constraint_index) const {
    return counts_[constraint_index];
  }

  /// Suppresses cell (row, attr) in *relation. A cell can only stop
  /// matching (target codes are never kSuppressed), so the count of every
  /// constraint the row matched on `attr` drops by exactly one.
  void Suppress(Relation* relation, RowId row, size_t attr) {
    for (size_t c : by_attr_[attr]) {
      if (constraints_[c].MatchesRow(*relation, row)) --counts_[c];
    }
    relation->Set(row, attr, kSuppressed);
  }

 private:
  const ConstraintSet& constraints_;
  std::vector<size_t> counts_;
  std::vector<std::vector<size_t>> by_attr_;
};

}  // namespace

IntegrateStats IntegrateRepair(Relation* relation,
                               const ConstraintSet& constraints,
                               const Clustering& rk_clusters) {
  DIVA_TRACE_SPAN("integrate/repair");
  IntegrateStats stats;
  MaintainedCounts counts(*relation, constraints);

  for (size_t ci = 0; ci < constraints.size(); ++ci) {
    const DiversityConstraint& constraint = constraints[ci];
    size_t count = counts.count(ci);
    if (count <= constraint.upper()) continue;
    size_t excess = count - constraint.upper();
    ++stats.repaired_constraints;

    std::optional<size_t> sensitive_attr =
        SensitiveTargetAttribute(*relation, constraint);
    if (sensitive_attr.has_value()) {
      // Cell-level repair: suppress the sensitive target value in exactly
      // `excess` matching R_k rows. Sensitive cells are not part of the
      // QI projection, so k-anonymity is untouched.
      for (const Cluster& cluster : rk_clusters) {
        for (RowId row : cluster) {
          if (excess == 0) break;
          if (constraint.MatchesRow(*relation, row)) {
            counts.Suppress(relation, row, *sensitive_attr);
            ++stats.suppressed_cells;
            --excess;
          }
        }
        if (excess == 0) break;
      }
      continue;
    }

    // QI-only target: a whole R_k cluster either matches (its rows share
    // all QI values) or not. Suppressing one target attribute across a
    // matching cluster removes |cluster| occurrences at |cluster| stars
    // and keeps the cluster a uniform QI-group of unchanged size.
    size_t repair_attr = QiTargetAttribute(*relation, constraint);
    // Indices into rk_clusters whose (uniform-QI) rows match the
    // constraint. The scan only reads the relation; chunk hit lists
    // concatenated in chunk order equal the sequential scan's order.
    std::vector<size_t> matching = ParallelReduce<std::vector<size_t>>(
        rk_clusters.size(), /*grain=*/0, {},
        [&](size_t begin, size_t end) {
          std::vector<size_t> local;
          for (size_t c = begin; c < end; ++c) {
            const Cluster& cluster = rk_clusters[c];
            if (!cluster.empty() &&
                constraint.MatchesRow(*relation, cluster.front())) {
              local.push_back(c);
            }
          }
          return local;
        },
        [](std::vector<size_t> acc, std::vector<size_t> chunk) {
          acc.insert(acc.end(), chunk.begin(), chunk.end());
          return acc;
        });
    std::sort(matching.begin(), matching.end(), [&](size_t a, size_t b) {
      return rk_clusters[a].size() < rk_clusters[b].size();
    });

    while (excess > 0 && !matching.empty()) {
      // Smallest matching cluster that covers the remaining excess, to
      // minimize overshoot; otherwise the largest available.
      size_t chosen_pos = matching.size();
      for (size_t i = 0; i < matching.size(); ++i) {
        if (rk_clusters[matching[i]].size() >= excess) {
          chosen_pos = i;
          break;
        }
      }
      if (chosen_pos == matching.size()) chosen_pos = matching.size() - 1;
      size_t cluster_index = matching[chosen_pos];
      matching.erase(matching.begin() + static_cast<long>(chosen_pos));

      const Cluster& cluster = rk_clusters[cluster_index];
      for (RowId row : cluster) {
        counts.Suppress(relation, row, repair_attr);
      }
      stats.suppressed_cells += cluster.size();
      excess -= std::min(excess, cluster.size());
    }
  }
  DIVA_COUNTER_ADD("integrate.repaired_constraints",
                   stats.repaired_constraints);
  DIVA_COUNTER_ADD("integrate.suppressed_cells", stats.suppressed_cells);
  return stats;
}

}  // namespace diva
