#ifndef DIVA_CORE_INCREMENTAL_H_
#define DIVA_CORE_INCREMENTAL_H_

/// Incremental re-anonymization (ROADMAP item 4).
///
/// A row delta can only perturb the conflict-graph components whose
/// I_sigma target sets it touches: a component's coloring and baseline
/// clustering are pure functions of its local sub-instance (member
/// constraints, row contents in row-list order, and the positionally
/// derived per-shard seed stream). ApplyDelta therefore maintains the
/// target indexes, QI-group hashes, and the conflict graph under the
/// delta, diffs the resulting shard plan against the prior plan by
/// component fingerprint (FNV over the shard's row-content hashes), and
/// re-runs the pipeline adopting the prior per-shard coloring and
/// baseline records for every *clean* component — producing output,
/// counters, and audit byte-identical to a cold run on the post-delta
/// relation at every thread width, in time proportional to the dirty
/// fraction plus the cheap full-relation passes (suppress, integrate
/// with batched counting, audit).
///
/// Reuse invariants (all must hold, else the shard is re-colored live):
///  - same DivaOptions fingerprint (k, strategy, seed, budgets,
///    enumeration, baseline + anonymizer knobs, privacy layers) and no
///    generalization context;
///  - unchanged per-attribute dictionary sizes (Mondrian's Spread scans
///    the global dictionary domain, so interning a new value dirties
///    every shard);
///  - same member-constraint index list at the same component index
///    (positional match keeps the splitmix seed stream aligned);
///  - identical row contents over the shard's row list (content hashes;
///    local target positions and adjacency follow from content).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/result.h"
#include "constraint/diversity_constraint.h"
#include "core/constraint_graph.h"
#include "core/diva.h"
#include "core/shard.h"
#include "relation/relation.h"

namespace diva {

/// A batch of row changes against a snapshot's input relation: `deleted`
/// are row ids of that relation (any order, duplicates tolerated),
/// `inserted` rows are appended in order after the survivors, encoded
/// through the shared dictionaries ("*" cells stay suppressed).
struct DeltaBatch {
  std::vector<RowId> deleted;
  std::vector<std::vector<std::string>> inserted;

  bool Empty() const { return deleted.empty() && inserted.empty(); }
};

/// One shard's baseline-phase reuse record: the clusters built over the
/// shard's uncovered rows in *local* coordinates (positions into the
/// uncovered-row list, which is itself a pure function of the shard's
/// contents and its adopted coloring), plus the buffered deterministic
/// counter ops. `used` is false for shards whose uncovered rows were
/// pooled (fewer than k of them) — the pool is always recomputed.
struct ShardBaselineRecord {
  bool used = false;
  Clustering clusters;
  counters::Buffer telemetry;
};

/// Everything an incremental run needs to reuse a prior run: the input
/// relation (pre-anonymization), its index structures, per-row content
/// and QI-projection hashes, and the per-shard coloring/baseline
/// records. Snapshots chain: ApplyDelta emits a fresh snapshot for the
/// post-delta relation, with clean shards' records copied forward.
struct PipelineSnapshot {
  bool valid = false;

  /// Null until FinalizeSnapshot runs (Relation has no empty state).
  std::optional<Relation> input;
  ConstraintSet constraints;
  ConstraintGraph graph;
  ShardPlan plan;

  /// FNV-1a over each row's codes (all attributes): the unit of the
  /// component fingerprints.
  std::vector<uint64_t> row_hashes;
  /// QI-projection hash per row (relation/qi_groups.h), maintained under
  /// deltas alongside the content hashes.
  std::vector<uint64_t> qi_hashes;
  /// Per-attribute dictionary sizes at capture time.
  std::vector<size_t> dictionary_sizes;
  /// Fingerprint of every DivaOptions knob that steers the search.
  uint64_t options_fingerprint = 0;

  std::vector<ShardColoringRecord> coloring;
  std::vector<ShardBaselineRecord> baseline;
};

/// Caller-supplied precomputations and reuse directives for one pipeline
/// run. Everything is optional; an empty hooks struct is a cold run.
struct PipelineHooks {
  /// Precomputed conflict graph + shard plan for the input relation
  /// (both or neither): the pipeline skips BuildConstraintGraph /
  /// ComputeShardPlan, which an incremental caller has already
  /// maintained under the delta.
  const ConstraintGraph* graph = nullptr;
  const ShardPlan* plan = nullptr;

  /// Per-shard adoption (empty, or one entry per shard, nullptr = run
  /// live). Records must come from an identical local sub-instance.
  std::vector<const ShardColoringRecord*> adopt_coloring;
  std::vector<const ShardBaselineRecord*> adopt_baseline;

  /// When non-null, the pipeline fills the per-shard reuse records and
  /// the `valid` eligibility flag; the caller finishes the snapshot
  /// (relation/graph/plan/hashes) with FinalizeSnapshot.
  PipelineSnapshot* capture = nullptr;
};

/// The five-phase pipeline behind RunDiva, with incremental hooks.
/// RunDiva(relation, constraints, options) == RunDivaPipeline(...) with
/// empty hooks; adoption and capture never change output bytes.
[[nodiscard]] Result<DivaResult> RunDivaPipeline(const Relation& relation,
                                                 const ConstraintSet& constraints,
                                                 const DivaOptions& options,
                                                 const PipelineHooks& hooks);

/// Completes a pipeline-captured snapshot (the pipeline already stored
/// the graph, plan, and reuse records): copies the input relation and
/// constraints in, and fills the per-row hashes, dictionary sizes, and
/// options fingerprint. Precomputed hash vectors (an incremental
/// caller's maintained ones) are used verbatim when supplied, computed
/// from the relation otherwise. No-op when the pipeline marked the
/// capture invalid.
void FinalizeSnapshot(PipelineSnapshot* snapshot, const Relation& input,
                      const ConstraintSet& constraints,
                      const DivaOptions& options,
                      std::vector<uint64_t> row_hashes = {},
                      std::vector<uint64_t> qi_hashes = {});

/// Applies the delta to `input` alone: survivors keep their relative
/// order (ids compact downward), inserted rows append after them,
/// sharing the input's schema and dictionaries. Fails on out-of-range
/// deletes or malformed inserted rows.
[[nodiscard]] Result<Relation> ApplyDeltaToRelation(const Relation& input,
                                                    const DeltaBatch& delta);

/// Incremental re-anonymization: applies `delta` to the snapshot's
/// input, maintains the target indexes / QI hashes / conflict graph /
/// shard plan under it, re-colors only the dirty components (clean ones
/// adopt the snapshot's records), and runs the downstream phases. The
/// result — relation bytes, report counters, audit — is byte-identical
/// to RunDiva on the post-delta relation with the same options, at
/// every thread width. The returned DivaResult carries a fresh snapshot
/// for the post-delta relation, so deltas chain.
///
/// `options` must describe the same run configuration the snapshot was
/// captured under (fingerprint-checked); on mismatch every component is
/// treated as dirty — still correct, just a cold-cost run.
/// Faults at the delta.apply / delta.recolor / delta.merge sites (and
/// any pipeline-internal site) surface a clean Status; no partially
/// merged output is ever returned.
[[nodiscard]] Result<DivaResult> ApplyDelta(const PipelineSnapshot& prior,
                                            const DeltaBatch& delta,
                                            const DivaOptions& options);

/// Parses the anonymize_cli delta file format: one directive per line,
/// `- <row_id>` deletes a row of the snapshot relation, `+ <csv row>`
/// inserts a row (comma-separated, no quoting, "*" = suppressed cell).
/// Blank lines and `#` comments are ignored.
[[nodiscard]] Result<DeltaBatch> ParseDeltaFile(const std::string& text);

/// The component fingerprint of the dirty-component rule: FNV-1a over
/// the shard's member-constraint indices and its rows' content hashes.
/// Two shards with equal fingerprints present identical local
/// sub-instances to the search. Exposed for tests.
uint64_t ShardFingerprint(const Shard& shard,
                          const std::vector<uint64_t>& row_hashes);

/// FNV-1a over one row's codes across all attributes. Exposed for tests.
uint64_t RowContentHash(const Relation& relation, RowId row);

}  // namespace diva

#endif  // DIVA_CORE_INCREMENTAL_H_
