#ifndef DIVA_CORE_INTEGRATE_H_
#define DIVA_CORE_INTEGRATE_H_

#include "anon/cluster.h"
#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// Statistics of the Integrate repair phase.
struct IntegrateStats {
  /// Constraints whose upper bound had to be repaired.
  size_t repaired_constraints = 0;
  /// Cells suppressed by the repair.
  size_t suppressed_cells = 0;
};

/// The Integrate phase (paper Fig. 1): R' = R_Sigma ∪ R_k may exceed a
/// constraint's upper bound because of occurrences contributed by R_k;
/// this routine suppresses the minimal number of additional cells in the
/// R_k side of `relation` to restore every upper bound.
///
/// `rk_clusters` are the QI-groups produced by the Anonymize phase
/// (repair never touches R_Sigma rows, so lower bounds guaranteed by the
/// diverse clustering are preserved). For targets made of QI attributes
/// only, one target attribute is suppressed across whole R_k clusters
/// (keeping them uniform QI-groups of unchanged size, so k-anonymity is
/// preserved); clusters are chosen greedily to minimize overshoot. For
/// targets involving a sensitive attribute, single sensitive cells are
/// suppressed — exactly `excess` of them.
IntegrateStats IntegrateRepair(Relation* relation,
                               const ConstraintSet& constraints,
                               const Clustering& rk_clusters);

}  // namespace diva

#endif  // DIVA_CORE_INTEGRATE_H_
