#include "core/shard.h"

#include <algorithm>

#include "common/bitset.h"
#include "common/counters.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace diva {

UnionFind::UnionFind(size_t n)
    : parent_(n), rank_(n, 0), sets_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

void UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a);
  size_t rb = Find(b);
  if (ra == rb) return;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = static_cast<uint32_t>(ra);
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --sets_;
}

ShardPlan ComputeShardPlan(const ConstraintGraph& graph, size_t num_rows) {
  ShardPlan plan;
  plan.num_rows = num_rows;
  const size_t n = graph.NumNodes();
  if (n == 0) {
    plan.residual_rows = num_rows;
    return plan;
  }

  UnionFind components(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j : graph.adjacency[i]) components.Union(i, j);
  }

  // Component index = rank of the component's smallest constraint index.
  // Scanning constraints in ascending order and appending a shard the
  // first time a root is seen yields exactly that order.
  std::vector<size_t> shard_of_root(n, static_cast<size_t>(-1));
  for (size_t i = 0; i < n; ++i) {
    size_t root = components.Find(i);
    if (shard_of_root[root] == static_cast<size_t>(-1)) {
      shard_of_root[root] = plan.shards.size();
      plan.shards.emplace_back();
    }
    plan.shards[shard_of_root[root]].constraints.push_back(i);
  }

  // A shard's rows = union of its constraints' target sets, ascending.
  // Target lists are sorted, so a merge + dedup keeps the order without
  // a global sort. A row targeted by two constraints forces an edge
  // between them, so each targeted row lands in exactly one shard.
  Bitset targeted(num_rows);
  for (Shard& shard : plan.shards) {
    std::vector<RowId> rows;
    for (size_t c : shard.constraints) {
      const std::vector<RowId>& targets = graph.targets[c];
      std::vector<RowId> merged;
      merged.reserve(rows.size() + targets.size());
      std::set_union(rows.begin(), rows.end(), targets.begin(),
                     targets.end(), std::back_inserter(merged));
      rows = std::move(merged);
    }
    for (RowId row : rows) targeted.Set(static_cast<size_t>(row));
    shard.rows = std::move(rows);
  }
  plan.residual_rows = num_rows - targeted.Count();
  return plan;
}

size_t ShardPlan::MaxShardRows() const {
  size_t max_rows = 0;
  for (const Shard& shard : shards) {
    max_rows = std::max(max_rows, shard.rows.size());
  }
  return max_rows;
}

uint64_t ShardSeed(uint64_t seed, size_t shard_index) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (shard_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// Everything one shard produces: its (globalized) outcome plus the
/// deterministic telemetry buffered while it ran, committed by the
/// driver in shard-index order.
struct ShardRun {
  Status status = Status::OK();
  ColoringOutcome outcome;
  counters::Buffer counters;
  trace::SpanBuffer spans;
};

/// Colors one shard: gathers its rows from the column store, remaps the
/// component's constraints/graph to local ids, and runs the search with
/// the shard's derived seed stream. Row ids in the returned outcome's
/// clusters are mapped back to global ids; assignment/preserved stay in
/// local (component) order for the driver to scatter.
void RunOneShard(const ColumnStore& store, const ConstraintSet& constraints,
                 const ConstraintGraph& graph, const Shard& shard,
                 size_t shard_index, const ColoringOptions& base_options,
                 ShardRun* run, ColoringOutcome* local_capture) {
  // Buffered telemetry: updates made on this thread land in the shard's
  // buffers; inner pool workers write straight to the registry, which is
  // safe — deterministic counters commute, so totals are identical no
  // matter which thread recorded them.
  counters::ScopedBufferedCounters buffered_counters(&run->counters);
  trace::ScopedBufferedSpans buffered_spans(&run->spans);
  run->status = DIVA_FAIL("shard.run");
  if (!run->status.ok()) return;
  DIVA_TRACE_SPAN_RANGE("diva/shard", static_cast<int64_t>(shard_index),
                        static_cast<int64_t>(shard_index + 1));
  DIVA_HISTOGRAM_RECORD("shard.rows", shard.rows.size());

  Relation sub = store.GatherRows(shard.rows);

  const size_t n = shard.constraints.size();
  ConstraintSet local_constraints;
  local_constraints.reserve(n);
  ConstraintGraph local_graph;
  local_graph.targets.resize(n);
  local_graph.adjacency.resize(n);
  // row_tags stays empty: the engine regenerates MakeRowTags over the
  // sub-relation, so fingerprints are a pure function of the shard.
  for (size_t j = 0; j < n; ++j) {
    const size_t global = shard.constraints[j];
    local_constraints.push_back(constraints[global]);
    // Global target rows -> local positions. Both lists are ascending
    // and targets ⊆ shard.rows, so one merge walk suffices.
    const std::vector<RowId>& targets = graph.targets[global];
    std::vector<RowId>& local_targets = local_graph.targets[j];
    local_targets.reserve(targets.size());
    size_t pos = 0;
    for (RowId target : targets) {
      while (pos < shard.rows.size() && shard.rows[pos] < target) ++pos;
      DIVA_CHECK_MSG(pos < shard.rows.size() && shard.rows[pos] == target,
                     "shard plan dropped a target row");
      local_targets.push_back(static_cast<RowId>(pos));
    }
    for (size_t neighbor : graph.adjacency[global]) {
      auto it = std::lower_bound(shard.constraints.begin(),
                                 shard.constraints.end(), neighbor);
      DIVA_CHECK_MSG(it != shard.constraints.end() && *it == neighbor,
                     "conflict edge crosses shards");
      local_graph.adjacency[j].push_back(
          static_cast<size_t>(it - shard.constraints.begin()));
    }
  }

  ColoringOptions local_options = base_options;
  local_options.seed = ShardSeed(base_options.seed, shard_index);
  local_options.enumeration.seed =
      ShardSeed(base_options.enumeration.seed, shard_index);
  // The shard fan-out *is* the run's thread-level parallelism; attempt
  // speculation inside a shard would nest a second TaskGroup per worker.
  // Speculation never changes bytes, so disabling it here keeps the two
  // execution modes symmetric for free.
  local_options.speculation = false;

  run->outcome =
      ColorConstraints(sub, local_constraints, local_graph, local_options);
  // Reuse capture wants local coordinates: positions into the row list,
  // valid against any future shard with identical contents.
  if (local_capture != nullptr) *local_capture = run->outcome;

  // Back to global row ids. Local ids are positions into the ascending
  // shard.rows list, so the map is monotone and clusters stay sorted.
  for (Cluster& cluster : run->outcome.chosen_clusters) {
    for (RowId& row : cluster) row = shard.rows[static_cast<size_t>(row)];
  }
}

/// Installs an adopted record as the shard's run: the local outcome is
/// remapped through the current row list and the recorded telemetry
/// becomes the run's buffer, replayed at the same merge slot a live
/// search would have used.
void AdoptOneShard(const ShardColoringRecord& record, const Shard& shard,
                   ShardRun* run) {
  run->outcome = record.outcome;
  for (Cluster& cluster : run->outcome.chosen_clusters) {
    for (RowId& row : cluster) row = shard.rows[static_cast<size_t>(row)];
  }
  run->counters = record.telemetry;
}

}  // namespace

Result<ColoringOutcome> RunShardedColoring(
    const ColumnStore& store, const ConstraintSet& constraints,
    const ConstraintGraph& graph, const ShardPlan& plan,
    const ColoringOptions& base_options, size_t workers,
    const std::vector<const ShardColoringRecord*>* adopt,
    std::vector<ShardColoringRecord>* capture) {
  const size_t num_shards = plan.shards.size();
  std::vector<ShardRun> runs(num_shards);
  if (capture != nullptr) {
    capture->clear();
    capture->resize(num_shards);
  }

  // Adopted shards never enter the scheduler: their runs are installed
  // up front, and their records (still in local coordinates) pass
  // through the capture verbatim so snapshots chain across deltas.
  std::vector<uint8_t> adopted(num_shards, 0);
  if (adopt != nullptr) {
    for (size_t s = 0; s < num_shards && s < adopt->size(); ++s) {
      if ((*adopt)[s] == nullptr) continue;
      adopted[s] = 1;
      AdoptOneShard(*(*adopt)[s], plan.shards[s], &runs[s]);
      if (capture != nullptr) (*capture)[s] = *(*adopt)[s];
    }
  }
  auto local_capture = [&](size_t s) -> ColoringOutcome* {
    return capture != nullptr ? &(*capture)[s].outcome : nullptr;
  };

  if (workers > 1 && num_shards > 1) {
    // Concurrent mode: one work item per shard, claimed FIFO by the
    // group's dedicated workers (the waiting driver helps). Item order
    // only affects scheduling — every shard's computation is fixed by
    // the plan, and the merge below reads results in shard-index order.
    TaskGroup group(std::min(workers, num_shards));
    std::vector<uint64_t> tickets;
    tickets.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
      if (adopted[s]) continue;
      tickets.push_back(group.Submit([&, s] {
        RunOneShard(store, constraints, graph, plan.shards[s], s,
                    base_options, &runs[s], local_capture(s));
      }));
    }
    for (uint64_t ticket : tickets) group.Wait(ticket);
  } else {
    // Sequential mode: the identical per-shard computations, inline.
    for (size_t s = 0; s < num_shards; ++s) {
      if (adopted[s]) continue;
      RunOneShard(store, constraints, graph, plan.shards[s], s, base_options,
                  &runs[s], local_capture(s));
      if (!runs[s].status.ok()) break;  // later shards would be discarded
    }
  }

  // A faulted shard (or a merge fault) must never leak a partial merge:
  // every shard's buffered telemetry is dropped and the first error in
  // shard-index order surfaces as the run's Status.
  Status merge_fault = DIVA_FAIL("shard.merge");
  Status first_error = merge_fault;
  for (const ShardRun& run : runs) {
    if (first_error.ok() && !run.status.ok()) first_error = run.status;
  }
  if (!first_error.ok()) {
    for (ShardRun& run : runs) {
      run.counters.Discard();
      run.spans.Discard();
    }
    if (capture != nullptr) capture->clear();
    return first_error;
  }

  // Deterministic adoption: telemetry and outcomes merge in shard-index
  // order regardless of which worker ran what, so counters, spans, and
  // the merged coloring are byte-identical at every width.
  ColoringOutcome merged;
  merged.complete = true;
  merged.assignment.assign(constraints.size(), -1);
  merged.preserved.assign(constraints.size(), 0);
  for (size_t s = 0; s < num_shards; ++s) {
    ShardRun& run = runs[s];
    // Live shards hand their uncommitted buffer to the capture here —
    // the exact op sequence an adopting run will replay at this slot.
    if (capture != nullptr && !adopted[s]) (*capture)[s].telemetry = run.counters;
    run.counters.Commit();
    run.spans.Commit();
    const Shard& shard = plan.shards[s];
    const ColoringOutcome& outcome = run.outcome;
    merged.complete = merged.complete && outcome.complete;
    merged.budget_exhausted =
        merged.budget_exhausted || outcome.budget_exhausted;
    merged.steps += outcome.steps;
    merged.backtracks += outcome.backtracks;
    for (size_t j = 0; j < shard.constraints.size(); ++j) {
      merged.assignment[shard.constraints[j]] = outcome.assignment[j];
      merged.preserved[shard.constraints[j]] = outcome.preserved[j];
    }
    merged.chosen_clusters.insert(merged.chosen_clusters.end(),
                                  outcome.chosen_clusters.begin(),
                                  outcome.chosen_clusters.end());
  }
  return merged;
}

}  // namespace diva
