#include "core/report_json.h"

#include <cstdio>

namespace diva {

namespace {

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  out->append(buffer);
}

}  // namespace

std::string ReportToJson(const DivaReport& report) {
  std::string out = "{";
  out += "\"clustering_complete\":";
  out += report.clustering_complete ? "true" : "false";
  out += ",\"budget_exhausted\":";
  out += report.budget_exhausted ? "true" : "false";
  out += ",\"colored_constraints\":" +
         std::to_string(report.colored_constraints);
  out += ",\"total_constraints\":" + std::to_string(report.total_constraints);
  out += ",\"coloring_steps\":" + std::to_string(report.coloring_steps);
  out += ",\"backtracks\":" + std::to_string(report.backtracks);
  out += ",\"shards\":" + std::to_string(report.shards);
  out += ",\"residual_rows\":" + std::to_string(report.residual_rows);
  out += ",\"sigma_rows\":" + std::to_string(report.sigma_rows);
  out += ",\"repair_cells\":" + std::to_string(report.repair_cells);
  out += ",\"unsatisfied\":[";
  for (size_t i = 0; i < report.unsatisfied.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(report.unsatisfied[i]);
  }
  out += "],\"audited\":";
  out += report.audited ? "true" : "false";
  out += ",\"deadline_exceeded\":";
  out += report.deadline_exceeded ? "true" : "false";
  out += ",\"baseline_degraded\":";
  out += report.baseline_degraded ? "true" : "false";
  out += ",\"integrate_skipped\":";
  out += report.integrate_skipped ? "true" : "false";
  out += ",\"privacy_truncated\":";
  out += report.privacy_truncated ? "true" : "false";
  out += ",\"counters\":" + counters::ToJson(report.counters);
  out += ",\"timings\":{\"clustering_s\":";
  AppendDouble(&out, report.clustering_seconds);
  out += ",\"anonymize_s\":";
  AppendDouble(&out, report.anonymize_seconds);
  out += ",\"integrate_s\":";
  AppendDouble(&out, report.integrate_seconds);
  out += ",\"audit_s\":";
  AppendDouble(&out, report.audit_seconds);
  out += ",\"total_s\":";
  AppendDouble(&out, report.total_seconds);
  out += "}}";
  return out;
}

}  // namespace diva
