#ifndef DIVA_CORE_REPORT_JSON_H_
#define DIVA_CORE_REPORT_JSON_H_

#include <string>

#include "core/diva.h"

namespace diva {

/// Serializes a DivaReport as a single-line JSON object — for log
/// pipelines and dashboards around the anonymization service. Stable
/// field names; numbers are emitted as JSON numbers, never strings.
///
/// {"clustering_complete":true,"budget_exhausted":false,
///  "colored_constraints":3,"total_constraints":3,...,
///  "unsatisfied":[],"timings":{"clustering_s":0.01,...}}
std::string ReportToJson(const DivaReport& report);

}  // namespace diva

#endif  // DIVA_CORE_REPORT_JSON_H_
