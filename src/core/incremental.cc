#include "core/incremental.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "common/counters.h"
#include "common/failpoint.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "constraint/conflict.h"
#include "relation/qi_groups.h"

namespace diva {

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v;
  h *= kFnvPrime;
  return h;
}

/// Fingerprint of every DivaOptions knob that steers a search decision.
/// Execution-only knobs (threads, shard, audit, deadlines, incremental)
/// are deliberately excluded: they never change output bytes, so they
/// never invalidate reuse.
uint64_t OptionsFingerprint(const DivaOptions& options) {
  uint64_t h = kFnvBasis;
  h = FnvMix(h, options.k);
  h = FnvMix(h, static_cast<uint64_t>(options.strategy));
  h = FnvMix(h, options.seed);
  h = FnvMix(h, options.coloring_budget);
  h = FnvMix(h, options.enumeration.max_clusterings);
  h = FnvMix(h, options.enumeration.max_window_candidates);
  h = FnvMix(h, options.enumeration.random_subsets);
  h = FnvMix(h, options.enumeration.preserved_steps);
  h = FnvMix(h, options.enumeration.single_block_variant ? 1 : 0);
  h = FnvMix(h, options.enumeration.ordered ? 1 : 0);
  h = FnvMix(h, options.enumeration.seed);
  h = FnvMix(h, options.auto_tune_enumeration ? 1 : 0);
  h = FnvMix(h, options.strict ? 1 : 0);
  h = FnvMix(h, static_cast<uint64_t>(options.baseline));
  h = FnvMix(h, options.anonymizer.seed);
  h = FnvMix(h, options.anonymizer.sample_size);
  h = FnvMix(h, options.l_diversity);
  uint64_t t_bits = 0;
  static_assert(sizeof(t_bits) == sizeof(options.t_closeness));
  std::memcpy(&t_bits, &options.t_closeness, sizeof(t_bits));
  h = FnvMix(h, t_bits);
  h = FnvMix(h, options.portfolio_threads);
  return h;
}

std::vector<uint64_t> ComputeRowHashes(const Relation& relation) {
  return ParallelMap<uint64_t>(relation.NumRows(), /*grain=*/1024,
                               [&](size_t row) {
                                 return RowContentHash(
                                     relation, static_cast<RowId>(row));
                               });
}

std::vector<uint64_t> ComputeQiHashes(const Relation& relation) {
  return ParallelMap<uint64_t>(relation.NumRows(), /*grain=*/1024,
                               [&](size_t row) {
                                 return QiProjectionHash(
                                     relation, static_cast<RowId>(row));
                               });
}

/// Sorted, deduplicated, validated copy of a delta's deleted row ids.
Result<std::vector<RowId>> NormalizeDeletes(const Relation& input,
                                            const DeltaBatch& delta) {
  std::vector<RowId> deleted = delta.deleted;
  std::sort(deleted.begin(), deleted.end());
  deleted.erase(std::unique(deleted.begin(), deleted.end()), deleted.end());
  if (!deleted.empty() &&
      static_cast<size_t>(deleted.back()) >= input.NumRows()) {
    return Status::InvalidArgument(
        "delta deletes row " + std::to_string(deleted.back()) +
        " of a relation with " + std::to_string(input.NumRows()) + " rows");
  }
  return deleted;
}

}  // namespace

uint64_t RowContentHash(const Relation& relation, RowId row) {
  uint64_t h = kFnvBasis;
  for (size_t col = 0; col < relation.NumAttributes(); ++col) {
    h = FnvMix(h, static_cast<uint64_t>(
                      static_cast<uint32_t>(relation.At(row, col))));
  }
  return h;
}

uint64_t ShardFingerprint(const Shard& shard,
                          const std::vector<uint64_t>& row_hashes) {
  uint64_t h = kFnvBasis;
  h = FnvMix(h, shard.constraints.size());
  for (size_t c : shard.constraints) h = FnvMix(h, c);
  h = FnvMix(h, shard.rows.size());
  // Row *contents* in row-list order pin the whole local sub-instance:
  // local target positions and local adjacency are derived from content,
  // and the seed stream is positional (checked separately).
  for (RowId row : shard.rows) h = FnvMix(h, row_hashes[row]);
  return h;
}

void FinalizeSnapshot(PipelineSnapshot* snapshot, const Relation& input,
                      const ConstraintSet& constraints,
                      const DivaOptions& options,
                      std::vector<uint64_t> row_hashes,
                      std::vector<uint64_t> qi_hashes) {
  if (!snapshot->valid) return;
  snapshot->input.emplace(input);
  snapshot->constraints = constraints;
  snapshot->row_hashes = row_hashes.size() == input.NumRows()
                             ? std::move(row_hashes)
                             : ComputeRowHashes(input);
  snapshot->qi_hashes = qi_hashes.size() == input.NumRows()
                            ? std::move(qi_hashes)
                            : ComputeQiHashes(input);
  snapshot->dictionary_sizes.clear();
  for (size_t col = 0; col < input.NumAttributes(); ++col) {
    snapshot->dictionary_sizes.push_back(input.dictionary(col).size());
  }
  snapshot->options_fingerprint = OptionsFingerprint(options);
}

Result<Relation> ApplyDeltaToRelation(const Relation& input,
                                      const DeltaBatch& delta) {
  DIVA_ASSIGN_OR_RETURN(std::vector<RowId> deleted,
                        NormalizeDeletes(input, delta));
  std::vector<RowId> keep;
  keep.reserve(input.NumRows() - deleted.size());
  size_t next_delete = 0;
  for (RowId row = 0; row < static_cast<RowId>(input.NumRows()); ++row) {
    if (next_delete < deleted.size() && deleted[next_delete] == row) {
      ++next_delete;
      continue;
    }
    keep.push_back(row);
  }
  Relation post = input.SelectRows(keep);
  for (const std::vector<std::string>& fields : delta.inserted) {
    Result<RowId> appended = post.AppendRowStrings(fields);
    if (!appended.ok()) return appended.status();
  }
  return post;
}

Result<DeltaBatch> ParseDeltaFile(const std::string& text) {
  DeltaBatch delta;
  size_t line_number = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_number;
    std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const char directive = line[0];
    std::string_view body = Trim(line.substr(1));
    if (directive == '-') {
      Result<int64_t> id = ParseInt64(body);
      if (!id.ok() || *id < 0) {
        return Status::InvalidArgument("delta line " +
                                       std::to_string(line_number) +
                                       ": expected '- <row_id>', got '" +
                                       std::string(line) + "'");
      }
      delta.deleted.push_back(static_cast<RowId>(*id));
    } else if (directive == '+') {
      std::vector<std::string> fields = Split(body, ',');
      for (std::string& field : fields) field = std::string(Trim(field));
      delta.inserted.push_back(std::move(fields));
    } else {
      return Status::InvalidArgument(
          "delta line " + std::to_string(line_number) +
          ": expected '-' or '+' directive, got '" + std::string(line) + "'");
    }
  }
  return delta;
}

Result<DivaResult> ApplyDelta(const PipelineSnapshot& prior,
                              const DeltaBatch& delta,
                              const DivaOptions& options) {
  DIVA_TRACE_SPAN("diva/delta");
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("delta.apply"));
  if (!prior.valid || !prior.input.has_value()) {
    return Status::InvalidArgument(
        "prior snapshot is not reusable (captured from a degraded or "
        "unsharded run)");
  }
  const Relation& input = *prior.input;
  const ConstraintSet& constraints = prior.constraints;
  DIVA_ASSIGN_OR_RETURN(std::vector<RowId> deleted,
                        NormalizeDeletes(input, delta));
  DIVA_ASSIGN_OR_RETURN(Relation post, ApplyDeltaToRelation(input, delta));
  const size_t num_old = input.NumRows();
  const size_t num_kept = num_old - deleted.size();
  const size_t num_new = post.NumRows();
  DIVA_COUNTER_ADD_EXEC("incremental.rows_deleted", deleted.size());
  DIVA_COUNTER_ADD_EXEC("incremental.rows_inserted", delta.inserted.size());

  // Old -> new id map for survivors: deletions compact ids downward but
  // preserve relative order.
  constexpr RowId kGone = static_cast<RowId>(-1);
  std::vector<RowId> new_id(num_old, kGone);
  {
    size_t next_delete = 0;
    RowId next_id = 0;
    for (RowId row = 0; row < static_cast<RowId>(num_old); ++row) {
      if (next_delete < deleted.size() && deleted[next_delete] == row) {
        ++next_delete;
        continue;
      }
      new_id[row] = next_id++;
    }
  }

  // Per-row hashes maintained under the delta: survivors keep their
  // prior content/QI hashes (contents are untouched by compaction),
  // inserted rows hash fresh.
  std::vector<uint64_t> row_hashes(num_new);
  std::vector<uint64_t> qi_hashes(num_new);
  for (RowId row = 0; row < static_cast<RowId>(num_old); ++row) {
    if (new_id[row] == kGone) continue;
    row_hashes[new_id[row]] = prior.row_hashes[row];
    qi_hashes[new_id[row]] = prior.qi_hashes[row];
  }
  for (RowId row = static_cast<RowId>(num_kept);
       row < static_cast<RowId>(num_new); ++row) {
    row_hashes[row] = RowContentHash(post, row);
    qi_hashes[row] = QiProjectionHash(post, row);
  }

  // I_sigma maintenance: drop deleted rows from each target list and
  // remap survivors (order-preserving, so the list stays ascending),
  // then append matching inserted rows (ids ascend past every survivor).
  // A constraint whose target value only now entered the dictionary has
  // an empty prior list — correct, since no prior row could carry an
  // un-interned value.
  const size_t num_constraints = constraints.size();
  ConstraintGraph graph;
  graph.targets.resize(num_constraints);
  std::vector<uint8_t> changed(num_constraints, 0);
  for (size_t c = 0; c < num_constraints; ++c) {
    const std::vector<RowId>& old_targets = prior.graph.targets[c];
    std::vector<RowId>& targets = graph.targets[c];
    targets.reserve(old_targets.size());
    for (RowId row : old_targets) {
      if (new_id[row] == kGone) {
        changed[c] = 1;
        continue;
      }
      targets.push_back(new_id[row]);
    }
    for (RowId row = static_cast<RowId>(num_kept);
         row < static_cast<RowId>(num_new); ++row) {
      if (constraints[c].MatchesRow(post, row)) {
        targets.push_back(row);
        changed[c] = 1;
      }
    }
  }

  // Conflict-edge maintenance: a pair's intersection emptiness is
  // invariant under the order-preserving remap, so only pairs touching a
  // changed constraint recompute their SortedIntersectionSize; the rest
  // keep the prior edge bit.
  graph.adjacency.assign(num_constraints, {});
  for (size_t i = 0; i < num_constraints; ++i) {
    for (size_t j = i + 1; j < num_constraints; ++j) {
      bool edge;
      if (!changed[i] && !changed[j]) {
        const std::vector<size_t>& prior_adj = prior.graph.adjacency[i];
        edge = std::binary_search(prior_adj.begin(), prior_adj.end(), j);
      } else {
        edge = SortedIntersectionSize(graph.targets[i], graph.targets[j]) > 0;
      }
      if (edge) {
        graph.adjacency[i].push_back(j);
        graph.adjacency[j].push_back(i);
      }
    }
  }
  graph.row_tags = MakeRowTags(num_new);

  ShardPlan plan = ComputeShardPlan(graph, num_new);
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("delta.recolor"));

  // Global reuse preconditions; any failure dirties every component
  // (still byte-identical to cold, just without the speedup).
  bool reusable = OptionsFingerprint(options) == prior.options_fingerprint &&
                  post.NumAttributes() == prior.dictionary_sizes.size();
  for (size_t col = 0; reusable && col < post.NumAttributes(); ++col) {
    reusable = post.dictionary(col).size() == prior.dictionary_sizes[col];
  }

  // The dirty-component rule: a shard is clean iff it has the same
  // member-constraint list at the same component index (the positional
  // seed stream) and an identical row-content fingerprint.
  PipelineHooks hooks;
  hooks.graph = &graph;
  hooks.plan = &plan;
  hooks.adopt_coloring.assign(plan.shards.size(), nullptr);
  hooks.adopt_baseline.assign(plan.shards.size(), nullptr);
  size_t reused_shards = 0;
  if (reusable && prior.coloring.size() == prior.plan.shards.size()) {
    const size_t overlap =
        std::min(plan.shards.size(), prior.plan.shards.size());
    for (size_t s = 0; s < overlap; ++s) {
      const Shard& shard = plan.shards[s];
      const Shard& prior_shard = prior.plan.shards[s];
      if (shard.constraints != prior_shard.constraints) continue;
      if (ShardFingerprint(shard, row_hashes) !=
          ShardFingerprint(prior_shard, prior.row_hashes)) {
        continue;
      }
      hooks.adopt_coloring[s] = &prior.coloring[s];
      if (s < prior.baseline.size() && prior.baseline[s].used) {
        hooks.adopt_baseline[s] = &prior.baseline[s];
      }
      ++reused_shards;
    }
  }
  DIVA_COUNTER_ADD_EXEC("incremental.shards_reused", reused_shards);
  DIVA_COUNTER_ADD_EXEC("incremental.shards_recolored",
                        plan.shards.size() - reused_shards);

  auto snapshot = std::make_shared<PipelineSnapshot>();
  hooks.capture = snapshot.get();
  DIVA_ASSIGN_OR_RETURN(
      DivaResult result,
      RunDivaPipeline(post, constraints, options, hooks));

  // All-or-nothing merge: a fault here discards the fully built result,
  // so callers never observe partially merged output.
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("delta.merge"));

  if (snapshot->valid) {
    FinalizeSnapshot(snapshot.get(), post, constraints, options,
                     std::move(row_hashes), std::move(qi_hashes));
    result.snapshot = std::move(snapshot);
  }
  return result;
}

}  // namespace diva
