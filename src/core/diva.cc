#include "core/diva.h"

#include <algorithm>

#include "anon/privacy.h"
#include "anon/suppress.h"
#include "common/bitset.h"
#include "common/counters.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/constraint_graph.h"
#include "core/integrate.h"
#include "core/shard.h"
#include "relation/columnar.h"
#include "verify/auditor.h"

namespace diva {

const char* BaselineAlgorithmToString(BaselineAlgorithm baseline) {
  switch (baseline) {
    case BaselineAlgorithm::kKMember:
      return "k-member";
    case BaselineAlgorithm::kOka:
      return "OKA";
    case BaselineAlgorithm::kMondrian:
      return "Mondrian";
  }
  return "unknown";
}

std::unique_ptr<Anonymizer> MakeBaselineAnonymizer(
    const DivaOptions& options) {
  switch (options.baseline) {
    case BaselineAlgorithm::kKMember:
      return MakeKMember(options.anonymizer);
    case BaselineAlgorithm::kOka:
      return MakeOka(options.anonymizer);
    case BaselineAlgorithm::kMondrian:
      return MakeMondrian(options.anonymizer);
  }
  return MakeKMember(options.anonymizer);
}

namespace {

/// Applies the configured recoding operator: LCA generalization when
/// taxonomies were provided, plain suppression otherwise.
Status Recode(const DivaOptions& options, Relation* out,
              const Clustering& clustering) {
  if (options.generalization != nullptr) {
    return GeneralizeClustersInPlace(out, clustering,
                                     *options.generalization);
  }
  SuppressClustersInPlace(out, clustering);
  return Status::OK();
}

ClusteringEnumOptions TuneEnumeration(const DivaOptions& options) {
  ClusteringEnumOptions enumeration = options.enumeration;
  if (!options.auto_tune_enumeration) return enumeration;
  enumeration.seed = options.seed;
  if (options.strategy == SelectionStrategy::kBasic) {
    // The unordered, oversized pool of DIVA-Basic: candidates are tried
    // in random order, so bad early picks trigger deep backtracking.
    enumeration.ordered = false;
    enumeration.max_clusterings = 256;
    enumeration.max_window_candidates = 48;
    enumeration.random_subsets = 32;
  } else {
    enumeration.ordered = true;
  }
  return enumeration;
}

/// Merges rows that the baseline cannot cluster (fewer than k of them)
/// into an existing cluster. Candidate merges are ranked first by how
/// many *new* constraint violations they would introduce (merging can
/// suppress a cluster's preserved target values), then by suppression
/// cost.
void MergeLeftoverRows(Relation* out, Clustering* clusters,
                       const std::vector<RowId>& leftover,
                       const ConstraintSet& constraints) {
  // Rows are placed one at a time: a leftover that shares the values a
  // cluster is unanimous on (e.g., the same QI run) joins it without
  // disturbing the cluster's preserved occurrences.
  for (RowId row : leftover) {
    std::vector<size_t> before = ViolatedConstraints(*out, constraints);
    size_t best = 0;
    size_t best_violations = static_cast<size_t>(-1);
    size_t best_cost = static_cast<size_t>(-1);
    for (size_t c = 0; c < clusters->size(); ++c) {
      Cluster merged = (*clusters)[c];
      merged.push_back(row);
      Relation trial = *out;
      Clustering just_merged = {merged};
      SuppressClustersInPlace(&trial, just_merged);
      std::vector<size_t> after = ViolatedConstraints(trial, constraints);
      size_t new_violations = 0;
      for (size_t v : after) {
        if (!std::binary_search(before.begin(), before.end(), v)) {
          ++new_violations;
        }
      }
      size_t cost = SuppressionCost(*out, merged);
      if (new_violations < best_violations ||
          (new_violations == best_violations && cost < best_cost)) {
        best_violations = new_violations;
        best_cost = cost;
        best = c;
      }
    }
    Cluster& target = (*clusters)[best];
    target.push_back(row);
    Clustering just_merged = {target};
    SuppressClustersInPlace(out, just_merged);
  }
}

}  // namespace

Result<DivaResult> RunDiva(const Relation& relation,
                           const ConstraintSet& constraints,
                           const DivaOptions& options) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (relation.NumRows() > 0 && relation.NumRows() < options.k) {
    return Status::Infeasible("relation has fewer than k tuples");
  }

  StopWatch total_watch;
  DIVA_TRACE_SPAN("diva/run");
  // The report carries this run's counter *delta*; concurrent RunDiva
  // calls in one process would blend into each other's deltas (the
  // registry is process-wide), so deltas are meaningful for the common
  // one-run-at-a-time case.
  const std::vector<counters::Sample> counters_before =
      counters::Snapshot();
  DivaReport report;
  report.total_constraints = constraints.size();

  // The run's wall budget: one token shared by every phase. A null token
  // (no deadline, no external cancel) never trips and costs one pointer
  // test per poll. An external options.cancel composes as the parent, so
  // either signal degrades the run — and we never trip the caller's own
  // token.
  const CancellationToken token =
      options.deadline_ms > 0
          ? CancellationToken::WithDeadlineAndParent(
                Deadline::AfterMillis(options.deadline_ms), options.cancel)
          : (options.cancel.CanBeCancelled()
                 ? CancellationToken::WithDeadlineAndParent(
                       Deadline::Infinite(), options.cancel)
                 : CancellationToken());

  // Configure the process-global pool before the first hot loop runs.
  // Every parallel algorithm downstream is bit-identical across widths,
  // so this only decides speed, never output.
  SetParallelThreads(options.threads);

  // Phase 1: DiverseClustering — graph construction and coloring (the
  // per-node candidate clusterings are enumerated dynamically inside the
  // search, over the target rows still unclaimed).
  ColoringOutcome coloring;
  {
    DIVA_TRACE_SPAN("diva/clustering");
    PhaseTimer phase_timer(&report.clustering_seconds);
    DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.graph.build"));
    ConstraintGraph graph = BuildConstraintGraph(relation, constraints);

    for (size_t i = 0; i < constraints.size(); ++i) {
      // Static infeasibility: a lower bound can only be met by clusters of
      // >= k target tuples, so it needs lambda_l <= |I_sigma| and
      // max(k, lambda_l) <= lambda_r.
      const DiversityConstraint& constraint = constraints[i];
      bool feasible =
          constraint.lower() == 0 ||
          (constraint.lower() <= graph.targets[i].size() &&
           std::max<size_t>(options.k, constraint.lower()) <=
               constraint.upper());
      if (!feasible && options.strict) {
        return Status::Infeasible(
            "no diverse k-anonymous relation exists: constraint '" +
            constraint.ToString() + "' admits no clustering for k = " +
            std::to_string(options.k));
      }
    }

    DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.coloring.begin"));
    ColoringOptions coloring_options;
    coloring_options.k = options.k;
    coloring_options.strategy = options.strategy;
    coloring_options.seed = options.seed;
    coloring_options.step_budget = options.coloring_budget;
    coloring_options.enumeration = TuneEnumeration(options);
    coloring_options.deadline = token;

    // The component partition of the conflict graph (core/shard.h): a
    // pure function of the instance, computed in both execution modes so
    // the report's shard figures never depend on the shard flag.
    DIVA_RETURN_IF_ERROR(DIVA_FAIL("shard.partition"));
    const ShardPlan plan = ComputeShardPlan(graph, relation.NumRows());
    report.shards = plan.shards.size();
    report.residual_rows = plan.residual_rows;
    DIVA_COUNTER_ADD("shard.count", plan.shards.size());
    DIVA_COUNTER_ADD("shard.max_rows", plan.MaxShardRows());
    DIVA_COUNTER_ADD("shard.residual_rows", plan.residual_rows);

    // The search tolerates truncated candidate enumeration (it just sees
    // fewer candidates), so the pool-level token is installed for this
    // phase: when the deadline trips, enumeration loops stop claiming
    // chunks instead of finishing a doomed sweep.
    ScopedLoopCancellation loop_cancel(token);
    if (plan.Effective()) {
      // >= 2 independent components: the plan drives the search in both
      // modes; options.shard only picks concurrent vs sequential
      // execution (the shard fan-out replaces the attempt portfolio).
      // Shards materialize as column slices of one arena-backed
      // snapshot instead of row-major copies of the whole relation.
      const ColumnStore store = ColumnStore::FromRelation(relation);
      const size_t workers =
          options.shard ? ResolveThreadCount(options.threads) : 1;
      DIVA_ASSIGN_OR_RETURN(
          coloring, RunShardedColoring(store, constraints, graph, plan,
                                       coloring_options, workers));
    } else {
      coloring =
          options.portfolio_threads > 1
              ? ColorConstraintsPortfolio(relation, constraints, graph,
                                          coloring_options,
                                          options.portfolio_threads)
              : ColorConstraints(relation, constraints, graph,
                                 coloring_options);
    }
  }
  report.clustering_complete = coloring.complete;
  report.budget_exhausted = coloring.budget_exhausted;
  report.colored_constraints = coloring.NumColored();
  report.coloring_steps = coloring.steps;
  report.backtracks = coloring.backtracks;
  DIVA_COUNTER_ADD("coloring.steps", coloring.steps);
  DIVA_COUNTER_ADD("coloring.backtracks", coloring.backtracks);

  if (!coloring.complete && options.strict) {
    if (token.Cancelled()) return DeadlineExceededStatus("clustering");
    return Status::Infeasible(
        "no diverse k-anonymous relation exists: coloring satisfied " +
        std::to_string(report.colored_constraints) + "/" +
        std::to_string(constraints.size()) + " constraints");
  }

  Clustering sigma_clusters = std::move(coloring.chosen_clusters);
  report.sigma_rows = TotalRows(sigma_clusters);

  // Phase 2: Suppress (or generalize) S_Sigma inside a working copy of R.
  // Never run under the loop token: a truncated suppression would publish
  // rows that are not unanimous with their QI-group.
  if (options.generalization != nullptr &&
      options.generalization->num_attributes() != relation.NumAttributes()) {
    return Status::InvalidArgument(
        "generalization context arity mismatch with the relation");
  }
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.suppress"));
  Relation out = relation;
  {
    DIVA_TRACE_SPAN("diva/suppress");
    DIVA_RETURN_IF_ERROR(Recode(options, &out, sigma_clusters));
  }
  for (const Cluster& cluster : sigma_clusters) {
    DIVA_HISTOGRAM_RECORD("diva.cluster_size", cluster.size());
  }

  // Phase 3: Anonymize the remaining tuples with the baseline.
  Clustering rk_clusters;
  {
    DIVA_TRACE_SPAN("diva/anonymize");
    PhaseTimer phase_timer(&report.anonymize_seconds);
    Bitset covered(relation.NumRows());
    for (const Cluster& cluster : sigma_clusters) {
      for (RowId row : cluster) covered.Set(row);
    }
    std::vector<RowId> remaining;
    remaining.reserve(relation.NumRows() - report.sigma_rows);
    for (RowId row = 0; row < relation.NumRows(); ++row) {
      if (!covered.Test(row)) remaining.push_back(row);
    }

    if (remaining.size() >= options.k) {
      DivaOptions baseline_options = options;
      baseline_options.anonymizer.cancel = token;
      std::unique_ptr<Anonymizer> baseline =
          MakeBaselineAnonymizer(baseline_options);
      // The iterative baselines discard their half-built state on expiry,
      // so truncated inner scans cannot leak into the output; installing
      // the loop token just makes them stop sooner.
      Result<Clustering> built = [&]() -> Result<Clustering> {
        ScopedLoopCancellation loop_cancel(token);
        return baseline->BuildClusters(relation, remaining, options.k);
      }();
      if (!built.ok() &&
          built.status().code() == StatusCode::kDeadlineExceeded) {
        if (options.strict) return built.status();
        // Anytime fallback: the single-pass Mondrian always finishes.
        report.baseline_degraded = true;
        std::unique_ptr<Anonymizer> mondrian =
            MakeMondrian(options.anonymizer);
        DIVA_ASSIGN_OR_RETURN(
            rk_clusters,
            mondrian->BuildClusters(relation, remaining, options.k));
      } else {
        if (!built.ok()) return built.status();
        rk_clusters = std::move(built).value();
      }
      DIVA_RETURN_IF_ERROR(Recode(options, &out, rk_clusters));
    } else if (!remaining.empty()) {
      // Fewer than k stragglers: fold them into the cheapest existing
      // cluster (there must be one, or the relation itself had < k rows,
      // rejected above — unless S_Sigma is empty too).
      if (sigma_clusters.empty()) {
        return Status::Infeasible(
            "cannot k-anonymize " + std::to_string(remaining.size()) +
            " tuples with k = " + std::to_string(options.k));
      }
      MergeLeftoverRows(&out, &sigma_clusters, remaining, constraints);
    }
  }

  // Phase 4: Integrate — repair upper bounds breached by R_k. Skipped
  // once the deadline tripped: the unrepaired violations surface in
  // report.unsatisfied below (and are waived for the audit), which is an
  // honest degradation — a half-applied repair would not be.
  {
    DIVA_TRACE_SPAN("diva/integrate");
    PhaseTimer phase_timer(&report.integrate_seconds);
    DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.integrate"));
    if (token.Cancelled()) {
      if (options.strict) return DeadlineExceededStatus("integrate");
      report.integrate_skipped = true;
    } else {
      IntegrateStats repair = IntegrateRepair(&out, constraints, rk_clusters);
      report.repair_cells = repair.suppressed_cells;
    }
  }

  // Optional l-diversity layer: merge output QI-groups until each holds
  // enough distinct sensitive projections (suppression-only; k-anonymity
  // and Sigma's upper bounds survive, lower bounds re-verified below).
  // The deadline token truncates the merge loops; whether the target was
  // actually missed is re-checked afterwards.
  if (options.l_diversity > 1 || options.t_closeness < 1.0) {
    DIVA_TRACE_SPAN("diva/privacy");
    Clustering all_clusters = sigma_clusters;
    all_clusters.insert(all_clusters.end(), rk_clusters.begin(),
                        rk_clusters.end());
    if (options.l_diversity > 1) {
      DIVA_ASSIGN_OR_RETURN(
          all_clusters, EnforceLDiversity(&out, std::move(all_clusters),
                                          options.l_diversity, token));
      if (token.Cancelled() &&
          !IsDistinctLDiverse(out, options.l_diversity)) {
        if (options.strict) return DeadlineExceededStatus("l-diversity");
        report.privacy_truncated = true;
      }
    }
    if (options.t_closeness < 1.0) {
      DIVA_RETURN_IF_ERROR(EnforceTCloseness(&out, std::move(all_clusters),
                                             options.t_closeness, token));
      if (token.Cancelled() && !IsTClose(out, options.t_closeness)) {
        if (options.strict) return DeadlineExceededStatus("t-closeness");
        report.privacy_truncated = true;
      }
    }
  }

  SuppressIdentifiers(&out);
  report.unsatisfied = ViolatedConstraints(out, constraints);
  if (!report.unsatisfied.empty() && options.strict) {
    return Status::Infeasible(
        "output violates " + std::to_string(report.unsatisfied.size()) +
        " constraint(s) after integration");
  }

  report.deadline_exceeded = token.Cancelled();

  // The published stars, counted exactly once against the input: cells
  // suppressed in `out` that were not suppressed in `relation`. Counting
  // here — rather than inside SuppressClustersInPlace, whose speculative
  // trial copies (MergeLeftoverRows ranking, privacy merges) would
  // overcount — keeps the figure equal to what the auditor's star
  // accounting re-derives from the published pair.
  {
    uint64_t added_stars = 0;
    for (RowId row = 0; row < out.NumRows(); ++row) {
      for (size_t col = 0; col < out.NumAttributes(); ++col) {
        if (out.At(row, col) == kSuppressed &&
            relation.At(row, col) != kSuppressed) {
          ++added_stars;
        }
      }
    }
    DIVA_COUNTER_ADD("suppress.stars", added_stars);
  }

  // The self-audit is NEVER skipped on deadline expiry: a degraded
  // output must still prove it is k-anonymous and suppression-only.
  if (options.audit) {
    DIVA_TRACE_SPAN("diva/audit");
    PhaseTimer phase_timer(&report.audit_seconds);
    AuditOptions audit_options;
    audit_options.waived_constraints = report.unsatisfied;
    audit_options.generalization = options.generalization;
    DIVA_ASSIGN_OR_RETURN(
        AuditReport audit,
        AuditAnonymization(relation, out, options.k, constraints,
                           audit_options));
    if (!audit.ok()) {
      return Status::Internal("output failed its self-audit:\n" +
                              audit.ToString());
    }
    report.audited = true;
  }

  DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.publish"));
  report.counters = counters::Delta(counters_before, counters::Snapshot());
  report.total_seconds = total_watch.ElapsedSeconds();
  return DivaResult{std::move(out), std::move(report)};
}

}  // namespace diva
