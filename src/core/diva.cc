#include "core/diva.h"

#include <algorithm>

#include "anon/privacy.h"
#include "anon/suppress.h"
#include "common/bitset.h"
#include "common/counters.h"
#include "common/deadline.h"
#include "common/failpoint.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/constraint_graph.h"
#include "core/incremental.h"
#include "core/integrate.h"
#include "core/shard.h"
#include "relation/columnar.h"
#include "verify/auditor.h"

namespace diva {

const char* BaselineAlgorithmToString(BaselineAlgorithm baseline) {
  switch (baseline) {
    case BaselineAlgorithm::kKMember:
      return "k-member";
    case BaselineAlgorithm::kOka:
      return "OKA";
    case BaselineAlgorithm::kMondrian:
      return "Mondrian";
  }
  return "unknown";
}

std::unique_ptr<Anonymizer> MakeBaselineAnonymizer(
    const DivaOptions& options) {
  switch (options.baseline) {
    case BaselineAlgorithm::kKMember:
      return MakeKMember(options.anonymizer);
    case BaselineAlgorithm::kOka:
      return MakeOka(options.anonymizer);
    case BaselineAlgorithm::kMondrian:
      return MakeMondrian(options.anonymizer);
  }
  return MakeKMember(options.anonymizer);
}

namespace {

/// Applies the configured recoding operator: LCA generalization when
/// taxonomies were provided, plain suppression otherwise.
Status Recode(const DivaOptions& options, Relation* out,
              const Clustering& clustering) {
  if (options.generalization != nullptr) {
    return GeneralizeClustersInPlace(out, clustering,
                                     *options.generalization);
  }
  SuppressClustersInPlace(out, clustering);
  return Status::OK();
}

ClusteringEnumOptions TuneEnumeration(const DivaOptions& options) {
  ClusteringEnumOptions enumeration = options.enumeration;
  if (!options.auto_tune_enumeration) return enumeration;
  enumeration.seed = options.seed;
  if (options.strategy == SelectionStrategy::kBasic) {
    // The unordered, oversized pool of DIVA-Basic: candidates are tried
    // in random order, so bad early picks trigger deep backtracking.
    enumeration.ordered = false;
    enumeration.max_clusterings = 256;
    enumeration.max_window_candidates = 48;
    enumeration.random_subsets = 32;
  } else {
    enumeration.ordered = true;
  }
  return enumeration;
}

/// Merges rows that the baseline cannot cluster (fewer than k of them)
/// into an existing cluster. Candidate merges are ranked first by how
/// many *new* constraint violations they would introduce (merging can
/// suppress a cluster's preserved target values), then by suppression
/// cost.
void MergeLeftoverRows(Relation* out, Clustering* clusters,
                       const std::vector<RowId>& leftover,
                       const ConstraintSet& constraints) {
  // Rows are placed one at a time: a leftover that shares the values a
  // cluster is unanimous on (e.g., the same QI run) joins it without
  // disturbing the cluster's preserved occurrences.
  for (RowId row : leftover) {
    std::vector<size_t> before = ViolatedConstraints(*out, constraints);
    size_t best = 0;
    size_t best_violations = static_cast<size_t>(-1);
    size_t best_cost = static_cast<size_t>(-1);
    for (size_t c = 0; c < clusters->size(); ++c) {
      Cluster merged = (*clusters)[c];
      merged.push_back(row);
      Relation trial = *out;
      Clustering just_merged = {merged};
      SuppressClustersInPlace(&trial, just_merged);
      std::vector<size_t> after = ViolatedConstraints(trial, constraints);
      size_t new_violations = 0;
      for (size_t v : after) {
        if (!std::binary_search(before.begin(), before.end(), v)) {
          ++new_violations;
        }
      }
      size_t cost = SuppressionCost(*out, merged);
      if (new_violations < best_violations ||
          (new_violations == best_violations && cost < best_cost)) {
        best_violations = new_violations;
        best_cost = cost;
        best = c;
      }
    }
    Cluster& target = (*clusters)[best];
    target.push_back(row);
    Clustering just_merged = {target};
    SuppressClustersInPlace(out, just_merged);
  }
}

/// Per-shard baseline phase (effective plan): shard s's uncovered rows
/// are clustered over a gathered sub-relation with local ids, in shard
/// order; shards left with fewer than k uncovered rows pool together
/// with the residual rows into one trailing baseline run, and a pool
/// still smaller than k is returned in `leftover` for the caller to
/// fold into existing clusters. Each shard's clustering is a pure
/// function of its uncovered contents, so clean shards adopt prior
/// records (telemetry replayed at the same shard-order slot) and the
/// merged result is byte-identical at every thread width and with
/// reuse on or off. A deadline hitting any shard falls back to the
/// anytime single-pass Mondrian over all remaining rows, exactly like
/// the unsharded path, and invalidates the capture.
Status BuildShardedBaseline(const Relation& relation, const Bitset& covered,
                            const std::vector<RowId>& remaining,
                            const ShardPlan& plan, const DivaOptions& options,
                            const CancellationToken& token,
                            const PipelineHooks& hooks, Clustering* rk_clusters,
                            std::vector<RowId>* leftover, DivaReport* report) {
  const size_t num_shards = plan.shards.size();
  std::vector<std::vector<RowId>> uncovered(num_shards);
  Bitset targeted(relation.NumRows());
  for (size_t s = 0; s < num_shards; ++s) {
    for (RowId row : plan.shards[s].rows) {
      targeted.Set(static_cast<size_t>(row));
      if (!covered.Test(row)) uncovered[s].push_back(row);
    }
  }
  // The pool: residual (untargeted) remaining rows plus every
  // undersized shard's uncovered rows, in ascending row order.
  std::vector<RowId> pool;
  for (RowId row : remaining) {
    if (!targeted.Test(static_cast<size_t>(row))) pool.push_back(row);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (!uncovered[s].empty() && uncovered[s].size() < options.k) {
      pool.insert(pool.end(), uncovered[s].begin(), uncovered[s].end());
    }
  }
  std::sort(pool.begin(), pool.end());

  std::vector<ShardBaselineRecord>* capture =
      hooks.capture != nullptr ? &hooks.capture->baseline : nullptr;
  if (capture != nullptr) {
    capture->clear();
    capture->resize(num_shards);
  }

  DivaOptions baseline_options = options;
  baseline_options.anonymizer.cancel = token;
  std::unique_ptr<Anonymizer> baseline =
      MakeBaselineAnonymizer(baseline_options);

  auto build_local = [&](const std::vector<RowId>& rows) -> Result<Clustering> {
    // The iterative baselines discard their half-built state on expiry,
    // so truncated inner scans cannot leak into the output; installing
    // the loop token just makes them stop sooner.
    ScopedLoopCancellation loop_cancel(token);
    Relation sub = relation.SelectRows(rows);
    std::vector<RowId> local(rows.size());
    for (size_t i = 0; i < local.size(); ++i) local[i] = static_cast<RowId>(i);
    return baseline->BuildClusters(sub, local, options.k);
  };

  Status deadline_status = Status::OK();
  Clustering built_all;
  for (size_t s = 0; s < num_shards && deadline_status.ok(); ++s) {
    const std::vector<RowId>& rows = uncovered[s];
    if (rows.size() < options.k) continue;  // empty or pooled above
    const ShardBaselineRecord* record =
        s < hooks.adopt_baseline.size() ? hooks.adopt_baseline[s] : nullptr;
    if (record != nullptr && record->used) {
      // Clean shard: replay the recorded counter ops at this slot and
      // remap the local clusters through the current uncovered list.
      if (capture != nullptr) (*capture)[s] = *record;
      counters::Buffer replay = record->telemetry;
      replay.Commit();
      for (const Cluster& cluster : record->clusters) {
        Cluster global;
        global.reserve(cluster.size());
        for (RowId row : cluster) {
          global.push_back(rows[static_cast<size_t>(row)]);
        }
        built_all.push_back(std::move(global));
      }
      continue;
    }
    counters::Buffer buffer;
    Result<Clustering> built = [&]() -> Result<Clustering> {
      counters::ScopedBufferedCounters buffered(&buffer);
      return build_local(rows);
    }();
    if (!built.ok()) {
      buffer.Discard();
      if (built.status().code() != StatusCode::kDeadlineExceeded) {
        return built.status();
      }
      deadline_status = built.status();
      break;
    }
    Clustering local_clusters = std::move(built).value();
    if (capture != nullptr) {
      (*capture)[s].used = true;
      (*capture)[s].clusters = local_clusters;
      (*capture)[s].telemetry = buffer;  // the uncommitted op sequence
    }
    buffer.Commit();
    for (Cluster& cluster : local_clusters) {
      for (RowId& row : cluster) row = rows[static_cast<size_t>(row)];
      built_all.push_back(std::move(cluster));
    }
  }

  if (deadline_status.ok() && pool.size() >= options.k) {
    // The pool is never adopted: its membership mixes shards, so it is
    // recomputed by cold and incremental runs alike.
    Result<Clustering> built = build_local(pool);
    if (!built.ok()) {
      if (built.status().code() != StatusCode::kDeadlineExceeded) {
        return built.status();
      }
      deadline_status = built.status();
    } else {
      for (Cluster& cluster : std::move(built).value()) {
        for (RowId& row : cluster) row = pool[static_cast<size_t>(row)];
        built_all.push_back(std::move(cluster));
      }
    }
  }

  if (!deadline_status.ok()) {
    if (options.strict) return deadline_status;
    // Anytime fallback: the single-pass Mondrian always finishes.
    report->baseline_degraded = true;
    if (capture != nullptr) capture->clear();
    std::unique_ptr<Anonymizer> mondrian = MakeMondrian(options.anonymizer);
    DIVA_ASSIGN_OR_RETURN(
        *rk_clusters, mondrian->BuildClusters(relation, remaining, options.k));
    return Status::OK();
  }

  if (pool.size() < options.k && !pool.empty()) *leftover = std::move(pool);
  *rk_clusters = std::move(built_all);
  return Status::OK();
}

}  // namespace

Result<DivaResult> RunDivaPipeline(const Relation& relation,
                                   const ConstraintSet& constraints,
                                   const DivaOptions& options,
                                   const PipelineHooks& hooks) {
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (relation.NumRows() > 0 && relation.NumRows() < options.k) {
    return Status::Infeasible("relation has fewer than k tuples");
  }

  StopWatch total_watch;
  DIVA_TRACE_SPAN("diva/run");
  // The report carries this run's counter *delta*; concurrent RunDiva
  // calls in one process would blend into each other's deltas (the
  // registry is process-wide), so deltas are meaningful for the common
  // one-run-at-a-time case.
  const std::vector<counters::Sample> counters_before =
      counters::Snapshot();
  DivaReport report;
  report.total_constraints = constraints.size();

  // The run's wall budget: one token shared by every phase. A null token
  // (no deadline, no external cancel) never trips and costs one pointer
  // test per poll. An external options.cancel composes as the parent, so
  // either signal degrades the run — and we never trip the caller's own
  // token.
  const CancellationToken token =
      options.deadline_ms > 0
          ? CancellationToken::WithDeadlineAndParent(
                Deadline::AfterMillis(options.deadline_ms), options.cancel)
          : (options.cancel.CanBeCancelled()
                 ? CancellationToken::WithDeadlineAndParent(
                       Deadline::Infinite(), options.cancel)
                 : CancellationToken());

  // Configure the process-global pool before the first hot loop runs.
  // Every parallel algorithm downstream is bit-identical across widths,
  // so this only decides speed, never output.
  SetParallelThreads(options.threads);

  // Phase 1: DiverseClustering — graph construction and coloring (the
  // per-node candidate clusterings are enumerated dynamically inside the
  // search, over the target rows still unclaimed).
  ColoringOutcome coloring;
  ConstraintGraph built_graph;
  const ConstraintGraph* graph = hooks.graph;
  ShardPlan built_plan;
  const ShardPlan* plan = hooks.plan;
  {
    DIVA_TRACE_SPAN("diva/clustering");
    PhaseTimer phase_timer(&report.clustering_seconds);
    if (graph == nullptr) {
      DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.graph.build"));
      built_graph = BuildConstraintGraph(relation, constraints);
      graph = &built_graph;
    }

    for (size_t i = 0; i < constraints.size(); ++i) {
      // Static infeasibility: a lower bound can only be met by clusters of
      // >= k target tuples, so it needs lambda_l <= |I_sigma| and
      // max(k, lambda_l) <= lambda_r.
      const DiversityConstraint& constraint = constraints[i];
      bool feasible =
          constraint.lower() == 0 ||
          (constraint.lower() <= graph->targets[i].size() &&
           std::max<size_t>(options.k, constraint.lower()) <=
               constraint.upper());
      if (!feasible && options.strict) {
        return Status::Infeasible(
            "no diverse k-anonymous relation exists: constraint '" +
            constraint.ToString() + "' admits no clustering for k = " +
            std::to_string(options.k));
      }
    }

    DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.coloring.begin"));
    ColoringOptions coloring_options;
    coloring_options.k = options.k;
    coloring_options.strategy = options.strategy;
    coloring_options.seed = options.seed;
    coloring_options.step_budget = options.coloring_budget;
    coloring_options.enumeration = TuneEnumeration(options);
    coloring_options.deadline = token;

    // The component partition of the conflict graph (core/shard.h): a
    // pure function of the instance, computed in both execution modes so
    // the report's shard figures never depend on the shard flag.
    if (plan == nullptr) {
      DIVA_RETURN_IF_ERROR(DIVA_FAIL("shard.partition"));
      built_plan = ComputeShardPlan(*graph, relation.NumRows());
      plan = &built_plan;
    }
    report.shards = plan->shards.size();
    report.residual_rows = plan->residual_rows;
    DIVA_COUNTER_ADD("shard.count", plan->shards.size());
    DIVA_COUNTER_ADD("shard.max_rows", plan->MaxShardRows());
    DIVA_COUNTER_ADD("shard.residual_rows", plan->residual_rows);

    // The search tolerates truncated candidate enumeration (it just sees
    // fewer candidates), so the pool-level token is installed for this
    // phase: when the deadline trips, enumeration loops stop claiming
    // chunks instead of finishing a doomed sweep.
    ScopedLoopCancellation loop_cancel(token);
    if (plan->Effective()) {
      // >= 2 independent components: the plan drives the search in both
      // modes; options.shard only picks concurrent vs sequential
      // execution (the shard fan-out replaces the attempt portfolio).
      // Shards materialize as column slices of one arena-backed
      // snapshot instead of row-major copies of the whole relation.
      const ColumnStore store = ColumnStore::FromRelation(relation);
      const size_t workers =
          options.shard ? ResolveThreadCount(options.threads) : 1;
      const std::vector<const ShardColoringRecord*>* adopt =
          hooks.adopt_coloring.empty() ? nullptr : &hooks.adopt_coloring;
      std::vector<ShardColoringRecord>* capture_coloring =
          hooks.capture != nullptr ? &hooks.capture->coloring : nullptr;
      DIVA_ASSIGN_OR_RETURN(
          coloring,
          RunShardedColoring(store, constraints, *graph, *plan,
                             coloring_options, workers, adopt,
                             capture_coloring));
    } else {
      coloring =
          options.portfolio_threads > 1
              ? ColorConstraintsPortfolio(relation, constraints, *graph,
                                          coloring_options,
                                          options.portfolio_threads)
              : ColorConstraints(relation, constraints, *graph,
                                 coloring_options);
    }
  }
  report.clustering_complete = coloring.complete;
  report.budget_exhausted = coloring.budget_exhausted;
  report.colored_constraints = coloring.NumColored();
  report.coloring_steps = coloring.steps;
  report.backtracks = coloring.backtracks;
  DIVA_COUNTER_ADD("coloring.steps", coloring.steps);
  DIVA_COUNTER_ADD("coloring.backtracks", coloring.backtracks);

  if (!coloring.complete && options.strict) {
    if (token.Cancelled()) return DeadlineExceededStatus("clustering");
    return Status::Infeasible(
        "no diverse k-anonymous relation exists: coloring satisfied " +
        std::to_string(report.colored_constraints) + "/" +
        std::to_string(constraints.size()) + " constraints");
  }

  Clustering sigma_clusters = std::move(coloring.chosen_clusters);
  report.sigma_rows = TotalRows(sigma_clusters);

  // Phase 2: Suppress (or generalize) S_Sigma inside a working copy of R.
  // Never run under the loop token: a truncated suppression would publish
  // rows that are not unanimous with their QI-group.
  if (options.generalization != nullptr &&
      options.generalization->num_attributes() != relation.NumAttributes()) {
    return Status::InvalidArgument(
        "generalization context arity mismatch with the relation");
  }
  DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.suppress"));
  Relation out = relation;
  {
    DIVA_TRACE_SPAN("diva/suppress");
    DIVA_RETURN_IF_ERROR(Recode(options, &out, sigma_clusters));
  }
  for (const Cluster& cluster : sigma_clusters) {
    DIVA_HISTOGRAM_RECORD("diva.cluster_size", cluster.size());
  }

  // Phase 3: Anonymize the remaining tuples with the baseline. With an
  // effective shard plan the baseline runs per component (uncovered rows
  // of each shard clustered independently, undersized shards and the
  // residual pooled), which keeps the phase a per-shard pure function —
  // the reuse unit of incremental runs. Without one, the legacy global
  // path runs byte-for-byte unchanged.
  Clustering rk_clusters;
  {
    DIVA_TRACE_SPAN("diva/anonymize");
    PhaseTimer phase_timer(&report.anonymize_seconds);
    Bitset covered(relation.NumRows());
    for (const Cluster& cluster : sigma_clusters) {
      for (RowId row : cluster) covered.Set(row);
    }
    std::vector<RowId> remaining;
    remaining.reserve(relation.NumRows() - report.sigma_rows);
    for (RowId row = 0; row < relation.NumRows(); ++row) {
      if (!covered.Test(row)) remaining.push_back(row);
    }

    std::vector<RowId> leftover;
    if (remaining.empty()) {
      // Nothing to anonymize.
    } else if (plan->Effective()) {
      DIVA_RETURN_IF_ERROR(BuildShardedBaseline(relation, covered, remaining,
                                                *plan, options, token, hooks,
                                                &rk_clusters, &leftover,
                                                &report));
    } else if (remaining.size() >= options.k) {
      DivaOptions baseline_options = options;
      baseline_options.anonymizer.cancel = token;
      std::unique_ptr<Anonymizer> baseline =
          MakeBaselineAnonymizer(baseline_options);
      // The iterative baselines discard their half-built state on expiry,
      // so truncated inner scans cannot leak into the output; installing
      // the loop token just makes them stop sooner.
      Result<Clustering> built = [&]() -> Result<Clustering> {
        ScopedLoopCancellation loop_cancel(token);
        return baseline->BuildClusters(relation, remaining, options.k);
      }();
      if (!built.ok() &&
          built.status().code() == StatusCode::kDeadlineExceeded) {
        if (options.strict) return built.status();
        // Anytime fallback: the single-pass Mondrian always finishes.
        report.baseline_degraded = true;
        std::unique_ptr<Anonymizer> mondrian =
            MakeMondrian(options.anonymizer);
        DIVA_ASSIGN_OR_RETURN(
            rk_clusters,
            mondrian->BuildClusters(relation, remaining, options.k));
      } else {
        if (!built.ok()) return built.status();
        rk_clusters = std::move(built).value();
      }
    } else {
      leftover = remaining;
    }

    if (!rk_clusters.empty()) {
      DIVA_RETURN_IF_ERROR(Recode(options, &out, rk_clusters));
    }
    if (!leftover.empty()) {
      // Fewer than k stragglers: fold them into the cheapest existing
      // cluster (there must be one, or the relation itself had < k rows,
      // rejected above — unless S_Sigma is empty too).
      Clustering* host = !sigma_clusters.empty()   ? &sigma_clusters
                         : !rk_clusters.empty()    ? &rk_clusters
                                                   : nullptr;
      if (host == nullptr) {
        return Status::Infeasible(
            "cannot k-anonymize " + std::to_string(leftover.size()) +
            " tuples with k = " + std::to_string(options.k));
      }
      MergeLeftoverRows(&out, host, leftover, constraints);
    }
  }

  // Phase 4: Integrate — repair upper bounds breached by R_k. Skipped
  // once the deadline tripped: the unrepaired violations surface in
  // report.unsatisfied below (and are waived for the audit), which is an
  // honest degradation — a half-applied repair would not be.
  {
    DIVA_TRACE_SPAN("diva/integrate");
    PhaseTimer phase_timer(&report.integrate_seconds);
    DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.integrate"));
    if (token.Cancelled()) {
      if (options.strict) return DeadlineExceededStatus("integrate");
      report.integrate_skipped = true;
    } else {
      IntegrateStats repair = IntegrateRepair(&out, constraints, rk_clusters);
      report.repair_cells = repair.suppressed_cells;
    }
  }

  // Optional l-diversity layer: merge output QI-groups until each holds
  // enough distinct sensitive projections (suppression-only; k-anonymity
  // and Sigma's upper bounds survive, lower bounds re-verified below).
  // The deadline token truncates the merge loops; whether the target was
  // actually missed is re-checked afterwards.
  if (options.l_diversity > 1 || options.t_closeness < 1.0) {
    DIVA_TRACE_SPAN("diva/privacy");
    Clustering all_clusters = sigma_clusters;
    all_clusters.insert(all_clusters.end(), rk_clusters.begin(),
                        rk_clusters.end());
    if (options.l_diversity > 1) {
      DIVA_ASSIGN_OR_RETURN(
          all_clusters, EnforceLDiversity(&out, std::move(all_clusters),
                                          options.l_diversity, token));
      if (token.Cancelled() &&
          !IsDistinctLDiverse(out, options.l_diversity)) {
        if (options.strict) return DeadlineExceededStatus("l-diversity");
        report.privacy_truncated = true;
      }
    }
    if (options.t_closeness < 1.0) {
      DIVA_RETURN_IF_ERROR(EnforceTCloseness(&out, std::move(all_clusters),
                                             options.t_closeness, token));
      if (token.Cancelled() && !IsTClose(out, options.t_closeness)) {
        if (options.strict) return DeadlineExceededStatus("t-closeness");
        report.privacy_truncated = true;
      }
    }
  }

  SuppressIdentifiers(&out);
  report.unsatisfied = ViolatedConstraints(out, constraints);
  if (!report.unsatisfied.empty() && options.strict) {
    return Status::Infeasible(
        "output violates " + std::to_string(report.unsatisfied.size()) +
        " constraint(s) after integration");
  }

  report.deadline_exceeded = token.Cancelled();

  // The published stars, counted exactly once against the input: cells
  // suppressed in `out` that were not suppressed in `relation`. Counting
  // here — rather than inside SuppressClustersInPlace, whose speculative
  // trial copies (MergeLeftoverRows ranking, privacy merges) would
  // overcount — keeps the figure equal to what the auditor's star
  // accounting re-derives from the published pair.
  {
    uint64_t added_stars = 0;
    for (RowId row = 0; row < out.NumRows(); ++row) {
      for (size_t col = 0; col < out.NumAttributes(); ++col) {
        if (out.At(row, col) == kSuppressed &&
            relation.At(row, col) != kSuppressed) {
          ++added_stars;
        }
      }
    }
    DIVA_COUNTER_ADD("suppress.stars", added_stars);
  }

  // The self-audit is NEVER skipped on deadline expiry: a degraded
  // output must still prove it is k-anonymous and suppression-only.
  if (options.audit) {
    DIVA_TRACE_SPAN("diva/audit");
    PhaseTimer phase_timer(&report.audit_seconds);
    AuditOptions audit_options;
    audit_options.waived_constraints = report.unsatisfied;
    audit_options.generalization = options.generalization;
    DIVA_ASSIGN_OR_RETURN(
        AuditReport audit,
        AuditAnonymization(relation, out, options.k, constraints,
                           audit_options));
    if (!audit.ok()) {
      return Status::Internal("output failed its self-audit:\n" +
                              audit.ToString());
    }
    report.audited = true;
  }

  DIVA_RETURN_IF_ERROR(DIVA_FAIL("diva.publish"));

  // Reuse capture: only a fully sharded, undegraded, suppression-recoded
  // run is a sound adoption source. The caller finishes the snapshot
  // (relation, hashes, fingerprint) via FinalizeSnapshot.
  if (hooks.capture != nullptr) {
    PipelineSnapshot& snapshot = *hooks.capture;
    snapshot.valid = plan->Effective() && options.generalization == nullptr &&
                     !report.deadline_exceeded && !report.baseline_degraded &&
                     !report.integrate_skipped && !report.privacy_truncated &&
                     snapshot.coloring.size() == plan->shards.size();
    if (snapshot.valid) {
      snapshot.graph = *graph;
      snapshot.plan = *plan;
    }
  }

  report.counters = counters::Delta(counters_before, counters::Snapshot());
  report.total_seconds = total_watch.ElapsedSeconds();
  return DivaResult{std::move(out), std::move(report), nullptr};
}

Result<DivaResult> RunDiva(const Relation& relation,
                           const ConstraintSet& constraints,
                           const DivaOptions& options) {
  if (!options.incremental) {
    return RunDivaPipeline(relation, constraints, options, PipelineHooks{});
  }
  auto snapshot = std::make_shared<PipelineSnapshot>();
  PipelineHooks hooks;
  hooks.capture = snapshot.get();
  DIVA_ASSIGN_OR_RETURN(
      DivaResult result,
      RunDivaPipeline(relation, constraints, options, hooks));
  if (snapshot->valid) {
    FinalizeSnapshot(snapshot.get(), relation, constraints, options);
    result.snapshot = std::move(snapshot);
  }
  return result;
}

}  // namespace diva
