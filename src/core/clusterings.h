#ifndef DIVA_CORE_CLUSTERINGS_H_
#define DIVA_CORE_CLUSTERINGS_H_

#include <cstdint>
#include <vector>

#include "anon/cluster.h"
#include "common/result.h"
#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// One candidate clustering for a constraint sigma: clusters drawn from
/// I_sigma whose suppression preserves exactly `preserved` occurrences of
/// the target value (Definition 3.2: S ⊩ sigma).
struct CandidateClustering {
  Clustering clusters;
  /// Occurrences of sigma's target preserved by these clusters
  /// (= total rows, since every cluster is target-homogeneous).
  size_t preserved = 0;
};

/// Knobs bounding the Clusterings(sigma, R) enumeration (paper §3.3 keeps
/// the candidate count polynomial in |R|; DIVA-Basic's larger unordered
/// pool is what makes its search blow up in Fig 4a).
struct ClusteringEnumOptions {
  /// Hard cap on candidates per constraint.
  size_t max_clusterings = 24;

  /// Deterministic candidates: sliding windows over I_sigma sorted by QI
  /// similarity (at most this many windows per preserved-count value).
  size_t max_window_candidates = 8;

  /// Additional seeded random subsets per preserved-count value.
  size_t random_subsets = 4;

  /// How many preserved-count values m to try, starting at
  /// max(k, lambda_l) and stepping by k.
  size_t preserved_steps = 3;

  /// Also emit the single-cluster variant of each subset (all m rows in
  /// one block) besides the size-k block partition.
  bool single_block_variant = true;

  /// Minimal-suppression-first ordering. false = shuffled (DIVA-Basic).
  bool ordered = true;

  uint64_t seed = 42;
};

/// Sorts target rows by their QI projection (column by column, row id as
/// the final tie-break). The comparator is a strict total order that does
/// not depend on which rows are present, so filtering a presorted list
/// down to a subset yields exactly the order this function would produce
/// for that subset — the property the coloring engine relies on to hoist
/// the sort out of its per-visit candidate enumeration.
std::vector<RowId> SortByQiSimilarity(const Relation& relation,
                                      const std::vector<RowId>& targets);

/// Enumerates candidate clusterings satisfying `constraint` over
/// `relation` with minimum cluster size `k` (the Clusterings routine of
/// Algorithm 4). `targets` must be sigma's target tuples I_sigma in
/// `relation` (sorted ascending). Returns an empty vector when the
/// constraint has no satisfying clustering (e.g., lambda_l > |I_sigma| or
/// lambda_r < k with lambda_l > 0).
std::vector<CandidateClustering> EnumerateClusterings(
    const Relation& relation, const DiversityConstraint& constraint,
    const std::vector<RowId>& targets, size_t k,
    const ClusteringEnumOptions& options);

/// State-dependent variant used during coloring (the paper updates the
/// candidate clusterings of neighbors as nodes are colored): enumerates
/// clusterings over the still-free target rows `free_targets` that
/// preserve between `min_preserve` (>= 1; the constraint's remaining
/// lower-bound deficit) and `max_preserve` (its remaining upper-bound
/// headroom) occurrences. Every emitted cluster has >= k rows.
std::vector<CandidateClustering> EnumerateClusteringsWithBounds(
    const Relation& relation, const std::vector<RowId>& free_targets,
    size_t k, size_t min_preserve, size_t max_preserve,
    const ClusteringEnumOptions& options);

/// O(1) structural test for "the bounded enumeration can emit nothing":
/// true iff no preserved-count m with max(k, max(1, min_preserve)) <= m
/// <= min(max_preserve, free_targets) exists (or k == 0 / no free
/// targets). Shared by both Enumerate functions, and used by the
/// coloring engine to skip enumeration (and the candidate memo) for
/// structurally dead nodes without spending a step.
bool EnumerationIsTriviallyEmpty(size_t free_targets, size_t k,
                                 size_t min_preserve, size_t max_preserve);

/// As EnumerateClusteringsWithBounds, but `sorted_free_targets` must
/// already be in SortByQiSimilarity order. Skips the per-call
/// stable_sort — the coloring engine computes each constraint's full
/// target order once at construction and filters it by the claimed-row
/// bitset, so enumeration never re-sorts.
std::vector<CandidateClustering> EnumerateClusteringsQiSorted(
    const Relation& relation, const std::vector<RowId>& sorted_free_targets,
    size_t k, size_t min_preserve, size_t max_preserve,
    const ClusteringEnumOptions& options);

}  // namespace diva

#endif  // DIVA_CORE_CLUSTERINGS_H_
