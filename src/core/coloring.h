#ifndef DIVA_CORE_COLORING_H_
#define DIVA_CORE_COLORING_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "anon/cluster.h"
#include "common/deadline.h"
#include "core/clusterings.h"
#include "core/constraint_graph.h"

namespace diva {

/// Node-selection strategy for the coloring search (Section 3.3).
enum class SelectionStrategy {
  /// Random uncolored node, shuffled candidate order (DIVA-Basic).
  kBasic,
  /// Most restrictive first: fewest currently-consistent clusterings.
  kMinChoice,
  /// Most interacting first: most uncolored neighbors.
  kMaxFanOut,
};

const char* SelectionStrategyToString(SelectionStrategy strategy);

struct ColoringOptions {
  /// Minimum cluster size (the k of k-anonymity).
  size_t k = 10;

  SelectionStrategy strategy = SelectionStrategy::kMaxFanOut;

  uint64_t seed = 42;

  /// Search-step budget (candidate trials); exhaustion returns the best
  /// partial coloring found so far instead of looping forever.
  uint64_t step_budget = 1000000;

  /// Give up when this many consecutive steps pass without improving the
  /// best partial coloring (0 = disabled). Complete colorings are found
  /// in few steps; long no-progress stretches are almost always thrash on
  /// an infeasible remainder.
  uint64_t stall_limit = 5000;

  /// Cooperative cancellation: when set and *cancel becomes true, the
  /// search stops at the next step and returns its best partial outcome.
  /// Used by the portfolio driver; null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;

  /// Deadline-driven cancellation (the anytime mode of RunDiva): when the
  /// token trips, the search stops at the next step and the best partial
  /// coloring found so far is returned with budget_exhausted set — the
  /// same degradation path as step-budget exhaustion. Default token never
  /// trips.
  CancellationToken deadline;

  /// Probability that SelectNode ignores the strategy and picks a random
  /// uncolored node (exploration). 0 on the first search attempt; the
  /// restart driver raises it on later attempts so a bad deterministic
  /// node order cannot wedge the search.
  double epsilon = 0.0;

  /// Memoize per-node candidate lists across backtracking re-visits,
  /// keyed by the claimed-rows fingerprint restricted to the node's
  /// targets plus its remaining deficit/headroom. Enumeration (and the
  /// least-constraining ordering) is a pure function of that key, so the
  /// search explores exactly the same tree with the memo on or off —
  /// disabling it only costs time (coloring_test asserts byte-identical
  /// outcomes both ways). Hit/miss/evict totals are exported through the
  /// deterministic counters coloring.memo_{hits,misses,evictions}.
  bool memo = true;

  /// Memoized candidate lists retained per search engine before the memo
  /// is dropped wholesale (epoch eviction) to bound memory.
  size_t memo_capacity = 2048;

  /// Deterministic speculative search: restart attempts run ahead on
  /// idle threads and the driver adopts results in attempt order, each
  /// one only when it is provably identical to what the sequential
  /// schedule would have computed (otherwise that attempt is re-run
  /// inline under exact sequential semantics). Sibling candidates at
  /// backtrack points are additionally pre-validated by idle workers.
  /// Output, step/backtrack counts, and every deterministic counter are
  /// byte-identical to speculation = false at any thread width; the knob
  /// only trades threads for wall time. Automatically disabled when the
  /// search can be cancelled externally (options.cancel / deadline),
  /// because a truncated run is scheduling-dependent by nature.
  bool speculation = true;

  /// Learn dead subtrees: when every candidate of a node fails without
  /// consuming randomness, improving the best partial coloring, or
  /// hitting a budget, the (node, state) pair is recorded with its
  /// step/backtrack cost and replayed on re-visits — the search charges
  /// the recorded cost and fails immediately instead of re-exploring.
  /// Replay is exactly equivalent to re-execution, so outcomes are
  /// byte-identical with the table on or off (coloring_test asserts
  /// this). Hit/miss/evict totals are exported through the deterministic
  /// counters coloring.nogood_{hits,misses,evictions}.
  bool nogood = true;

  /// Nogood entries retained per search engine before the table is
  /// dropped wholesale (epoch eviction, like memo_capacity).
  size_t nogood_capacity = 4096;

  /// Publish each restart attempt's learned nogoods at its end (a
  /// deterministic sequence point) and seed them into every later
  /// attempt, so attempt i prunes attempts j > i. Changes later
  /// attempts' trajectories (deterministically — identical at every
  /// thread width), and forces the attempt portfolio to run
  /// sequentially, since attempt j cannot start before attempt i's
  /// table is final. Off by default: the attempts that learn the most
  /// are exactly the expensive ones speculation overlaps. The greedy
  /// pass never consumes shared entries (they were learned under
  /// forward checking and are unsound without it).
  bool share_nogoods = false;

  /// Hand the first strict attempt's candidate memo to the greedy pass
  /// (they share the per-node enumeration seed, so entries are
  /// interchangeable; the memo is semantically transparent, so steps
  /// and outcome are unchanged — only enumeration time is saved).
  bool share_memo = true;

  /// Knobs of the per-node candidate enumeration. Candidates are
  /// regenerated each time a node is tried (or replayed from the memo),
  /// over the target rows still unclaimed by other clusters and for the
  /// constraint's *remaining* deficit (the paper: "we update the
  /// candidate clusterings for their neighbors") — occurrences preserved
  /// by other constraints' clusters count toward a node's lower bound.
  ClusteringEnumOptions enumeration;
};

/// Result of the backtracking coloring (Algorithm 4, plus best-partial
/// tracking for graceful degradation under a step budget).
struct ColoringOutcome {
  /// True iff every node received a consistent clustering.
  bool complete = false;
  bool budget_exhausted = false;

  /// Per node: preserved-occurrence count of the chosen clustering
  /// (possibly 0 when neighbors' clusters already covered the lower
  /// bound), or -1 if uncolored in the best assignment found.
  std::vector<int> assignment;

  /// Union of the distinct chosen clusters (S_Sigma). Clusters shared by
  /// two nodes appear once.
  Clustering chosen_clusters;

  /// Occurrences of each constraint's target preserved by
  /// chosen_clusters.
  std::vector<uint64_t> preserved;

  uint64_t steps = 0;
  uint64_t backtracks = 0;

  size_t NumColored() const {
    size_t n = 0;
    for (int a : assignment) n += (a >= 0);
    return n;
  }
};

/// Runs the coloring search over (R, Sigma) with the interaction graph
/// `graph` (whose `targets` must be the constraints' target-tuple lists).
ColoringOutcome ColorConstraints(const Relation& relation,
                                 const ConstraintSet& constraints,
                                 const ConstraintGraph& graph,
                                 const ColoringOptions& options);

/// Portfolio parallelization of the coloring search — the paper's
/// future-work direction ("a distributed version of the coloring
/// algorithm to improve scalability by satisfying constraints in
/// parallel"). Launches `threads` independently-seeded searches on
/// worker threads; the first complete coloring cancels the rest. When no
/// search completes, the one that colored the most constraints wins
/// (ties by thread index). `threads` <= 1 is plain ColorConstraints.
///
/// Every returned outcome is a valid coloring state; which complete
/// assignment wins under cancellation may vary run to run.
ColoringOutcome ColorConstraintsPortfolio(const Relation& relation,
                                          const ConstraintSet& constraints,
                                          const ConstraintGraph& graph,
                                          const ColoringOptions& options,
                                          size_t threads);

}  // namespace diva

#endif  // DIVA_CORE_COLORING_H_
