#ifndef DIVA_CORE_DIVA_H_
#define DIVA_CORE_DIVA_H_

#include <memory>
#include <vector>

#include "anon/anonymizer.h"
#include "hierarchy/generalize.h"
#include "common/counters.h"
#include "common/deadline.h"
#include "common/parallel.h"
#include "common/result.h"
#include "constraint/diversity_constraint.h"
#include "core/clusterings.h"
#include "core/coloring.h"
#include "relation/relation.h"

namespace diva {

/// Off-the-shelf k-anonymizer used by DIVA's Anonymize phase for the
/// tuples outside the diverse clustering.
enum class BaselineAlgorithm {
  kKMember,  // the paper's choice [6]
  kOka,
  kMondrian,
};

const char* BaselineAlgorithmToString(BaselineAlgorithm baseline);

struct DivaOptions {
  /// Minimum QI-group size.
  size_t k = 10;

  SelectionStrategy strategy = SelectionStrategy::kMaxFanOut;

  uint64_t seed = 42;

  /// Step budget of the coloring search; exhaustion degrades to the best
  /// partial coloring (or an error in strict mode).
  uint64_t coloring_budget = 1000000;

  /// Candidate-clustering enumeration knobs. When `auto_tune_enumeration`
  /// is true (default) the ordered flag, pool size and seed are derived
  /// from `strategy`/`seed`: Basic explores a larger shuffled pool
  /// (the paper's exponential-in-|Sigma| configuration), MinChoice and
  /// MaxFanOut a compact ordered one.
  ClusteringEnumOptions enumeration;
  bool auto_tune_enumeration = true;

  /// When true, DIVA fails (Infeasible) if the coloring cannot satisfy
  /// every constraint — Algorithm 1's "relation does not exist". When
  /// false (default), it publishes the best-effort relation and reports
  /// the unsatisfied constraints.
  bool strict = false;

  BaselineAlgorithm baseline = BaselineAlgorithm::kKMember;
  AnonymizerOptions anonymizer;

  /// Optional distinct l-diversity on top of k-anonymity (the paper's
  /// first listed privacy extension). 0 or 1 = off. When set, QI-groups
  /// of the output are merged after integration until each carries at
  /// least this many distinct sensitive projections; merging adds
  /// suppression and can sacrifice diversity lower bounds (re-verified
  /// and reported in DivaReport::unsatisfied).
  size_t l_diversity = 0;

  /// Optional generalization hierarchies: when set, clusters are recoded
  /// to lowest-common-ancestor labels instead of ★ wherever a taxonomy
  /// exists (attributes without one still suppress). Counting semantics
  /// are unchanged — a generalized label never matches a constraint's
  /// target value — so every DIVA guarantee carries over.
  std::shared_ptr<const GeneralizationContext> generalization;

  /// Portfolio parallelism for the coloring search (the paper's
  /// future-work direction): number of independently seeded searches run
  /// on worker threads, first complete coloring wins. 0 or 1 = single
  /// search.
  size_t portfolio_threads = 0;

  /// Data-parallel execution width for the pipeline's hot loops
  /// (candidate enumeration, suppression, baseline clustering, metrics,
  /// auditing). Defaults to the DIVA_THREADS environment knob; 0 = one
  /// thread per hardware core, 1 = exact sequential execution through
  /// the same code path. Results are bit-identical for every width (see
  /// common/parallel.h). RunDiva applies this via SetParallelThreads,
  /// so it configures the process-global pool.
  size_t threads = EnvThreads();

  /// Component sharding of the coloring phase (core/shard.h). The
  /// conflict graph's connected components are independent subproblems;
  /// whenever there are >= 2, the shard *plan* fixes every search
  /// decision (per-shard seed streams, per-shard sub-relations) and this
  /// flag only chooses the execution mode: true runs shards concurrently
  /// as TaskGroup work items, false runs the identical computations
  /// sequentially. Like `threads`, it never changes output bytes —
  /// tests/shard_test.cc pins sharded == unsharded on the fuzz corpus.
  /// Single-component instances take the legacy global search either
  /// way (automatic fallback), so the paper example is untouched.
  bool shard = true;

  /// Optional t-closeness on top of k-anonymity (the paper's second
  /// listed privacy extension). 1.0 = off (every relation is 1-close).
  /// When < 1, output QI-groups are merged until each sensitive
  /// distribution is within this distance of the global one.
  double t_closeness = 1.0;

  /// Self-audit: after publishing, independently re-verify the output
  /// contract (QI-group sizes >= k, constraint bounds, suppression-only
  /// containment, star accounting) with verify/auditor.h. Constraints the
  /// report already lists as unsatisfied are waived; any other breach is
  /// an internal error (the pipeline produced a relation that violates
  /// its own guarantees) and RunDiva fails with kInternal.
  bool audit = false;

  /// Wall-clock budget for the whole run in milliseconds (0 = none).
  /// Defaults to the DIVA_DEADLINE_MS environment knob. When the budget
  /// expires mid-run, RunDiva degrades to *anytime* behaviour instead of
  /// failing: the coloring keeps its best partial assignment (the
  /// budget-exhaustion path), an interrupted k-member/OKA baseline falls
  /// back to the single-pass Mondrian, the Integrate repair is skipped
  /// (its violations surface in DivaReport::unsatisfied), and the
  /// privacy merge loops stop where they are. The published relation is
  /// still k-anonymous and suppression-only — the self-audit, which a
  /// deadline never skips, re-proves that — and the report flags what
  /// was cut short (deadline_exceeded and the per-phase degradation
  /// flags). Under `strict`, expiry is an error (kDeadlineExceeded).
  int64_t deadline_ms = EnvDeadlineMillis();

  /// Capture a reusable PipelineSnapshot (core/incremental.h) alongside
  /// the result: the input relation, its conflict graph and shard plan,
  /// per-row content hashes, and per-shard coloring/baseline reuse
  /// records. ApplyDelta consumes the snapshot to re-anonymize a churned
  /// relation re-coloring only the dirty components. Capture never
  /// changes output bytes; it costs one relation copy plus O(rows)
  /// hashing, and is skipped (snapshot left null) when the run is not
  /// reusable — degraded by a deadline, generalization-recoded, or not
  /// sharded (< 2 components).
  bool incremental = false;

  /// Optional external cancellation signal, composed with `deadline_ms`:
  /// the run degrades (or errors, under `strict`) when either trips.
  /// This is how a caller that owns the run's lifetime — the serve
  /// layer's watchdog, a CLI's SIGINT handler — interrupts a pipeline
  /// mid-flight. Tripping it yields the same anytime-degradation path as
  /// a deadline: the published relation stays k-anonymous,
  /// suppression-only and audited. A default (null) token changes
  /// nothing.
  CancellationToken cancel;
};

/// Everything DIVA measured about one run.
struct DivaReport {
  /// Did the coloring satisfy all constraints?
  bool clustering_complete = false;
  bool budget_exhausted = false;
  size_t colored_constraints = 0;
  size_t total_constraints = 0;
  uint64_t coloring_steps = 0;
  uint64_t backtracks = 0;

  /// Conflict-graph components the coloring decomposed into (the shard
  /// plan of core/shard.h). 0 when there were no constraints; 1 means
  /// the legacy single-search path ran. Identical with sharding on or
  /// off — the plan is a pure function of the instance.
  size_t shards = 0;
  /// Rows no constraint targets (the residual shard): they skip the
  /// coloring entirely and flow to the baseline phase.
  size_t residual_rows = 0;

  /// Tuples covered by the diverse clustering S_Sigma.
  size_t sigma_rows = 0;
  /// Cells suppressed by the Integrate repair.
  size_t repair_cells = 0;
  /// Constraints violated by the final output (empty on full success).
  std::vector<size_t> unsatisfied;

  /// True when DivaOptions::audit ran and passed (a failed audit turns
  /// the whole run into a kInternal error instead).
  bool audited = false;

  /// The wall budget (DivaOptions::deadline_ms) expired during the run
  /// and the output is the anytime best effort. The degradation flags
  /// below say which phases were cut short.
  bool deadline_exceeded = false;
  /// The configured baseline was interrupted by the deadline and the
  /// remainder was anonymized with single-pass Mondrian instead.
  bool baseline_degraded = false;
  /// The Integrate repair did not run; its violations appear in
  /// `unsatisfied` (and are waived for the audit).
  bool integrate_skipped = false;
  /// The l-diversity / t-closeness merge loop stopped before reaching
  /// its target (the output may not meet the requested l or t).
  bool privacy_truncated = false;

  /// Per-run delta of the process-wide counter registry
  /// (common/counters.h), sorted by name: coloring.steps,
  /// suppress.stars, pool.chunks, deadline.polls, ... Deterministic-
  /// scoped entries are identical at every thread width; execution-
  /// scoped ones describe scheduling. Serialized into the report JSON.
  std::vector<counters::Sample> counters;

  /// Per-phase wall seconds from one monotonic clock (common/timer.h);
  /// filled even when a deadline cut the phase short.
  double clustering_seconds = 0.0;
  double anonymize_seconds = 0.0;
  double integrate_seconds = 0.0;
  double audit_seconds = 0.0;
  double total_seconds = 0.0;
};

struct PipelineSnapshot;

struct DivaResult {
  Relation relation;
  DivaReport report;

  /// Reuse state for incremental re-anonymization, captured when
  /// DivaOptions::incremental was set and the run was reusable (see
  /// core/incremental.h); null otherwise.
  std::shared_ptr<const PipelineSnapshot> snapshot;
};

/// Runs DIVA (Algorithm 1): diverse clustering by graph coloring,
/// suppression, baseline anonymization of the remainder, and integration.
/// The output relation is k-anonymous and — whenever the search succeeds —
/// satisfies every constraint; row ids match the input.
[[nodiscard]] Result<DivaResult> RunDiva(const Relation& relation,
                           const ConstraintSet& constraints,
                           const DivaOptions& options);

/// Instantiates the baseline anonymizer configured in `options`.
std::unique_ptr<Anonymizer> MakeBaselineAnonymizer(const DivaOptions& options);

}  // namespace diva

#endif  // DIVA_CORE_DIVA_H_
