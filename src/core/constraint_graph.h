#ifndef DIVA_CORE_CONSTRAINT_GRAPH_H_
#define DIVA_CORE_CONSTRAINT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// The constraint-interaction graph of Section 3.3: one node per
/// diversity constraint, an undirected edge between sigma_i and sigma_j
/// iff their target tuple sets overlap (I_si ∩ I_sj != ∅).
struct ConstraintGraph {
  /// targets[i] = I_sigma_i, sorted ascending by row id.
  std::vector<std::vector<RowId>> targets;
  /// adjacency[i] = indices of neighboring constraints (sorted).
  std::vector<std::vector<size_t>> adjacency;

  /// row_tags[r] = a fixed-seed random 64-bit tag for row r. A row set's
  /// fingerprint is the XOR of its members' tags, so adding/removing a
  /// row updates the fingerprint in O(1) — the coloring engine keys its
  /// cluster registry and candidate memo on these instead of rehashing
  /// whole row vectors. Seed is a constant, so tags (and everything keyed
  /// on them) are identical across runs and thread widths.
  std::vector<uint64_t> row_tags;

  size_t NumNodes() const { return targets.size(); }
  bool HasEdge(size_t i, size_t j) const;
};

/// Builds the graph for (R, Sigma) — BuildGraph of Algorithm 3.
ConstraintGraph BuildConstraintGraph(const Relation& relation,
                                     const ConstraintSet& constraints);

/// The fixed-seed tag table BuildConstraintGraph stores in `row_tags`.
/// Exposed so the coloring engine can regenerate identical tags for a
/// hand-constructed graph that never went through BuildConstraintGraph.
std::vector<uint64_t> MakeRowTags(size_t num_rows);

}  // namespace diva

#endif  // DIVA_CORE_CONSTRAINT_GRAPH_H_
