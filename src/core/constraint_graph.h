#ifndef DIVA_CORE_CONSTRAINT_GRAPH_H_
#define DIVA_CORE_CONSTRAINT_GRAPH_H_

#include <vector>

#include "constraint/diversity_constraint.h"
#include "relation/relation.h"

namespace diva {

/// The constraint-interaction graph of Section 3.3: one node per
/// diversity constraint, an undirected edge between sigma_i and sigma_j
/// iff their target tuple sets overlap (I_si ∩ I_sj != ∅).
struct ConstraintGraph {
  /// targets[i] = I_sigma_i, sorted ascending by row id.
  std::vector<std::vector<RowId>> targets;
  /// adjacency[i] = indices of neighboring constraints (sorted).
  std::vector<std::vector<size_t>> adjacency;

  size_t NumNodes() const { return targets.size(); }
  bool HasEdge(size_t i, size_t j) const;
};

/// Builds the graph for (R, Sigma) — BuildGraph of Algorithm 3.
ConstraintGraph BuildConstraintGraph(const Relation& relation,
                                     const ConstraintSet& constraints);

}  // namespace diva

#endif  // DIVA_CORE_CONSTRAINT_GRAPH_H_
