#include "core/coloring.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "common/counters.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace diva {

const char* SelectionStrategyToString(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kBasic:
      return "Basic";
    case SelectionStrategy::kMinChoice:
      return "MinChoice";
    case SelectionStrategy::kMaxFanOut:
      return "MaxFanOut";
  }
  return "unknown";
}

namespace {

struct RowVectorHash {
  size_t operator()(const std::vector<RowId>& rows) const {
    uint64_t h = 1469598103934665603ULL;
    for (RowId r : rows) {
      h ^= r;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Backtracking engine implementing Algorithm 4 with dynamic candidate
/// enumeration: a node's clusterings are built from the target rows not
/// yet claimed by any chosen cluster, sized to the constraint's
/// *remaining* lower-bound deficit (occurrences preserved by other
/// constraints' clusters count). Disjoint-or-equal is enforced through a
/// row -> cluster map; upper bounds through incremental per-constraint
/// preserved-count totals.
class ColoringEngine {
 public:
  ColoringEngine(const Relation& relation, const ConstraintSet& constraints,
                 const ConstraintGraph& graph, const ColoringOptions& options,
                 bool forward_check)
      : relation_(relation),
        constraints_(constraints),
        graph_(graph),
        options_(options),
        forward_check_(forward_check),
        rng_(options.seed) {
    size_t n = constraints.size();
    assignment_.assign(n, -1);
    sacrificed_.assign(n, false);
    preserved_.assign(n, 0);
    basic_order_.resize(n);
    for (size_t i = 0; i < n; ++i) basic_order_[i] = i;
    if (options.strategy == SelectionStrategy::kBasic) {
      rng_.Shuffle(&basic_order_);
    }
    // Per-constraint target membership bitmaps: contribution checks are
    // the inner loop of the search.
    target_bitmap_.assign(n, std::vector<bool>(relation.NumRows(), false));
    free_count_.resize(n);
    for (size_t j = 0; j < n; ++j) {
      for (RowId row : graph.targets[j]) target_bitmap_[j][row] = true;
      free_count_[j] = graph.targets[j].size();
    }
    outcome_.assignment.assign(n, -1);
    outcome_.preserved.assign(n, 0);
  }

  ColoringOutcome Run() {
    SnapshotIfBetter();
    bool finished = Color();
    outcome_.complete = finished && sacrificed_count_ == 0;
    outcome_.steps = steps_;
    outcome_.backtracks = backtracks_;
    outcome_.budget_exhausted = budget_exhausted_;
    return std::move(outcome_);
  }

 private:
  struct ActiveCluster {
    std::vector<uint64_t> contrib;  // preserved count per constraint
    int refcount = 0;
  };
  using Registry =
      std::unordered_map<std::vector<RowId>, ActiveCluster, RowVectorHash>;

  bool Color() {
    if (colored_count_ + sacrificed_count_ == constraints_.size()) {
      return true;
    }
    // Poll the deadline before candidate enumeration too: CandidatesFor
    // can be expensive, and an expired run should not start another one.
    if (options_.deadline.Cancelled()) {
      budget_exhausted_ = true;
      return false;
    }
    size_t node = SelectNode();
    std::vector<CandidateClustering> candidates = CandidatesFor(node);
    if (!forward_check_ && candidates.empty()) {
      // Greedy mode: a node with no admissible clustering is sacrificed
      // (left uncolored) so the rest of Sigma can still be satisfied.
      sacrificed_[node] = true;
      ++sacrificed_count_;
      if (Color()) return true;
      sacrificed_[node] = false;
      --sacrificed_count_;
      return false;
    }
    if (options_.strategy != SelectionStrategy::kBasic) {
      OrderLeastConstrainingFirst(node, &candidates);
    }
    for (CandidateClustering& candidate : candidates) {
      ++steps_;
      if (steps_ > options_.step_budget ||
          (options_.stall_limit > 0 &&
           steps_ - last_improvement_ > options_.stall_limit) ||
          (options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed)) ||
          options_.deadline.Cancelled()) {
        budget_exhausted_ = true;
        return false;
      }
      std::vector<std::vector<RowId>> activated;
      if (!TryAssign(candidate, &activated)) continue;
      assignment_[node] = static_cast<int>(candidate.preserved);
      ++colored_count_;
      SnapshotIfBetter();
      if (Color()) return true;
      Unassign(node, activated);
      ++backtracks_;
      if (budget_exhausted_) return false;
    }
    return false;
  }

  /// Candidate clusterings of `node` under the current partial coloring.
  std::vector<CandidateClustering> CandidatesFor(size_t node) {
    const DiversityConstraint& constraint = constraints_[node];
    uint64_t have = preserved_[node];
    // Occurrences already preserved by neighbors' clusters count toward
    // the lower bound; no deficit means the empty clustering suffices
    // (and claiming more rows can only restrict other nodes).
    if (have >= constraint.lower()) {
      return {CandidateClustering{}};
    }
    size_t deficit = constraint.lower() - static_cast<size_t>(have);
    size_t headroom = constraint.upper() - static_cast<size_t>(have);

    std::vector<RowId> free_targets;
    free_targets.reserve(graph_.targets[node].size());
    for (RowId row : graph_.targets[node]) {
      if (row_map_.find(row) == row_map_.end()) free_targets.push_back(row);
    }

    ClusteringEnumOptions enumeration = options_.enumeration;
    enumeration.seed = options_.seed * 1000003ULL + node;
    return EnumerateClusteringsWithBounds(relation_, free_targets,
                                          options_.k, deficit, headroom,
                                          enumeration);
  }

  /// Least-constraining-value ordering for the selective strategies:
  /// among candidates preserving the same count, try the ones that WASTE
  /// the fewest shared rows first. A cluster row that lies in another
  /// constraint's target set is wasted when the cluster is not uniform on
  /// that target (the row is claimed but contributes nothing toward the
  /// other constraint's lower bound). (DIVA-Basic keeps its shuffled
  /// order.)
  void OrderLeastConstrainingFirst(size_t node,
                                   std::vector<CandidateClustering>* candidates) {
    std::vector<std::pair<uint64_t, size_t>> keyed(candidates->size());
    for (size_t i = 0; i < candidates->size(); ++i) {
      uint64_t waste = 0;
      for (const Cluster& cluster : (*candidates)[i].clusters) {
        for (size_t j = 0; j < constraints_.size(); ++j) {
          if (j == node) continue;
          uint64_t in_target = 0;
          for (RowId row : cluster) in_target += target_bitmap_[j][row];
          waste += in_target - Contribution(cluster, j);
        }
      }
      keyed[i] = {waste, i};
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const auto& a, const auto& b) {
                       size_t pa = (*candidates)[a.second].preserved;
                       size_t pb = (*candidates)[b.second].preserved;
                       if (pa != pb) return pa < pb;
                       return a.first < b.first;
                     });
    std::vector<CandidateClustering> ordered;
    ordered.reserve(candidates->size());
    for (const auto& [waste, index] : keyed) {
      ordered.push_back(std::move((*candidates)[index]));
    }
    *candidates = std::move(ordered);
  }

  /// Contribution of a (sorted) cluster to constraint j: |cluster| when
  /// every row is one of j's target tuples (the target attributes then
  /// survive suppression unanimously and keep matching), else 0.
  uint64_t Contribution(const std::vector<RowId>& rows, size_t j) const {
    const std::vector<bool>& bitmap = target_bitmap_[j];
    for (RowId row : rows) {
      if (!bitmap[row]) return 0;
    }
    return rows.size();
  }

  /// Checks consistency of `candidate` against the current state and, if
  /// consistent, activates its clusters. `activated` receives the keys of
  /// clusters whose refcount this call incremented.
  bool TryAssign(const CandidateClustering& candidate,
                 std::vector<std::vector<RowId>>* activated) {
    // Phase 1: validate without mutating.
    struct NewCluster {
      std::vector<RowId> rows;
      std::vector<uint64_t> contrib;
    };
    std::vector<NewCluster> fresh;
    std::vector<std::vector<RowId>> reused;
    std::vector<uint64_t> delta(constraints_.size(), 0);
    for (const Cluster& cluster : candidate.clusters) {
      std::vector<RowId> sorted = cluster;
      std::sort(sorted.begin(), sorted.end());
      auto it = registry_.find(sorted);
      if (it != registry_.end()) {
        reused.push_back(std::move(sorted));
        continue;
      }
      // A new cluster may not touch any row owned by a different active
      // cluster (disjoint-or-equal condition).
      for (RowId row : sorted) {
        if (row_map_.find(row) != row_map_.end()) return false;
      }
      NewCluster entry;
      entry.contrib.resize(constraints_.size());
      for (size_t j = 0; j < constraints_.size(); ++j) {
        entry.contrib[j] = Contribution(sorted, j);
        delta[j] += entry.contrib[j];
      }
      entry.rows = std::move(sorted);
      fresh.push_back(std::move(entry));
    }
    // Upper-bound condition over every constraint (the paper checks
    // neighbors; non-neighbors have zero contribution, so checking all is
    // equivalent and simpler).
    for (size_t j = 0; j < constraints_.size(); ++j) {
      if (preserved_[j] + delta[j] > constraints_[j].upper()) return false;
    }
    // Forward check: every still-uncolored constraint must be able to
    // reach its lower bound from its preserved total plus the target rows
    // that would remain free after this assignment. (Disabled in the
    // greedy second pass, where partial colorings are acceptable.)
    std::vector<uint64_t> claimed;
    if (forward_check_) {
    claimed.assign(constraints_.size(), 0);
    for (const NewCluster& entry : fresh) {
      for (RowId row : entry.rows) {
        for (size_t j = 0; j < constraints_.size(); ++j) {
          claimed[j] += target_bitmap_[j][row];
        }
      }
    }
    for (size_t j = 0; forward_check_ && j < constraints_.size(); ++j) {
      if (assignment_[j] >= 0) continue;
      uint64_t reachable =
          preserved_[j] + delta[j] + (free_count_[j] - claimed[j]);
      if (reachable < constraints_[j].lower()) {
        DIVA_COUNTER_ADD("coloring.forward_check_fails", 1);
        if (std::getenv("DIVA_DEBUG_COLORING")) {
          // lint: allow-print — env-gated debug aid, off by default.
          std::fprintf(stderr,
                       "fwd-fail j=%zu lower=%u preserved=%llu delta=%llu "
                       "free=%llu claimed=%llu\n",
                       j, constraints_[j].lower(),
                       (unsigned long long)preserved_[j],
                       (unsigned long long)delta[j],
                       (unsigned long long)free_count_[j],
                       (unsigned long long)claimed[j]);
        }
        return false;
      }
    }
    }

    // Phase 2: activate.
    for (NewCluster& entry : fresh) {
      for (RowId row : entry.rows) {
        row_map_.emplace(row, 0);
        for (size_t j = 0; j < constraints_.size(); ++j) {
          free_count_[j] -= target_bitmap_[j][row];
        }
      }
      for (size_t j = 0; j < constraints_.size(); ++j) {
        preserved_[j] += entry.contrib[j];
      }
      activated->push_back(entry.rows);
      registry_.emplace(std::move(entry.rows),
                        ActiveCluster{std::move(entry.contrib), 1});
    }
    for (std::vector<RowId>& rows : reused) {
      auto it = registry_.find(rows);
      // Always-on: ++end()->refcount is UB in release builds; the hash
      // lookup above dominates the cost of this branch.
      DIVA_CHECK_MSG(it != registry_.end(),
                     "coloring: reused cluster missing from registry");
      ++it->second.refcount;
      activated->push_back(std::move(rows));
    }
    return true;
  }

  void Unassign(size_t node, const std::vector<std::vector<RowId>>& activated) {
    assignment_[node] = -1;
    --colored_count_;
    for (const std::vector<RowId>& rows : activated) {
      auto it = registry_.find(rows);
      // Always-on for the same reason as Assign: end() deref is UB and a
      // zero refcount would wrap and leak the cluster forever.
      DIVA_CHECK_MSG(it != registry_.end() && it->second.refcount > 0,
                     "coloring: unassigned cluster missing from registry");
      if (--it->second.refcount == 0) {
        for (RowId row : rows) {
          row_map_.erase(row);
          for (size_t j = 0; j < constraints_.size(); ++j) {
            free_count_[j] += target_bitmap_[j][row];
          }
        }
        for (size_t j = 0; j < constraints_.size(); ++j) {
          preserved_[j] -= it->second.contrib[j];
        }
        registry_.erase(it);
      }
    }
  }

  size_t SelectNode() {
    // Exploration: with probability epsilon pick any uncolored node, so
    // restart attempts escape a wedged deterministic order.
    if (options_.epsilon > 0.0 &&
        rng_.UniformDouble() < options_.epsilon) {
      std::vector<size_t> open;
      for (size_t node = 0; node < constraints_.size(); ++node) {
        if (assignment_[node] < 0 && !sacrificed_[node]) open.push_back(node);
      }
      if (!open.empty()) {
        return open[static_cast<size_t>(rng_.NextBounded(open.size()))];
      }
    }
    // Zero-deficit nodes (lower bound already covered by other clusters)
    // are free wins for the selective strategies: they color with the
    // empty clustering, claim nothing, and shrink the problem.
    if (options_.strategy != SelectionStrategy::kBasic) {
      for (size_t node = 0; node < constraints_.size(); ++node) {
        if (assignment_[node] < 0 && !sacrificed_[node] &&
            preserved_[node] >= constraints_[node].lower()) {
          return node;
        }
      }
    }
    switch (options_.strategy) {
      case SelectionStrategy::kBasic: {
        for (size_t node : basic_order_) {
          if (assignment_[node] < 0 && !sacrificed_[node]) return node;
        }
        break;
      }
      case SelectionStrategy::kMinChoice: {
        // Most restrictive first. Proxy for the number of admissible
        // clusterings: the node's slack — how many spare free target
        // rows remain beyond its deficit (fewer spare rows, fewer
        // distinct subsets to choose from). Nodes whose deficit already
        // exceeds their free rows have zero clusterings and are picked
        // immediately (fail first).
        size_t best = constraints_.size();
        uint64_t best_slack = std::numeric_limits<uint64_t>::max();
        for (size_t node = 0; node < constraints_.size(); ++node) {
          if (assignment_[node] >= 0 || sacrificed_[node]) continue;
          uint64_t lower = constraints_[node].lower();
          uint64_t deficit =
              lower > preserved_[node] ? lower - preserved_[node] : 0;
          uint64_t slack = free_count_[node] > deficit
                               ? free_count_[node] - deficit
                               : 0;
          if (free_count_[node] < deficit) slack = 0;  // fail first
          if (slack < best_slack) {
            best_slack = slack;
            best = node;
            ties_ = 1;
          } else if (slack == best_slack &&
                     rng_.NextBounded(++ties_) == 0) {
            best = node;  // random tie-break for restart diversity
          }
        }
        if (best < constraints_.size()) return best;
        break;
      }
      case SelectionStrategy::kMaxFanOut: {
        // Most interacting first (the paper's description); fanout ties
        // break randomly so restarts explore different orders.
        size_t best = constraints_.size();
        size_t best_fanout = 0;
        for (size_t node = 0; node < constraints_.size(); ++node) {
          if (assignment_[node] >= 0 || sacrificed_[node]) continue;
          size_t fanout = 0;
          for (size_t neighbor : graph_.adjacency[node]) {
            if (assignment_[neighbor] < 0) ++fanout;
          }
          if (best == constraints_.size() || fanout > best_fanout) {
            best_fanout = fanout;
            best = node;
            ties_ = 1;
          } else if (fanout == best_fanout &&
                     rng_.NextBounded(++ties_) == 0) {
            best = node;  // random tie-break for restart diversity
          }
        }
        if (best < constraints_.size()) return best;
        break;
      }
    }
    // Fallback: first uncolored.
    for (size_t node = 0; node < constraints_.size(); ++node) {
      if (assignment_[node] < 0 && !sacrificed_[node]) return node;
    }
    DIVA_CHECK_MSG(false, "SelectNode called with all nodes colored");
    return 0;
  }

  void SnapshotIfBetter() {
    if (best_colored_ != kNoSnapshot && colored_count_ <= best_colored_) {
      return;
    }
    best_colored_ = colored_count_;
    last_improvement_ = steps_;
    outcome_.assignment = assignment_;
    outcome_.preserved.assign(preserved_.begin(), preserved_.end());
    outcome_.chosen_clusters.clear();
    for (const auto& [rows, entry] : registry_) {
      outcome_.chosen_clusters.push_back(rows);
    }
  }

  static constexpr size_t kNoSnapshot = std::numeric_limits<size_t>::max();

  const Relation& relation_;
  const ConstraintSet& constraints_;
  const ConstraintGraph& graph_;
  ColoringOptions options_;
  bool forward_check_;
  Rng rng_;

  std::vector<int> assignment_;
  std::vector<bool> sacrificed_;
  size_t sacrificed_count_ = 0;
  std::vector<uint64_t> preserved_;
  std::vector<size_t> basic_order_;
  std::vector<std::vector<bool>> target_bitmap_;
  std::vector<uint64_t> free_count_;  // unclaimed target rows per constraint
  size_t colored_count_ = 0;

  Registry registry_;                       // active clusters only
  std::unordered_map<RowId, int> row_map_;  // rows owned by a cluster

  uint64_t steps_ = 0;
  uint64_t backtracks_ = 0;
  uint64_t last_improvement_ = 0;
  uint64_t ties_ = 1;  // scratch for random tie-breaking
  bool budget_exhausted_ = false;
  size_t best_colored_ = kNoSnapshot;

  ColoringOutcome outcome_;
};

}  // namespace

ColoringOutcome ColorConstraints(const Relation& relation,
                                 const ConstraintSet& constraints,
                                 const ConstraintGraph& graph,
                                 const ColoringOptions& options) {
  DIVA_CHECK_MSG(graph.targets.size() == constraints.size(),
                 "graph must be built from the same constraint set");
  // Strict passes (lower-bound forward checking) with randomized
  // restarts: complete colorings are typically found within a few dozen
  // steps of a good ordering, so several cheap diversified attempts beat
  // one long chronological-backtracking grind.
  uint64_t budget = options.step_budget;
  uint64_t strict_budget = std::max<uint64_t>(1, budget / 2);
  uint64_t spent = 0;
  ColoringOutcome best;
  best.assignment.assign(constraints.size(), -1);
  best.preserved.assign(constraints.size(), 0);
  for (int attempt = 0;
       spent < strict_budget && attempt < 8 && !options.deadline.Cancelled();
       ++attempt) {
    DIVA_TRACE_SPAN_RANGE("coloring/attempt", attempt, attempt + 1);
    DIVA_COUNTER_ADD("coloring.attempts", 1);
    ColoringOptions pass = options;
    pass.seed = options.seed + 0x9e3779b97f4a7c15ULL * attempt;
    pass.step_budget = strict_budget - spent;
    pass.epsilon = 0.15 * attempt;  // attempt 0 is the pure strategy
    if (attempt > 0 && pass.stall_limit > 0) {
      // Diversification probes either win quickly or not at all; keep
      // them cheap so eight attempts stay affordable.
      pass.stall_limit = std::max<uint64_t>(500, options.stall_limit / 4);
    }
    ColoringEngine strict(relation, constraints, graph, pass,
                          /*forward_check=*/true);
    ColoringOutcome outcome = strict.Run();
    spent += outcome.steps;
    if (outcome.NumColored() > best.NumColored()) {
      uint64_t steps_so_far = spent;
      best = std::move(outcome);
      best.steps = steps_so_far;
    }
    if (best.complete) return best;
  }

  // An expired deadline skips the greedy pass: what we have is the
  // anytime answer, flagged through the budget-exhaustion path.
  if (options.deadline.Cancelled()) {
    best.steps = spent;
    best.budget_exhausted = true;
    return best;
  }

  // Final greedy pass — no forward checking, so the search colors as many
  // nodes as it can even when some constraint is provably unsatisfiable.
  ColoringOptions second = options;
  second.step_budget = budget > spent ? budget - spent : 1;
  second.epsilon = 0.1;
  DIVA_TRACE_SPAN("coloring/greedy");
  ColoringEngine greedy(relation, constraints, graph, second,
                        /*forward_check=*/false);
  ColoringOutcome fallback = greedy.Run();
  fallback.steps += spent;
  if (fallback.complete || fallback.NumColored() > best.NumColored()) {
    return fallback;
  }
  best.steps = fallback.steps;
  best.backtracks += fallback.backtracks;
  return best;
}

ColoringOutcome ColorConstraintsPortfolio(const Relation& relation,
                                          const ConstraintSet& constraints,
                                          const ConstraintGraph& graph,
                                          const ColoringOptions& options,
                                          size_t threads) {
  if (threads <= 1) {
    return ColorConstraints(relation, constraints, graph, options);
  }
  std::atomic<bool> cancel{false};
  std::vector<ColoringOutcome> outcomes(threads);
  // Coarse task parallelism (not a fork-join loop): each speculative
  // search is free to use the data-parallel layer internally.
  RunTasks(threads, [&](size_t t) {
    ColoringOptions worker_options = options;
    worker_options.seed = options.seed + 0x51ed270b7a14ULL * t;
    worker_options.cancel = &cancel;
    outcomes[t] =
        ColorConstraints(relation, constraints, graph, worker_options);
    if (outcomes[t].complete) {
      cancel.store(true, std::memory_order_relaxed);
    }
  });

  size_t best = 0;
  for (size_t t = 1; t < threads; ++t) {
    bool better =
        (outcomes[t].complete && !outcomes[best].complete) ||
        (outcomes[t].complete == outcomes[best].complete &&
         outcomes[t].NumColored() > outcomes[best].NumColored());
    if (better) best = t;
  }
  // Aggregate search effort across the portfolio for reporting.
  uint64_t steps = 0;
  uint64_t backtracks = 0;
  for (const ColoringOutcome& outcome : outcomes) {
    steps += outcome.steps;
    backtracks += outcome.backtracks;
  }
  ColoringOutcome winner = std::move(outcomes[best]);
  winner.steps = steps;
  winner.backtracks = backtracks;
  return winner;
}

}  // namespace diva
